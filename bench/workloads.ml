(* Shared instance builders for the experiment harness.  Everything is
   seeded so tables are reproducible run to run. *)

module H = Ps_hypergraph.Hypergraph
module Hgen = Ps_hypergraph.Hgen
module Rng = Ps_util.Rng

type hypergraph_instance = {
  label : string;
  h : H.t;
  k_choice : Ps_core.Pipeline.k_choice;
}

(* The hardness instances of Theorem 1.2 are almost-uniform hypergraphs
   with poly(n) edges; intervals are the [DN18] substrate; sunflowers and
   blocks are the extreme overlap structures. *)
let lemma_families ~seed =
  let rng = Rng.create seed in
  [ { label = "interval";
      h = Hgen.random_intervals rng ~n:96 ~m:80 ~min_len:3 ~max_len:12;
      k_choice = Ps_core.Pipeline.From_ruler };
    { label = "almost-unif(eps=.5)";
      h = Hgen.almost_uniform_random rng ~n:64 ~m:80 ~k:4 ~eps:0.5;
      k_choice = Ps_core.Pipeline.From_conservative };
    { label = "uniform(k=5)";
      h = Hgen.uniform_random rng ~n:64 ~m:60 ~k:5;
      k_choice = Ps_core.Pipeline.From_conservative };
    { label = "sunflower";
      h = Hgen.sunflower ~n_petals:24 ~core:4 ~petal:2;
      k_choice = Ps_core.Pipeline.From_conservative };
    { label = "disjoint-blocks";
      h = Hgen.disjoint_blocks ~blocks:40 ~size:4;
      k_choice = Ps_core.Pipeline.From_conservative };
    { label = "neighborhoods(grid)";
      h = Hgen.closed_neighborhoods (Ps_graph.Gen.grid 8 8);
      k_choice = Ps_core.Pipeline.From_conservative } ]

(* Edge-count sweep used for the ρ = λ ln m + 1 phase-bound table. *)
let m_sweep ~seed =
  List.map
    (fun m ->
      let rng = Rng.create (seed + m) in
      (m, Hgen.almost_uniform_random rng ~n:48 ~m ~k:4 ~eps:0.5))
    [ 10; 20; 40; 80; 160 ]

(* (n, m, k) sweep for conflict-graph size scaling. *)
let size_sweep ~seed =
  List.concat_map
    (fun (n, m) ->
      List.map
        (fun k ->
          let rng = Rng.create (seed + (1000 * n) + m + k) in
          (n, m, k, Hgen.uniform_random rng ~n ~m ~k:4))
        [ 1; 2; 4; 8 ])
    [ (16, 8); (32, 16); (64, 32) ]

let maxis_graphs ~seed =
  let rng = Rng.create seed in
  [ ("gnp(24,.2)", Ps_graph.Gen.gnp rng 24 0.2);
    ("gnp(24,.5)", Ps_graph.Gen.gnp rng 24 0.5);
    ("ring(25)", Ps_graph.Gen.ring 25);
    ("grid(5x5)", Ps_graph.Gen.grid 5 5);
    ("cliques(6x4)", Ps_graph.Gen.disjoint_cliques 6 4);
    ("star(25)", Ps_graph.Gen.star 25) ]

(* Small hypergraphs whose conflict graphs the exact solver can still
   crack — used to measure true λ of each heuristic on G_k itself. *)
let small_conflict_instances ~seed =
  let rng = Rng.create seed in
  [ ("Gk(interval)", Hgen.random_intervals rng ~n:12 ~m:6 ~min_len:2 ~max_len:5, 2);
    ("Gk(uniform)", Hgen.uniform_random rng ~n:10 ~m:5 ~k:3, 2);
    ("Gk(sunflower)", Hgen.sunflower ~n_petals:4 ~core:2 ~petal:1, 2) ]

let local_model_graphs ~seed =
  let rng = Rng.create seed in
  [ ("ring(64)", Ps_graph.Gen.ring 64);
    ("ring(256)", Ps_graph.Gen.ring 256);
    ("ring(1024)", Ps_graph.Gen.ring 1024);
    ("grid(16x16)", Ps_graph.Gen.grid 16 16);
    ("grid(32x32)", Ps_graph.Gen.grid 32 32);
    ("gnp(256,.02)", Ps_graph.Gen.gnp rng 256 0.02);
    ("gnp(1024,.005)", Ps_graph.Gen.gnp rng 1024 0.005);
    ("tree(1023)", Ps_graph.Gen.balanced_tree 2 9) ]
