(** End-to-end reduction comparison: full rebuild vs the incremental
    engine, best-of-N wall clock per (size, solver) cell.

    [run] prints the comparison table and returns the labelled timings
    (milliseconds; speedups as dimensionless ratios).  [~quick] trims
    the size sweep for CI.  [write_json] dumps rows as a flat JSON
    object — the BENCH_reduce.json consumed by the perf trajectory. *)

val run : ?quick:bool -> unit -> (string * float) list

val write_json : string -> (string * float) list -> unit
