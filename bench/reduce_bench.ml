(* End-to-end reduction benchmark: the `Rebuild and `Incremental phase
   engines head to head, across instance sizes and solver strengths,
   written to BENCH_reduce.json.

   Solver strength controls the phase count and hence how much the
   incremental engine can possibly win: near-optimal solvers (the two
   full heuristics) finish in 1-3 phases, so reuse can at best save the
   later builds of those few phases; the λ-degraded solver (caro-wei
   keeping 5% of its answer — the paper's λ-approximation premise)
   stretches the run to dozens of phases with slow geometric decay
   (claim E3's trajectory, measured in wall-clock), which is where
   cross-phase reuse shows its full effect.

   Every engine pair is asserted bit-identical (multicoloring and phase
   records) before its timing is reported — benchmarking a divergent
   answer would be meaningless. *)

module Rng = Ps_util.Rng
module Hgen = Ps_hypergraph.Hgen
module Red = Ps_core.Reduction
module Approx = Ps_maxis.Approx

let seed = 7

(* Same instance family as the micro-bench build-scaling points. *)
let instance m =
  let n = 4 * m / 3 in
  Hgen.uniform_random (Rng.create seed) ~n ~m ~k:4

let solvers () =
  [ ("greedy-min-degree", Approx.greedy_min_degree);
    ("caro-wei", Approx.caro_wei);
    ("caro-wei@0.05", Approx.degrade ~keep:0.05 Approx.caro_wei) ]

let time_ms f =
  let t0 = Ps_util.Telemetry.now_ns () in
  let r = f () in
  let t1 = Ps_util.Telemetry.now_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e6)

(* Best-of-N wall clock: the minimum is the standard noise-robust
   estimate for a deterministic computation. *)
let best_of reps f =
  let result = ref None and best = ref infinity in
  for _ = 1 to reps do
    let r, ms = time_ms f in
    if ms < !best then best := ms;
    result := Some r
  done;
  (Option.get !result, !best)

let run ?(quick = false) () =
  (* As in the micro run: timings track the production path, so force
     the telemetry recorder off for the measurement window. *)
  let telemetry_was = Ps_util.Telemetry.enabled () in
  Ps_util.Telemetry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Ps_util.Telemetry.set_enabled telemetry_was)
  @@ fun () ->
  let sizes = if quick then [ 96; 384 ] else [ 96; 384; 768; 1536 ] in
  let reps = if quick then 1 else 3 in
  let rows = ref [] in
  let push name v = rows := (name, v) :: !rows in
  let table =
    Ps_util.Table.create
      ~aligns:
        Ps_util.Table.[ Left; Left; Right; Right; Right; Right ]
      [ "instance"; "solver"; "phases"; "rebuild ms"; "incremental ms";
        "speedup" ]
  in
  List.iter
    (fun m ->
      let h = instance m in
      List.iter
        (fun (sname, solver) ->
          let reb, t_reb =
            best_of reps (fun () ->
                Red.run ~seed:0 ~engine:`Rebuild ~solver ~k:3 h)
          in
          let inc, t_inc =
            best_of reps (fun () ->
                Red.run ~seed:0 ~engine:`Incremental ~solver ~k:3 h)
          in
          if
            reb.Red.multicoloring <> inc.Red.multicoloring
            || reb.Red.phases <> inc.Red.phases
          then
            failwith
              (Printf.sprintf
                 "reduce bench: engines disagree at m=%d solver=%s" m sname);
          let speedup = t_reb /. t_inc in
          let tag = Printf.sprintf "reduce (m=%d,k=3,%s)" m sname in
          push (tag ^ " rebuild ms") t_reb;
          push (tag ^ " incremental ms") t_inc;
          push (tag ^ " speedup") speedup;
          Ps_util.Table.add_row table
            [ Printf.sprintf "m=%d,k=3" m;
              sname;
              string_of_int reb.Red.total_phases;
              Ps_util.Table.cell_float ~decimals:2 t_reb;
              Ps_util.Table.cell_float ~decimals:2 t_inc;
              Ps_util.Table.cell_float ~decimals:2 speedup ])
        (solvers ()))
    sizes;
  Ps_util.Table.print
    ~title:"End-to-end reduction: rebuild vs incremental engine (best-of-N)"
    table;
  List.rev !rows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      let last = List.length rows - 1 in
      List.iteri
        (fun i (name, v) ->
          Printf.fprintf oc "  \"%s\": %.3f%s\n" (json_escape name)
            (if Float.is_nan v then 0.0 else v)
            (if i = last then "" else ","))
        rows;
      output_string oc "}\n");
  Printf.printf "wrote %s (%d entries)\n" path (List.length rows)
