(* End-to-end reduction benchmark: the `Rebuild and `Incremental phase
   engines head to head, across instance sizes and solver strengths,
   written to BENCH_reduce.json.

   Solver strength controls the phase count and hence how much the
   incremental engine can possibly win: near-optimal solvers (the two
   full heuristics) finish in 1-3 phases, so reuse can at best save the
   later builds of those few phases; the λ-degraded solver (caro-wei
   keeping 5% of its answer — the paper's λ-approximation premise)
   stretches the run to dozens of phases with slow geometric decay
   (claim E3's trajectory, measured in wall-clock), which is where
   cross-phase reuse shows its full effect.

   Every engine pair is asserted bit-identical (multicoloring and phase
   records) before its timing is reported — benchmarking a divergent
   answer would be meaningless. *)

module Rng = Ps_util.Rng
module Hgen = Ps_hypergraph.Hgen
module Red = Ps_core.Reduction
module Approx = Ps_maxis.Approx
module Kernel = Ps_maxis.Kernel
module Gen = Ps_graph.Gen
module G = Ps_graph.Graph
module Is = Ps_maxis.Independent_set

let seed = 7

(* Same instance family as the micro-bench build-scaling points. *)
let instance m =
  let n = 4 * m / 3 in
  Hgen.uniform_random (Rng.create seed) ~n ~m ~k:4

let solvers () =
  [ ("greedy-min-degree", Approx.greedy_min_degree);
    ("caro-wei", Approx.caro_wei);
    ("caro-wei@0.05", Approx.degrade ~keep:0.05 Approx.caro_wei) ]

let time_ms f =
  let t0 = Ps_util.Telemetry.now_ns () in
  let r = f () in
  let t1 = Ps_util.Telemetry.now_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e6)

(* Best-of-N wall clock: the minimum is the standard noise-robust
   estimate for a deterministic computation. *)
let best_of reps f =
  let result = ref None and best = ref infinity in
  for _ = 1 to reps do
    let r, ms = time_ms f in
    if ms < !best then best := ms;
    result := Some r
  done;
  (Option.get !result, !best)

let run ?(quick = false) () =
  (* As in the micro run: timings track the production path, so force
     the telemetry recorder off for the measurement window. *)
  let telemetry_was = Ps_util.Telemetry.enabled () in
  Ps_util.Telemetry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Ps_util.Telemetry.set_enabled telemetry_was)
  @@ fun () ->
  let sizes = if quick then [ 96; 384 ] else [ 96; 384; 768; 1536 ] in
  let reps = if quick then 1 else 3 in
  let rows = ref [] in
  let push name v = rows := (name, v) :: !rows in
  let table =
    Ps_util.Table.create
      ~aligns:
        Ps_util.Table.[ Left; Left; Right; Right; Right; Right ]
      [ "instance"; "solver"; "phases"; "rebuild ms"; "incremental ms";
        "speedup" ]
  in
  List.iter
    (fun m ->
      let h = instance m in
      List.iter
        (fun (sname, solver) ->
          let reb, t_reb =
            best_of reps (fun () ->
                Red.run ~seed:0 ~presolve:`None ~engine:`Rebuild ~solver ~k:3
                  h)
          in
          let inc, t_inc =
            best_of reps (fun () ->
                Red.run ~seed:0 ~presolve:`None ~engine:`Incremental ~solver
                  ~k:3 h)
          in
          if
            reb.Red.multicoloring <> inc.Red.multicoloring
            || reb.Red.phases <> inc.Red.phases
          then
            failwith
              (Printf.sprintf
                 "reduce bench: engines disagree at m=%d solver=%s" m sname);
          let speedup = t_reb /. t_inc in
          let tag = Printf.sprintf "reduce (m=%d,k=3,%s)" m sname in
          push (tag ^ " rebuild ms") t_reb;
          push (tag ^ " incremental ms") t_inc;
          push (tag ^ " speedup") speedup;
          Ps_util.Table.add_row table
            [ Printf.sprintf "m=%d,k=3" m;
              sname;
              string_of_int reb.Red.total_phases;
              Ps_util.Table.cell_float ~decimals:2 t_reb;
              Ps_util.Table.cell_float ~decimals:2 t_inc;
              Ps_util.Table.cell_float ~decimals:2 speedup ])
        (solvers ()))
    sizes;
  Ps_util.Table.print
    ~title:"End-to-end reduction: rebuild vs incremental engine (best-of-N)"
    table;

  (* --------------------------------------------------------------- *)
  (* Kernelization lanes: presolve on vs off, same solver.

     (a) End-to-end reduction on the λ-degraded lane — the acceptance
     lane for the kernel front end.  The win is structural, not just
     constant-factor: kernelizing each phase's conflict graph both
     shrinks the solve and (through the lift's repair pass) restores
     maximality, collapsing the degraded solver's dozens of phases.

     (b) Raw MaxIS on sparse graphs where the degree rules bite
     (Gnp/R-MAT at average degree ~3): kernel+solver vs raw solver,
     plus the deterministic kernel_shrink_ratio rows the gate tracks
     directly. *)
  let ktable =
    Ps_util.Table.create
      ~aligns:Ps_util.Table.[ Left; Left; Right; Right; Right; Right ]
      [ "instance"; "solver"; "off ms"; "kernel ms"; "speedup"; "shrink" ]
  in
  List.iter
    (fun m ->
      let h = instance m in
      List.iter
        (fun (sname, keep) ->
          let solver = Approx.degrade ~keep Approx.caro_wei in
          let off, t_off =
            best_of reps (fun () ->
                Red.run ~seed:0 ~presolve:`None ~solver ~k:3 h)
          in
          let on, t_on =
            best_of reps (fun () ->
                Red.run ~seed:0 ~presolve:`Kernel ~solver ~k:3 h)
          in
          let speedup = t_off /. t_on in
          let tag = Printf.sprintf "reduce (m=%d,k=3,%s)" m sname in
          push (tag ^ " presolve-none ms") t_off;
          push (tag ^ " presolve-kernel ms") t_on;
          push (tag ^ " kernel_speedup") speedup;
          Ps_util.Table.add_row ktable
            [ Printf.sprintf "m=%d,k=3 (%d->%d phases)" m
                off.Red.total_phases on.Red.total_phases;
              sname;
              Ps_util.Table.cell_float ~decimals:2 t_off;
              Ps_util.Table.cell_float ~decimals:2 t_on;
              Ps_util.Table.cell_float ~decimals:2 speedup;
              "-" ])
        [ ("caro-wei@0.05", 0.05); ("caro-wei@0.02", 0.02) ])
    sizes;
  let mis_instances =
    let n = if quick then 20_000 else 60_000 in
    [ (Printf.sprintf "gnp n=%d,deg3" n,
       Gen.gnp (Rng.create seed) n (3.0 /. float_of_int n));
      (Printf.sprintf "rmat s=%d,deg4" (if quick then 13 else 15),
       Gen.rmat (Rng.create seed)
         ~scale:(if quick then 13 else 15)
         ~edges:(4 * (1 lsl if quick then 13 else 15))) ]
  in
  List.iter
    (fun (iname, g) ->
      let shrink =
        Kernel.shrink_ratio (Kernel.stats (Kernel.reduce g))
      in
      push (Printf.sprintf "mis (%s) kernel_shrink_ratio" iname) shrink;
      List.iter
        (fun (sname, solver) ->
          let raw, t_raw =
            best_of reps (fun () ->
                solver.Approx.solve (Rng.create 0) g)
          in
          let kern, t_kern =
            best_of reps (fun () ->
                (Kernel.presolve solver).Approx.solve (Rng.create 0) g)
          in
          if Is.size kern < Is.size raw then
            failwith
              (Printf.sprintf
                 "reduce bench: kernel lane shrank the answer on %s/%s" iname
                 sname);
          let speedup = t_raw /. t_kern in
          let tag = Printf.sprintf "mis (%s,%s)" iname sname in
          push (tag ^ " raw ms") t_raw;
          push (tag ^ " kernel ms") t_kern;
          push (tag ^ " kernel_speedup") speedup;
          Ps_util.Table.add_row ktable
            [ iname;
              sname;
              Ps_util.Table.cell_float ~decimals:2 t_raw;
              Ps_util.Table.cell_float ~decimals:2 t_kern;
              Ps_util.Table.cell_float ~decimals:2 speedup;
              Ps_util.Table.cell_float ~decimals:3 shrink ])
        [ ("greedy-min-degree", Approx.greedy_min_degree);
          ("caro-wei", Approx.caro_wei) ])
    mis_instances;
  Ps_util.Table.print
    ~title:"Kernelization presolve: off vs on (best-of-N)" ktable;
  List.rev !rows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      let last = List.length rows - 1 in
      List.iteri
        (fun i (name, v) ->
          Printf.fprintf oc "  \"%s\": %.3f%s\n" (json_escape name)
            (if Float.is_nan v then 0.0 else v)
            (if i = last then "" else ","))
        rows;
      output_string oc "}\n");
  Printf.printf "wrote %s (%d entries)\n" path (List.length rows)
