(* Scale benchmark: build and solve 10^6–10^7+-edge instances end to
   end, recording wall time, throughput, and peak RSS.

     dune exec bench/huge.exe                 # quick + full -> BENCH_huge.json
     dune exec bench/huge.exe -- --quick      # quick rows only (CI lane)
     dune exec bench/huge.exe -- --out F.json

   A separate executable on purpose: peak RSS is read from VmHWM in
   /proc/self/status, which is a process-wide high-water mark — running
   inside bench/main.exe would report whatever the largest experiment
   touched, not this workload.  Instances run smallest-first so each
   RSS reading is attributable to its own instance.

   Row classes (consumed by scripts/bench_gate.py):
     *_ns          timings, gated on the median-normalized profile
     edges_per_sec throughput, informational (machine-dependent)
     peak_rss_mb   lower-is-better, gated directly
     meta_*        instance facts, never gated

   The committed BENCH_huge.json holds the quick rows AND the full
   >=10^7-edge rows; the per-PR CI lane regenerates only the quick rows
   (the gate compares the intersection), while `make bench-huge-full`
   regenerates everything (documented nightly-sized run). *)

module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module Rng = Ps_util.Rng
module Is = Ps_maxis.Independent_set
module Cw = Ps_maxis.Caro_wei
module Kernel = Ps_maxis.Kernel

let now_ns () = Int64.to_float (Ps_util.Telemetry.now_ns ())

(* Peak resident set (VmHWM) in MB, from /proc/self/status; 0.0 when the
   file or the field is missing (non-Linux), keeping the bench portable. *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec scan () =
            match In_channel.input_line ic with
            | None -> 0.0
            | Some line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:"
                then
                  (* "VmHWM:   123456 kB" *)
                  let digits =
                    String.to_seq line
                    |> Seq.filter (fun c -> c >= '0' && c <= '9')
                    |> String.of_seq
                  in
                  float_of_string digits /. 1024.0
                else scan ()
          in
          scan ())

type instance = {
  label : string;
  build : unit -> G.t;  (* generator + direct-to-CSR construction *)
}

let quick_instances =
  [ { label = "huge/rmat_s18_m2e6";
      build = (fun () -> Gen.rmat (Rng.create 42) ~scale:18 ~edges:2_000_000) };
    { label = "huge/gnp_n500k_m2e6";
      build =
        (fun () ->
          let n = 500_000 in
          let p = 2_000_000.0 /. (float_of_int n *. float_of_int (n - 1) /. 2.0) in
          Gen.huge_gnp (Rng.create 43) n p) } ]

let full_instances =
  [ { label = "huge/rmat_s21_m12e6";
      build = (fun () -> Gen.rmat (Rng.create 42) ~scale:21 ~edges:12_000_000) } ]

let run_instance rows inst =
  let t0 = now_ns () in
  let g = inst.build () in
  let t1 = now_ns () in
  let set = Cw.run_maximal ~layout:`Degree_sorted (Rng.create 7) g in
  let t2 = now_ns () in
  let independent = Is.is_independent g set in
  let maximal = Is.is_maximal g set in
  let t3 = now_ns () in
  if not (independent && maximal) then begin
    Printf.eprintf "%s: solve NOT certified (independent=%b maximal=%b)\n"
      inst.label independent maximal;
    exit 1
  end;
  let m = G.n_edges g in
  let build_ns = t1 -. t0 and solve_ns = t2 -. t1 and check_ns = t3 -. t2 in
  let eps = float_of_int m /. ((build_ns +. solve_ns) /. 1e9) in
  Printf.printf
    "%s: n=%d m=%d width=%s build=%.2fs solve=%.2fs check=%.2fs \
     %.2fMe/s is=%d rss=%.0fMB\n%!"
    inst.label (G.n_vertices g) m
    (match G.width g with `Int -> "int" | `Int32 -> "i32")
    (build_ns /. 1e9) (solve_ns /. 1e9) (check_ns /. 1e9) (eps /. 1e6)
    (Is.size set) (peak_rss_mb ());
  rows :=
    !rows
    @ [ (inst.label ^ " build_ns", build_ns);
        (inst.label ^ " solve_ns", solve_ns);
        (inst.label ^ " check_ns", check_ns);
        (inst.label ^ " edges_per_sec", eps);
        (inst.label ^ " peak_rss_mb", peak_rss_mb ());
        (inst.label ^ " meta_edges", float_of_int m);
        (inst.label ^ " meta_is_size", float_of_int (Is.size set));
        (inst.label ^ " meta_certified", 1.0) ];
  (* Kernelized lane: reduce, solve the kernel, lift, certify on the
     original.  Runs after the raw rows so the RSS reading above stays
     attributable to the raw pipeline. *)
  let k0 = now_ns () in
  let r = Kernel.reduce g in
  let k1 = now_ns () in
  let ks = Cw.run_maximal ~layout:`Degree_sorted (Rng.create 7) (Kernel.graph r) in
  let lifted = Kernel.lift r ks in
  let k2 = now_ns () in
  if not (Is.is_independent g lifted && Is.is_maximal g lifted) then begin
    Printf.eprintf "%s: kernelized solve NOT certified\n" inst.label;
    exit 1
  end;
  let shrink = Kernel.shrink_ratio (Kernel.stats r) in
  Printf.printf
    "%s: kernel reduce=%.2fs solve+lift=%.2fs shrink=%.3f is=%d\n%!"
    inst.label ((k1 -. k0) /. 1e9) ((k2 -. k1) /. 1e9) shrink
    (Is.size lifted);
  rows :=
    !rows
    @ [ (inst.label ^ " kernel_reduce_ns", k1 -. k0);
        (inst.label ^ " kernel_solve_lift_ns", k2 -. k1);
        (inst.label ^ " kernel_shrink_ratio", shrink);
        (inst.label ^ " meta_kernel_is_size", float_of_int (Is.size lifted)) ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      let last = List.length rows - 1 in
      List.iteri
        (fun i (name, v) ->
          Printf.fprintf oc "  \"%s\": %.1f%s\n" (json_escape name)
            (if Float.is_nan v then 0.0 else v)
            (if i = last then "" else ","))
        rows;
      output_string oc "}\n");
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

let () =
  let quick = ref false and out = ref "BENCH_huge.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: path :: rest ->
        out := path;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: huge.exe [--quick] [--out FILE] (got %s)\n" arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rows = ref [] in
  List.iter (run_instance rows) quick_instances;
  if not !quick then List.iter (run_instance rows) full_instances;
  write_json !out !rows
