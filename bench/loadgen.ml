(* Load generator for the solve service.

     dune exec bench/loadgen.exe                # full sweep
     dune exec bench/loadgen.exe -- --quick     # CI smoke run
     dune exec bench/loadgen.exe -- --domains=8 --out=serve.json

   Drives an in-process {!Ps_server.Engine} through the complete wire
   path — each request is encoded to a JSON line, parsed and validated
   by {!Ps_server.Server.handle_line}, solved on a worker domain and
   serialized back — so the measured cost includes protocol overhead,
   not just the solver.

   Two modes, both on the sunflower_12 reduce workload:
   - closed loop: N client threads, each keeps exactly one request in
     flight; sweeps N to find the saturation throughput.
   - open loop: requests arrive at a fixed rate regardless of
     completions, which exposes queueing delay and the shed
     ([overloaded]) behaviour past saturation.

   Results go to BENCH_serve.json (throughput + p50/p95/p99 latency per
   sweep point) and to stdout as tables. *)

module Json = Ps_server.Json
module Server = Ps_server.Server
module Engine = Ps_server.Engine
module Frame = Ps_shard.Frame
module Supervisor = Ps_shard.Supervisor
module Metrics = Ps_shard.Metrics
module B = Ps_server.Protocol.Binary

let now_ns = Ps_util.Telemetry.now_ns

(* ------------------------------------------------------------------ *)
(* Workload *)

let request_line =
  let h = Ps_hypergraph.Hgen.sunflower ~n_petals:12 ~core:3 ~petal:3 in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int 0);
         ("method", Json.Str "reduce");
         ( "params",
           Json.Obj
             [ ("hypergraph", Json.Str (Ps_hypergraph.Hio.to_text h));
               ("solver", Json.Str "greedy") ] ) ])

let response_ok line =
  match Json.parse line with
  | Ok j -> Option.bind (Json.member "ok" j) Json.to_bool_opt = Some true
  | Error _ -> false

let response_overloaded line =
  match Json.parse line with
  | Ok j ->
      Option.bind (Json.member "error" j) (Json.member "code")
      |> Fun.flip Option.bind Json.to_string_opt
      = Some "overloaded"
  | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Measurement points *)

type point = {
  label : string;
  offered : int;      (* requests submitted *)
  completed : int;    (* ok responses *)
  shed : int;         (* overloaded responses *)
  errors : int;       (* any other non-ok response *)
  duration_s : float;
  latencies_ms : float array;  (* sorted, completed requests only *)
}

let percentile = Ps_util.Stats.percentile_nearest

let throughput p =
  if p.duration_s > 0.0 then float_of_int p.completed /. p.duration_s else 0.0

(* Per-thread latency sink; merged after the point finishes so the hot
   path never contends on a shared lock. *)
type sink = { mutable lat : float list; mutable ok : int;
              mutable shed : int; mutable errors : int }

let new_sink () = { lat = []; ok = 0; shed = 0; errors = 0 }

let record sink ~t0_ns line =
  let ms = Int64.to_float (Int64.sub (now_ns ()) t0_ns) /. 1e6 in
  if response_ok line then begin
    sink.ok <- sink.ok + 1;
    sink.lat <- ms :: sink.lat
  end
  else if response_overloaded line then sink.shed <- sink.shed + 1
  else sink.errors <- sink.errors + 1

let finish ~label ~offered ~duration_s sinks =
  let ok = List.fold_left (fun a s -> a + s.ok) 0 sinks in
  let shed = List.fold_left (fun a s -> a + s.shed) 0 sinks in
  let errors = List.fold_left (fun a s -> a + s.errors) 0 sinks in
  let lat =
    Array.of_list (List.concat_map (fun s -> s.lat) sinks)
  in
  Array.sort Float.compare lat;
  { label; offered; completed = ok; shed; errors; duration_s;
    latencies_ms = lat }

(* ------------------------------------------------------------------ *)
(* Closed loop: [concurrency] threads, one request in flight each. *)

let closed_point ~domains ~concurrency ~duration_s =
  let engine = Engine.create { Engine.default_config with domains } in
  let stop_at =
    Int64.add (now_ns ()) (Int64.of_float (duration_s *. 1e9))
  in
  let offered = Atomic.make 0 in
  let client sink () =
    (* One blocking request at a time: a tiny latch per call. *)
    let m = Mutex.create () and c = Condition.create () in
    let slot = ref None in
    let reply line =
      Mutex.lock m;
      slot := Some line;
      Condition.signal c;
      Mutex.unlock m
    in
    while now_ns () < stop_at do
      Atomic.incr offered;
      let t0_ns = now_ns () in
      slot := None;
      Server.handle_line ~engine
        ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply
        request_line;
      Mutex.lock m;
      while !slot = None do
        Condition.wait c m
      done;
      let line = Option.get !slot in
      Mutex.unlock m;
      record sink ~t0_ns line
    done
  in
  let sinks = List.init concurrency (fun _ -> new_sink ()) in
  let t0 = now_ns () in
  let threads = List.map (fun s -> Thread.create (client s) ()) sinks in
  List.iter Thread.join threads;
  let duration_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  Engine.shutdown ~drain:true engine;
  finish
    ~label:(Printf.sprintf "closed/c%d" concurrency)
    ~offered:(Atomic.get offered) ~duration_s sinks

(* ------------------------------------------------------------------ *)
(* Open loop: fixed arrival rate, replies recorded asynchronously. *)

let open_point ~domains ~rate_rps ~duration_s =
  let engine = Engine.create { Engine.default_config with domains } in
  let sink = new_sink () in
  let sink_mutex = Mutex.create () in
  let outstanding = Atomic.make 0 in
  let t0 = now_ns () in
  let offered = ref 0 in
  let target = int_of_float (float_of_int rate_rps *. duration_s) in
  (* Deficit pacing: send however many requests are due by now, then
     sleep briefly — robust to coarse timer granularity. *)
  while !offered < target do
    let elapsed_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
    let due =
      min target (int_of_float (float_of_int rate_rps *. elapsed_s))
    in
    while !offered < due do
      incr offered;
      Atomic.incr outstanding;
      let t0_ns = now_ns () in
      let reply line =
        Mutex.lock sink_mutex;
        record sink ~t0_ns line;
        Mutex.unlock sink_mutex;
        Atomic.decr outstanding
      in
      Server.handle_line ~engine
        ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply
        request_line
    done;
    Thread.delay 0.001
  done;
  (* Drain delivers every outstanding reply before returning. *)
  Engine.shutdown ~drain:true engine;
  assert (Atomic.get outstanding = 0);
  let duration_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  finish
    ~label:(Printf.sprintf "open/r%d" rate_rps)
    ~offered:!offered ~duration_s [ sink ]

(* ------------------------------------------------------------------ *)
(* Repeated-instance lane: the cache workload.

   N distinct interval hypergraphs; a zipf(1) popularity distribution
   over them models the production pattern the cache exists for (a few
   hot instances, a long tail).  Four phases, one synchronous client:

     cold             each instance once, greedy  → all misses + stores
     warm             [draws] zipf-sampled greedy  → result-tier hits
     warm_start       each instance once, caro-wei → result miss, but the
                      phase-0 G_k CSR replays from the warm tier
     warm_start_cold  the same caro-wei requests on a fresh uncached
                      engine — the warm-start baseline

   The hit rate and the warm/cold + warm-start/cold latency ratios land
   in BENCH_serve.json under "gate" (flat, machine-independent), which
   is what scripts/bench_gate.py compares across runs. *)

let repeated_request ~solver ~seed h =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int 0);
         ("method", Json.Str "reduce");
         ( "params",
           Json.Obj
             [ ("hypergraph", Json.Str (Ps_hypergraph.Hio.to_text h));
               ("solver", Json.Str solver);
               ("seed", Json.Int seed) ] ) ])

(* One blocking request; returns (response line, latency ms). *)
let call engine line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  let reply l =
    Mutex.lock m;
    slot := Some l;
    Condition.signal c;
    Mutex.unlock m
  in
  let t0_ns = now_ns () in
  Server.handle_line ~engine
    ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply line;
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  let l = Option.get !slot in
  Mutex.unlock m;
  (l, Int64.to_float (Int64.sub (now_ns ()) t0_ns) /. 1e6)

type repeated = {
  n_graphs : int;
  draws : int;
  hit_rate : float;
  audits : int;
  warm_starts : int;
  cold_ms : float array;            (* sorted *)
  warm_ms : float array;
  warm_start_ms : float array;
  warm_start_cold_ms : float array;
  warm_start_speedup : float;
      (* median over per-(instance, seed) matched cold/warm ratios —
         pairing cancels instance-size spread, the median rides out
         transient machine load on individual solves *)
}

let repeated_lane ~domains ~draws =
  let module Cache = Ps_cache.Cache in
  (* Dense interval instances: phase 0 of the reduction builds a G_k
     CSR over ~len^2 conflicts per vertex, which is exactly the work
     the warm tier elides, so the warm-start signal is well above the
     protocol-overhead noise floor. *)
  let n_graphs = 8 in
  let graphs =
    Array.init n_graphs (fun i ->
        Ps_hypergraph.Hgen.all_intervals_of_length ~n:(120 + (25 * i))
          ~len:10)
  in
  (* zipf(1) CDF over the instances: weight 1/(i+1). *)
  let cdf =
    let w = Array.init n_graphs (fun i -> 1.0 /. float_of_int (i + 1)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w
  in
  let zipf_draw rng =
    let u = Ps_util.Rng.float rng 1.0 in
    let rec find i =
      if i >= n_graphs - 1 || u <= cdf.(i) then i else find (i + 1)
    in
    find 0
  in
  (* Phase-0 CSR snapshots of these instances run ~10-40 MB each (G_k
     is dense), so the default 32 MiB warm budget would thrash; size
     the tier to hold the whole working set. *)
  let cache =
    Cache.create
      ~config:
        { Cache.default_config with
          warm_budget_bytes = 512 * 1024 * 1024 }
      ()
  in
  let engine =
    Engine.create { Engine.default_config with domains; cache = Some cache }
  in
  let solve engine ~solver ~seed i =
    let line, ms = call engine (repeated_request ~solver ~seed graphs.(i)) in
    if not (response_ok line) then
      failwith (Printf.sprintf "repeated lane: non-ok response: %s" line);
    ms
  in
  let sorted l =
    let a = Array.of_list l in
    Array.sort Float.compare a;
    a
  in
  let cold_ms =
    sorted (List.init n_graphs (solve engine ~solver:"greedy" ~seed:0))
  in
  let hits_before = (Cache.stats cache).Cache.hits in
  let rng = Ps_util.Rng.create 42 in
  let warm_ms =
    sorted
      (List.init draws (fun _ ->
           solve engine ~solver:"greedy" ~seed:0 (zipf_draw rng)))
  in
  let hits_after = (Cache.stats cache).Cache.hits in
  (* Three seeds per instance: each (instance, seed) pair misses the
     result tier but replays the instance's phase-0 CSR from the warm
     tier, tripling the sample the gated ratio is computed from. *)
  let ws_seeds = [ 1; 2; 3 ] in
  let warm_runs =
    List.concat_map
      (fun seed -> List.init n_graphs (solve engine ~solver:"caro-wei" ~seed))
      ws_seeds
  in
  Engine.shutdown ~drain:true engine;
  let baseline = Engine.create { Engine.default_config with domains } in
  let cold_runs =
    List.concat_map
      (fun seed ->
        List.init n_graphs (solve baseline ~solver:"caro-wei" ~seed))
      ws_seeds
  in
  Engine.shutdown ~drain:true baseline;
  let warm_start_speedup =
    let ratios =
      sorted
        (List.map2
           (fun cold warm -> if warm > 0.0 then cold /. warm else 0.0)
           cold_runs warm_runs)
    in
    percentile ratios 0.50
  in
  let s = Cache.stats cache in
  { n_graphs;
    draws;
    hit_rate = float_of_int (hits_after - hits_before) /. float_of_int draws;
    audits = s.Cache.audits;
    warm_starts = s.Cache.warm_hits;
    cold_ms;
    warm_ms;
    warm_start_ms = sorted warm_runs;
    warm_start_cold_ms = sorted cold_runs;
    warm_start_speedup }

(* ------------------------------------------------------------------ *)
(* Serve-tier sweep: real processes, real sockets.

   Everything above drives an in-process engine; this lane spawns
   `pslocal serve` the way production runs it and measures the whole
   tier over Unix sockets, on a protocol-dominated workload (ping
   through the engine) so the numbers isolate the serving stack itself:
   codec, batching, reply coalescing, per-request engine overhead.

   The matrix is shards × codec.  Shard-tier configs are driven at
   their per-shard sockets (one pipelined connection per shard; the
   relay adds a constant per-byte tax better measured separately), the
   single-process configs get the same number of connections to the one
   socket, so the comparison changes the serving stack and nothing
   else.  Open loop: a rate ladder with deficit pacing; past
   saturation the ladder flattens at the tier's capacity, and the best
   point's aggregate rps is the capacity estimate the gate rows use.

   Requires bin/pslocal.exe — run under `dune build` (CI does) or
   `dune exec` after one. *)

let pslocal_exe () =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/pslocal.exe"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  go 0

type tier_config = {
  tc_label : string;
  tc_args : string list;    (* `pslocal serve` argv tail *)
  tc_drive : string list;   (* sockets the clients connect to *)
  tc_sockets : string list; (* every socket the config creates (cleanup) *)
  tc_framing : Frame.framing;
}

let tier_configs ~quick =
  let sock label =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "psb-%d-%s.sock" (Unix.getpid ()) label)
  in
  let single label extra framing =
    let s = sock label in
    { tc_label = label;
      tc_args = [ "--socket"; s; "--domains"; "1" ] @ extra;
      tc_drive = [ s ];
      tc_sockets = [ s ];
      tc_framing = framing }
  in
  let tier label extra framing =
    let s = sock label in
    let shards = List.init 4 (Supervisor.shard_socket_path ~front:s) in
    { tc_label = label;
      tc_args = [ "--socket"; s; "--shards"; "4"; "--domains"; "1" ] @ extra;
      tc_drive = shards;
      tc_sockets = s :: shards;
      tc_framing = framing }
  in
  let json = Frame.Json_lines and binary = Frame.Binary in
  if quick then
    [ single "single-json" [] json; tier "shard4-binary" [ "--binary" ] binary ]
  else
    [ single "single-json" [] json;
      single "single-binary" [ "--binary" ] binary;
      tier "shard4-json" [] json;
      tier "shard4-binary" [ "--binary" ] binary ]

let unlink_quietly p = try Unix.unlink p with Unix.Unix_error _ -> ()

let wait_ready ~timeout_s paths =
  let deadline = Int64.add (now_ns ()) (Int64.of_float (timeout_s *. 1e9)) in
  let rec wait () =
    if List.for_all Supervisor.socket_ready paths then true
    else if Int64.compare (now_ns ()) deadline > 0 then false
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  wait ()

type tier_conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  conn_sink : sink;
}

let connect_conn path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    conn_sink = new_sink () }

(* Binary ping requests are a fixed frame with the id as an int64 at a
   constant offset — located once by probing for a sentinel pattern, so
   the flood sender patches 8 bytes per request instead of re-encoding
   a frame.  (The JSON sender's sprintf is the analogous floor for the
   text codec; the asymmetry is the codec's, not the harness's.) *)
let binary_ping_template =
  let probe = 0x0102030405060708L in
  let f =
    B.frame
      (Json.Obj
         [ ("id", Json.Int (Int64.to_int probe));
           ("method", Json.Str "ping") ])
  in
  let pat = Bytes.create 8 in
  Bytes.set_int64_be pat 0 probe;
  let pat = Bytes.to_string pat in
  let off =
    let rec find i =
      if i + 8 > String.length f then
        failwith "loadgen: binary ping template has no id window"
      else if String.equal (String.sub f i 8) pat then i
      else find (i + 1)
    in
    find 0
  in
  (Bytes.of_string f, off)

let send_ping oc framing id =
  match framing with
  | Frame.Json_lines ->
      output_string oc (Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}\n" id)
  | Frame.Binary ->
      let tmpl, off = binary_ping_template in
      Bytes.set_int64_be tmpl off (Int64.of_int id);
      output_bytes oc tmpl

(* Reply classification without a full JSON parse on the hot path: the
   client shares the server's core, so reading replies must stay
   cheaper than producing them. *)
let json_reply_id line =
  let prefix = "{\"id\":" in
  if String.length line > String.length prefix
     && String.equal (String.sub line 0 (String.length prefix)) prefix
  then begin
    let i = ref (String.length prefix) in
    let v = ref 0 and any = ref false in
    while
      !i < String.length line && line.[!i] >= '0' && line.[!i] <= '9'
    do
      v := (10 * !v) + Char.code line.[!i] - Char.code '0';
      any := true;
      incr i
    done;
    if !any then Some !v else None
  end
  else None

(* Binary replies, client side.  [Frame.read_message] would fully
   decode every frame, and at flood rates the client shares the
   server's core — so the common case, an ok ping reply whose payload
   leads with the same two fields at fixed offsets
   ('o' count "id" 'i' <int64> "ok" 't' ...), is scanned in place and
   only unusual frames pay for the full decoder. *)
let scan_binary_reply payload =
  if String.length payload >= 27
     && payload.[0] = 'o'
     && Int32.to_int (String.get_int32_be payload 5) = 2
     && String.equal (String.sub payload 9 2) "id"
     && payload.[11] = 'i'
     && Int32.to_int (String.get_int32_be payload 20) = 2
     && String.equal (String.sub payload 24 2) "ok"
     && payload.[26] = 't'
  then (Some (Int64.to_int (String.get_int64_be payload 12)), true, false)
  else
    match B.of_bytes payload with
    | Ok resp ->
        let id =
          match Json.member "id" resp with
          | Some (Json.Int i) -> Some i
          | _ -> None
        in
        let ok =
          match Json.member "ok" resp with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        let shed =
          match
            Option.bind (Json.member "error" resp) (Json.member "code")
          with
          | Some (Json.Str "overloaded") -> true
          | _ -> false
        in
        (id, ok, shed)
    | Error _ -> (None, false, false)

let read_binary_reply ic =
  match really_input_string ic B.header_bytes with
  | exception End_of_file -> None
  | header -> (
      match B.frame_length header with
      | Error _ -> Some (None, false, false)
      | Ok n -> (
          match really_input_string ic n with
          | exception End_of_file -> None
          | payload -> Some (scan_binary_reply payload)))

(* One open-loop point against a running tier: pipelined pings at a
   fixed aggregate arrival rate, spread round-robin over one connection
   per driven socket.  Latency is sampled (every [stride]-th id) from a
   send-timestamp array indexed by id, so reply reordering across
   connections cannot mispair timestamps. *)
let tier_open_point ~label ~framing ~paths ~rate_rps ~duration_s =
  let conns = Array.of_list (List.map connect_conn paths) in
  let k = Array.length conns in
  let target = max k (int_of_float (float_of_int rate_rps *. duration_s)) in
  let stride = max 1 (target / 2000) in
  let t0s = Array.make target 0L in
  (* Requests go round-robin by id, so each connection's reply count is
     known upfront — the reader reads exactly that many and exits.  (A
     done-flag handshake instead is racy: the reader can consume the
     final reply before the flag flips, then block forever on a socket
     that will never carry another byte.) *)
  let expected i = (target / k) + (if i < target mod k then 1 else 0) in
  let reader c ~expected () =
    let read_reply () =
      match framing with
      | Frame.Json_lines -> (
          match input_line c.ic with
          | line -> Some (json_reply_id line, contains line "\"ok\":true",
                          contains line "overloaded")
          | exception End_of_file -> None)
      | Frame.Binary -> read_binary_reply c.ic
    in
    let received = ref 0 in
    let rec loop () =
      if !received >= expected then ()
      else
        match read_reply () with
        | None ->
            (* Premature EOF: the server dropped replies it owed us.
               Surface it as errors rather than hanging. *)
            c.conn_sink.errors <- c.conn_sink.errors + (expected - !received);
            received := expected
        | Some (id, ok, shed) ->
            incr received;
            let s = c.conn_sink in
            if ok then begin
              s.ok <- s.ok + 1;
              match id with
              | Some id when id mod stride = 0 && id < target
                             && t0s.(id) <> 0L ->
                  s.lat <-
                    (Int64.to_float (Int64.sub (now_ns ()) t0s.(id)) /. 1e6)
                    :: s.lat
              | _ -> ()
            end
            else if shed then s.shed <- s.shed + 1
            else s.errors <- s.errors + 1;
            loop ()
    in
    loop ()
  in
  let readers =
    Array.mapi
      (fun i c -> Thread.create (reader c ~expected:(expected i)) ())
      conns
  in
  let t_start = now_ns () in
  let sent_total = ref 0 in
  while !sent_total < target do
    let elapsed_s =
      Int64.to_float (Int64.sub (now_ns ()) t_start) /. 1e9
    in
    let due =
      min target (int_of_float (float_of_int rate_rps *. elapsed_s))
    in
    while !sent_total < due do
      let id = !sent_total in
      let c = conns.(id mod k) in
      if id mod stride = 0 then t0s.(id) <- now_ns ();
      send_ping c.oc framing id;
      incr sent_total
    done;
    Array.iter (fun c -> flush c.oc) conns;
    Thread.delay 0.001
  done;
  Array.iter (fun c -> flush c.oc) conns;
  Array.iter Thread.join readers;
  let duration_s =
    Int64.to_float (Int64.sub (now_ns ()) t_start) /. 1e9
  in
  Array.iter
    (fun c ->
      (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try close_in c.ic with Sys_error _ -> ())
    conns;
  finish ~label ~offered:target ~duration_s
    (Array.to_list (Array.map (fun c -> c.conn_sink) conns))

(* Server-side per-shard truth, straight from each shard's [stats]
   method after the ladder: completion counts and the engine's own
   latency quantiles, independent of client-side sampling. *)
let shard_stats_json ~framing paths =
  Json.List
    (List.mapi
       (fun i path ->
         match Metrics.fetch_stats ~framing ~path with
         | Ok stats ->
             let member_or name default =
               Option.value (Json.member name stats) ~default
             in
             let latency name =
               match
                 Option.bind (Json.member "latency_ms" stats)
                   (Json.member name)
               with
               | Some v -> v
               | None -> Json.Null
             in
             Json.Obj
               [ ("shard", Json.Int i);
                 ("completed", member_or "completed" Json.Null);
                 ("throughput_rps", member_or "throughput_rps" Json.Null);
                 ("p50_ms", latency "p50");
                 ("p99_ms", latency "p99") ]
         | Error e ->
             Json.Obj [ ("shard", Json.Int i); ("scrape_error", Json.Str e) ])
       paths)

type tier_result = {
  tr_label : string;
  tr_points : point list;
  tr_shards : Json.t;
  tr_best_rps : float;
}

let run_tier_config ~rates ~duration_s cfg =
  List.iter unlink_quietly cfg.tc_sockets;
  let exe = pslocal_exe () in
  if not (Sys.file_exists exe) then
    failwith
      (Printf.sprintf "loadgen: %s not built — run `dune build` first" exe);
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: "serve" :: cfg.tc_args))
      Unix.stdin Unix.stdout Unix.stderr
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
       with Unix.Unix_error _ -> ());
      List.iter unlink_quietly cfg.tc_sockets)
    (fun () ->
      if not (wait_ready ~timeout_s:15.0 cfg.tc_drive) then
        failwith
          (Printf.sprintf "loadgen: %s never became ready" cfg.tc_label);
      let points =
        List.map
          (fun r ->
            tier_open_point
              ~label:(Printf.sprintf "%s/r%d" cfg.tc_label r)
              ~framing:cfg.tc_framing ~paths:cfg.tc_drive ~rate_rps:r
              ~duration_s)
          rates
      in
      let shards = shard_stats_json ~framing:cfg.tc_framing cfg.tc_drive in
      (* Graceful stop: the drain path is part of what this lane
         exercises every run. *)
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ ->
          Printf.eprintf "loadgen: warning: %s did not exit cleanly\n"
            cfg.tc_label);
      let best =
        List.fold_left (fun a p -> Float.max a (throughput p)) 0.0 points
      in
      { tr_label = cfg.tc_label;
        tr_points = points;
        tr_shards = shards;
        tr_best_rps = best })

let tier_sweep ~quick =
  (* The gated ratio only means something at saturation, so even the
     quick lane floods (the top rung is past every config's capacity);
     quick just skips the ladder and the two middle configs. *)
  let rates =
    if quick then [ 384000 ] else [ 24000; 96000; 192000; 384000 ]
  in
  let duration_s = if quick then 1.0 else 2.0 in
  List.map (run_tier_config ~rates ~duration_s) (tier_configs ~quick)

let tier_best results label =
  List.find_map
    (fun r -> if String.equal r.tr_label label then Some r.tr_best_rps else None)
    results

(* ------------------------------------------------------------------ *)
(* Reporting *)

let point_json p =
  Json.Obj
    [ ("label", Json.Str p.label);
      ("offered", Json.Int p.offered);
      ("completed", Json.Int p.completed);
      ("shed", Json.Int p.shed);
      ("errors", Json.Int p.errors);
      ("duration_s", Json.Float p.duration_s);
      ("throughput_rps", Json.Float (throughput p));
      ("p50_ms", Json.Float (percentile p.latencies_ms 0.50));
      ("p95_ms", Json.Float (percentile p.latencies_ms 0.95));
      ("p99_ms", Json.Float (percentile p.latencies_ms 0.99)) ]

let repeated_lane_json name a =
  ( name,
    Json.Obj
      [ ("p50_ms", Json.Float (percentile a 0.50));
        ("p95_ms", Json.Float (percentile a 0.95)) ] )

let repeated_json r =
  Json.Obj
    [ ("n_graphs", Json.Int r.n_graphs);
      ("draws", Json.Int r.draws);
      ("hit_rate", Json.Float r.hit_rate);
      ("audits", Json.Int r.audits);
      ("warm_starts", Json.Int r.warm_starts);
      repeated_lane_json "cold" r.cold_ms;
      repeated_lane_json "warm" r.warm_ms;
      repeated_lane_json "warm_start" r.warm_start_ms;
      repeated_lane_json "warm_start_cold" r.warm_start_cold_ms ]

(* The flat rows bench_gate.py reads.  Only the warm-start ratio is
   gated ("speedup" name): cold and warm caro-wei solves differ by one
   array copy vs one CSR enumeration on the same machine, so the ratio
   is stable.  The raw hit gain (full solve vs protocol overhead) and
   the hit rate are machine-mix-dependent and informational ("hit_"
   names). *)
(* Shard-tier ratios: capacity of a configuration divided by the
   single-process JSON baseline measured in the same run — the machine
   cancels out, so the rows are gateable like the warm-start ratio.
   `serve_shard_binary_speedup` is the tier's headline SLO (4 binary
   shards must serve ≥ 3x the legacy baseline). *)
let tier_gate_rows tier =
  let ratio num den = if den > 0.0 then num /. den else 0.0 in
  match tier_best tier "single-json" with
  | None -> []
  | Some base ->
      List.filter_map
        (fun (label, row) ->
          Option.map
            (fun v -> (row, Json.Float (ratio v base)))
            (tier_best tier label))
        [ ("shard4-binary", "serve_shard_binary_speedup");
          ("shard4-json", "serve_shard_json_speedup");
          ("single-binary", "serve_codec_speedup") ]

let gate_json r ~tier =
  let ratio num den = if den > 0.0 then num /. den else 0.0 in
  let tier_rows = tier_gate_rows tier in
  Json.Obj
    ([ ( "serve_cache_hit_gain",
         Json.Float
           (ratio (percentile r.cold_ms 0.50) (percentile r.warm_ms 0.50)) );
       ("serve_warm_start_speedup", Json.Float r.warm_start_speedup);
       ("serve_repeat_hit_rate", Json.Float r.hit_rate) ]
    @ tier_rows)

let tier_json results =
  Json.Obj
    (List.map
       (fun tr ->
         ( tr.tr_label,
           Json.Obj
             [ ("points", Json.List (List.map point_json tr.tr_points));
               ("shards", tr.tr_shards);
               ("best_rps", Json.Float tr.tr_best_rps) ] ))
       results)

let print_repeated r =
  let t =
    Ps_util.Table.create
      ~aligns:[ Left; Right; Right; Right ]
      [ "phase"; "requests"; "p50 ms"; "p95 ms" ]
  in
  List.iter
    (fun (label, a) ->
      Ps_util.Table.add_row t
        [ label;
          Ps_util.Table.cell_int (Array.length a);
          Ps_util.Table.cell_float ~decimals:3 (percentile a 0.50);
          Ps_util.Table.cell_float ~decimals:3 (percentile a 0.95) ])
    [ ("cold (greedy, miss)", r.cold_ms);
      ("warm (greedy, hit)", r.warm_ms);
      ("warm-start (caro-wei)", r.warm_start_ms);
      ("cold (caro-wei, no cache)", r.warm_start_cold_ms) ];
  Ps_util.Table.print
    ~title:
      (Printf.sprintf
         "Repeated instances (%d graphs, zipf; hit rate %.2f, %d audits, %d \
          warm starts, warm-start speedup %.2fx)"
         r.n_graphs r.hit_rate r.audits r.warm_starts r.warm_start_speedup)
    t

let print_table ~title points =
  let t =
    Ps_util.Table.create
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right; Right ]
      [ "point"; "offered"; "ok"; "shed"; "rps"; "p50 ms"; "p95 ms";
        "p99 ms" ]
  in
  List.iter
    (fun p ->
      Ps_util.Table.add_row t
        [ p.label;
          Ps_util.Table.cell_int p.offered;
          Ps_util.Table.cell_int p.completed;
          Ps_util.Table.cell_int p.shed;
          Ps_util.Table.cell_float ~decimals:1 (throughput p);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.50);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.95);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.99)
        ])
    points;
  Ps_util.Table.print ~title t

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: loadgen.exe [--quick] [--tier-only] [--domains=N] [--out=FILE]";
  exit 1

let () =
  let quick = ref false and domains = ref 4 and out = ref "BENCH_serve.json" in
  let tier_only = ref false in
  List.iter
    (fun a ->
      let prefixed p = String.length a > String.length p
                       && String.sub a 0 (String.length p) = p in
      let value p = String.sub a (String.length p)
                      (String.length a - String.length p) in
      if a = "--quick" then quick := true
      else if a = "--tier-only" then tier_only := true
      else if prefixed "--domains=" then
        domains := int_of_string (value "--domains=")
      else if prefixed "--out=" then out := value "--out="
      else usage ())
    (List.tl (Array.to_list Sys.argv));
  let domains = max 1 !domains in
  let duration_s = if !quick then 0.5 else 2.0 in
  let concurrencies = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let rates = if !quick then [ 200 ] else [ 100; 500; 2000 ] in
  Printf.printf
    "loadgen: sunflower_12 reduce, %d worker domain(s), %gs per point\n\n"
    domains duration_s;
  (* --tier-only: just the serve-tier sweep, for iterating on the
     serving stack and for the CI smoke job — the solve lanes cost
     minutes and don't change when the transport does. *)
  let solve_lanes = not !tier_only in
  let closed =
    if not solve_lanes then []
    else
      List.map
        (fun c -> closed_point ~domains ~concurrency:c ~duration_s)
        concurrencies
  in
  if solve_lanes then begin
    print_table ~title:"Closed loop (one request in flight per client)" closed;
    print_newline ()
  end;
  let open_ =
    if not solve_lanes then []
    else List.map (fun r -> open_point ~domains ~rate_rps:r ~duration_s) rates
  in
  if solve_lanes then begin
    print_table ~title:"Open loop (fixed arrival rate)" open_;
    print_newline ()
  end;
  let repeated =
    if not solve_lanes then None
    else Some (repeated_lane ~domains ~draws:(if !quick then 60 else 240))
  in
  Option.iter
    (fun r ->
      print_repeated r;
      print_newline ())
    repeated;
  let tier = tier_sweep ~quick:!quick in
  List.iter
    (fun tr ->
      print_table
        ~title:
          (Printf.sprintf "Serve tier: %s (ping, open loop, best %.0f rps)"
             tr.tr_label tr.tr_best_rps)
        tr.tr_points;
      print_newline ())
    tier;
  let doc =
    Json.Obj
      ([ ("workload", Json.Str "sunflower_12/reduce/greedy");
         ("domains", Json.Int domains);
         ("duration_s", Json.Float duration_s);
         ("closed_loop", Json.List (List.map point_json closed));
         ("open_loop", Json.List (List.map point_json open_)) ]
      @ (match repeated with
        | Some r -> [ ("repeated", repeated_json r) ]
        | None -> [])
      @ [ ("serve_tier", tier_json tier);
          ( "gate",
            match repeated with
            | Some r -> gate_json r ~tier
            | None -> Json.Obj (tier_gate_rows tier) ) ])
  in
  let oc = open_out !out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out;
  (* The service-level objective the server is sized for: a 4-domain
     pool must sustain at least 200 solved reduce requests per second. *)
  let best = List.fold_left (fun a p -> Float.max a (throughput p)) 0.0 closed in
  if solve_lanes && domains >= 4 && best < 200.0 then begin
    Printf.eprintf "FAIL: peak closed-loop throughput %.1f rps < 200 rps\n"
      best;
    exit 1
  end;
  (* The shard tier's own SLO: four binary shards must serve at least
     3x the single-process JSON baseline.  Enforced on full runs only
     (quick points are too short to be a stable ratio; the CI quick
     lane still carries the ratio into bench_gate.py, which compares
     it against the committed baseline within its tolerance). *)
  (match
     (tier_best tier "shard4-binary", tier_best tier "single-json")
   with
  | Some shard4, Some base when base > 0.0 ->
      let speedup = shard4 /. base in
      Printf.printf "serve tier: shard4-binary %.0f rps vs single-json %.0f \
                     rps — %.2fx\n"
        shard4 base speedup;
      if (not !quick) && speedup < 3.0 then begin
        Printf.eprintf
          "FAIL: shard4-binary speedup %.2fx < 3.0x over single-json\n"
          speedup;
        exit 1
      end
  | _ -> ())
