(* Load generator for the solve service.

     dune exec bench/loadgen.exe                # full sweep
     dune exec bench/loadgen.exe -- --quick     # CI smoke run
     dune exec bench/loadgen.exe -- --domains=8 --out=serve.json

   Drives an in-process {!Ps_server.Engine} through the complete wire
   path — each request is encoded to a JSON line, parsed and validated
   by {!Ps_server.Server.handle_line}, solved on a worker domain and
   serialized back — so the measured cost includes protocol overhead,
   not just the solver.

   Two modes, both on the sunflower_12 reduce workload:
   - closed loop: N client threads, each keeps exactly one request in
     flight; sweeps N to find the saturation throughput.
   - open loop: requests arrive at a fixed rate regardless of
     completions, which exposes queueing delay and the shed
     ([overloaded]) behaviour past saturation.

   Results go to BENCH_serve.json (throughput + p50/p95/p99 latency per
   sweep point) and to stdout as tables. *)

module Json = Ps_server.Json
module Server = Ps_server.Server
module Engine = Ps_server.Engine

let now_ns = Ps_util.Telemetry.now_ns

(* ------------------------------------------------------------------ *)
(* Workload *)

let request_line =
  let h = Ps_hypergraph.Hgen.sunflower ~n_petals:12 ~core:3 ~petal:3 in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int 0);
         ("method", Json.Str "reduce");
         ( "params",
           Json.Obj
             [ ("hypergraph", Json.Str (Ps_hypergraph.Hio.to_text h));
               ("solver", Json.Str "greedy") ] ) ])

let response_ok line =
  match Json.parse line with
  | Ok j -> Option.bind (Json.member "ok" j) Json.to_bool_opt = Some true
  | Error _ -> false

let response_overloaded line =
  match Json.parse line with
  | Ok j ->
      Option.bind (Json.member "error" j) (Json.member "code")
      |> Fun.flip Option.bind Json.to_string_opt
      = Some "overloaded"
  | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Measurement points *)

type point = {
  label : string;
  offered : int;      (* requests submitted *)
  completed : int;    (* ok responses *)
  shed : int;         (* overloaded responses *)
  errors : int;       (* any other non-ok response *)
  duration_s : float;
  latencies_ms : float array;  (* sorted, completed requests only *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))

let throughput p =
  if p.duration_s > 0.0 then float_of_int p.completed /. p.duration_s else 0.0

(* Per-thread latency sink; merged after the point finishes so the hot
   path never contends on a shared lock. *)
type sink = { mutable lat : float list; mutable ok : int;
              mutable shed : int; mutable errors : int }

let new_sink () = { lat = []; ok = 0; shed = 0; errors = 0 }

let record sink ~t0_ns line =
  let ms = Int64.to_float (Int64.sub (now_ns ()) t0_ns) /. 1e6 in
  if response_ok line then begin
    sink.ok <- sink.ok + 1;
    sink.lat <- ms :: sink.lat
  end
  else if response_overloaded line then sink.shed <- sink.shed + 1
  else sink.errors <- sink.errors + 1

let finish ~label ~offered ~duration_s sinks =
  let ok = List.fold_left (fun a s -> a + s.ok) 0 sinks in
  let shed = List.fold_left (fun a s -> a + s.shed) 0 sinks in
  let errors = List.fold_left (fun a s -> a + s.errors) 0 sinks in
  let lat =
    Array.of_list (List.concat_map (fun s -> s.lat) sinks)
  in
  Array.sort compare lat;
  { label; offered; completed = ok; shed; errors; duration_s;
    latencies_ms = lat }

(* ------------------------------------------------------------------ *)
(* Closed loop: [concurrency] threads, one request in flight each. *)

let closed_point ~domains ~concurrency ~duration_s =
  let engine = Engine.create { Engine.default_config with domains } in
  let stop_at =
    Int64.add (now_ns ()) (Int64.of_float (duration_s *. 1e9))
  in
  let offered = Atomic.make 0 in
  let client sink () =
    (* One blocking request at a time: a tiny latch per call. *)
    let m = Mutex.create () and c = Condition.create () in
    let slot = ref None in
    let reply line =
      Mutex.lock m;
      slot := Some line;
      Condition.signal c;
      Mutex.unlock m
    in
    while now_ns () < stop_at do
      Atomic.incr offered;
      let t0_ns = now_ns () in
      slot := None;
      Server.handle_line ~engine
        ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply
        request_line;
      Mutex.lock m;
      while !slot = None do
        Condition.wait c m
      done;
      let line = Option.get !slot in
      Mutex.unlock m;
      record sink ~t0_ns line
    done
  in
  let sinks = List.init concurrency (fun _ -> new_sink ()) in
  let t0 = now_ns () in
  let threads = List.map (fun s -> Thread.create (client s) ()) sinks in
  List.iter Thread.join threads;
  let duration_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  Engine.shutdown ~drain:true engine;
  finish
    ~label:(Printf.sprintf "closed/c%d" concurrency)
    ~offered:(Atomic.get offered) ~duration_s sinks

(* ------------------------------------------------------------------ *)
(* Open loop: fixed arrival rate, replies recorded asynchronously. *)

let open_point ~domains ~rate_rps ~duration_s =
  let engine = Engine.create { Engine.default_config with domains } in
  let sink = new_sink () in
  let sink_mutex = Mutex.create () in
  let outstanding = Atomic.make 0 in
  let t0 = now_ns () in
  let offered = ref 0 in
  let target = int_of_float (float_of_int rate_rps *. duration_s) in
  (* Deficit pacing: send however many requests are due by now, then
     sleep briefly — robust to coarse timer granularity. *)
  while !offered < target do
    let elapsed_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
    let due =
      min target (int_of_float (float_of_int rate_rps *. elapsed_s))
    in
    while !offered < due do
      incr offered;
      Atomic.incr outstanding;
      let t0_ns = now_ns () in
      let reply line =
        Mutex.lock sink_mutex;
        record sink ~t0_ns line;
        Mutex.unlock sink_mutex;
        Atomic.decr outstanding
      in
      Server.handle_line ~engine
        ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply
        request_line
    done;
    Thread.delay 0.001
  done;
  (* Drain delivers every outstanding reply before returning. *)
  Engine.shutdown ~drain:true engine;
  assert (Atomic.get outstanding = 0);
  let duration_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  finish
    ~label:(Printf.sprintf "open/r%d" rate_rps)
    ~offered:!offered ~duration_s [ sink ]

(* ------------------------------------------------------------------ *)
(* Reporting *)

let point_json p =
  Json.Obj
    [ ("label", Json.Str p.label);
      ("offered", Json.Int p.offered);
      ("completed", Json.Int p.completed);
      ("shed", Json.Int p.shed);
      ("errors", Json.Int p.errors);
      ("duration_s", Json.Float p.duration_s);
      ("throughput_rps", Json.Float (throughput p));
      ("p50_ms", Json.Float (percentile p.latencies_ms 0.50));
      ("p95_ms", Json.Float (percentile p.latencies_ms 0.95));
      ("p99_ms", Json.Float (percentile p.latencies_ms 0.99)) ]

let print_table ~title points =
  let t =
    Ps_util.Table.create
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right; Right ]
      [ "point"; "offered"; "ok"; "shed"; "rps"; "p50 ms"; "p95 ms";
        "p99 ms" ]
  in
  List.iter
    (fun p ->
      Ps_util.Table.add_row t
        [ p.label;
          Ps_util.Table.cell_int p.offered;
          Ps_util.Table.cell_int p.completed;
          Ps_util.Table.cell_int p.shed;
          Ps_util.Table.cell_float ~decimals:1 (throughput p);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.50);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.95);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.99)
        ])
    points;
  Ps_util.Table.print ~title t

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: loadgen.exe [--quick] [--domains=N] [--out=FILE]";
  exit 1

let () =
  let quick = ref false and domains = ref 4 and out = ref "BENCH_serve.json" in
  List.iter
    (fun a ->
      let prefixed p = String.length a > String.length p
                       && String.sub a 0 (String.length p) = p in
      let value p = String.sub a (String.length p)
                      (String.length a - String.length p) in
      if a = "--quick" then quick := true
      else if prefixed "--domains=" then
        domains := int_of_string (value "--domains=")
      else if prefixed "--out=" then out := value "--out="
      else usage ())
    (List.tl (Array.to_list Sys.argv));
  let domains = max 1 !domains in
  let duration_s = if !quick then 0.5 else 2.0 in
  let concurrencies = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let rates = if !quick then [ 200 ] else [ 100; 500; 2000 ] in
  Printf.printf
    "loadgen: sunflower_12 reduce, %d worker domain(s), %gs per point\n\n"
    domains duration_s;
  let closed =
    List.map
      (fun c -> closed_point ~domains ~concurrency:c ~duration_s)
      concurrencies
  in
  print_table ~title:"Closed loop (one request in flight per client)" closed;
  print_newline ();
  let open_ =
    List.map (fun r -> open_point ~domains ~rate_rps:r ~duration_s) rates
  in
  print_table ~title:"Open loop (fixed arrival rate)" open_;
  print_newline ();
  let doc =
    Json.Obj
      [ ("workload", Json.Str "sunflower_12/reduce/greedy");
        ("domains", Json.Int domains);
        ("duration_s", Json.Float duration_s);
        ("closed_loop", Json.List (List.map point_json closed));
        ("open_loop", Json.List (List.map point_json open_)) ]
  in
  let oc = open_out !out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out;
  (* The service-level objective the server is sized for: a 4-domain
     pool must sustain at least 200 solved reduce requests per second. *)
  let best = List.fold_left (fun a p -> Float.max a (throughput p)) 0.0 closed in
  if domains >= 4 && best < 200.0 then begin
    Printf.eprintf "FAIL: peak closed-loop throughput %.1f rps < 200 rps\n"
      best;
    exit 1
  end
