(* Load generator for the solve service.

     dune exec bench/loadgen.exe                # full sweep
     dune exec bench/loadgen.exe -- --quick     # CI smoke run
     dune exec bench/loadgen.exe -- --domains=8 --out=serve.json

   Drives an in-process {!Ps_server.Engine} through the complete wire
   path — each request is encoded to a JSON line, parsed and validated
   by {!Ps_server.Server.handle_line}, solved on a worker domain and
   serialized back — so the measured cost includes protocol overhead,
   not just the solver.

   Two modes, both on the sunflower_12 reduce workload:
   - closed loop: N client threads, each keeps exactly one request in
     flight; sweeps N to find the saturation throughput.
   - open loop: requests arrive at a fixed rate regardless of
     completions, which exposes queueing delay and the shed
     ([overloaded]) behaviour past saturation.

   Results go to BENCH_serve.json (throughput + p50/p95/p99 latency per
   sweep point) and to stdout as tables. *)

module Json = Ps_server.Json
module Server = Ps_server.Server
module Engine = Ps_server.Engine

let now_ns = Ps_util.Telemetry.now_ns

(* ------------------------------------------------------------------ *)
(* Workload *)

let request_line =
  let h = Ps_hypergraph.Hgen.sunflower ~n_petals:12 ~core:3 ~petal:3 in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int 0);
         ("method", Json.Str "reduce");
         ( "params",
           Json.Obj
             [ ("hypergraph", Json.Str (Ps_hypergraph.Hio.to_text h));
               ("solver", Json.Str "greedy") ] ) ])

let response_ok line =
  match Json.parse line with
  | Ok j -> Option.bind (Json.member "ok" j) Json.to_bool_opt = Some true
  | Error _ -> false

let response_overloaded line =
  match Json.parse line with
  | Ok j ->
      Option.bind (Json.member "error" j) (Json.member "code")
      |> Fun.flip Option.bind Json.to_string_opt
      = Some "overloaded"
  | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Measurement points *)

type point = {
  label : string;
  offered : int;      (* requests submitted *)
  completed : int;    (* ok responses *)
  shed : int;         (* overloaded responses *)
  errors : int;       (* any other non-ok response *)
  duration_s : float;
  latencies_ms : float array;  (* sorted, completed requests only *)
}

let percentile = Ps_util.Stats.percentile_nearest

let throughput p =
  if p.duration_s > 0.0 then float_of_int p.completed /. p.duration_s else 0.0

(* Per-thread latency sink; merged after the point finishes so the hot
   path never contends on a shared lock. *)
type sink = { mutable lat : float list; mutable ok : int;
              mutable shed : int; mutable errors : int }

let new_sink () = { lat = []; ok = 0; shed = 0; errors = 0 }

let record sink ~t0_ns line =
  let ms = Int64.to_float (Int64.sub (now_ns ()) t0_ns) /. 1e6 in
  if response_ok line then begin
    sink.ok <- sink.ok + 1;
    sink.lat <- ms :: sink.lat
  end
  else if response_overloaded line then sink.shed <- sink.shed + 1
  else sink.errors <- sink.errors + 1

let finish ~label ~offered ~duration_s sinks =
  let ok = List.fold_left (fun a s -> a + s.ok) 0 sinks in
  let shed = List.fold_left (fun a s -> a + s.shed) 0 sinks in
  let errors = List.fold_left (fun a s -> a + s.errors) 0 sinks in
  let lat =
    Array.of_list (List.concat_map (fun s -> s.lat) sinks)
  in
  Array.sort Float.compare lat;
  { label; offered; completed = ok; shed; errors; duration_s;
    latencies_ms = lat }

(* ------------------------------------------------------------------ *)
(* Closed loop: [concurrency] threads, one request in flight each. *)

let closed_point ~domains ~concurrency ~duration_s =
  let engine = Engine.create { Engine.default_config with domains } in
  let stop_at =
    Int64.add (now_ns ()) (Int64.of_float (duration_s *. 1e9))
  in
  let offered = Atomic.make 0 in
  let client sink () =
    (* One blocking request at a time: a tiny latch per call. *)
    let m = Mutex.create () and c = Condition.create () in
    let slot = ref None in
    let reply line =
      Mutex.lock m;
      slot := Some line;
      Condition.signal c;
      Mutex.unlock m
    in
    while now_ns () < stop_at do
      Atomic.incr offered;
      let t0_ns = now_ns () in
      slot := None;
      Server.handle_line ~engine
        ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply
        request_line;
      Mutex.lock m;
      while !slot = None do
        Condition.wait c m
      done;
      let line = Option.get !slot in
      Mutex.unlock m;
      record sink ~t0_ns line
    done
  in
  let sinks = List.init concurrency (fun _ -> new_sink ()) in
  let t0 = now_ns () in
  let threads = List.map (fun s -> Thread.create (client s) ()) sinks in
  List.iter Thread.join threads;
  let duration_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  Engine.shutdown ~drain:true engine;
  finish
    ~label:(Printf.sprintf "closed/c%d" concurrency)
    ~offered:(Atomic.get offered) ~duration_s sinks

(* ------------------------------------------------------------------ *)
(* Open loop: fixed arrival rate, replies recorded asynchronously. *)

let open_point ~domains ~rate_rps ~duration_s =
  let engine = Engine.create { Engine.default_config with domains } in
  let sink = new_sink () in
  let sink_mutex = Mutex.create () in
  let outstanding = Atomic.make 0 in
  let t0 = now_ns () in
  let offered = ref 0 in
  let target = int_of_float (float_of_int rate_rps *. duration_s) in
  (* Deficit pacing: send however many requests are due by now, then
     sleep briefly — robust to coarse timer granularity. *)
  while !offered < target do
    let elapsed_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
    let due =
      min target (int_of_float (float_of_int rate_rps *. elapsed_s))
    in
    while !offered < due do
      incr offered;
      Atomic.incr outstanding;
      let t0_ns = now_ns () in
      let reply line =
        Mutex.lock sink_mutex;
        record sink ~t0_ns line;
        Mutex.unlock sink_mutex;
        Atomic.decr outstanding
      in
      Server.handle_line ~engine
        ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply
        request_line
    done;
    Thread.delay 0.001
  done;
  (* Drain delivers every outstanding reply before returning. *)
  Engine.shutdown ~drain:true engine;
  assert (Atomic.get outstanding = 0);
  let duration_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  finish
    ~label:(Printf.sprintf "open/r%d" rate_rps)
    ~offered:!offered ~duration_s [ sink ]

(* ------------------------------------------------------------------ *)
(* Repeated-instance lane: the cache workload.

   N distinct interval hypergraphs; a zipf(1) popularity distribution
   over them models the production pattern the cache exists for (a few
   hot instances, a long tail).  Four phases, one synchronous client:

     cold             each instance once, greedy  → all misses + stores
     warm             [draws] zipf-sampled greedy  → result-tier hits
     warm_start       each instance once, caro-wei → result miss, but the
                      phase-0 G_k CSR replays from the warm tier
     warm_start_cold  the same caro-wei requests on a fresh uncached
                      engine — the warm-start baseline

   The hit rate and the warm/cold + warm-start/cold latency ratios land
   in BENCH_serve.json under "gate" (flat, machine-independent), which
   is what scripts/bench_gate.py compares across runs. *)

let repeated_request ~solver ~seed h =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int 0);
         ("method", Json.Str "reduce");
         ( "params",
           Json.Obj
             [ ("hypergraph", Json.Str (Ps_hypergraph.Hio.to_text h));
               ("solver", Json.Str solver);
               ("seed", Json.Int seed) ] ) ])

(* One blocking request; returns (response line, latency ms). *)
let call engine line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  let reply l =
    Mutex.lock m;
    slot := Some l;
    Condition.signal c;
    Mutex.unlock m
  in
  let t0_ns = now_ns () in
  Server.handle_line ~engine
    ~max_line_bytes:Ps_server.Protocol.default_max_bytes ~reply line;
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  let l = Option.get !slot in
  Mutex.unlock m;
  (l, Int64.to_float (Int64.sub (now_ns ()) t0_ns) /. 1e6)

type repeated = {
  n_graphs : int;
  draws : int;
  hit_rate : float;
  audits : int;
  warm_starts : int;
  cold_ms : float array;            (* sorted *)
  warm_ms : float array;
  warm_start_ms : float array;
  warm_start_cold_ms : float array;
  warm_start_speedup : float;
      (* median over per-(instance, seed) matched cold/warm ratios —
         pairing cancels instance-size spread, the median rides out
         transient machine load on individual solves *)
}

let repeated_lane ~domains ~draws =
  let module Cache = Ps_cache.Cache in
  (* Dense interval instances: phase 0 of the reduction builds a G_k
     CSR over ~len^2 conflicts per vertex, which is exactly the work
     the warm tier elides, so the warm-start signal is well above the
     protocol-overhead noise floor. *)
  let n_graphs = 8 in
  let graphs =
    Array.init n_graphs (fun i ->
        Ps_hypergraph.Hgen.all_intervals_of_length ~n:(120 + (25 * i))
          ~len:10)
  in
  (* zipf(1) CDF over the instances: weight 1/(i+1). *)
  let cdf =
    let w = Array.init n_graphs (fun i -> 1.0 /. float_of_int (i + 1)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w
  in
  let zipf_draw rng =
    let u = Ps_util.Rng.float rng 1.0 in
    let rec find i =
      if i >= n_graphs - 1 || u <= cdf.(i) then i else find (i + 1)
    in
    find 0
  in
  (* Phase-0 CSR snapshots of these instances run ~10-40 MB each (G_k
     is dense), so the default 32 MiB warm budget would thrash; size
     the tier to hold the whole working set. *)
  let cache =
    Cache.create
      ~config:
        { Cache.default_config with
          warm_budget_bytes = 512 * 1024 * 1024 }
      ()
  in
  let engine =
    Engine.create { Engine.default_config with domains; cache = Some cache }
  in
  let solve engine ~solver ~seed i =
    let line, ms = call engine (repeated_request ~solver ~seed graphs.(i)) in
    if not (response_ok line) then
      failwith (Printf.sprintf "repeated lane: non-ok response: %s" line);
    ms
  in
  let sorted l =
    let a = Array.of_list l in
    Array.sort Float.compare a;
    a
  in
  let cold_ms =
    sorted (List.init n_graphs (solve engine ~solver:"greedy" ~seed:0))
  in
  let hits_before = (Cache.stats cache).Cache.hits in
  let rng = Ps_util.Rng.create 42 in
  let warm_ms =
    sorted
      (List.init draws (fun _ ->
           solve engine ~solver:"greedy" ~seed:0 (zipf_draw rng)))
  in
  let hits_after = (Cache.stats cache).Cache.hits in
  (* Three seeds per instance: each (instance, seed) pair misses the
     result tier but replays the instance's phase-0 CSR from the warm
     tier, tripling the sample the gated ratio is computed from. *)
  let ws_seeds = [ 1; 2; 3 ] in
  let warm_runs =
    List.concat_map
      (fun seed -> List.init n_graphs (solve engine ~solver:"caro-wei" ~seed))
      ws_seeds
  in
  Engine.shutdown ~drain:true engine;
  let baseline = Engine.create { Engine.default_config with domains } in
  let cold_runs =
    List.concat_map
      (fun seed ->
        List.init n_graphs (solve baseline ~solver:"caro-wei" ~seed))
      ws_seeds
  in
  Engine.shutdown ~drain:true baseline;
  let warm_start_speedup =
    let ratios =
      sorted
        (List.map2
           (fun cold warm -> if warm > 0.0 then cold /. warm else 0.0)
           cold_runs warm_runs)
    in
    percentile ratios 0.50
  in
  let s = Cache.stats cache in
  { n_graphs;
    draws;
    hit_rate = float_of_int (hits_after - hits_before) /. float_of_int draws;
    audits = s.Cache.audits;
    warm_starts = s.Cache.warm_hits;
    cold_ms;
    warm_ms;
    warm_start_ms = sorted warm_runs;
    warm_start_cold_ms = sorted cold_runs;
    warm_start_speedup }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let point_json p =
  Json.Obj
    [ ("label", Json.Str p.label);
      ("offered", Json.Int p.offered);
      ("completed", Json.Int p.completed);
      ("shed", Json.Int p.shed);
      ("errors", Json.Int p.errors);
      ("duration_s", Json.Float p.duration_s);
      ("throughput_rps", Json.Float (throughput p));
      ("p50_ms", Json.Float (percentile p.latencies_ms 0.50));
      ("p95_ms", Json.Float (percentile p.latencies_ms 0.95));
      ("p99_ms", Json.Float (percentile p.latencies_ms 0.99)) ]

let repeated_lane_json name a =
  ( name,
    Json.Obj
      [ ("p50_ms", Json.Float (percentile a 0.50));
        ("p95_ms", Json.Float (percentile a 0.95)) ] )

let repeated_json r =
  Json.Obj
    [ ("n_graphs", Json.Int r.n_graphs);
      ("draws", Json.Int r.draws);
      ("hit_rate", Json.Float r.hit_rate);
      ("audits", Json.Int r.audits);
      ("warm_starts", Json.Int r.warm_starts);
      repeated_lane_json "cold" r.cold_ms;
      repeated_lane_json "warm" r.warm_ms;
      repeated_lane_json "warm_start" r.warm_start_ms;
      repeated_lane_json "warm_start_cold" r.warm_start_cold_ms ]

(* The flat rows bench_gate.py reads.  Only the warm-start ratio is
   gated ("speedup" name): cold and warm caro-wei solves differ by one
   array copy vs one CSR enumeration on the same machine, so the ratio
   is stable.  The raw hit gain (full solve vs protocol overhead) and
   the hit rate are machine-mix-dependent and informational ("hit_"
   names). *)
let gate_json r =
  let ratio num den = if den > 0.0 then num /. den else 0.0 in
  Json.Obj
    [ ( "serve_cache_hit_gain",
        Json.Float
          (ratio (percentile r.cold_ms 0.50) (percentile r.warm_ms 0.50)) );
      ("serve_warm_start_speedup", Json.Float r.warm_start_speedup);
      ("serve_repeat_hit_rate", Json.Float r.hit_rate) ]

let print_repeated r =
  let t =
    Ps_util.Table.create
      ~aligns:[ Left; Right; Right; Right ]
      [ "phase"; "requests"; "p50 ms"; "p95 ms" ]
  in
  List.iter
    (fun (label, a) ->
      Ps_util.Table.add_row t
        [ label;
          Ps_util.Table.cell_int (Array.length a);
          Ps_util.Table.cell_float ~decimals:3 (percentile a 0.50);
          Ps_util.Table.cell_float ~decimals:3 (percentile a 0.95) ])
    [ ("cold (greedy, miss)", r.cold_ms);
      ("warm (greedy, hit)", r.warm_ms);
      ("warm-start (caro-wei)", r.warm_start_ms);
      ("cold (caro-wei, no cache)", r.warm_start_cold_ms) ];
  Ps_util.Table.print
    ~title:
      (Printf.sprintf
         "Repeated instances (%d graphs, zipf; hit rate %.2f, %d audits, %d \
          warm starts, warm-start speedup %.2fx)"
         r.n_graphs r.hit_rate r.audits r.warm_starts r.warm_start_speedup)
    t

let print_table ~title points =
  let t =
    Ps_util.Table.create
      ~aligns:[ Left; Right; Right; Right; Right; Right; Right; Right ]
      [ "point"; "offered"; "ok"; "shed"; "rps"; "p50 ms"; "p95 ms";
        "p99 ms" ]
  in
  List.iter
    (fun p ->
      Ps_util.Table.add_row t
        [ p.label;
          Ps_util.Table.cell_int p.offered;
          Ps_util.Table.cell_int p.completed;
          Ps_util.Table.cell_int p.shed;
          Ps_util.Table.cell_float ~decimals:1 (throughput p);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.50);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.95);
          Ps_util.Table.cell_float ~decimals:3 (percentile p.latencies_ms 0.99)
        ])
    points;
  Ps_util.Table.print ~title t

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: loadgen.exe [--quick] [--domains=N] [--out=FILE]";
  exit 1

let () =
  let quick = ref false and domains = ref 4 and out = ref "BENCH_serve.json" in
  List.iter
    (fun a ->
      let prefixed p = String.length a > String.length p
                       && String.sub a 0 (String.length p) = p in
      let value p = String.sub a (String.length p)
                      (String.length a - String.length p) in
      if a = "--quick" then quick := true
      else if prefixed "--domains=" then
        domains := int_of_string (value "--domains=")
      else if prefixed "--out=" then out := value "--out="
      else usage ())
    (List.tl (Array.to_list Sys.argv));
  let domains = max 1 !domains in
  let duration_s = if !quick then 0.5 else 2.0 in
  let concurrencies = if !quick then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let rates = if !quick then [ 200 ] else [ 100; 500; 2000 ] in
  Printf.printf
    "loadgen: sunflower_12 reduce, %d worker domain(s), %gs per point\n\n"
    domains duration_s;
  let closed =
    List.map
      (fun c -> closed_point ~domains ~concurrency:c ~duration_s)
      concurrencies
  in
  print_table ~title:"Closed loop (one request in flight per client)" closed;
  print_newline ();
  let open_ =
    List.map (fun r -> open_point ~domains ~rate_rps:r ~duration_s) rates
  in
  print_table ~title:"Open loop (fixed arrival rate)" open_;
  print_newline ();
  let repeated = repeated_lane ~domains ~draws:(if !quick then 60 else 240) in
  print_repeated repeated;
  print_newline ();
  let doc =
    Json.Obj
      [ ("workload", Json.Str "sunflower_12/reduce/greedy");
        ("domains", Json.Int domains);
        ("duration_s", Json.Float duration_s);
        ("closed_loop", Json.List (List.map point_json closed));
        ("open_loop", Json.List (List.map point_json open_));
        ("repeated", repeated_json repeated);
        ("gate", gate_json repeated) ]
  in
  let oc = open_out !out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string doc);
      output_char oc '\n');
  Printf.printf "wrote %s\n" !out;
  (* The service-level objective the server is sized for: a 4-domain
     pool must sustain at least 200 solved reduce requests per second. *)
  let best = List.fold_left (fun a p -> Float.max a (throughput p)) 0.0 closed in
  if domains >= 4 && best < 200.0 then begin
    Printf.eprintf "FAIL: peak closed-loop throughput %.1f rps < 200 rps\n"
      best;
    exit 1
  end
