(** Shared instance builders for the experiment harness.  Every family
    is seeded, so the tables in EXPERIMENTS.md reproduce run to run.

    The hypergraph families mirror the paper's landscape: intervals are
    the [DN18] substrate, almost-uniform instances the Theorem 1.2
    hardness regime, sunflowers and disjoint blocks the two overlap
    extremes, closed neighborhoods the graph-derived case. *)

(** One named hypergraph instance plus the k-selection policy the
    pipeline should apply to it. *)
type hypergraph_instance = {
  label : string;
  h : Ps_hypergraph.Hypergraph.t;
  k_choice : Ps_core.Pipeline.k_choice;
}

val lemma_families : seed:int -> hypergraph_instance list
(** The six structural families exercised by most experiments. *)

val m_sweep : seed:int -> (int * Ps_hypergraph.Hypergraph.t) list
(** Edge-count sweep (fixed n, growing m) for the ρ = λ ln m + 1
    phase-bound table. *)

val size_sweep :
  seed:int -> (int * int * int * Ps_hypergraph.Hypergraph.t) list
(** (n, m, k, instance) grid for conflict-graph size scaling. *)

val maxis_graphs : seed:int -> (string * Ps_graph.Graph.t) list
(** Labelled plain-graph zoo for the MaxIS heuristic comparisons. *)

val small_conflict_instances :
  seed:int -> (string * Ps_hypergraph.Hypergraph.t * int) list
(** (label, hypergraph, k) triples small enough for the exact solver
    to crack G_k — used to measure each heuristic's true λ. *)

val local_model_graphs : seed:int -> (string * Ps_graph.Graph.t) list
(** Ring and grid families for the LOCAL-model simulator rounds. *)
