(* The experiment harness: one table per claim of the paper (E1-E7), plus
   ablations.  See EXPERIMENTS.md for the claim-to-table mapping and the
   recorded outputs. *)

module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Cg = Ps_core.Conflict_graph
module Corr = Ps_core.Correspondence
module Red = Ps_core.Reduction
module Cert = Ps_core.Certify
module Pipe = Ps_core.Pipeline
module Is = Ps_maxis.Independent_set
module Approx = Ps_maxis.Approx
module Cf = Ps_cfc.Cf_coloring
module Table = Ps_util.Table
module Rng = Ps_util.Rng

let seed = 20190729 (* PODC'19 started July 29, 2019 *)

let heuristics =
  [ Approx.greedy_min_degree; Approx.caro_wei; Approx.caro_wei_boosted 8;
    Approx.greedy_adversarial; Ps_maxis.Clique_removal.solver;
    Ps_maxis.Portfolio.solver ]

(* ------------------------------------------------------------------ *)
(* E1 — Lemma 2.1(a): a CF k-coloring induces a maximum IS of size m.   *)

let e1 () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "family"; "n"; "m"; "k"; "|I_f|"; "independent"; "|I_f|=m";
        "alpha(Gk)" ]
  in
  List.iter
    (fun (w : Workloads.hypergraph_instance) ->
      let k = Pipe.choose_k w.Workloads.k_choice w.Workloads.h in
      let h = w.Workloads.h in
      let f =
        match w.Workloads.k_choice with
        | Pipe.From_ruler -> Ps_cfc.Cf_greedy.ruler h
        | Pipe.From_conservative | Pipe.Fixed _ ->
            Ps_cfc.Cf_greedy.conservative h
      in
      Cf.verify_exn h f;
      let cg = Cg.build h ~k in
      let i_f = Corr.is_of_coloring h cg.Cg.indexer f in
      (* independent certification of maximality by the structure-aware
         exact solver (per-hyperedge branching) *)
      let alpha =
        match
          Ps_core.Exact_gk.independence_number ~budget:2_000_000 h ~k
        with
        | Some a -> string_of_int a
        | None -> "?"
      in
      Table.add_row t
        [ w.Workloads.label;
          Table.cell_int (H.n_vertices h);
          Table.cell_int (H.n_edges h);
          Table.cell_int k;
          Table.cell_int (Is.size i_f);
          Table.cell_bool (Is.is_independent cg.Cg.graph i_f);
          Table.cell_bool (Is.size i_f = H.n_edges h);
          alpha ])
    (Workloads.lemma_families ~seed);
  Table.print
    ~title:
      "E1  Lemma 2.1(a): a conflict-free k-coloring f induces a maximum \
       independent set I_f of G_k with |I_f| = m"
    t

(* ------------------------------------------------------------------ *)
(* E2 — Lemma 2.1(b): any IS of G_k gives a well-defined partial        *)
(* coloring with at least |I| happy edges.                              *)

let e2 () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right;
                Table.Right; Table.Right ]
      [ "family"; "solver"; "|I|"; "happy(f_I)"; "happy>=|I|"; "well-def" ]
  in
  let rng = Rng.create seed in
  List.iter
    (fun (w : Workloads.hypergraph_instance) ->
      let h = w.Workloads.h in
      let k = Pipe.choose_k w.Workloads.k_choice h in
      let cg = Cg.build h ~k in
      List.iter
        (fun solver ->
          let is = Approx.solve_verified solver rng cg.Cg.graph in
          let well_defined, happy =
            match Corr.coloring_of_is h cg.Cg.indexer is with
            | f -> (true, Cf.count_happy h f)
            | exception Invalid_argument _ -> (false, 0)
          in
          Table.add_row t
            [ w.Workloads.label;
              solver.Approx.name;
              Table.cell_int (Is.size is);
              Table.cell_int happy;
              Table.cell_bool (happy >= Is.size is);
              Table.cell_bool well_defined ])
        [ Approx.greedy_min_degree; Approx.caro_wei ];
      Table.add_rule t)
    (Workloads.lemma_families ~seed);
  Table.print
    ~title:
      "E2  Lemma 2.1(b): any independent set I of G_k induces a \
       well-defined partial coloring f_I making >= |I| edges happy"
    t

(* ------------------------------------------------------------------ *)
(* E3 — per-phase decay |E_{i+1}| <= (1 - 1/lambda_i) |E_i|.            *)

let e3 () =
  let rng = Rng.create (seed + 3) in
  let h =
    Ps_hypergraph.Hgen.almost_uniform_random rng ~n:64 ~m:120 ~k:4 ~eps:0.5
  in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right ]
      [ "phase"; "|E_i|"; "|V(Gk_i)|"; "|I_i|"; "lambda_i"; "bound_next";
        "decay ok" ]
  in
  (* The adversarial solver needs the most phases — the decay bound is the
     interesting one to watch there. *)
  (* presolve `None: the kernel's lift repairs maximality, which would
     collapse the very trajectory this experiment plots. *)
  let result = Pipe.solve ~presolve:`None ~solver:Approx.greedy_adversarial h in
  let phases = result.Pipe.reduction.Red.phases in
  List.iteri
    (fun i (p : Red.phase_record) ->
      let bound =
        float_of_int p.Red.edges_before
        *. (1.0 -. (1.0 /. p.Red.lambda_effective))
      in
      let next =
        match List.nth_opt phases (i + 1) with
        | Some q -> q.Red.edges_before
        | None -> 0
      in
      Table.add_row t
        [ Table.cell_int p.Red.phase;
          Table.cell_int p.Red.edges_before;
          Table.cell_int p.Red.conflict_vertices;
          Table.cell_int p.Red.is_size;
          Table.cell_ratio p.Red.lambda_effective;
          Table.cell_float ~decimals:1 bound;
          Table.cell_bool (float_of_int next <= bound +. 1e-9) ])
    phases;
  Table.print
    ~title:
      (Printf.sprintf
         "E3  Theorem 1.1 phase decay on almost-uniform H (n=%d, m=%d, \
          k=%d, solver=%s): |E_i+1| <= (1 - 1/lambda_i) |E_i|"
         (H.n_vertices h) (H.n_edges h) result.Pipe.k
         result.Pipe.reduction.Red.solver_name)
    t

(* ------------------------------------------------------------------ *)
(* E4 — phase bound rho = lambda ln m + 1 and color budget k*rho.       *)

let e4 () =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "m"; "solver"; "phases"; "lam_max"; "rho"; "within"; "colors";
        "k*phases" ]
  in
  List.iter
    (fun (m, h) ->
      List.iter
        (fun solver ->
          let result = Pipe.solve ~presolve:`None ~solver h in
          let c = result.Pipe.certificate in
          Table.add_row t
            [ Table.cell_int m;
              solver.Approx.name;
              Table.cell_int c.Cert.phases_used;
              Table.cell_ratio c.Cert.lambda_max;
              Table.cell_float ~decimals:1 c.Cert.rho_bound;
              Table.cell_bool c.Cert.phases_within_rho;
              Table.cell_int c.Cert.colors_used;
              Table.cell_int c.Cert.color_budget ])
        [ Approx.greedy_min_degree; Approx.caro_wei;
          Approx.greedy_adversarial ];
      Table.add_rule t)
    (Workloads.m_sweep ~seed);
  Table.print
    ~title:
      "E4  Theorem 1.1 phase bound: all edges happy within rho = \
       lambda_max ln m + 1 phases; total colors <= k * phases"
    t

(* ------------------------------------------------------------------ *)
(* E5 — conflict graph size: |V| = k Sum|e|, family counts, union.      *)

let e5 () =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right; Table.Right;
                Table.Right ]
      [ "n"; "m"; "k"; "|V| pred"; "|V| real"; "E_vertex"; "E_edge";
        "E_color"; "|E| union" ]
  in
  List.iter
    (fun (n, m, k, h) ->
      let cg = Cg.build h ~k in
      let counts = Cg.edge_family_counts h ~k in
      Table.add_row t
        [ Table.cell_int n;
          Table.cell_int m;
          Table.cell_int k;
          Table.cell_int (Cg.size_formula h ~k);
          Table.cell_int (G.n_vertices cg.Cg.graph);
          Table.cell_int counts.Cg.n_vertex_family;
          Table.cell_int counts.Cg.n_edge_family;
          Table.cell_int counts.Cg.n_color_family;
          Table.cell_int counts.Cg.n_union ])
    (Workloads.size_sweep ~seed);
  Table.print
    ~title:
      "E5  Conflict graph is polynomial: |V(G_k)| = k * Sum|e| exactly; \
       edge families enumerated from the definition (union = materialized \
       |E|)"
    t

(* ------------------------------------------------------------------ *)
(* E6 — MaxIS approximation quality: measured lambda vs exact alpha.    *)

let e6 () =
  let rng = Rng.create (seed + 6) in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Left; Table.Right;
                Table.Right; Table.Right ]
      [ "graph"; "alpha"; "solver"; "|IS|"; "lambda"; "exact-ref" ]
  in
  let run_row label g =
    let alpha = Ps_maxis.Exact.independence_number g in
    List.iter
      (fun solver ->
        let m = Approx.measure solver rng g in
        Table.add_row t
          [ label;
            Table.cell_int alpha;
            solver.Approx.name;
            Table.cell_int m.Approx.is_size;
            Table.cell_ratio m.Approx.lambda;
            Table.cell_bool m.Approx.alpha_exact ])
      heuristics;
    Table.add_rule t
  in
  List.iter (fun (label, g) -> run_row label g) (Workloads.maxis_graphs ~seed);
  (* ... and on actual conflict graphs, the graphs the reduction feeds the
     solver. *)
  List.iter
    (fun (label, h, k) ->
      let cg = Cg.build h ~k in
      run_row label cg.Cg.graph)
    (Workloads.small_conflict_instances ~seed);
  Table.print
    ~title:
      "E6  MaxIS approximation quality (lambda = alpha / |IS|, alpha by \
       branch & bound) on standard graphs and on conflict graphs G_k"
    t

(* ------------------------------------------------------------------ *)
(* E7 — model costs: SLOCAL locality vs LOCAL rounds.                   *)

let e7 () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right; Table.Right;
                Table.Right ]
      [ "graph"; "n"; "luby rounds"; "coloring rounds"; "matching rounds";
        "slocal r"; "decomp colors"; "decomp radius"; "derand rounds" ]
  in
  List.iter
    (fun (label, g) ->
      let n = G.n_vertices g in
      let avg_over f =
        let total = ref 0 in
        for s = 1 to 5 do
          total := !total + f s
        done;
        float_of_int !total /. 5.0
      in
      let luby =
        avg_over (fun s -> (snd (Ps_local.Luby.run ~seed:s g)).Ps_local.Network.rounds)
      in
      let coloring =
        avg_over (fun s ->
            (snd (Ps_local.Coloring_local.run ~seed:s g)).Ps_local.Network.rounds)
      in
      let matching =
        avg_over (fun s ->
            (snd (Ps_local.Matching_local.run ~seed:s g)).Ps_local.Network.rounds)
      in
      let _, slocal_stats = Ps_slocal.Greedy_mis.run g in
      let decomp = Ps_slocal.Decomposition.ball_carving g in
      let derand = Ps_slocal.Derandomize.mis ~decomposition:decomp g in
      Table.add_row t
        [ label;
          Table.cell_int n;
          Table.cell_float ~decimals:1 luby;
          Table.cell_float ~decimals:1 coloring;
          Table.cell_float ~decimals:1 matching;
          Table.cell_int slocal_stats.Ps_slocal.Slocal.locality;
          Table.cell_int decomp.Ps_slocal.Decomposition.n_colors;
          Table.cell_int decomp.Ps_slocal.Decomposition.max_radius;
          Table.cell_int derand.Ps_slocal.Derandomize.simulated_rounds ])
    (Workloads.local_model_graphs ~seed);
  Table.print
    ~title:
      "E7  Model costs (Section 1): randomized LOCAL rounds (Luby MIS, \
       trial coloring, avg of 5 seeds) vs SLOCAL locality 1 vs \
       decomposition-based deterministic rounds"
    t

(* ------------------------------------------------------------------ *)
(* E8 — containment: MaxIS approximation inside SLOCAL.                 *)

let e8 () =
  let rng = Rng.create (seed + 8) in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "graph"; "n"; "alpha"; "|IS|"; "ratio"; "cert. c"; "locality";
        "exact" ]
  in
  List.iter
    (fun (label, g) ->
      let r = Ps_slocal.Maxis_approx.run g in
      let alpha =
        match Ps_maxis.Exact.maximum_within ~budget:500_000 g with
        | Some opt -> Some (Is.size opt)
        | None -> None
      in
      let size = Is.size r.Ps_slocal.Maxis_approx.set in
      Table.add_row t
        [ label;
          Table.cell_int (G.n_vertices g);
          (match alpha with Some a -> Table.cell_int a | None -> "?");
          Table.cell_int size;
          (match alpha with
          | Some a when size > 0 ->
              Table.cell_ratio (float_of_int a /. float_of_int size)
          | _ -> "-");
          Table.cell_int r.Ps_slocal.Maxis_approx.ratio_bound;
          Table.cell_int r.Ps_slocal.Maxis_approx.locality;
          Table.cell_bool r.Ps_slocal.Maxis_approx.per_cluster_exact ])
    (Workloads.maxis_graphs ~seed
    @ [ ("gnp(120,.05)", Ps_graph.Gen.gnp rng 120 0.05);
        ("grid(10x10)", Ps_graph.Gen.grid 10 10);
        ("ring(200)", Ps_graph.Gen.ring 200) ]);
  Table.print
    ~title:
      "E8  Containment (GKM17 Thm 7.1, cited for Thm 1.1): MaxIS \
       approximation in SLOCAL via network decomposition — measured ratio \
       vs the certified bound c = decomposition colors, locality = \
       cluster radius + 1"
    t

(* ------------------------------------------------------------------ *)
(* E9 — the deterministic/randomized LOCAL gap the paper opens with.    *)

let e9 () =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right ]
      [ "ring n"; "luby"; "trial-color"; "det-peel (worst ids)";
        "CV iters"; "log* n" ]
  in
  List.iter
    (fun n ->
      let g = Ps_graph.Gen.ring n in
      let _, luby = Ps_local.Luby.run ~seed:1 g in
      let _, trial = Ps_local.Coloring_local.run ~seed:1 g in
      (* identity ids are near-worst-case for peeling on a ring *)
      let _, peel =
        Ps_local.Color_reduction.local_maxima_coloring
          ~max_rounds:(4 * n) g
      in
      (* random large ids: identity ids collapse to parity in one CV step
         on even rings, which would flatter the column *)
      let ids =
        Rng.sample_without_replacement (Rng.create (seed + n)) n (1 lsl 20)
      in
      let cv = Ps_local.Cole_vishkin.three_color ~ids in
      Table.add_row t
        [ Table.cell_int n;
          Table.cell_int luby.Ps_local.Network.rounds;
          Table.cell_int trial.Ps_local.Network.rounds;
          Table.cell_int peel.Ps_local.Network.rounds;
          Table.cell_int cv.Ps_local.Cole_vishkin.cv_iterations;
          Table.cell_int (Ps_local.Cole_vishkin.log_star n) ])
    [ 16; 64; 256; 1024; 4096 ];
  Table.print
    ~title:
      "E9  The deterministic-vs-randomized gap (Section 1): randomized \
       LOCAL stays O(log n); naive deterministic peeling degrades toward \
       n; Cole-Vishkin holds at log* n (ring topology)"
    t

(* ------------------------------------------------------------------ *)
(* E10 — G_k simulated in H in the LOCAL model.                         *)

let e10 () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right ]
      [ "family"; "|V(Gk)|"; "|I|"; "= m?"; "virt rounds"; "host rounds";
        "messages" ]
  in
  List.iter
    (fun (w : Workloads.hypergraph_instance) ->
      let h = w.Workloads.h in
      if H.n_edges h <= 80 then begin
        let k = min 3 (Pipe.choose_k w.Workloads.k_choice h) in
        let sim = Ps_core.Simulate.luby_mis ~seed:2 h ~k in
        let size = Is.size sim.Ps_core.Simulate.independent_set in
        Table.add_row t
          [ w.Workloads.label;
            Table.cell_int (Cg.size_formula h ~k);
            Table.cell_int size;
            Table.cell_bool (size = H.n_edges h);
            Table.cell_int sim.Ps_core.Simulate.virtual_rounds;
            Table.cell_int sim.Ps_core.Simulate.host_rounds;
            Table.cell_int sim.Ps_core.Simulate.messages ]
      end)
    (Workloads.lemma_families ~seed);
  Table.print
    ~title:
      "E10  'G_k can be efficiently simulated in H in the LOCAL model': \
       Luby's MIS run on the implicit G_k through the adjacency oracle; \
       host rounds = 2 x virtual rounds (G_k edges span <= 2 primal hops)"
    t

(* ------------------------------------------------------------------ *)
(* E11 — the whole Theorem 1.1 loop as a LOCAL computation.             *)

let e11 () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right ]
      [ "family"; "m"; "phases"; "virt rounds"; "host rounds"; "messages";
        "cert" ]
  in
  List.iter
    (fun (w : Workloads.hypergraph_instance) ->
      let h = w.Workloads.h in
      let k = min 3 (Pipe.choose_k w.Workloads.k_choice h) in
      let result = Ps_core.Reduction_local.run ~k h in
      let cert = Cert.certify result.Ps_core.Reduction_local.reduction in
      let c = result.Ps_core.Reduction_local.cost in
      Table.add_row t
        [ w.Workloads.label;
          Table.cell_int (H.n_edges h);
          Table.cell_int c.Ps_core.Reduction_local.phases;
          Table.cell_int c.Ps_core.Reduction_local.virtual_rounds;
          Table.cell_int c.Ps_core.Reduction_local.host_rounds;
          Table.cell_int c.Ps_core.Reduction_local.messages;
          Table.cell_bool cert.Cert.all_ok ])
    (Workloads.lemma_families ~seed);
  Table.print
    ~title:
      "E11  Theorem 1.1 end-to-end in the LOCAL model: every phase's \
       MaxIS by Luby on the implicit G_k (nothing materialized), host \
       rounds = 2 x virtual + 2 per phase"
    t

(* ------------------------------------------------------------------ *)
(* E12 — the P-SLOCAL-complete problem catalog, side by side.           *)

let e12 () =
  let rng = Rng.create (seed + 12) in
  let g = Ps_graph.Gen.gnp rng 64 0.12 in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Left ]
      [ "problem"; "algorithm"; "value"; "certified bound / note" ]
  in
  (* MaxIS approximation — this paper *)
  let mx = Ps_slocal.Maxis_approx.run g in
  Table.add_row t
    [ "MaxIS approximation (this paper)"; "SLOCAL decomposition";
      Table.cell_int (Is.size mx.Ps_slocal.Maxis_approx.set);
      Printf.sprintf "lambda <= %d (colors), locality %d"
        mx.Ps_slocal.Maxis_approx.ratio_bound
        mx.Ps_slocal.Maxis_approx.locality ];
  (* Network decomposition — GKM17 *)
  let d = Ps_slocal.Decomposition.ball_carving g in
  Table.add_row t
    [ "network decomposition (GKM17)"; "ball carving";
      Table.cell_int d.Ps_slocal.Decomposition.n_clusters;
      Printf.sprintf "(%d colors, radius %d) <= (log n, log n)"
        d.Ps_slocal.Decomposition.n_colors
        d.Ps_slocal.Decomposition.max_radius ];
  (* Dominating set — GHK18 *)
  let dom = Ps_graph.Dominating.greedy g in
  Table.add_row t
    [ "dominating set approx (GHK18)"; "greedy";
      Table.cell_int (Ps_util.Bitset.cardinal dom);
      "ratio <= ln(Delta+1)+1" ];
  (* Set cover — GHK18, on the closed-neighborhood hypergraph *)
  let h = Ps_hypergraph.Hgen.closed_neighborhoods g in
  let cover = Ps_hypergraph.Set_cover.greedy h in
  Table.add_row t
    [ "set cover approx (GHK18)"; "greedy on N[v] sets";
      Table.cell_int (List.length cover);
      "equals dominating set of g" ];
  (* Weak splitting — GKM17 *)
  let threshold = 1 + int_of_float (Float.log2 (float_of_int 64)) in
  let pot = Ps_slocal.Splitting.initial_potential g ~threshold in
  let colors = Ps_slocal.Splitting.deterministic g ~threshold in
  let failures =
    List.length
      (Ps_slocal.Splitting.monochromatic_failures g ~threshold colors)
  in
  Table.add_row t
    [ "weak splitting (GKM17)"; "cond. expectations";
      Table.cell_int failures;
      Printf.sprintf "failures <= potential %.3f (threshold %d)" pot
        threshold ];
  (* The generic SLOCAL->LOCAL compiler — GKM17's engine *)
  let module C = Ps_slocal.Compiler.Make (Ps_slocal.Greedy_mis.Algo) in
  let comp = C.run g in
  Table.add_row t
    [ "SLOCAL->LOCAL compiler (GKM17)"; "color sweep of G^r";
      Table.cell_int
        (Array.fold_left (fun a b -> if b then a + 1 else a) 0
           comp.Ps_slocal.Compiler.outputs);
      Printf.sprintf "MIS in %d deterministic rounds"
        comp.Ps_slocal.Compiler.simulated_rounds ];
  (* Maximal matching / vertex cover — the third classic, via LOCAL *)
  let outputs, mstats = Ps_local.Matching_local.run ~seed:1 g in
  let partner = Ps_local.Matching_local.to_partner_array outputs in
  let cover = Ps_maxis.Vertex_cover.of_matching g partner in
  Table.add_row t
    [ "maximal matching (classic kin)"; "proposal LOCAL";
      Table.cell_int (Ps_graph.Matching.size partner);
      Printf.sprintf "%d rounds; endpoints = 2-approx VC (%d)"
        mstats.Ps_local.Network.rounds
        (Ps_util.Bitset.cardinal cover) ];
  (* Conflict-free multicoloring — Theorem 1.2 *)
  let hcf =
    Ps_hypergraph.Hgen.almost_uniform_random rng ~n:48 ~m:60 ~k:4 ~eps:0.5
  in
  let red = Pipe.solve ~solver:Approx.greedy_min_degree hcf in
  Table.add_row t
    [ "CF multicoloring (Thm 1.2)"; "reduction via MaxIS";
      Table.cell_int red.Pipe.reduction.Red.colors_used;
      Printf.sprintf "<= k*rho = %d" red.Pipe.certificate.Cert.color_budget ];
  Table.print
    ~title:
      (Printf.sprintf
         "E12  The P-SLOCAL-complete catalog on one instance (%s): every \
          problem the paper names, solved and certified"
         "gnp(64,.12)")
    t

(* ------------------------------------------------------------------ *)
(* E13 — wall-clock scaling of the pipeline.                            *)

let e13 () =
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right ]
      [ "m"; "|V(Gk)|"; "|E(Gk)|"; "build (s)"; "solve (s)"; "total (s)" ]
  in
  let timings = ref [] in
  List.iter
    (fun m ->
      let rng = Rng.create (seed + 13 + m) in
      let h =
        Ps_hypergraph.Hgen.almost_uniform_random rng ~n:(m / 2 + 8) ~m ~k:4
          ~eps:0.5
      in
      let k = 4 in
      let t0 = Sys.time () in
      let cg = Cg.build h ~k in
      let t1 = Sys.time () in
      let result =
        Pipe.solve ~k:(Pipe.Fixed k) ~solver:Approx.greedy_min_degree h
      in
      let t2 = Sys.time () in
      assert result.Pipe.certificate.Cert.all_ok;
      timings := (m, t2 -. t0) :: !timings;
      Table.add_row t
        [ Table.cell_int m;
          Table.cell_int (G.n_vertices cg.Cg.graph);
          Table.cell_int (G.n_edges cg.Cg.graph);
          Table.cell_float ~decimals:3 (t1 -. t0);
          Table.cell_float ~decimals:3 (t2 -. t1);
          Table.cell_float ~decimals:3 (t2 -. t0) ])
    [ 25; 50; 100; 200; 400 ];
  Table.print
    ~title:
      "E13  Wall-clock scaling: conflict graph size is the cost driver \
       (|E(G_k)| grows ~ m * (rank*k)^2); the full certified solve stays \
       polynomial as the theory promises"
    t;
  (* quantify: fitted log-log slope of total time vs m *)
  let points =
    List.filter_map
      (fun (m, total) ->
        if total > 0.0 then Some (log (float_of_int m), log total) else None)
      !timings
  in
  if List.length points >= 2 then begin
    let slope, _, r2 =
      Ps_util.Stats.linear_regression (Array.of_list points)
    in
    Printf.printf
      "fitted: total-time ~ m^%.2f (log-log least squares, r^2=%.3f)\n"
      slope r2
  end

(* ------------------------------------------------------------------ *)
(* E14 — the λ–ρ tradeoff: degrade the solver, watch phases track       *)
(* ρ = λ ln m + 1.                                                      *)

let e14 () =
  let rng = Rng.create (seed + 14) in
  let h =
    Ps_hypergraph.Hgen.almost_uniform_random rng ~n:64 ~m:150 ~k:4 ~eps:0.5
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right; Table.Right ]
      [ "solver"; "lam_max"; "phases"; "rho bound"; "within"; "colors" ]
  in
  List.iter
    (fun keep ->
      let solver =
        if keep >= 1.0 then Approx.greedy_min_degree
        else Approx.degrade ~keep Approx.greedy_min_degree
      in
      (* presolve `None, as in E3/E4: the tradeoff needs the solver's raw
         lambda to reach the phase engine. *)
      let result = Pipe.solve ~presolve:`None ~solver h in
      let c = result.Pipe.certificate in
      Table.add_row t
        [ solver.Approx.name;
          Table.cell_ratio c.Cert.lambda_max;
          Table.cell_int c.Cert.phases_used;
          Table.cell_float ~decimals:1 c.Cert.rho_bound;
          Table.cell_bool c.Cert.phases_within_rho;
          Table.cell_int c.Cert.colors_used ])
    [ 1.0; 0.5; 0.25; 0.1; 0.05; 0.02 ];
  Table.print
    ~title:
      (Printf.sprintf
         "E14  The lambda-rho tradeoff of Theorem 1.1 on one instance \
          (n=%d, m=%d): weaker MaxIS approximations (vertices kept w.p. \
          'keep') raise lambda, and the phase count follows rho = \
          lambda ln m + 1 while never exceeding it"
         (H.n_vertices h) (H.n_edges h))
    t

(* ------------------------------------------------------------------ *)
(* Ablations.                                                           *)

(* A1: materialized adjacency vs the implicit oracle, consistency and
   wall-clock. *)
let ablation_implicit () =
  let rng = Rng.create (seed + 10) in
  let h =
    Ps_hypergraph.Hgen.almost_uniform_random rng ~n:40 ~m:30 ~k:4 ~eps:0.5
  in
  let k = 3 in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "representation"; "neighbor sum"; "agrees"; "seconds" ]
  in
  let t0 = Sys.time () in
  let cg = Cg.build h ~k in
  let ix = cg.Cg.indexer in
  let total = Ps_core.Triple.Indexer.total ix in
  let sum_mat = ref 0 in
  for i = 0 to total - 1 do
    sum_mat := !sum_mat + G.degree cg.Cg.graph i
  done;
  let t1 = Sys.time () in
  let sum_impl = ref 0 in
  for i = 0 to total - 1 do
    Cg.iter_neighbors_implicit h ix (Ps_core.Triple.Indexer.decode ix i)
      (fun _ -> incr sum_impl)
  done;
  let t2 = Sys.time () in
  Table.add_row t
    [ "materialized (build+scan)"; Table.cell_int !sum_mat; "-";
      Table.cell_float ~decimals:3 (t1 -. t0) ];
  Table.add_row t
    [ "implicit oracle (scan)"; Table.cell_int !sum_impl;
      Table.cell_bool (!sum_impl = !sum_mat);
      Table.cell_float ~decimals:3 (t2 -. t1) ];
  Table.print
    ~title:
      "A1  Ablation: materialized G_k vs implicit adjacency oracle (the \
       LOCAL-simulation form) — identical neighborhoods"
    t

(* A2: tie-breaking in I_f.  The paper breaks ties arbitrarily; check that
   smallest- and largest-vertex witness choices both give size m. *)
let ablation_tie_breaking () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "family"; "|I_f| smallest"; "|I_f| largest"; "both = m" ]
  in
  List.iter
    (fun (w : Workloads.hypergraph_instance) ->
      let h = w.Workloads.h in
      let k = Pipe.choose_k w.Workloads.k_choice h in
      let f =
        match w.Workloads.k_choice with
        | Pipe.From_ruler -> Ps_cfc.Cf_greedy.ruler h
        | Pipe.From_conservative | Pipe.Fixed _ ->
            Ps_cfc.Cf_greedy.conservative h
      in
      let cg = Cg.build h ~k in
      let smallest = Corr.is_of_coloring h cg.Cg.indexer f in
      (* largest-vertex witness: reverse the vertex order by relabeling
         colors is awkward; instead pick the witness by scanning the edge
         from the top. *)
      let largest =
        let chosen = Ps_util.Bitset.create (G.n_vertices cg.Cg.graph) in
        for e = 0 to H.n_edges h - 1 do
          let members = H.edge h e in
          let pick = ref None in
          Array.iter
            (fun v ->
              if f.(v) <> Cf.uncolored then begin
                let unique =
                  not
                    (Array.exists
                       (fun u -> u <> v && f.(u) = f.(v))
                       members)
                in
                if unique then pick := Some (v, f.(v))
              end)
            members;
          match !pick with
          | Some (v, c) ->
              Ps_util.Bitset.add chosen
                (Ps_core.Triple.Indexer.encode cg.Cg.indexer
                   { Ps_core.Triple.edge = e; vertex = v; color = c })
          | None -> ()
        done;
        chosen
      in
      Is.verify_exn cg.Cg.graph largest;
      Table.add_row t
        [ w.Workloads.label;
          Table.cell_int (Is.size smallest);
          Table.cell_int (Is.size largest);
          Table.cell_bool
            (Is.size smallest = H.n_edges h
            && Is.size largest = H.n_edges h) ])
    (Workloads.lemma_families ~seed);
  Table.print
    ~title:
      "A2  Ablation: witness tie-breaking in I_f ('breaking ties \
       arbitrarily') — any choice yields a maximum independent set"
    t

(* A3: palette reuse.  Fresh palettes per phase are required; collapsing
   all phases onto one palette must break conflict-freeness whenever more
   than one phase ran. *)
let ablation_palette_reuse () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "family"; "phases"; "fresh CF"; "collapsed CF" ]
  in
  List.iter
    (fun (w : Workloads.hypergraph_instance) ->
      let h = w.Workloads.h in
      let result =
        Pipe.solve ~presolve:`None ~solver:Approx.greedy_adversarial
          ~k:w.Workloads.k_choice h
      in
      let r = result.Pipe.reduction in
      let collapsed = Ps_cfc.Multicolor.blank h in
      Array.iteri
        (fun v colors ->
          List.iter
            (fun c -> Ps_cfc.Multicolor.add_color collapsed v (c mod r.Red.k))
            colors)
        r.Red.multicoloring;
      Table.add_row t
        [ w.Workloads.label;
          Table.cell_int r.Red.total_phases;
          Table.cell_bool
            (Ps_cfc.Multicolor.is_conflict_free h r.Red.multicoloring);
          Table.cell_bool (Ps_cfc.Multicolor.is_conflict_free h collapsed) ])
    (Workloads.lemma_families ~seed);
  Table.print
    ~title:
      "A3  Ablation: fresh palette per phase (as the proof requires) vs \
       collapsing all phases onto palette 0..k-1"
    t

(* ------------------------------------------------------------------ *)
(* E15 — how much the SLOCAL adversary's order choice matters.          *)

let e15 () =
  let rng = Rng.create (seed + 15) in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right ]
      [ "graph"; "chi"; "best-order colors"; "worst-found colors";
        "worst/chi" ]
  in
  List.iter
    (fun (label, g, chi) ->
      let best =
        let colors, _ = Ps_slocal.Greedy_coloring.run g in
        Ps_graph.Coloring.num_colors colors
      in
      let _, worst =
        Ps_slocal.Order_search.worst_coloring_order ~rng ~restarts:6
          ~steps:400 g
      in
      Table.add_row t
        [ label;
          Table.cell_int chi;
          Table.cell_int best;
          Table.cell_int worst;
          Table.cell_ratio (float_of_int worst /. float_of_int chi) ])
    [ ("crown(4)", Ps_graph.Gen.crown 4, 2);
      ("crown(6)", Ps_graph.Gen.crown 6, 2);
      ("crown(8)", Ps_graph.Gen.crown 8, 2);
      ("grid(6x6)", Ps_graph.Gen.grid 6 6, 2);
      ("ring(24)", Ps_graph.Gen.ring 24, 2) ];
  Table.print
    ~title:
      "E15  The SLOCAL adversary's power: greedy coloring quality under \
       the best (identity) vs adversarially searched processing order — \
       crown graphs let the adversary blow chi=2 up toward n, grids and \
       rings barely move"
    t

(* A4: deterministic ball carving vs randomized MPX decomposition. *)
let ablation_decompositions () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right;
                Table.Right; Table.Right; Table.Right ]
      [ "graph"; "method"; "clusters"; "colors"; "max radius"; "cut edges";
        "derand MIS rounds" ]
  in
  let rng = Rng.create (seed + 40) in
  List.iter
    (fun (label, g) ->
      let carve = Ps_slocal.Decomposition.ball_carving g in
      let cut_of cluster_of =
        let cut = ref 0 in
        G.iter_edges g (fun u v ->
            if cluster_of.(u) <> cluster_of.(v) then incr cut);
        !cut
      in
      let derand_rounds d =
        (Ps_slocal.Derandomize.mis ~decomposition:d g).Ps_slocal.Derandomize
          .simulated_rounds
      in
      Table.add_row t
        [ label; "ball carving (det.)";
          Table.cell_int carve.Ps_slocal.Decomposition.n_clusters;
          Table.cell_int carve.Ps_slocal.Decomposition.n_colors;
          Table.cell_int carve.Ps_slocal.Decomposition.max_radius;
          Table.cell_int (cut_of carve.Ps_slocal.Decomposition.cluster_of);
          Table.cell_int (derand_rounds carve) ];
      List.iter
        (fun beta ->
          let mpx = Ps_slocal.Mpx.decompose rng ~beta g in
          let d = Ps_slocal.Mpx.to_decomposition g mpx in
          Table.add_row t
            [ label;
              Printf.sprintf "MPX beta=%.1f (rand.)" beta;
              Table.cell_int mpx.Ps_slocal.Mpx.n_clusters;
              Table.cell_int d.Ps_slocal.Decomposition.n_colors;
              Table.cell_int (Ps_slocal.Mpx.max_radius mpx);
              Table.cell_int (Ps_slocal.Mpx.cut_edges g mpx);
              Table.cell_int (derand_rounds d) ])
        [ 0.2; 0.5 ];
      Table.add_rule t)
    [ ("grid(12x12)", Ps_graph.Gen.grid 12 12);
      ("gnp(150,.03)", Ps_graph.Gen.gnp rng 150 0.03);
      ("tree(255)", Ps_graph.Gen.balanced_tree 2 7) ];
  Table.print
    ~title:
      "A4  Ablation: deterministic ball carving vs randomized MPX \
       low-diameter decomposition — both feed the same derandomization \
       machinery; MPX trades more colors for smaller radius via beta"
    t

let all =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("a1", ablation_implicit); ("a2", ablation_tie_breaking);
    ("a3", ablation_palette_reuse); ("a4", ablation_decompositions) ]
