(** The experiment suite behind EXPERIMENTS.md: e1–e15 reproduce the
    paper's quantitative claims (reduction phase counts, λ
    preservation, conflict-graph scaling, simulator rounds, hardness
    families), a1–a4 are the ablations (implicit representation,
    tie-breaking, palette reuse, decomposition choice).

    Each experiment prints its own table; ids and one-line summaries
    live in [all], which the bench driver uses for selection and
    `--help` output. *)

val all : (string * (unit -> unit)) list
