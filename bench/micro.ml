(* Bechamel micro-benchmarks: wall-clock cost of each core operation.
   One Test.make per operation; estimates printed as a table. *)

open Bechamel
open Toolkit
module Rng = Ps_util.Rng
module Hgen = Ps_hypergraph.Hgen

let seed = 7

(* Conflict-graph construction at three scales (the CSR fast path), the
   list-based reference builder it replaced on the smallest scale, and
   the 2-domain parallel build — together they track the perf trajectory
   of the paper's central construction across PRs (BENCH_micro.json). *)

let build_scaling_instance m =
  let n = 4 * m / 3 in
  Hgen.uniform_random (Rng.create seed) ~n ~m ~k:4

let conflict_graph_build =
  let h = build_scaling_instance 24 in
  Test.make ~name:"conflict_graph.build (m=24,k=3)"
    (Staged.stage (fun () -> Ps_core.Conflict_graph.build h ~k:3))

let conflict_graph_build_m96 =
  let h = build_scaling_instance 96 in
  Test.make ~name:"conflict_graph.build (m=96,k=3)"
    (Staged.stage (fun () -> Ps_core.Conflict_graph.build h ~k:3))

let conflict_graph_build_m384 =
  let h = build_scaling_instance 384 in
  Test.make ~name:"conflict_graph.build (m=384,k=3)"
    (Staged.stage (fun () -> Ps_core.Conflict_graph.build h ~k:3))

let conflict_graph_build_reference =
  let h = build_scaling_instance 24 in
  Test.make ~name:"conflict_graph.build_reference (m=24,k=3)"
    (Staged.stage (fun () -> Ps_core.Conflict_graph.build_reference h ~k:3))

let conflict_graph_build_domains2 =
  let h = build_scaling_instance 384 in
  Test.make ~name:"conflict_graph.build domains=2 (m=384,k=3)"
    (Staged.stage (fun () -> Ps_core.Conflict_graph.build ~domains:2 h ~k:3))

(* The auto heuristic (domains:0) must never lose to the sequential
   build: on small instances or few cores it resolves to 1 domain and
   this row should match the plain m=384 row up to noise. *)
let conflict_graph_build_auto =
  let h = build_scaling_instance 384 in
  Test.make ~name:"conflict_graph.build domains=auto (m=384,k=3)"
    (Staged.stage (fun () -> Ps_core.Conflict_graph.build ~domains:0 h ~k:3))

(* Plain-graph greedy at a size where the two-pass neighborhood
   deletion (skipping the Pq.update sift chase) is visible. *)
let greedy_min_degree_n1024 =
  let g = Ps_graph.Gen.gnp (Rng.create seed) 1024 0.01 in
  Test.make ~name:"maxis.greedy_min_degree (n=1024)"
    (Staged.stage (fun () -> Ps_maxis.Greedy.min_degree g))

let greedy_on_conflict_graph =
  let h = Hgen.uniform_random (Rng.create seed) ~n:32 ~m:24 ~k:4 in
  let cg = Ps_core.Conflict_graph.build h ~k:3 in
  Test.make ~name:"maxis.greedy_min_degree on G_k"
    (Staged.stage (fun () -> Ps_maxis.Greedy.min_degree cg.Ps_core.Conflict_graph.graph))

let caro_wei_on_conflict_graph =
  let h = Hgen.uniform_random (Rng.create seed) ~n:32 ~m:24 ~k:4 in
  let cg = Ps_core.Conflict_graph.build h ~k:3 in
  let rng = Rng.create (seed + 1) in
  Test.make ~name:"maxis.caro_wei on G_k"
    (Staged.stage (fun () ->
         Ps_maxis.Caro_wei.run_maximal rng cg.Ps_core.Conflict_graph.graph))

let reduction_end_to_end =
  let h = Hgen.uniform_random (Rng.create seed) ~n:24 ~m:16 ~k:3 in
  Test.make ~name:"pipeline.solve (m=16)"
    (Staged.stage (fun () ->
         Ps_core.Pipeline.solve ~solver:Ps_maxis.Approx.greedy_min_degree h))

let luby_run =
  let g = Ps_graph.Gen.gnp (Rng.create seed) 256 0.02 in
  Test.make ~name:"local.luby (n=256)"
    (Staged.stage (fun () -> Ps_local.Luby.run ~seed:3 g))

let slocal_greedy_mis =
  let g = Ps_graph.Gen.gnp (Rng.create seed) 256 0.02 in
  Test.make ~name:"slocal.greedy_mis (n=256)"
    (Staged.stage (fun () -> Ps_slocal.Greedy_mis.run g))

let ball_carving =
  let g = Ps_graph.Gen.gnp (Rng.create seed) 256 0.02 in
  Test.make ~name:"slocal.ball_carving (n=256)"
    (Staged.stage (fun () -> Ps_slocal.Decomposition.ball_carving g))

let cf_conservative =
  let h = Hgen.uniform_random (Rng.create seed) ~n:64 ~m:48 ~k:4 in
  Test.make ~name:"cfc.conservative (m=48)"
    (Staged.stage (fun () -> Ps_cfc.Cf_greedy.conservative h))

let exact_maxis =
  let g = Ps_graph.Gen.gnp (Rng.create seed) 24 0.3 in
  Test.make ~name:"maxis.exact (n=24,p=.3)"
    (Staged.stage (fun () -> Ps_maxis.Exact.maximum g))

let exact_gk =
  let h = Hgen.random_intervals (Rng.create seed) ~n:32 ~m:24 ~min_len:2 ~max_len:6 in
  Test.make ~name:"core.exact_gk alpha (m=24)"
    (Staged.stage (fun () -> Ps_core.Exact_gk.independence_number h ~k:3))

let mpx_decompose =
  let g = Ps_graph.Gen.gnp (Rng.create seed) 256 0.02 in
  let rng = Rng.create (seed + 2) in
  Test.make ~name:"slocal.mpx (n=256,beta=.3)"
    (Staged.stage (fun () -> Ps_slocal.Mpx.decompose rng ~beta:0.3 g))

let compiled_mis =
  let g = Ps_graph.Gen.gnp (Rng.create seed) 256 0.02 in
  let module C = Ps_slocal.Compiler.Make (Ps_slocal.Greedy_mis.Algo) in
  Test.make ~name:"slocal.compiler MIS (n=256)"
    (Staged.stage (fun () -> C.run g))

let congest_bfs =
  let g = Ps_graph.Gen.grid 16 16 in
  Test.make ~name:"congest.bfs_tree (16x16)"
    (Staged.stage (fun () -> Ps_local.Congest.bfs_tree ~root:0 g))

let tests =
  Test.make_grouped ~name:"pslocal"
    [ conflict_graph_build; conflict_graph_build_m96;
      conflict_graph_build_m384; conflict_graph_build_reference;
      conflict_graph_build_domains2; conflict_graph_build_auto;
      greedy_min_degree_n1024; greedy_on_conflict_graph;
      caro_wei_on_conflict_graph; reduction_end_to_end; luby_run;
      slocal_greedy_mis; ball_carving; cf_conservative; exact_maxis;
      exact_gk; mpx_decompose; compiled_mis; congest_bfs ]

let run ?(quick = false) () =
  (* BENCH_micro.json tracks the production path across PRs: force the
     telemetry recorder off for the measurement window so a stray
     PSLOCAL_TRACE in the environment cannot skew the trajectory (and
     bechamel's thousands of reps don't accumulate spans). *)
  let telemetry_was = Ps_util.Telemetry.enabled () in
  Ps_util.Telemetry.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Ps_util.Telemetry.set_enabled telemetry_was)
  @@ fun () ->
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if quick then 0.05 else 0.5 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let table =
    Ps_util.Table.create
      ~aligns:[ Ps_util.Table.Left; Ps_util.Table.Right; Ps_util.Table.Right ]
      [ "benchmark"; "ns/run"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure per_test ->
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | Some [] | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> nan
          in
          rows := (name, estimate, r2) :: !rows)
        per_test)
    merged;
  let rows =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows
  in
  List.iter
    (fun (name, estimate, r2) ->
      Ps_util.Table.add_row table
        [ name;
          Ps_util.Table.cell_float ~decimals:0 estimate;
          Ps_util.Table.cell_float ~decimals:4 r2 ])
    rows;
  Ps_util.Table.print
    ~title:"Micro-benchmarks (bechamel OLS estimate, monotonic clock)" table;
  (* name -> ns/run, for the machine-readable BENCH_micro.json *)
  List.map (fun (name, estimate, _) -> (name, estimate)) rows
