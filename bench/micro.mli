(** Bechamel micro-benchmarks over the production path: conflict-graph
    construction (reference, CSR, multi-domain), the MaxIS heuristics,
    the LOCAL/SLOCAL simulators, ball carving, MPX decomposition, the
    compiled-MIS pipeline and CONGEST BFS.

    [run] prints the OLS table and returns [(benchmark, ns/run)] rows
    for BENCH_micro.json, which tracks the perf trajectory across PRs.
    The telemetry recorder is forced off for the measurement window so
    a stray [PSLOCAL_TRACE] cannot skew it.  [~quick] shrinks the
    per-benchmark time quota for CI smoke runs. *)

val run : ?quick:bool -> unit -> (string * float) list
