(* Benchmark/experiment driver.

     dune exec bench/main.exe              # every experiment + micro-benches
     dune exec bench/main.exe -- e3 e4     # a subset
     dune exec bench/main.exe -- micro     # micro-benchmarks only
     dune exec bench/main.exe -- micro --quick   # CI smoke run
     dune exec bench/main.exe -- reduce    # engine comparison (BENCH_reduce.json)
     dune exec bench/main.exe -- e3 --trace=trace.jsonl  # + telemetry dump

   Experiment ids follow EXPERIMENTS.md: e1-e7 are the paper's claims,
   a1-a3 the ablations.  The micro run also writes BENCH_micro.json
   (benchmark name -> ns/run) so the perf trajectory is tracked across
   PRs; [--quick] shrinks the per-benchmark measurement quota for CI.
   [--trace[=FILE]] turns the telemetry recorder on for the experiment
   runs and dumps the JSON-lines trace (default file: trace.jsonl). *)

let usage () =
  print_endline
    "usage: main.exe [e1 .. e7 | a1 .. a3 | micro | reduce] [--quick] \
     [--trace[=FILE]]...";
  print_endline "  (no arguments runs everything)";
  exit 1

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      let last = List.length rows - 1 in
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc "  \"%s\": %.1f%s\n" (json_escape name)
            (if Float.is_nan ns then 0.0 else ns)
            (if i = last then "" else ","))
        rows;
      output_string oc "}\n");
  Printf.printf "wrote %s (%d entries)\n" path (List.length rows)

let trace_of_arg a =
  if a = "--trace" then Some "trace.jsonl"
  else if String.length a > 8 && String.sub a 0 8 = "--trace=" then
    Some (String.sub a 8 (String.length a - 8))
  else None

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let trace =
    List.fold_left
      (fun acc a -> match trace_of_arg a with Some f -> Some f | None -> acc)
      None args
  in
  let args =
    List.filter (fun a -> a <> "--quick" && trace_of_arg a = None) args
  in
  let known = List.map fst Experiments.all @ [ "micro"; "reduce" ] in
  List.iter
    (fun a -> if not (List.mem a known) then usage ())
    args;
  if trace <> None then Ps_util.Telemetry.set_enabled true;
  let selected name = args = [] || List.mem name args in
  print_endline
    "P-SLOCAL-completeness of MaxIS approximation - experiment harness";
  List.iter
    (fun (name, run) -> if selected name then run ())
    Experiments.all;
  (* Dump the experiments' trace before the micro-benches: bechamel runs
     each staged closure thousands of times and would bury the phase
     spans of interest under repetitions. *)
  (match trace with
  | None -> ()
  | Some path ->
      Ps_util.Telemetry.write_file path;
      Printf.printf "wrote telemetry trace to %s\n" path;
      Ps_util.Telemetry.set_enabled false);
  if selected "micro" then begin
    let rows = Micro.run ~quick () in
    write_bench_json "BENCH_micro.json" rows
  end;
  if selected "reduce" then
    Reduce_bench.run ~quick () |> Reduce_bench.write_json "BENCH_reduce.json"
