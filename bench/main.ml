(* Benchmark/experiment driver.

     dune exec bench/main.exe              # every experiment + micro-benches
     dune exec bench/main.exe -- e3 e4     # a subset
     dune exec bench/main.exe -- micro     # micro-benchmarks only

   Experiment ids follow EXPERIMENTS.md: e1-e7 are the paper's claims,
   a1-a3 the ablations. *)

let usage () =
  print_endline "usage: main.exe [e1 .. e7 | a1 .. a3 | micro]...";
  print_endline "  (no arguments runs everything)";
  exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let known = List.map fst Experiments.all @ [ "micro" ] in
  List.iter
    (fun a -> if not (List.mem a known) then usage ())
    args;
  let selected name = args = [] || List.mem name args in
  print_endline
    "P-SLOCAL-completeness of MaxIS approximation - experiment harness";
  List.iter
    (fun (name, run) -> if selected name then run ())
    Experiments.all;
  if selected "micro" then Micro.run ()
