(* The reduction as distributed computing, not as a proof device.

   Theorem 1.1's reduction is "a LOCAL algorithm that uses an algorithm
   for MaxIS approximation to solve conflict-free multicoloring".  This
   example runs it literally: every phase's independent set is computed
   by Luby's message-passing algorithm on the conflict graph G_k^i —
   which is never materialized; each virtual node is a triple (e, v, c)
   hosted at hypergraph vertex v, and every virtual edge spans at most
   two hops of the primal graph, so a virtual round costs two host
   rounds.

     dune exec examples/local_reduction.exe *)

module H = Ps_hypergraph.Hypergraph
module RL = Ps_core.Reduction_local
module Red = Ps_core.Reduction

let () =
  let rng = Ps_util.Rng.create 11 in
  let h =
    Ps_hypergraph.Hgen.almost_uniform_random rng ~n:48 ~m:64 ~k:4 ~eps:0.5
  in
  let k = 3 in
  Format.printf "input: %a, phase palette k = %d@." H.pp h k;

  let result = RL.run ~seed:1 ~k h in
  let r = result.RL.reduction in
  let c = result.RL.cost in

  Format.printf "@.phase log (MaxIS per phase = Luby on the implicit G_k):@.";
  List.iter
    (fun (p : Red.phase_record) ->
      Format.printf
        "  phase %d: %3d unhappy edges, virtual G_k with %5d nodes -> |I| \
         = %3d, %3d edges became happy@."
        p.Red.phase p.Red.edges_before p.Red.conflict_vertices p.Red.is_size
        p.Red.newly_happy)
    r.Red.phases;

  Format.printf "@.LOCAL bill:@.";
  Format.printf "  phases                  %d@." c.RL.phases;
  Format.printf "  virtual rounds (on G_k) %d@." c.RL.virtual_rounds;
  Format.printf "  host rounds (in H)      %d@." c.RL.host_rounds;
  Format.printf "  messages                %d@." c.RL.messages;

  let cert = Ps_core.Certify.certify r in
  Format.printf "@.certificate: %a@." Ps_core.Certify.pp cert;
  assert cert.Ps_core.Certify.all_ok;
  Format.printf
    "@.The same skeleton with ANY polylog-approximation subroutine is the@.";
  Format.printf
    "paper's hardness reduction; with Luby it is merely a working program.@."
