(* Interference-free scheduling — the MIS/MaxIS side of the paper.

   Transmitters in a corridor interfere when their ranges overlap (a
   unit-interval conflict graph).  A transmission slot is an independent
   set; we want many transmitters per slot.  The example runs the whole
   algorithm zoo of this repository on one instance:

     - exact MaxIS (the gold standard the reduction's λ is measured
       against),
     - greedy / Caro-Wei approximations,
     - Luby's randomized LOCAL MIS with its round count,
     - the SLOCAL locality-1 greedy,
     - the derandomized (decomposition-based) deterministic MIS.

     dune exec examples/scheduling.exe *)

module G = Ps_graph.Graph
module Is = Ps_maxis.Independent_set
module Table = Ps_util.Table
module Rng = Ps_util.Rng

let () =
  let rng = Rng.create 2026 in
  let g = Ps_graph.Gen.unit_interval rng 120 30.0 in
  Format.printf "conflict graph: %a@." G.pp g;

  let alpha =
    match Ps_maxis.Exact.maximum_within ~budget:5_000_000 g with
    | Some opt -> Is.size opt
    | None -> -1
  in

  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
      [ "algorithm"; "slot size"; "lambda"; "model cost" ]
  in
  let row name size cost =
    Table.add_row t
      [ name;
        Table.cell_int size;
        (if alpha > 0 && size > 0 then
           Table.cell_ratio (float_of_int alpha /. float_of_int size)
         else "-");
        cost ]
  in
  if alpha >= 0 then row "exact branch & bound" alpha "centralized";

  let greedy = Ps_maxis.Greedy.min_degree g in
  row "greedy min-degree" (Is.size greedy) "centralized";

  let cw = Ps_maxis.Caro_wei.best_of (Rng.create 1) 8 g in
  row "caro-wei x8" (Is.size cw) "centralized";

  let luby_flags, luby_stats = Ps_local.Luby.run ~seed:3 g in
  let luby = Is.of_indicator luby_flags in
  row "Luby (randomized LOCAL)" (Is.size luby)
    (Printf.sprintf "%d rounds" luby_stats.Ps_local.Network.rounds);

  let slocal_flags, slocal_stats = Ps_slocal.Greedy_mis.run g in
  let slocal = Is.of_indicator slocal_flags in
  row "greedy (SLOCAL)" (Is.size slocal)
    (Printf.sprintf "locality %d" slocal_stats.Ps_slocal.Slocal.locality);

  let derand = Ps_slocal.Derandomize.mis g in
  let dmis = Is.of_indicator derand.Ps_slocal.Derandomize.outputs in
  row "derandomized (deterministic LOCAL)" (Is.size dmis)
    (Printf.sprintf "%d rounds" derand.Ps_slocal.Derandomize.simulated_rounds);

  Table.print ~title:"One transmission slot per algorithm" t;

  (* Schedule the whole network: color the conflict graph, one slot per
     color class; every class is an independent set. *)
  let colors, _ = Ps_slocal.Greedy_coloring.run g in
  let classes = Ps_graph.Coloring.color_classes colors in
  Format.printf "@.full schedule: %d slots for %d transmitters (Δ+1 = %d)@."
    (Array.length classes) (G.n_vertices g)
    (G.max_degree g + 1);
  Array.iteri
    (fun slot members ->
      let is = Is.of_list g members in
      Is.verify_exn g is;
      Format.printf "  slot %2d: %3d transmitters@." slot
        (List.length members))
    classes
