(* Why the paper matters: a walkthrough of the derandomization chain.

   1. MIS has a fast randomized LOCAL algorithm (Luby) and a trivial
      SLOCAL algorithm with locality 1 — but no known fast deterministic
      LOCAL algorithm.
   2. If ANY P-SLOCAL-complete problem had one, everything in P-SLOCAL
      would, MIS included.  Network decomposition is such a problem; this
      file shows its power by deterministically solving MIS from it.
   3. The paper adds polylog MaxIS approximation to the complete list.
      The reduction is executed phase by phase below, narrated.

     dune exec examples/derandomization.exe *)

module G = Ps_graph.Graph
module H = Ps_hypergraph.Hypergraph
module Is = Ps_maxis.Independent_set
module Red = Ps_core.Reduction
module Rng = Ps_util.Rng

let section title =
  Format.printf "@.=== %s ===@." title

let () =
  let rng = Rng.create 7 in
  let g = Ps_graph.Gen.gnp rng 300 0.02 in

  section "1. MIS: randomized LOCAL vs SLOCAL";
  let luby_flags, luby_stats = Ps_local.Luby.run ~seed:1 g in
  Format.printf
    "Luby on %a:@.  %d rounds, %d messages -> MIS of size %d@." G.pp g
    luby_stats.Ps_local.Network.rounds
    luby_stats.Ps_local.Network.messages_sent
    (Is.size (Is.of_indicator luby_flags));
  let slocal_flags, slocal_stats = Ps_slocal.Greedy_mis.run g in
  Format.printf
    "SLOCAL greedy:@.  locality %d (max ball seen: %d vertices) -> MIS of \
     size %d@."
    slocal_stats.Ps_slocal.Slocal.locality
    slocal_stats.Ps_slocal.Slocal.max_ball_vertices
    (Is.size (Is.of_indicator slocal_flags));

  section "2. Network decomposition derandomizes MIS";
  let d = Ps_slocal.Decomposition.ball_carving g in
  Format.printf
    "ball carving: %d clusters, %d colors, max radius %d (log2 n = %d)@."
    d.Ps_slocal.Decomposition.n_clusters d.Ps_slocal.Decomposition.n_colors
    d.Ps_slocal.Decomposition.max_radius
    (int_of_float (Float.log2 (float_of_int (G.n_vertices g))));
  let check = Ps_slocal.Decomposition.verify g d in
  Format.printf "verified: %a@." Ps_slocal.Decomposition.pp_check check;
  let derand = Ps_slocal.Derandomize.mis ~decomposition:d g in
  Format.printf
    "deterministic MIS via color sweep: size %d in %d simulated LOCAL \
     rounds — no randomness anywhere@."
    (Is.size (Is.of_indicator derand.Ps_slocal.Derandomize.outputs))
    derand.Ps_slocal.Derandomize.simulated_rounds;

  section "3. The paper's reduction, phase by phase";
  let h =
    Ps_hypergraph.Hgen.almost_uniform_random (Rng.create 42) ~n:40 ~m:60
      ~k:4 ~eps:0.5
  in
  Format.printf
    "conflict-free multicoloring of %a via iterated MaxIS approximation@."
    H.pp h;
  (* deliberately weak solver so several phases run and the geometry of
     the proof is visible *)
  let result =
    Ps_core.Pipeline.solve ~solver:Ps_maxis.Approx.greedy_adversarial h
  in
  let r = result.Ps_core.Pipeline.reduction in
  List.iter
    (fun (p : Red.phase_record) ->
      Format.printf
        "  phase %d: %3d unhappy edges -> G_k with %5d nodes; MaxIS approx \
         found %3d (lambda_eff %.3f) -> %3d edges became happy@."
        p.Red.phase p.Red.edges_before p.Red.conflict_vertices p.Red.is_size
        p.Red.lambda_effective p.Red.newly_happy)
    r.Red.phases;
  Format.printf "finished in %d phases, %d colors; certificate: %a@."
    r.Red.total_phases r.Red.colors_used Ps_core.Certify.pp
    result.Ps_core.Pipeline.certificate;
  Format.printf
    "@.Theorem 1.1: because this loop works for ANY lambda-approximator,@.";
  Format.printf
    "a fast deterministic LOCAL algorithm for polylog MaxIS approximation@.";
  Format.printf
    "would derandomize conflict-free multicoloring — and with it every@.";
  Format.printf "problem in P-SLOCAL, including MIS and (Δ+1)-coloring.@."
