(* Quickstart: the paper's pipeline in a dozen lines.

   Build a hypergraph, solve conflict-free multicoloring through the
   Theorem 1.1 reduction (iterated MaxIS approximation on conflict
   graphs), and inspect the certified result.

     dune exec examples/quickstart.exe *)

module H = Ps_hypergraph.Hypergraph
module Pipe = Ps_core.Pipeline
module Red = Ps_core.Reduction

let () =
  (* A hypergraph: 8 sensors, 5 overlapping observation groups.  Each
     group needs a sensor broadcasting on a frequency unique within the
     group — conflict-free coloring. *)
  let h =
    H.of_edges 8
      [ [ 0; 1; 2 ]; [ 1; 2; 3; 4 ]; [ 3; 4; 5 ]; [ 4; 5; 6; 7 ]; [ 0; 7 ] ]
  in
  Format.printf "input: %a@." H.pp h;

  (* Solve via the reduction, with min-degree greedy as the MaxIS
     λ-approximation oracle.  k is chosen by a direct CF coloring, which
     also witnesses the premise "H admits a CF k-coloring". *)
  let result = Pipe.solve ~solver:Ps_maxis.Approx.greedy_min_degree h in
  let r = result.Pipe.reduction in

  Format.printf "k (palette per phase)  = %d@." result.Pipe.k;
  Format.printf "phases                 = %d@." r.Red.total_phases;
  Format.printf "colors used            = %d@." r.Red.colors_used;
  Format.printf "certificate            = %a@." Ps_core.Certify.pp
    result.Pipe.certificate;

  (* Every vertex's final color set. *)
  Array.iteri
    (fun v colors ->
      Format.printf "  sensor %d -> {%s}@." v
        (String.concat ", " (List.map string_of_int colors)))
    r.Red.multicoloring;

  (* The verifier is independent of the solver: check it once more. *)
  Ps_cfc.Multicolor.verify_exn h r.Red.multicoloring;
  Format.printf "verified: every group has a uniquely-colored sensor@."
