(* Frequency assignment along a highway — the classic motivation for
   conflict-free coloring (Even et al. 2002), on the [DN18] interval
   substrate the paper adapts.

   Base stations sit at mile markers 0..n-1; a vehicle anywhere on the
   highway hears a contiguous window of stations and needs at least one
   station whose frequency is unique within its window (otherwise that
   frequency is jammed by interference).  Windows = interval hyperedges;
   frequencies = colors; "some station unique per window" = conflict-free.

   The example compares three ways to assign frequencies:
     1. the ruler coloring (optimal-order log n baseline for intervals),
     2. the conservative greedy (general-purpose baseline),
     3. the paper's reduction via MaxIS approximation.

     dune exec examples/frequency_assignment.exe *)

module H = Ps_hypergraph.Hypergraph
module Hgen = Ps_hypergraph.Hgen
module Cf = Ps_cfc.Cf_coloring
module Pipe = Ps_core.Pipeline
module Table = Ps_util.Table

let n_stations = 48

let windows =
  (* every vehicle window of 6 consecutive stations, plus some wide ones *)
  let sixes =
    List.init (n_stations - 5) (fun a -> (a, a + 5))
  in
  let wide = [ (0, 15); (10, 30); (25, 47); (5, 40) ] in
  sixes @ wide

let () =
  let h = Hgen.interval ~n:n_stations windows in
  Format.printf "highway: %d stations, %d vehicle windows@." n_stations
    (H.n_edges h);

  (* 1. ruler baseline *)
  let ruler = Ps_cfc.Cf_greedy.ruler h in
  Cf.verify_exn h ruler;

  (* 2. conservative greedy baseline *)
  let greedy = Ps_cfc.Cf_greedy.conservative h in
  Cf.verify_exn h greedy;

  (* 3. the reduction, with ruler-derived k *)
  let result =
    Pipe.solve ~k:Pipe.From_ruler ~solver:Ps_maxis.Approx.greedy_min_degree h
  in
  let reduction = result.Pipe.reduction in

  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "method"; "frequencies"; "max per station" ]
  in
  Table.add_row t
    [ "ruler (interval-optimal order)";
      Table.cell_int (Cf.num_colors ruler); "1" ];
  Table.add_row t
    [ "conservative greedy"; Table.cell_int (Cf.num_colors greedy); "1" ];
  Table.add_row t
    [ "reduction via MaxIS approx";
      Table.cell_int reduction.Ps_core.Reduction.colors_used;
      Table.cell_int
        (Ps_cfc.Multicolor.max_colors_per_vertex
           reduction.Ps_core.Reduction.multicoloring) ];
  Table.print ~title:"Frequency budget by method" t;

  (* Show the ruler assignment itself: the fractal pattern is the point. *)
  Format.printf "@.ruler assignment (station -> frequency):@.";
  Array.iteri
    (fun v c ->
      if v mod 16 = 0 then Format.printf "@.  ";
      Format.printf "%d:%d " v c)
    ruler;
  Format.printf "@.@.";

  (* Sanity: a vehicle at miles 7-12 can always find a clear station. *)
  let window = Hgen.interval ~n:n_stations [ (7, 12) ] in
  (match Cf.unique_color_witness window ruler 0 with
  | Some (station, freq) ->
      Format.printf
        "vehicle in window 7-12 locks onto station %d (frequency %d)@."
        station freq
  | None -> assert false);
  Format.printf "certificate for the reduction: %a@." Ps_core.Certify.pp
    result.Pipe.certificate
