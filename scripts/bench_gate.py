#!/usr/bin/env python3
"""Bench-regression gate: compare a freshly generated bench JSON against
the committed baseline within a relative tolerance (default +/-25%).

BENCH_micro.json, BENCH_reduce.json and BENCH_huge.json are flat
{name: number} objects; BENCH_serve.json is nested and carries its
comparable rows in a flat "gate" sub-object.  Row names select how a
row is compared:

- Ratio rows (name containing "speedup"): machine-independent and
  higher-is-better, so they are compared directly — the gate fails when
  the current ratio *drops* more than the tolerance below the baseline
  (the incremental engine losing ground against the rebuild oracle).
  Improvements never fail.

- Peak-RSS rows (name containing "peak_rss"): lower-is-better and
  mostly machine-independent for a fixed instance, compared directly —
  the gate fails when current RSS exceeds baseline by more than the
  tolerance.  This is what catches a "faster but secretly copies the
  graph twice" change at the 10^7-edge scale.

- Throughput rows (name containing "edges_per_sec"): machine-dependent
  absolutes; printed for information, never gated (the timing rows of
  the same file carry the gating signal in normalized form).

- Meta rows (name containing "meta_"): instance facts (edge counts,
  certification flags); skipped entirely.

- Cache rows (name containing "hit_rate" or "hit_gain"): workload- and
  machine-mix-dependent; printed for information, never gated (the
  cache's gating signal is the warm-start speedup ratio).

- Everything else is a timing (ns/run, ns, ms).  Absolute values depend
  on the machine the baseline was generated on, so each file is first
  normalized by the median over the timing rows *common to both files*.
  The normalized profile is the *shape* of the benchmark suite — one
  row regressing relative to the others is exactly the signal a perf PR
  must not hide — and it cancels the overall speed difference between
  the baseline box and the CI runner.  Normalizing over the
  intersection (not each file's full row set) keeps a --quick lane
  comparable against a baseline that also carries full-size rows.

Rows present in only one file (e.g. a --quick run covering a subset of
the baseline's sizes) are ignored; a gate run reports how many rows it
actually compared.  Timing rows whose baseline or current value is
below --min-value are skipped: sub-microsecond ns/run benches are
dominated by timer noise.  The same floor means BENCH_reduce.json
(whose timings are in milliseconds, well below 1e3) is gated on its
speedup ratios alone — deliberate, as single-rep quick timings are too
noisy to gate while the rebuild/incremental ratio is stable and
machine-independent.

Exit code 0 when every compared row is within tolerance, 1 otherwise.

usage: bench_gate.py BASELINE CURRENT [--tolerance 0.25] [--min-value 1e3]
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        obj = json.load(f)
    # Nested bench files (BENCH_serve.json) carry their comparable rows
    # in a flat "gate" sub-object; the rest of the document is detail.
    if isinstance(obj, dict) and isinstance(obj.get("gate"), dict):
        obj = obj["gate"]
    if not isinstance(obj, dict) or not all(
        isinstance(v, (int, float)) for v in obj.values()
    ):
        raise SystemExit(f"{path}: expected a flat {{name: number}} object")
    return obj


def is_ratio(name):
    return "speedup" in name


def is_rss(name):
    return "peak_rss" in name


def is_throughput(name):
    return "edges_per_sec" in name


def is_meta(name):
    return "meta_" in name


def is_hit(name):
    # Cache hit-rate / hit-gain rows: the hit rate depends on the
    # workload's popularity draw and the hit gain on the machine's
    # solve-to-protocol-overhead mix, so both are informational.
    return "hit_rate" in name or "hit_gain" in name


def is_shrink(name):
    # Kernel shrink-ratio rows (kernel vertices / original vertices) are
    # deterministic per instance: lower is better, gated directly.
    return "shrink_ratio" in name


def is_timing(name):
    return not (is_ratio(name) or is_rss(name) or is_throughput(name)
                or is_meta(name) or is_hit(name) or is_shrink(name))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="drop rows whose name contains SUBSTR (repeatable); for "
        "non-production rows too allocation-noisy to gate",
    )
    ap.add_argument(
        "--min-value",
        type=float,
        default=1e3,
        help="skip timing rows whose baseline value is below this "
        "(default 1e3: sub-microsecond ns/run rows are timer noise)",
    )
    args = ap.parse_args()

    def keep(name):
        return not any(sub in name for sub in args.exclude)

    base = {k: v for k, v in load(args.baseline).items() if keep(k)}
    cur = {k: v for k, v in load(args.current).items() if keep(k)}
    common = sorted(set(base) & set(cur))

    # (name, baseline, current, better) in comparable units; `better` is
    # "lower" or "higher" and decides which direction breaches.
    checks = []
    for name in common:
        if is_ratio(name):
            checks.append((name + " [ratio]", base[name], cur[name],
                           "higher"))
        elif is_rss(name):
            checks.append((name + " [rss]", base[name], cur[name], "lower"))
        elif is_shrink(name):
            checks.append((name + " [shrink]", base[name], cur[name],
                           "lower"))
        elif (is_throughput(name) or is_hit(name)) and base[name] > 0:
            rel = (cur[name] - base[name]) / base[name]
            print(f"  info {name}: baseline={base[name]:.3g} "
                  f"current={cur[name]:.3g} ({rel:+.1%}, not gated)")

    # Timings: normalize over the intersection of usable timing keys so a
    # quick-lane subset and the full committed baseline share a median.
    timing_keys = [
        k for k in common
        if is_timing(k) and base[k] >= args.min_value
        and cur[k] >= args.min_value
    ]
    if timing_keys:
        med_b = statistics.median(base[k] for k in timing_keys)
        med_c = statistics.median(cur[k] for k in timing_keys)
        if med_b > 0 and med_c > 0:
            for k in timing_keys:
                checks.append((k + " [normalized]", base[k] / med_b,
                               cur[k] / med_c, "lower"))

    if not checks:
        raise SystemExit("no comparable rows between baseline and current")

    failures = []
    for name, b, c, better in checks:
        if b <= 0:
            continue
        rel = (c - b) / b
        # Only the harmful direction breaches: slower timings, higher
        # RSS, *lower* speedups.  A row improving shifts the normalized
        # profile of every other row, and punishing improvements would
        # make any perf win un-mergeable.
        breach = (rel > args.tolerance) if better == "lower" \
            else (rel < -args.tolerance)
        mark = "FAIL" if breach else "ok"
        print(f"  {mark:4s} {name}: baseline={b:.3f} current={c:.3f} "
              f"({rel:+.1%})")
        if breach:
            failures.append(name)

    print(f"bench gate: {len(checks)} rows compared, "
          f"{len(failures)} outside the {args.tolerance:.0%} budget")
    if failures:
        for name in failures:
            print(f"  regression: {name}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
