#!/usr/bin/env python3
"""Bench-regression gate: compare a freshly generated bench JSON against
the committed baseline within a relative tolerance (default +/-25%).

Both BENCH_micro.json and BENCH_reduce.json are flat {name: number}
objects.  Two kinds of entries are compared differently:

- Ratio entries (name containing "speedup"): machine-independent, so
  they are compared directly.  A regression here means the incremental
  engine lost ground against the rebuild oracle.

- Timing entries (ns/run, ms): absolute values depend on the machine
  the baseline was generated on, so each file is first normalized by
  its own median timing entry.  The normalized profile is the *shape*
  of the benchmark suite — one row regressing relative to the others
  is exactly the signal a perf PR must not hide — and it cancels the
  overall speed difference between the baseline box and the CI runner.

Entries present in only one file (e.g. a --quick run covering a subset
of the baseline's sizes) are ignored; a gate run reports how many rows
it actually compared.  Rows whose baseline value is below --min-value
are skipped: sub-microsecond ns/run benches are dominated by timer
noise.  The same floor means BENCH_reduce.json (whose timings are in
milliseconds, well below 1e3) is gated on its speedup ratios alone —
deliberate, as single-rep quick timings are too noisy to gate while
the rebuild/incremental ratio is stable and machine-independent.

Exit code 0 when every compared row is within tolerance, 1 otherwise.

usage: bench_gate.py BASELINE CURRENT [--tolerance 0.25] [--min-value 1e3]
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        obj = json.load(f)
    if not isinstance(obj, dict) or not all(
        isinstance(v, (int, float)) for v in obj.values()
    ):
        raise SystemExit(f"{path}: expected a flat {{name: number}} object")
    return obj


def is_ratio(name):
    return "speedup" in name


def normalized_timings(rows, min_value):
    timings = {
        k: v for k, v in rows.items() if not is_ratio(k) and v >= min_value
    }
    if not timings:
        return {}
    med = statistics.median(timings.values())
    if med <= 0:
        return {}
    return {k: v / med for k, v in timings.items()}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="drop rows whose name contains SUBSTR (repeatable); for "
        "non-production rows too allocation-noisy to gate",
    )
    ap.add_argument(
        "--min-value",
        type=float,
        default=1e3,
        help="skip timing rows whose baseline value is below this "
        "(default 1e3: sub-microsecond ns/run rows are timer noise)",
    )
    args = ap.parse_args()

    def keep(name):
        return not any(sub in name for sub in args.exclude)

    base = {k: v for k, v in load(args.baseline).items() if keep(k)}
    cur = {k: v for k, v in load(args.current).items() if keep(k)}

    checks = []  # (name, baseline, current) in comparable units
    for name in sorted(set(base) & set(cur)):
        if is_ratio(name):
            checks.append((name + " [ratio]", base[name], cur[name]))
    nb = normalized_timings(base, args.min_value)
    nc = normalized_timings(cur, args.min_value)
    for name in sorted(set(nb) & set(nc)):
        checks.append((name + " [normalized]", nb[name], nc[name]))

    if not checks:
        raise SystemExit("no comparable rows between baseline and current")

    failures = []
    for name, b, c in checks:
        if b <= 0:
            continue
        rel = (c - b) / b
        # Only slower-than-baseline breaches fail the gate: a row getting
        # faster shifts the normalized profile of every other row, and
        # punishing improvements would make any perf win un-mergeable.
        breach = rel > args.tolerance
        mark = "FAIL" if breach else "ok"
        print(f"  {mark:4s} {name}: baseline={b:.3f} current={c:.3f} "
              f"({rel:+.1%})")
        if breach:
            failures.append(name)

    print(f"bench gate: {len(checks)} rows compared, "
          f"{len(failures)} over the +{args.tolerance:.0%} budget")
    if failures:
        for name in failures:
            print(f"  regression: {name}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
