.PHONY: all build test lint tsan bench bench-huge bench-huge-full examples data clean

all: build

build:
	dune build @all

test:
	dune runtest --force

# Repo-specific static analysis (bin/pslint.ml) over lib/.
lint:
	dune build @lint

# Concurrency stress harness.  On a plain switch this exercises the
# schedules; actual race *detection* needs a TSan switch
# (ocaml-option-tsan, OCaml >= 5.2) — see the `tsan` job in CI.
tsan:
	dune build test/race_stress.exe
	dune exec test/race_stress.exe -- --domains 4 --iters 400

bench:
	dune exec bench/main.exe

# Scale benchmark (bench/huge.ml -> BENCH_huge.json).  `bench-huge` is
# the quick per-PR lane (~10^6-edge instances, a few seconds) that CI
# regenerates and gates against the committed baseline; the gate only
# compares the rows both files share.  `bench-huge-full` is the
# nightly-sized run that regenerates the committed file including the
# >=10^7-edge certified row (~20 s build+solve, ~700 MB peak RSS).
bench-huge:
	dune exec bench/huge.exe -- --quick --out BENCH_huge.quick.json

bench-huge-full:
	dune exec bench/huge.exe -- --out BENCH_huge.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/frequency_assignment.exe
	dune exec examples/scheduling.exe
	dune exec examples/derandomization.exe
	dune exec examples/local_reduction.exe

# Regenerate the sample instances in data/ (fixed seeds).
data:
	dune exec -- pslocal gen-hypergraph intervals -n 64 -m 50 --min-len 3 --max-len 12 --seed 1 -o data/intervals_64_50.hg
	dune exec -- pslocal gen-hypergraph almost-uniform -n 48 -m 60 -k 4 --eps 0.5 --seed 2 -o data/almost_uniform_48_60.hg
	dune exec -- pslocal gen-hypergraph sunflower -m 12 -k 3 -o data/sunflower_12.hg
	dune exec -- pslocal gen-graph gnp -n 100 -p 0.05 --seed 3 -o data/gnp_100_005.el
	dune exec -- pslocal gen-graph grid --rows 8 --cols 8 -o data/grid_8x8.el
	dune exec -- pslocal gen-graph ring -n 48 -o data/ring_48.el

clean:
	dune clean
