(** Whole-library call graph built from dune's [.cmt] typedtrees.

    Every named binding whose right-hand side is syntactically a
    function becomes a node, at any nesting depth, with canonical id
    [Lib.Module.outer.inner]; anonymous lambdas passed as arguments
    become nodes too (the conservative assumption being that a callee
    invokes its functional arguments), remembering which call head they
    were handed to so the race rule can recognise
    [Telemetry.locked (fun () -> ...)] as guarded.  Top-level
    non-function effects accrue to a per-module [<init>] pseudo-node.

    Local references resolve exactly via ident stamps; cross-module
    references via canonical unit names (see {!Contexts.canonical_unit});
    [module E = Lib.M] aliases are tracked so [E.f] and [Lib.M.f] are
    one node.  Higher-order calls through parameters and record fields
    produce no edges — the documented soundness gap (DESIGN.md).

    Exception flow is position-aware: each edge carries the mask of
    exception constructors caught around the call site ([try]/[match
    ... with exception]), and locally-raised exceptions that a
    surrounding handler certainly catches are not recorded at all.  A
    constructor pattern only counts as catching when all its argument
    subpatterns are irrefutable — [Unix_error ((EINTR | ECONNABORTED),
    _, _)] is conservatively treated as not catching. *)

type pos = Report.pos

(** What a call site's surrounding handlers certainly catch. *)
type mask =
  | Catch_all
  | Catch_only of string list  (** exception constructor names *)

val merge_mask : mask -> mask -> mask
val mask_catches : mask -> string -> bool

type fact =
  | Write of string  (** resolved target id of an in-place mutation *)
  | Block of string * string  (** primitive canonical name, description *)
  | Raise of string  (** exception constructor name *)

type edge = { callee : string; e_pos : pos; e_mask : mask }

type node = {
  id : string;
  display : string;
  n_pos : pos;
  mutable attrs : string list;  (** pslint.* attribute names present *)
  mutable edges : edge list;
  mutable facts : (fact * pos) list;
  mutable arg_of : string option;
      (** for lambda nodes: canonical head of the application this
          lambda was an argument of *)
}

type root = { r_node : string; r_why : string; r_pos : pos }

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable globals : string list;
      (** canonical ids of module-level mutable bindings *)
  mutable parallel_roots : root list;
  mutable nonblocking_roots : root list;
  mutable escape_roots : root list;
}

val build : cmt_dirs:string list -> t
(** Read every [.cmt] under the given directories (recursively,
    including dune's dot-directories) and fold each implementation's
    typedtree into one graph.  Unreadable or version-skewed [.cmt]
    files are skipped. *)

val node : t -> string -> node option
