let canonical_unit name =
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

let suffix_matches ~pattern name =
  String.equal name pattern
  ||
  let np = String.length pattern and nn = String.length name in
  nn > np + 1
  && name.[nn - np - 1] = '.'
  && String.equal (String.sub name (nn - np) np) pattern

let find_suffix name patterns =
  List.find_opt (fun pattern -> suffix_matches ~pattern name) patterns

let thread_spawners = [ "Domain.spawn"; "Thread.create" ]

let spawners =
  [ "Parallel.fork_join"; "Parallel.fork_join_staged"; "Parallel.parallel_for";
    "Portfolio.race" ]
  @ thread_spawners

let signal_installers = [ "Sys.signal"; "Sys.set_signal" ]
let guard_wrappers = [ "Mutex.protect" ]
let lock_prims = [ "Mutex.lock"; "Mutex.protect" ]

(* [Unix.*] operations that complete in-process: calling these on a hot
   path is fine.  Everything else under [Unix] is assumed to be able to
   park the thread (syscall, disk, network). *)
let unix_nonblocking =
  [ "getpid"; "getppid"; "gettimeofday"; "time"; "getuid"; "geteuid";
    "getgid"; "getegid"; "environment"; "socket"; "setsockopt";
    "getsockopt"; "set_nonblock"; "clear_nonblock"; "set_close_on_exec";
    "shutdown"; "close"; "dup"; "dup2"; "kill"; "getsockname";
    "getpeername"; "string_of_inet_addr"; "inet_addr_of_string";
    "error_message"; "sigprocmask"; "sigpending"; "pipe"; "fork";
    "setsid"; "WEXITED"; "WSIGNALED" ]

let blocking_table =
  [ ("Mutex.lock", "acquires a mutex");
    ("Mutex.protect", "acquires a mutex");
    ("Condition.wait", "parks on a condition variable");
    ("Thread.join", "joins a thread");
    ("Thread.delay", "sleeps");
    ("Unix.sleep", "sleeps");
    ("Unix.sleepf", "sleeps");
    ("input_line", "reads a channel");
    ("input_char", "reads a channel");
    ("input_byte", "reads a channel");
    ("really_input", "reads a channel");
    ("really_input_string", "reads a channel");
    ("input_value", "reads a channel");
    ("read_line", "reads stdin");
    ("open_in", "opens a file");
    ("open_in_bin", "opens a file");
    ("open_out", "opens a file");
    ("open_out_bin", "opens a file");
    ("output_string", "writes a channel");
    ("output_bytes", "writes a channel");
    ("output_value", "writes a channel");
    ("flush", "flushes a channel");
    ("Marshal.from_channel", "reads a channel");
    ("Marshal.to_channel", "writes a channel") ]

(* Is [name] a [Unix.M] member, i.e. canonically [...Unix.f]? *)
let unix_member name =
  let np = String.length name in
  let rec last_dot i = if i < 0 then None else if name.[i] = '.' then Some i else last_dot (i - 1) in
  match last_dot (np - 1) with
  | None -> None
  | Some d ->
      let f = String.sub name (d + 1) (np - d - 1) in
      let prefix = String.sub name 0 d in
      if suffix_matches ~pattern:"Unix" prefix || String.equal prefix "Unix"
      then Some f
      else None

let blocking_prim name =
  match
    List.find_opt (fun (p, _) -> suffix_matches ~pattern:p name) blocking_table
  with
  | Some (_, why) -> Some why
  | None -> (
      match unix_member name with
      | Some f when not (List.mem f unix_nonblocking) ->
          Some "is a syscall that may park the thread"
      | _ -> None)

let raising_table =
  [ ("Hashtbl.find", [ "Not_found" ]);
    ("List.find", [ "Not_found" ]);
    ("List.assoc", [ "Not_found" ]);
    ("Sys.getenv", [ "Not_found" ]);
    ("Option.get", [ "Invalid_argument" ]);
    ("int_of_string", [ "Failure" ]);
    ("float_of_string", [ "Failure" ]);
    ("bool_of_string", [ "Invalid_argument" ]);
    ("failwith", [ "Failure" ]);
    ("invalid_arg", [ "Invalid_argument" ]);
    ("input_line", [ "End_of_file"; "Sys_error" ]);
    ("input_char", [ "End_of_file"; "Sys_error" ]);
    ("input_byte", [ "End_of_file"; "Sys_error" ]);
    ("really_input", [ "End_of_file"; "Sys_error" ]);
    ("really_input_string", [ "End_of_file"; "Sys_error" ]);
    ("input_value", [ "End_of_file"; "Failure" ]);
    ("open_in", [ "Sys_error" ]);
    ("open_in_bin", [ "Sys_error" ]);
    ("open_out", [ "Sys_error" ]);
    ("open_out_bin", [ "Sys_error" ]);
    ("Marshal.from_channel", [ "End_of_file"; "Failure" ]) ]

(* [Unix] members that never raise [Unix_error] in practice. *)
let unix_nonraising =
  [ "getpid"; "getppid"; "gettimeofday"; "time"; "getuid"; "geteuid";
    "getgid"; "getegid"; "environment"; "error_message";
    "string_of_inet_addr" ]

let raising_prim name =
  match
    List.find_opt (fun (p, _) -> suffix_matches ~pattern:p name) raising_table
  with
  | Some (_, exns) -> exns
  | None -> (
      match unix_member name with
      | Some f when not (List.mem f unix_nonraising) -> [ "Unix_error" ]
      | _ -> [])

let write_prims =
  [ ":="; "incr"; "decr"; "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove";
    "Hashtbl.clear"; "Hashtbl.reset"; "Hashtbl.filter_map_inplace";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_buffer"; "Buffer.clear"; "Buffer.reset"; "Queue.push";
    "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer";
    "Stack.push"; "Stack.pop"; "Stack.clear"; "Array.set"; "Array.fill";
    "Bytes.set"; "Bytes.fill" ]

let mutable_makers =
  [ "ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Array.make"; "Array.create_float"; "Array.init"; "Array.make_matrix";
    "Bytes.make"; "Bytes.create" ]

let attr_blocking_ok = "pslint.blocking_ok"
let attr_shared_ok = "pslint.shared_ok"
let attr_nonblocking = "pslint.nonblocking"
let attr_no_escape = "pslint.no_escape"

let has_attr name (attrs : Typedtree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs
