open Callgraph

type rule = Race | Blocking | Escape

let rule_id = function
  | Race -> "race"
  | Blocking -> "blocking"
  | Escape -> "escape"

(* Shorten a canonical name for messages: drop a [Stdlib.] qualifier. *)
let short name =
  match String.index_opt name '.' with
  | Some 6 when String.sub name 0 6 = "Stdlib" ->
      String.sub name 7 (String.length name - 7)
  | _ -> name

let has_attr (n : node) a = List.mem a n.attrs

let node_locks (n : node) =
  List.exists
    (fun (f, _) ->
      match f with
      | Block (prim, _) -> Contexts.find_suffix prim Contexts.lock_prims <> None
      | _ -> false)
    n.facts

(* Does entering [n] put the rest of the path under a lock?  Either the
   node locks itself, or it is a lambda handed to a guard wrapper or to
   a function that locks before invoking its argument.  The race
   traversal propagates this down call edges, so a helper invoked only
   from inside [Telemetry.locked (fun () -> ...)] counts as guarded
   too.  (Heuristic: a node that locks, unlocks, and then calls out
   would wrongly shield its callees — the codebase idiom is wrapper
   lambdas, where the whole dynamic extent holds the lock.) *)
let enters_locked g (n : node) =
  node_locks n
  ||
  match n.arg_of with
  | Some h -> (
      Contexts.find_suffix h Contexts.guard_wrappers <> None
      || match node g h with Some hn -> node_locks hn | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Traversals.  Chains are built root-first; [path] is kept in order. *)

let root_step (r : root) (rn : node) : Report.step =
  { s_name = Printf.sprintf "%s (%s)" rn.display r.r_why; s_pos = r.r_pos }

let dfs g (r : root) ~barrier ~on_node =
  match node g r.r_node with
  | None -> ()
  | Some rn ->
      let visited = Hashtbl.create 64 in
      let rec go (n : node) path =
        if not (Hashtbl.mem visited n.id) then begin
          Hashtbl.add visited n.id ();
          if not (barrier n) then begin
            on_node n path;
            List.iter
              (fun e ->
                match node g e.callee with
                | Some c when not (String.equal c.id n.id) ->
                    go c
                      (path @ [ { Report.s_name = c.display; s_pos = e.e_pos } ])
                | _ -> ())
              n.edges
          end
        end
      in
      go rn [ root_step r rn ]

(* Race is lock-context-aware: once a path passes through a node that
   takes the lock (or is a guard-wrapper lambda), every node deeper on
   that same path runs with the lock held.  A node reachable both with
   and without the lock is visited under both keys. *)
let dfs_race g (r : root) ~barrier ~on_node =
  match node g r.r_node with
  | None -> ()
  | Some rn ->
      let visited = Hashtbl.create 64 in
      let rec go (n : node) path locked =
        let locked = locked || enters_locked g n in
        let key = n.id ^ if locked then "|L" else "|U" in
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.add visited key ();
          if not (barrier n) then begin
            if not locked then on_node n path;
            List.iter
              (fun e ->
                match node g e.callee with
                | Some c when not (String.equal c.id n.id) ->
                    go c
                      (path @ [ { Report.s_name = c.display; s_pos = e.e_pos } ])
                      locked
                | _ -> ())
              n.edges
          end
        end
      in
      go rn [ root_step r rn ] false

let mask_key = function
  | Catch_all -> "ALL"
  | Catch_only l -> String.concat "," (List.sort_uniq String.compare l)

(* Escape is mask-aware: [blocked] accumulates the exception
   constructors certainly caught somewhere along the path. *)
let dfs_escape g (r : root) ~on_raise =
  match node g r.r_node with
  | None -> ()
  | Some rn ->
      let visited = Hashtbl.create 64 in
      let rec go (n : node) path blocked =
        let key = n.id ^ "|" ^ mask_key blocked in
        if blocked <> Catch_all && not (Hashtbl.mem visited key) then begin
          Hashtbl.add visited key ();
          List.iter
            (fun (fact, pos) ->
              match fact with
              | Raise exn when not (mask_catches blocked exn) ->
                  on_raise n path exn pos
              | _ -> ())
            n.facts;
          List.iter
            (fun e ->
              match node g e.callee with
              | Some c when not (String.equal c.id n.id) ->
                  go c
                    (path @ [ { Report.s_name = c.display; s_pos = e.e_pos } ])
                    (merge_mask blocked e.e_mask)
              | _ -> ())
            n.edges
        end
      in
      go rn [ root_step r rn ] (Catch_only [])

(* ------------------------------------------------------------------ *)

let run g ~enabled =
  let module SS = Set.Make (String) in
  let globals = SS.of_list g.globals in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let emit ~rule ~(pos : Report.pos) ~payload ~message ~path =
    let key =
      String.concat "|" [ rule; pos.file; string_of_int pos.line; payload ]
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      acc :=
        { Report.f_pos = pos; rule; message; chain = path } :: !acc
    end
  in
  if enabled Race then
    List.iter
      (fun r ->
        dfs_race g r
          ~barrier:(fun n -> has_attr n Contexts.attr_shared_ok)
          ~on_node:(fun n path ->
            List.iter
              (fun (fact, pos) ->
                match fact with
                | Write target when SS.mem target globals ->
                    emit ~rule:"race" ~pos ~payload:target
                      ~message:
                        (Printf.sprintf
                           "unguarded write to module-level mutable %s \
                            from a parallel context — hold a lock, make \
                            it atomic, or mark the function \
                            [@pslint.shared_ok]"
                           (short target))
                      ~path
                | _ -> ())
              n.facts))
      (List.rev g.parallel_roots);
  if enabled Blocking then
    List.iter
      (fun r ->
        dfs g r
          ~barrier:(fun n -> has_attr n Contexts.attr_blocking_ok)
          ~on_node:(fun n path ->
            let _ = n in
            List.iter
              (fun (fact, pos) ->
                match fact with
                | Block (prim, why) ->
                    emit ~rule:"blocking" ~pos ~payload:prim
                      ~message:
                        (Printf.sprintf
                           "%s %s, but this path must not block (root: %s) \
                            — move the call off the hot path or mark the \
                            function [@pslint.blocking_ok]"
                           (short prim) why r.r_node)
                      ~path
                | _ -> ())
              n.facts))
      (List.rev g.nonblocking_roots);
  if enabled Escape then
    List.iter
      (fun r ->
        dfs_escape g r ~on_raise:(fun n path exn pos ->
            let _ = n in
            emit ~rule:"escape" ~pos ~payload:exn
              ~message:
                (Printf.sprintf
                   "%s can escape the boundary %s uncaught — catch it at \
                    the entry point or encode a typed error"
                   exn r.r_node)
              ~path))
      (List.rev g.escape_roots);
  List.sort Report.compare !acc
