module StringSet = Set.Make (String)

type t = {
  file_wide : StringSet.t;
  by_line : (int, StringSet.t) Hashtbl.t; (* line -> suppressed rules *)
}

let empty = { file_wide = StringSet.empty; by_line = Hashtbl.create 1 }

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Whitespace-separated rule names following position [start] in [s]. *)
let rules_after s start =
  let n = String.length s in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then
      skip_ws (i + 1)
    else i
  in
  let rec words acc i =
    let i = skip_ws i in
    if i >= n || not (is_rule_char s.[i]) then acc
    else begin
      let j = ref i in
      while !j < n && is_rule_char s.[!j] do incr j done;
      words (String.sub s i (!j - i) :: acc) !j
    end
  in
  words [] start

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

(* Every rule list following an occurrence of [marker] in [s]. *)
let all_markers s marker =
  let m = String.length marker in
  let rec go acc from =
    match find_sub s marker from with
    | None -> acc
    | Some i -> go (rules_after s (i + m) :: acc) (i + m)
  in
  go [] 0

(* One comment's worth of suppressions.  [lines] is the inclusive line
   span of the comment in the file; per-line suppressions also cover the
   line after the comment ends, so an annotation can sit above the code
   it licenses. *)
let apply_comment ~file_wide ~by_line ~first_line ~last_line content =
  let add_line ln rules =
    let prev =
      match Hashtbl.find_opt by_line ln with
      | Some s -> s
      | None -> StringSet.empty
    in
    Hashtbl.replace by_line ln
      (List.fold_left (fun s r -> StringSet.add r s) prev rules)
  in
  List.iter
    (fun rules ->
      file_wide :=
        List.fold_left (fun s r -> StringSet.add r s) !file_wide rules)
    (all_markers content "pslint: allow-file");
  (* "pslint: allow " with the trailing space cannot match "allow-file". *)
  List.iter
    (fun rules ->
      for ln = first_line to last_line + 1 do
        add_line ln rules
      done)
    (all_markers content "pslint: allow ")

(* A hand-rolled scanner over OCaml's lexical structure: comments nest,
   string literals inside comments still delimit (a "*)" inside a quoted
   string does not close the comment), and quoted-string literals
   [{id|...|id}] have no escapes.  Char literals get a small heuristic so
   ['"'] does not open a string. *)
let scan text =
  let n = String.length text in
  let by_line = Hashtbl.create 8 in
  let file_wide = ref StringSet.empty in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some text.[!i + k] else None in
  let bump () =
    if text.[!i] = '\n' then incr line;
    incr i
  in
  (* Skip a string literal starting at the current '"'. *)
  let skip_string () =
    bump ();
    let fin = ref false in
    while (not !fin) && !i < n do
      (match text.[!i] with
      | '\\' -> if !i + 1 < n then bump () (* skip the escaped char *)
      | '"' -> fin := true
      | _ -> ());
      bump ()
    done
  in
  (* At '{': if it opens a quoted string {id|...|id}, skip it and return
     true; otherwise leave the position unchanged. *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while
      !j < n && (text.[!j] = '_' || (text.[!j] >= 'a' && text.[!j] <= 'z'))
    do
      incr j
    done;
    if !j < n && text.[!j] = '|' then begin
      let id = String.sub text (!i + 1) (!j - !i - 1) in
      let closer = "|" ^ id ^ "}" in
      (* step over the opener *)
      while !i <= !j do bump () done;
      let rec hunt () =
        if !i < n then
          match find_sub text closer !i with
          | Some _ when String.sub text !i (String.length closer) = closer ->
              for _ = 1 to String.length closer do bump () done
          | _ ->
              bump ();
              hunt ()
      in
      hunt ();
      true
    end
    else false
  in
  let in_comment = Buffer.create 64 in
  while !i < n do
    match text.[!i] with
    | '(' when peek 1 = Some '*' ->
        (* A comment: record its text and line span, honouring nesting
           and embedded string literals. *)
        let first_line = !line in
        Buffer.clear in_comment;
        bump ();
        bump ();
        let depth = ref 1 in
        while !depth > 0 && !i < n do
          match text.[!i] with
          | '(' when peek 1 = Some '*' ->
              incr depth;
              Buffer.add_string in_comment "(*";
              bump ();
              bump ()
          | '*' when peek 1 = Some ')' ->
              decr depth;
              if !depth > 0 then Buffer.add_string in_comment "*)";
              bump ();
              bump ()
          | '"' ->
              let start = !i in
              skip_string ();
              Buffer.add_string in_comment (String.sub text start (!i - start))
          | c ->
              Buffer.add_char in_comment c;
              bump ()
        done;
        apply_comment ~file_wide ~by_line ~first_line ~last_line:!line
          (Buffer.contents in_comment)
    | '"' -> skip_string ()
    | '{' -> if not (skip_quoted_string ()) then bump ()
    | '\'' -> (
        (* Char literal or type variable: ['x'] and ['\n'] are literals
           (skip them whole so an inner '"' stays inert); anything else
           is a tick. *)
        match (peek 1, peek 2) with
        | Some '\\', _ ->
            bump ();
            bump ();
            (* skip to the closing quote of the escape, bounded *)
            let guard = ref 0 in
            while !i < n && text.[!i] <> '\'' && !guard < 4 do
              bump ();
              incr guard
            done;
            if !i < n && text.[!i] = '\'' then bump ()
        | Some _, Some '\'' ->
            bump ();
            bump ();
            bump ()
        | _ -> bump ())
    | _ -> bump ()
  done;
  { file_wide = !file_wide; by_line }

let suppressed t ~rule ~line =
  StringSet.mem rule t.file_wide
  ||
  match Hashtbl.find_opt t.by_line line with
  | Some rules -> StringSet.mem rule rules
  | None -> false
