module StringSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Rule predicates over identifiers *)

let print_idents =
  StringSet.of_list
    [ "print_string"; "print_bytes"; "print_int"; "print_char";
      "print_float"; "print_endline"; "print_newline"; "prerr_string";
      "prerr_bytes"; "prerr_int"; "prerr_char"; "prerr_float";
      "prerr_endline"; "prerr_newline" ]

let mutable_makers =
  [ ("Hashtbl", "create"); ("Buffer", "create"); ("Queue", "create");
    ("Stack", "create"); ("Array", "make"); ("Array", "create_float");
    ("Array", "init"); ("Array", "make_matrix"); ("Bytes", "make");
    ("Bytes", "create") ]

let longident_tail = function
  | Longident.Lident s -> Some ([], s)
  | Longident.Ldot (Longident.Lident m, s) -> Some ([ m ], s)
  | Longident.Ldot (Longident.Ldot (Longident.Lident m, m'), s) ->
      Some ([ m; m' ], s)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The per-file AST walk *)

type ctx = {
  file : string;
  hot : bool; (* poly-compare applies *)
  enabled : string -> bool; (* profile: which rules fire at all *)
  sup : Suppress.t;
  acc : Report.finding list ref;
  mutable scope : StringSet.t; (* value names bound at this point *)
}

let report ctx (loc : Location.t) rule message =
  let p = loc.Location.loc_start in
  ctx.acc :=
    Report.make ~file:ctx.file ~line:p.Lexing.pos_lnum
      ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
      ~rule message
    :: !(ctx.acc)

let flag ctx loc rule fmt =
  Printf.ksprintf
    (fun message ->
      let line = loc.Location.loc_start.Lexing.pos_lnum in
      if ctx.enabled rule && not (Suppress.suppressed ctx.sup ~rule ~line)
      then report ctx loc rule message)
    fmt

let rec pattern_vars acc (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Ppat_var { txt; _ } -> StringSet.add txt acc
  | Ppat_alias (q, { txt; _ }) -> pattern_vars (StringSet.add txt acc) q
  | Ppat_tuple ps -> List.fold_left pattern_vars acc ps
  | Ppat_construct (_, Some (_, q)) -> pattern_vars acc q
  | Ppat_variant (_, Some q) -> pattern_vars acc q
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, q) -> pattern_vars acc q) acc fields
  | Ppat_array ps -> List.fold_left pattern_vars acc ps
  | Ppat_or (a, b) -> pattern_vars (pattern_vars acc a) b
  | Ppat_constraint (q, _) | Ppat_lazy q | Ppat_exception q
  | Ppat_open (_, q) ->
      pattern_vars acc q
  | _ -> acc

let ident_check ctx (loc : Location.t) (lid : Longident.t) =
  match longident_tail lid with
  | None -> ()
  | Some (path, name) -> (
      (match (path, name) with
      | [], "compare" when ctx.hot && not (StringSet.mem "compare" ctx.scope)
        ->
          flag ctx loc "poly-compare"
            "polymorphic compare — use Int.compare or a monomorphic \
             comparator"
      | ([ "Stdlib" ] | [ "Pervasives" ]), "compare" when ctx.hot ->
          flag ctx loc "poly-compare"
            "polymorphic compare — use Int.compare or a monomorphic \
             comparator"
      | [ "Hashtbl" ], "hash" when ctx.hot ->
          flag ctx loc "poly-compare"
            "polymorphic Hashtbl.hash — hash a monomorphic key instead"
      | [ "List" ], ("mem" | "assoc" | "assoc_opt" | "mem_assoc"
                    | "remove_assoc")
        when ctx.hot ->
          flag ctx loc "poly-compare"
            "List.%s uses polymorphic equality — use the q-variant on a \
             monomorphic key or an explicit predicate" name
      | _ -> ());
      match (path, name) with
      | [ "Obj" ], _ ->
          flag ctx loc "no-obj" "Obj.%s — unsafe casts are banned" name
      | [], p when StringSet.mem p print_idents ->
          flag ctx loc "no-print"
            "%s writes to a std stream — route through Telemetry, Logs, or \
             return the value" p
      | ([ "Printf" ] | [ "Format" ]), ("printf" | "eprintf") ->
          flag ctx loc "no-print"
            "%s.%s writes to a std stream — use sprintf/fprintf to a \
             caller-supplied destination" (List.hd path) name
      | [ "Format" ], ("print_string" | "print_newline" | "print_int"
                      | "print_float" | "print_char") ->
          flag ctx loc "no-print"
            "Format.%s writes to stdout — use a caller-supplied formatter"
            name
      | _ -> ())

(* Is [e] a syntactic shape whose [=]/[<>] comparison is structural
   (boxed) rather than an immediate scalar?  Conservative: flags only
   what is certainly structured. *)
let structured (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, _)
    ->
      false
  | Pexp_construct _ | Pexp_variant _ -> true
  | Pexp_constant (Parsetree.Pconst_string _) -> true
  | _ -> false

let with_scope ctx names f =
  let saved = ctx.scope in
  ctx.scope <- StringSet.union names saved;
  f ();
  ctx.scope <- saved

let iterator ctx =
  let open Ast_iterator in
  let case it (c : Parsetree.case) =
    with_scope ctx
      (pattern_vars StringSet.empty c.Parsetree.pc_lhs)
      (fun () ->
        Option.iter (it.expr it) c.Parsetree.pc_guard;
        it.expr it c.Parsetree.pc_rhs)
  in
  let value_bindings it rec_flag (vbs : Parsetree.value_binding list) body =
    let bound =
      List.fold_left
        (fun acc vb -> pattern_vars acc vb.Parsetree.pvb_pat)
        StringSet.empty vbs
    in
    let rhs () =
      List.iter (fun vb -> it.expr it vb.Parsetree.pvb_expr) vbs
    in
    (match rec_flag with
    | Asttypes.Recursive -> with_scope ctx bound rhs
    | Asttypes.Nonrecursive -> rhs ());
    match body with
    | Some body -> with_scope ctx bound (fun () -> it.expr it body)
    | None -> ctx.scope <- StringSet.union bound ctx.scope
    (* structure-level: names stay bound for the rest of the module *)
  in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Pexp_ident { txt; loc } -> ident_check ctx loc txt
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc };
            _ },
          args )
      when ctx.hot ->
        if List.exists (fun (_, a) -> structured a) args then
          flag ctx loc "poly-compare"
            "( %s ) on a structured operand is a polymorphic comparison — \
             match on the shape or use a monomorphic equal" op
    | _ -> ());
    match e.Parsetree.pexp_desc with
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (it.expr it) default;
        it.pat it pat;
        with_scope ctx
          (pattern_vars StringSet.empty pat)
          (fun () -> it.expr it body)
    | Pexp_function cases -> List.iter (case it) cases
    | Pexp_let (rec_flag, vbs, body) ->
        value_bindings it rec_flag vbs (Some body)
    | Pexp_match (scrut, cases) ->
        it.expr it scrut;
        List.iter (case it) cases
    | Pexp_try (body, cases) ->
        it.expr it body;
        List.iter (case it) cases
    | Pexp_for (pat, lo, hi, _, body) ->
        it.expr it lo;
        it.expr it hi;
        with_scope ctx
          (pattern_vars StringSet.empty pat)
          (fun () -> it.expr it body)
    | _ -> default_iterator.expr it e
  in
  let structure_item it (item : Parsetree.structure_item) =
    match item.Parsetree.pstr_desc with
    | Pstr_value (rec_flag, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let rec head (e : Parsetree.expression) =
              match e.Parsetree.pexp_desc with
              | Pexp_constraint (e, _) -> head e
              | desc -> desc
            in
            match head vb.Parsetree.pvb_expr with
            | Pexp_apply
                ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                match longident_tail txt with
                | Some ([], "ref") ->
                    flag ctx vb.Parsetree.pvb_loc "global-state"
                      "module-level ref — shared across domains; guard it \
                       or move it into a handle"
                | Some ([ m ], f)
                  when List.exists
                         (fun (m', f') ->
                           String.equal m m' && String.equal f f')
                         mutable_makers ->
                    flag ctx vb.Parsetree.pvb_loc "global-state"
                      "module-level %s.%s — mutable state shared across \
                       domains; guard it or move it into a handle" m f
                | _ -> ())
            | Pexp_array _ ->
                flag ctx vb.Parsetree.pvb_loc "global-state"
                  "module-level array literal — mutable state shared \
                   across domains; guard it or move it into a handle"
            | _ -> ())
          vbs;
        value_bindings it rec_flag vbs None
    | _ -> default_iterator.structure_item it item
  in
  let structure it (items : Parsetree.structure) =
    (* A nested module's bindings must not leak past its end. *)
    let saved = ctx.scope in
    List.iter (it.structure_item it) items;
    ctx.scope <- saved
  in
  { default_iterator with expr; structure_item; structure }

(* ------------------------------------------------------------------ *)
(* Driving *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hot_dirs =
  [ "lib/graph"; "lib/core"; "lib/cfc"; "lib/slocal"; "lib/server";
    "lib/cache"; "lib/shard"; "lib/maxis"; "lib/local"; "lib/hypergraph";
    "lib/check" ]

let normalize_path p = String.concat "/" (String.split_on_char '\\' p)

let has_component comp path =
  let p = normalize_path path in
  List.exists (String.equal comp) (String.split_on_char '/' p)

let is_hot path =
  let p = normalize_path path in
  List.exists
    (fun dir ->
      (* match the directory component anywhere in the path *)
      let needle = dir ^ "/" in
      let n = String.length p and m = String.length needle in
      let rec find i =
        i + m <= n && (String.equal (String.sub p i m) needle || find (i + 1))
      in
      find 0)
    hot_dirs

(* Tools print and hold their state locally: only the rules about
   unsafe casts, interfaces and parseability apply outside lib/. *)
let tool_rules = [ "no-obj"; "mli-required"; "parse" ]

let profile_of_path path =
  if has_component "bin" path || has_component "bench" path then
    fun rule -> List.mem rule tool_rules
  else fun _ -> true

let lexbuf_of path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  lexbuf

let parse_error_finding path exn =
  let loc =
    match Location.error_of_exn exn with
    | Some (`Ok e) -> e.Location.main.Location.loc
    | _ -> Location.none
  in
  let p = loc.Location.loc_start in
  Report.make ~file:path ~line:(max 1 p.Lexing.pos_lnum)
    ~col:(max 0 (p.Lexing.pos_cnum - p.Lexing.pos_bol))
    ~rule:"parse" (Printexc.to_string exn)

let check_ml ~acc path =
  let text = read_file path in
  let sup = Suppress.scan text in
  let ctx =
    {
      file = path;
      hot = is_hot path;
      enabled = profile_of_path path;
      sup;
      acc;
      scope = StringSet.empty;
    }
  in
  (if (not (Sys.file_exists (path ^ "i")))
      && ctx.enabled "mli-required"
      && not (Suppress.suppressed sup ~rule:"mli-required" ~line:1)
   then
     acc :=
       Report.make ~file:path ~line:1 ~col:0 ~rule:"mli-required"
         (Printf.sprintf
            "no interface file %s — every module documents its contract in \
             an .mli"
            (Filename.basename path ^ "i"))
       :: !acc);
  match Parse.implementation (lexbuf_of path text) with
  | ast ->
      let it = iterator ctx in
      it.Ast_iterator.structure it ast
  | exception exn -> acc := parse_error_finding path exn :: !acc

let check_mli ~acc path =
  let text = read_file path in
  match Parse.interface (lexbuf_of path text) with
  | (_ : Parsetree.signature) -> ()
  | exception exn -> acc := parse_error_finding path exn :: !acc

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && entry.[0] = '.' then acc
        else walk (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else acc @ [ path ]

let sources ~roots =
  let files = List.concat_map (fun r -> walk r []) roots in
  let files = List.sort String.compare files in
  List.filter
    (fun f ->
      Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    files

let files_checked ~roots = List.length (sources ~roots)

let run ~roots =
  let acc = ref [] in
  List.iter
    (fun f ->
      if Filename.check_suffix f ".ml" then check_ml ~acc f
      else check_mli ~acc f)
    (sources ~roots);
  List.sort Report.compare !acc
