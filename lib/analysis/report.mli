(** Positioned findings shared by the syntactic rules and the
    interprocedural analyzer, their text rendering, and the committed
    baseline.

    Baseline keys are deliberately position-free — rule, file, root and
    message only — so an accepted finding survives unrelated edits to
    the file above it and resurfaces the moment the code actually
    changes shape. *)

type pos = { file : string; line : int; col : int }

type step = { s_name : string; s_pos : pos }
(** One hop of a call chain: the function entered and the position of
    the call (for the first step, of the root registration). *)

type finding = {
  f_pos : pos;  (** the violation site *)
  rule : string;
  message : string;
  chain : step list;  (** root first, violating function last; [] for
                          single-site syntactic findings *)
}

val make : file:string -> line:int -> col:int -> rule:string -> string -> finding
(** A chainless (syntactic) finding. *)

val compare : finding -> finding -> int
(** Order by file, then line, then rule — stable printing. *)

val render : finding -> string
(** [file:line:col: [rule] message], followed by one indented line per
    chain step ([root → f → g → violation]). *)

val baseline_key : finding -> string

val load_baseline : string -> (string, unit) Hashtbl.t
(** Keys from the baseline file, one per line; ['#'] lines and blanks
    ignored.  A missing file is an empty baseline. *)

val split_baselined :
  (string, unit) Hashtbl.t -> finding list -> finding list * finding list
(** [(live, baselined)] — a baselined key matches any number of
    findings. *)

val filter_suppressed :
  resolve:(string -> string option) -> finding list -> finding list
(** Drop findings whose rule a [pslint: allow] comment suppresses at the
    violation site.  [resolve] maps a finding's recorded file path to a
    readable on-disk path ([None] when the source is unavailable, in
    which case the finding is kept).  Source texts are read and scanned
    once per file. *)
