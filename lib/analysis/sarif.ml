(* Minimal JSON construction: enough structure for SARIF, nothing
   general-purpose. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = Printf.sprintf "\"%s\"" (escape s)
let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"

let location (p : Report.pos) =
  obj
    [ ("physicalLocation",
       obj
         [ ("artifactLocation", obj [ ("uri", str p.file) ]);
           ("region",
            obj
              [ ("startLine", string_of_int p.line);
                ("startColumn", string_of_int (p.col + 1)) ]) ]) ]

let thread_flow_location (s : Report.step) =
  obj
    [ ("location",
       obj
         [ ("physicalLocation",
            obj
              [ ("artifactLocation", obj [ ("uri", str s.s_pos.file) ]);
                ("region", obj [ ("startLine", string_of_int s.s_pos.line) ])
              ]);
           ("message", obj [ ("text", str s.s_name) ]) ]) ]

let result (f : Report.finding) =
  let base =
    [ ("ruleId", str f.rule);
      ("level", str "error");
      ("message", obj [ ("text", str f.message) ]);
      ("locations", arr [ location f.f_pos ]) ]
  in
  let flows =
    match f.chain with
    | [] -> []
    | chain ->
        [ ("codeFlows",
           arr
             [ obj
                 [ ("threadFlows",
                    arr
                      [ obj
                          [ ("locations",
                             arr (List.map thread_flow_location chain)) ] ])
                 ] ]) ]
  in
  obj (base @ flows)

let rule_ids findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Report.finding) -> f.rule) findings)

let emit findings =
  let rules =
    arr
      (List.map
         (fun id -> obj [ ("id", str id); ("name", str id) ])
         (rule_ids findings))
  in
  obj
    [ ("version", str "2.1.0");
      ("$schema",
       str
         "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json");
      ("runs",
       arr
         [ obj
             [ ("tool",
                obj
                  [ ("driver",
                     obj
                       [ ("name", str "pslint");
                         ("informationUri",
                          str "https://example.invalid/pslint");
                         ("rules", rules) ]) ]);
               ("results", arr (List.map result findings)) ] ]) ]
