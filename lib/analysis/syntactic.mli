(** The per-file syntactic rules (the original pslint), over parsetrees
    of raw source — no build artifacts needed.

    Rules and their ids:
    - [poly-compare] (hot directories only): unqualified or
      [Stdlib]-qualified [compare] (unless shadowed by a binding in
      scope), [Hashtbl.hash], the equality-based [List.mem]/[List.assoc]
      family, and [=]/[<>] applied to syntactically structured operands.
    - [no-obj]: any [Obj.*].
    - [no-print]: direct stdout/stderr output from library code.
    - [global-state]: module-level mutable values ([ref],
      [Hashtbl.create], array literals, ...); [Atomic.make],
      [Mutex.create] and [Domain.DLS.new_key] are sanctioned.
    - [mli-required]: every [.ml] has a sibling [.mli].
    - [parse]: the file failed to parse at all.

    Two profiles: files under [lib/] get every rule; files under [bin/]
    or [bench/] (tools — prints are their job, handles are local) get
    only [no-obj], [mli-required] and [parse].

    Suppression comments are honoured via {!Suppress} — including
    multi-line [(* ... *)] comments, and [mli-required] via
    [pslint: allow-file mli-required]. *)

val hot_dirs : string list
(** Directories where [poly-compare] applies. *)

val run : roots:string list -> Report.finding list
(** Walk every [.ml]/[.mli] under the given files/directories
    (skipping dot-directories) and return all findings, sorted.  The
    count of files checked is [checked_count] of the same walk — exposed
    for the driver's summary line via {!files_checked}. *)

val files_checked : roots:string list -> int
(** Number of [.ml]/[.mli] files the same walk would check. *)
