type pos = Report.pos
type mask = Catch_all | Catch_only of string list

type fact =
  | Write of string
  | Block of string * string
  | Raise of string

type edge = { callee : string; e_pos : pos; e_mask : mask }

type node = {
  id : string;
  display : string;
  n_pos : pos;
  mutable attrs : string list;
  mutable edges : edge list;
  mutable facts : (fact * pos) list;
  mutable arg_of : string option;
}

type root = { r_node : string; r_why : string; r_pos : pos }

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable globals : string list;
  mutable parallel_roots : root list;
  mutable nonblocking_roots : root list;
  mutable escape_roots : root list;
}

let node g id = Hashtbl.find_opt g.nodes id

(* ------------------------------------------------------------------ *)
(* Masks *)

let merge_mask a b =
  match (a, b) with
  | Catch_all, _ | _, Catch_all -> Catch_all
  | Catch_only x, Catch_only y -> Catch_only (x @ y)

let mask_catches m exn =
  match m with Catch_all -> true | Catch_only l -> List.mem exn l

let merge_frames frames =
  List.fold_left merge_mask (Catch_only []) frames

(* ------------------------------------------------------------------ *)
(* Pattern analysis: what does a handler pattern certainly catch? *)

let rec irrefutable : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> true
  | Tpat_alias (q, _, _) -> irrefutable q
  | Tpat_tuple ps -> List.for_all irrefutable ps
  | _ -> false

(* Conservative in the catching direction: a constructor pattern counts
   only when every argument subpattern is irrefutable, so
   [Unix_error ((EINTR | ECONNABORTED), _, _)] catches nothing as far as
   the escape rule is concerned. *)
let rec pat_catches : type k. k Typedtree.general_pattern -> mask =
 fun p ->
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> Catch_all
  | Tpat_alias (q, _, _) -> pat_catches q
  | Tpat_or (a, b, _) -> merge_mask (pat_catches a) (pat_catches b)
  | Tpat_construct (_, cstr, subs, _) when List.for_all irrefutable subs ->
      Catch_only [ cstr.cstr_name ]
  | _ -> Catch_only []

let mask_of_value_case (c : Typedtree.value Typedtree.case) =
  if c.c_guard <> None then Catch_only [] else pat_catches c.c_lhs

let mask_of_comp_case (c : Typedtree.computation Typedtree.case) =
  if c.c_guard <> None then Catch_only []
  else
    match Typedtree.split_pattern c.c_lhs with
    | _, Some exn_pat -> pat_catches exn_pat
    | _, None -> Catch_only []

let mask_of_cases mask_of cases =
  List.fold_left (fun m c -> merge_mask m (mask_of c)) (Catch_only []) cases

(* ------------------------------------------------------------------ *)
(* Walk state *)

type wstate = {
  g : t;
  aliases : (string, string) Hashtbl.t;
      (* module ident unique_name -> canonical prefix *)
  locals : (string, string) Hashtbl.t;
      (* value ident unique_name -> node or global id *)
  mutable stack : node list; (* head = current context *)
  mutable frames : mask list;
  mutable prefix : string; (* canonical module path *)
  mutable anon : int;
}

let pos_of (loc : Location.t) : pos =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
  }

let current st = List.hd st.stack
let is_init id = Filename.check_suffix id ".<init>"

let fresh_node st ~id ~pos ~attrs ~arg_of =
  let rec free id k =
    let id' = if k = 0 then id else Printf.sprintf "%s~%d" id k in
    if Hashtbl.mem st.g.nodes id' then free id (k + 1) else id'
  in
  let id = free id 0 in
  let n =
    { id; display = id; n_pos = pos; attrs; edges = []; facts = []; arg_of }
  in
  Hashtbl.replace st.g.nodes id n;
  n

let child_id st name =
  let h = current st in
  (if is_init h.id then st.prefix else h.id) ^ "." ^ name

let add_edge st callee e_pos =
  let n = current st in
  let e_mask = merge_frames st.frames in
  if
    not
      (List.exists
         (fun e -> String.equal e.callee callee && e.e_mask = e_mask)
         n.edges)
  then n.edges <- { callee; e_pos; e_mask } :: n.edges

let add_fact st fact pos =
  let n = current st in
  n.facts <- (fact, pos) :: n.facts

let record_raise st exn pos =
  if not (mask_catches (merge_frames st.frames) exn) then
    add_fact st (Raise exn) pos

(* A node body runs later and elsewhere: handlers lexically surrounding
   the definition do not surround the execution. *)
let with_node st n f =
  let frames = st.frames in
  st.frames <- [];
  st.stack <- n :: st.stack;
  Fun.protect
    ~finally:(fun () ->
      st.stack <- List.tl st.stack;
      st.frames <- frames)
    f

(* ------------------------------------------------------------------ *)
(* Path canonicalisation *)

type resolved = R_id of string | R_unknown

let rec canon st (p : Path.t) =
  match p with
  | Path.Pident id -> (
      let u = Ident.unique_name id in
      match Hashtbl.find_opt st.locals u with
      | Some target -> R_id target
      | None -> (
          match Hashtbl.find_opt st.aliases u with
          | Some prefix -> R_id prefix
          | None ->
              if Ident.persistent id then
                R_id (Contexts.canonical_unit (Ident.name id))
              else R_unknown))
  | Path.Pdot (p', s) -> (
      match canon st p' with
      | R_id c -> R_id (c ^ "." ^ s)
      | R_unknown -> R_unknown)
  | _ -> R_unknown

let canon_name st p = match canon st p with R_id c -> Some c | R_unknown -> None

let rec head_path (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_apply (f, _) -> head_path f
  | _ -> None

let exn_constr_name (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_construct (_, cstr, _) -> Some cstr.Types.cstr_name
  | _ -> None

let pslint_attrs (attrs : Typedtree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      let n = a.attr_name.txt in
      if
        List.mem n
          [ Contexts.attr_blocking_ok; Contexts.attr_shared_ok;
            Contexts.attr_nonblocking; Contexts.attr_no_escape ]
      then Some n
      else None)
    attrs

let register_attr_roots st (n : node) =
  if List.mem Contexts.attr_nonblocking n.attrs then
    st.g.nonblocking_roots <-
      { r_node = n.id; r_why = "[@pslint.nonblocking]"; r_pos = n.n_pos }
      :: st.g.nonblocking_roots;
  if List.mem Contexts.attr_no_escape n.attrs then
    st.g.escape_roots <-
      { r_node = n.id; r_why = "[@pslint.no_escape]"; r_pos = n.n_pos }
      :: st.g.escape_roots

let add_root st kind target ~why ~pos =
  let r = { r_node = target; r_why = why; r_pos = pos } in
  match kind with
  | `Parallel -> st.g.parallel_roots <- r :: st.g.parallel_roots
  | `Nonblocking -> st.g.nonblocking_roots <- r :: st.g.nonblocking_roots
  | `Escape -> st.g.escape_roots <- r :: st.g.escape_roots

(* The RHS shapes that make a top-level binding shared mutable state. *)
let maker_head st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_array _ -> true
  | Texp_apply (f, _) -> (
      match head_path f with
      | Some p -> (
          match canon_name st p with
          | Some c -> Contexts.find_suffix c Contexts.mutable_makers <> None
          | None -> false)
      | None -> false)
  | _ -> false

let binder_of (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, name) -> Some (id, name.txt)
  | Tpat_alias (_, id, name) -> Some (id, name.txt)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The walk *)

let rec iter_expr st (it : Tast_iterator.iterator) (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> ident_ref st p (pos_of e.exp_loc)
  | Texp_let (_, vbs, body) ->
      handle_bindings st it ~toplevel:false vbs;
      it.expr it body
  | Texp_function { cases; _ } ->
      (* A bare lambda in expression position: its body runs later, so
         lexical handlers do not apply; effects accrue to the defining
         node (conservative). *)
      let frames = st.frames in
      st.frames <- [];
      List.iter (walk_case st it) cases;
      st.frames <- frames
  | Texp_apply (head, args) -> handle_apply st it head args (pos_of e.exp_loc)
  | Texp_try (body, cases) ->
      st.frames <- mask_of_cases mask_of_value_case cases :: st.frames;
      it.expr it body;
      st.frames <- List.tl st.frames;
      List.iter (walk_case st it) cases
  | Texp_match (scrut, cases, _) ->
      st.frames <- mask_of_cases mask_of_comp_case cases :: st.frames;
      it.expr it scrut;
      st.frames <- List.tl st.frames;
      List.iter (walk_case st it) cases
  | Texp_setfield (target, _, _, v) ->
      (match head_path target with
      | Some p -> record_write st p (pos_of e.exp_loc)
      | None -> ());
      it.expr it target;
      it.expr it v
  | _ -> Tast_iterator.default_iterator.expr it e

and walk_case : type k.
    wstate -> Tast_iterator.iterator -> k Typedtree.case -> unit =
 fun st it c ->
  let _ = st in
  Option.iter (it.expr it) c.c_guard;
  it.expr it c.c_rhs

and ident_ref st p pos =
  match canon st p with
  | R_id target -> add_edge st target pos
  | R_unknown -> ()

and record_write st p pos =
  match canon st p with
  | R_id target -> add_fact st (Write target) pos
  | R_unknown -> ()

and handle_apply st it head args apos =
  let head_name =
    match head.exp_desc with
    | Texp_ident (p, _, _) -> canon_name st p
    | _ -> None
  in
  (match head.exp_desc with
  | Texp_ident (p, _, _) -> ident_ref st p (pos_of head.exp_loc)
  | _ -> it.expr it head);
  let hname = Option.value head_name ~default:"" in
  let spawner = Contexts.find_suffix hname Contexts.spawners in
  let signal = Contexts.find_suffix hname Contexts.signal_installers in
  (* Effect facts for primitive heads. *)
  (if
     Contexts.suffix_matches ~pattern:"raise" hname
     || Contexts.suffix_matches ~pattern:"raise_notrace" hname
   then
     match args with
     | (_, Some a) :: _ -> (
         match exn_constr_name a with
         | Some exn -> record_raise st exn apos
         | None -> ())
     | _ -> ());
  (match Contexts.blocking_prim hname with
  | Some why -> add_fact st (Block (hname, why)) apos
  | None -> ());
  List.iter (fun exn -> record_raise st exn apos) (Contexts.raising_prim hname);
  (if Contexts.find_suffix hname Contexts.write_prims <> None then
     match
       List.find_opt (fun (lbl, a) -> lbl = Asttypes.Nolabel && a <> None) args
     with
     | Some (_, Some a) -> (
         match head_path a with
         | Some p -> record_write st p (pos_of a.exp_loc)
         | None -> ())
     | _ -> ());
  (* Root discovery: spawned functional arguments. *)
  let root_kinds =
    match (spawner, signal) with
    | Some s, _ ->
        let escape = List.mem s Contexts.thread_spawners in
        Some
          ( (`Parallel :: (if escape then [ `Escape ] else [])),
            "spawned via " ^ s )
    | None, Some s ->
        Some ([ `Parallel; `Nonblocking; `Escape ], "signal handler via " ^ s)
    | None, None -> None
  in
  let root_arg a =
    (* For [Sys.set_signal sig (Signal_handle f)] the handler sits under
       a constructor; unwrap it first. *)
    let a =
      match a.Typedtree.exp_desc with
      | Texp_construct (_, cstr, [ payload ])
        when String.equal cstr.Types.cstr_name "Signal_handle" ->
          payload
      | _ -> a
    in
    match a.Typedtree.exp_desc with
    | Texp_function _ -> `Lambda a
    | _ -> (
        match head_path a with
        | Some p -> (
            match canon st p with R_id c -> `Named c | R_unknown -> `None)
        | None -> `None)
  in
  List.iter
    (fun (_, aopt) ->
      match aopt with
      | None -> ()
      | Some a -> (
          let rooted = match root_kinds with Some _ -> root_arg a | None -> `None in
          match a.Typedtree.exp_desc with
          | Texp_function { cases; _ } ->
              let id =
                st.anon <- st.anon + 1;
                Printf.sprintf "%s.<fun:%d>" (current st).id
                  (pos_of a.exp_loc).line
              in
              let attrs = pslint_attrs a.exp_attributes in
              let lam =
                fresh_node st ~id ~pos:(pos_of a.exp_loc) ~attrs
                  ~arg_of:head_name
              in
              add_edge st lam.id (pos_of a.exp_loc);
              (match (root_kinds, rooted) with
              | Some (kinds, why), `Lambda _ ->
                  List.iter
                    (fun k ->
                      add_root st k lam.id ~why ~pos:(pos_of a.exp_loc))
                    kinds
              | _ -> ());
              with_node st lam (fun () -> List.iter (walk_case st it) cases)
          | _ ->
              (match (root_kinds, rooted) with
              | Some (kinds, why), `Named c ->
                  List.iter
                    (fun k -> add_root st k c ~why ~pos:(pos_of a.exp_loc))
                    kinds
              | _ -> ());
              it.expr it a))
    args

and handle_bindings st it ~toplevel vbs =
  (* Register every binder first so recursive and mutually-recursive
     references resolve, then walk the right-hand sides. *)
  let classified =
    List.map
      (fun (vb : Typedtree.value_binding) ->
        let binder = binder_of vb.vb_pat in
        let kind =
          match vb.vb_expr.exp_desc with
          | Texp_function _ -> `Fun
          | Texp_ident (p, _, _) -> `Alias p
          | _ -> `Plain
        in
        (vb, binder, kind))
      vbs
  in
  List.iter
    (fun ((vb : Typedtree.value_binding), binder, kind) ->
      match (binder, kind) with
      | Some (id, name), `Fun ->
          let nid = child_id st name in
          let attrs =
            pslint_attrs (vb.vb_attributes @ vb.vb_expr.exp_attributes)
          in
          let n =
            fresh_node st ~id:nid ~pos:(pos_of vb.vb_loc) ~attrs ~arg_of:None
          in
          Hashtbl.replace st.locals (Ident.unique_name id) n.id;
          register_attr_roots st n
      | Some (id, name), `Plain when toplevel && maker_head st vb.vb_expr ->
          let gid = st.prefix ^ "." ^ name in
          st.g.globals <- gid :: st.g.globals;
          Hashtbl.replace st.locals (Ident.unique_name id) gid
      | _ -> ())
    classified;
  List.iter
    (fun ((vb : Typedtree.value_binding), binder, kind) ->
      match (binder, kind) with
      | Some (id, _), `Fun -> (
          let nid = Hashtbl.find st.locals (Ident.unique_name id) in
          match (node st.g nid, vb.vb_expr.exp_desc) with
          | Some n, Texp_function { cases; _ } ->
              with_node st n (fun () -> List.iter (walk_case st it) cases)
          | _ -> it.expr it vb.vb_expr)
      | Some (id, _), `Alias p ->
          (match canon st p with
          | R_id target -> Hashtbl.replace st.locals (Ident.unique_name id) target
          | R_unknown -> ());
          ident_ref st p (pos_of vb.vb_expr.exp_loc)
      | _ -> it.expr it vb.vb_expr)
    classified

and iter_item st (it : Tast_iterator.iterator)
    (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      handle_bindings st it ~toplevel:(is_init (current st).id) vbs
  | Tstr_eval (e, _) -> it.expr it e
  | Tstr_module mb -> handle_module st it mb
  | Tstr_recmodule mbs -> List.iter (handle_module st it) mbs
  | _ -> Tast_iterator.default_iterator.structure_item it item

and handle_module st it (mb : Typedtree.module_binding) =
  let name =
    match mb.mb_name.txt with Some n -> n | None -> "_"
  in
  let rec go (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> (
        match canon st p with
        | R_id c -> (
            match mb.mb_id with
            | Some id -> Hashtbl.replace st.aliases (Ident.unique_name id) c
            | None -> ())
        | R_unknown -> ())
    | Tmod_structure str ->
        let saved = st.prefix in
        st.prefix <- st.prefix ^ "." ^ name;
        (match mb.mb_id with
        | Some id -> Hashtbl.replace st.aliases (Ident.unique_name id) st.prefix
        | None -> ());
        List.iter (iter_item st it) str.str_items;
        st.prefix <- saved
    | Tmod_constraint (me', _, _, _) -> go me'
    | _ -> Tast_iterator.default_iterator.module_expr it me
  in
  go mb.mb_expr

let make_iterator st =
  {
    Tast_iterator.default_iterator with
    expr = (fun it e -> iter_expr st it e);
    structure_item = (fun it si -> iter_item st it si);
  }

let walk_implementation g ~modcanon (str : Typedtree.structure) =
  let st =
    {
      g;
      aliases = Hashtbl.create 16;
      locals = Hashtbl.create 64;
      stack = [];
      frames = [];
      prefix = modcanon;
      anon = 0;
    }
  in
  let init =
    fresh_node st
      ~id:(modcanon ^ ".<init>")
      ~pos:{ file = ""; line = 1; col = 0 }
      ~attrs:[] ~arg_of:None
  in
  st.stack <- [ init ];
  let it = make_iterator st in
  List.iter (iter_item st it) str.str_items

(* ------------------------------------------------------------------ *)
(* Loading *)

let rec cmt_files path acc =
  if Sys.is_directory path then
    (* dune keeps .cmt files inside dot-directories (.lib.objs): do NOT
       skip hidden entries here, unlike the source walker. *)
    Array.fold_left
      (fun acc entry -> cmt_files (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let build ~cmt_dirs =
  let g =
    {
      nodes = Hashtbl.create 512;
      globals = [];
      parallel_roots = [];
      nonblocking_roots = [];
      escape_roots = [];
    }
  in
  let files =
    List.sort String.compare
      (List.concat_map
         (fun d -> if Sys.file_exists d then cmt_files d [] else [])
         cmt_dirs)
  in
  List.iter
    (fun f ->
      match Cmt_format.read_cmt f with
      | { cmt_annots = Implementation str; cmt_modname; _ } ->
          walk_implementation g
            ~modcanon:(Contexts.canonical_unit cmt_modname)
            str
      | _ -> ()
      | exception _ -> ())
    files;
  g
