type pos = { file : string; line : int; col : int }
type step = { s_name : string; s_pos : pos }

type finding = {
  f_pos : pos;
  rule : string;
  message : string;
  chain : step list;
}

let make ~file ~line ~col ~rule message =
  { f_pos = { file; line; col }; rule; message; chain = [] }

let compare a b =
  match String.compare a.f_pos.file b.f_pos.file with
  | 0 -> (
      match Int.compare a.f_pos.line b.f_pos.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let render f =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s:%d:%d: [%s] %s" f.f_pos.file f.f_pos.line f.f_pos.col
       f.rule f.message);
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf "\n    %s %s (%s:%d)"
           (if i = 0 then "  " else "\xe2\x86\x92")
           s.s_name s.s_pos.file s.s_pos.line))
    f.chain;
  Buffer.contents b

let baseline_key f =
  let root = match f.chain with s :: _ -> s.s_name | [] -> "-" in
  String.concat "|" [ f.rule; f.f_pos.file; root; f.message ]

let load_baseline path =
  let keys = Hashtbl.create 16 in
  (if Sys.file_exists path then
     let ic = open_in_bin path in
     Fun.protect
       ~finally:(fun () -> close_in ic)
       (fun () ->
         try
           while true do
             let line = String.trim (input_line ic) in
             if String.length line > 0 && line.[0] <> '#' then
               Hashtbl.replace keys line ()
           done
         with End_of_file -> ()));
  keys

let split_baselined keys findings =
  List.partition (fun f -> not (Hashtbl.mem keys (baseline_key f))) findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let filter_suppressed ~resolve findings =
  let cache : (string, Suppress.t) Hashtbl.t = Hashtbl.create 16 in
  let suppressions file =
    match Hashtbl.find_opt cache file with
    | Some s -> s
    | None ->
        let s =
          match resolve file with
          | Some path when Sys.file_exists path -> (
              match Suppress.scan (read_file path) with
              | s -> s
              | exception Sys_error _ -> Suppress.empty)
          | _ -> Suppress.empty
        in
        Hashtbl.replace cache file s;
        s
  in
  List.filter
    (fun f ->
      not
        (Suppress.suppressed (suppressions f.f_pos.file) ~rule:f.rule
           ~line:f.f_pos.line))
    findings
