(** SARIF 2.1.0 rendering of findings, for CI artifact upload and code
    scanning ingestion.  Self-contained JSON emitter — the analyzer must
    not depend on the serving tier's codec.

    Call chains are emitted as [codeFlows] so a viewer can replay
    [root → f → g → violation] hop by hop. *)

val emit : Report.finding list -> string
(** The complete SARIF document, UTF-8 JSON. *)
