(** Suppression comments, scanned from raw source text with a real
    comment lexer.

    A comment containing ["pslint: allow <rule> [<rule>...]"] suppresses
    those rules on every line the comment spans {e plus the following
    line}, so both

    {[
      x := 1 (* pslint: allow race *)
    ]}

    and

    {[
      (* Deliberate: the dispatcher parks here between batches.
         pslint: allow blocking *)
      Condition.wait t.nonempty t.mutex
    ]}

    work — including comments whose [(* ... *)] spans multiple lines,
    which the pre-analyzer pslint only honoured on the closing line.

    ["pslint: allow-file <rule>"] anywhere suppresses the rules for the
    whole file.  Nested comments and string literals (plain, [{|...|}]
    quoted, and inside comments, as OCaml lexes them) are handled. *)

type t

val empty : t
(** No suppressions (used when the source text is unavailable). *)

val scan : string -> t
(** [scan text] extracts every suppression comment from [text]. *)

val suppressed : t -> rule:string -> line:int -> bool
(** Is [rule] suppressed at [line] (1-based)? *)
