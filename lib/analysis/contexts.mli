(** Classification tables for the interprocedural analyzer: which
    primitives spawn parallel contexts, which block, which raise, which
    guard — and how typedtree [Path.t]s are canonicalised so that the
    same function has one name everywhere.

    Canonical names: dune's module wrapping compiles
    [lib/server/engine.ml] as the unit [Ps_server__Engine]; we rewrite
    the ["__"] separator to ["."], so a cross-module reference and the
    definition site both name [Ps_server.Engine.submit].  Primitives are
    matched by dot-separated {e suffix} ([Parallel.fork_join] matches
    [Ps_util.Parallel.fork_join]; [Domain.spawn] matches
    [Stdlib.Domain.spawn]) so tables stay stable across [Stdlib]
    re-exports and library wrappers. *)

val canonical_unit : string -> string
(** [canonical_unit "Ps_server__Engine"] is ["Ps_server.Engine"]. *)

val suffix_matches : pattern:string -> string -> bool
(** Does canonical name [name] equal [pattern] or end with
    ["." ^ pattern]? *)

val find_suffix : string -> string list -> string option
(** First pattern in the list that suffix-matches the name. *)

val spawners : string list
(** Call heads whose functional arguments run in another domain or
    thread: these arguments become {e parallel roots} (race rule) and,
    for the domain/thread spawners, {e escape roots} (an exception
    escaping the entry point kills the domain or thread silently). *)

val thread_spawners : string list
(** The subset of {!spawners} whose argument runs on a bare domain or
    thread, where an escaping exception is lost (escape roots). *)

val signal_installers : string list
(** [Sys.signal]/[Sys.set_signal] — a [Signal_handle f] argument makes
    [f] a root for all three rules (handlers run on whatever thread is
    interrupted, must not block, must not raise). *)

val guard_wrappers : string list
(** Call heads whose functional argument runs under a lock
    ([Mutex.protect]).  Repo-local wrappers qualify structurally: any
    node that itself takes a lock guards the lambdas passed to it. *)

val lock_prims : string list
(** Lock acquisitions ([Mutex.lock], [Mutex.protect]): a node containing
    one is treated as lock-holding for the race rule's guard check. *)

val blocking_prim : string -> string option
(** [blocking_prim name] is [Some description] when a call to canonical
    [name] may park the calling thread: mutex/condition primitives,
    thread join/delay, channel I/O, and [Unix.*] syscalls minus an
    allowlist of memory-only operations. *)

val raising_prim : string -> string list
(** Exceptions a call to canonical [name] may raise, for a curated table
    of partial stdlib functions ([Hashtbl.find] → [Not_found], channel
    reads → [End_of_file]/[Sys_error], [Unix.*] → [Unix_error], ...).
    Deliberately small: total-in-practice functions ([Queue.pop] after
    an emptiness check) are excluded to keep the escape rule quiet. *)

val write_prims : string list
(** Call heads whose first positional argument is mutated in place
    ([:=], [incr], [Hashtbl.replace], [Buffer.add_string], ...).  A
    write fact is recorded when that argument resolves to module-level
    mutable state. *)

val mutable_makers : string list
(** Allocation heads that make a module-level binding count as shared
    mutable state ([ref], [Hashtbl.create], ...).  [Atomic.make],
    [Mutex.create] and [Domain.DLS.new_key] are deliberately absent —
    they are the sanctioned synchronised forms. *)

(** Function-level attribute names (written [let[@pslint.nonblocking] f]
    or on the binding). *)

val attr_blocking_ok : string
(** Barrier: this function's blocking is audited; the blocking rule
    neither reports its primitives nor traverses past it. *)

val attr_shared_ok : string
(** Barrier for the race rule, same shape. *)

val attr_nonblocking : string
(** Root: this function runs on a hot path that must never park
    (dispatcher loops, coalescing writers). *)

val attr_no_escape : string
(** Root: no exception may escape this function (reply boundaries). *)

val has_attr : string -> Typedtree.attributes -> bool
(** Is the named attribute present (exact match on the dotted name)? *)
