(** The three effect lattices propagated over the call graph, and the
    findings they produce.

    {b race} — from each parallel root (a function spawned onto another
    domain/thread or run under [Parallel.fork_join]), every reachable
    write to module-level mutable state is a finding unless the write
    happens with a lock held: the traversal carries lock context, set
    when a path enters a node that contains
    [Mutex.lock]/[Mutex.protect], or a lambda handed to [Mutex.protect]
    or to a function that locks (the [Telemetry.locked (fun () -> ...)]
    idiom) — so helpers invoked only under the lock are guarded too.
    [\[@pslint.shared_ok\]] is a traversal barrier.

    {b blocking} — from each [\[@pslint.nonblocking\]] root and signal
    handler, every reachable blocking primitive is a finding.
    [\[@pslint.blocking_ok\]] is a traversal barrier (audited blocking,
    e.g. the engine's sole-submitter backpressure wait).

    {b escape} — from each domain/thread entry point and
    [\[@pslint.no_escape\]] root, every raise whose constructor is not
    certainly caught along the path is a finding; edges subtract the
    exception masks of the handlers surrounding their call site.

    Findings carry the full call chain (root first).  Suppression
    comments and the baseline are applied by the caller — this module is
    pure graph traversal. *)

type rule = Race | Blocking | Escape

val rule_id : rule -> string
(** ["race"], ["blocking"], ["escape"] — the names suppression comments
    and [--disable] use. *)

val run : Callgraph.t -> enabled:(rule -> bool) -> Report.finding list
(** All findings of the enabled rules, deduplicated (one finding per
    violation site and payload; the first discovering root supplies the
    chain), in {!Report.compare} order. *)
