module H = Ps_hypergraph.Hypergraph
module Mc = Ps_cfc.Multicolor
module D = Diagnostic

let rep_rule = "multicoloring-rep"
let cf_rule = "conflict-free"

let representation h (mc : Mc.t) =
  let a = D.acc () in
  let n = H.n_vertices h in
  if Array.length mc <> n then
    D.push a
      (D.v rep_rule D.Global "multicoloring covers %d vertices, hypergraph has %d"
         (Array.length mc) n)
  else
    Array.iteri
      (fun v colors ->
        let rec walk = function
          | [] -> ()
          | c :: rest ->
              if c < 0 then
                D.push a (D.v rep_rule (D.Vertex v) "negative color %d" c)
              else
                (match rest with
                | c' :: _ when c' <= c ->
                    D.push a
                      (D.v rep_rule (D.Vertex v)
                         "color list not strictly increasing: %d then %d" c c')
                | _ -> ());
              walk rest
        in
        walk colors)
      mc;
  D.close a

(* Why an edge is unhappy, concretely: every (vertex, color) pair it
   could nominate collides with another member holding the same color.
   The message names one such collision so the reader can start there. *)
let unhappy_detail h mc e =
  let members = H.edge h e in
  let example = ref None in
  Array.iter
    (fun v ->
      List.iter
        (fun c ->
          if Option.is_none !example then
            Array.iter
              (fun u ->
                if u <> v && Option.is_none !example
                   && List.exists (fun c' -> c' = c) (Mc.colors_of mc u)
                then example := Some (v, c, u))
              members)
        (Mc.colors_of mc v))
    members;
  !example

let multicoloring h mc =
  match representation h mc with
  | _ :: _ as rep -> rep (* shape is broken; happiness is undefined *)
  | [] ->
      let a = D.acc () in
      for e = 0 to H.n_edges h - 1 do
        if not (Mc.happy h mc e) then
          let members =
            H.edge h e |> Array.to_list |> List.map string_of_int
            |> String.concat ","
          in
          match unhappy_detail h mc e with
          | Some (v, c, u) ->
              D.push a
                (D.v cf_rule (D.Edge e)
                   "no uniquely-colored vertex among {%s} — e.g. color %d of \
                    vertex %d is also held by vertex %d"
                   members c v u)
          | None ->
              D.push a
                (D.v cf_rule (D.Edge e)
                   "no member of {%s} carries any color" members)
      done;
      D.close a

let conflict_free h mc =
  match multicoloring h mc with [] -> true | _ -> false
