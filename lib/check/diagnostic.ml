type where =
  | Global
  | Vertex of int
  | Edge of int
  | Graph_edge of int * int
  | Row of int
  | Offset of int
  | Phase of int

type t = { rule : string; where : where; message : string }

let v rule where fmt =
  Format.kasprintf (fun message -> { rule; where; message }) fmt

let pp_where ppf = function
  | Global -> Format.pp_print_string ppf "global"
  | Vertex v -> Format.fprintf ppf "vertex %d" v
  | Edge e -> Format.fprintf ppf "edge %d" e
  | Graph_edge (u, v) -> Format.fprintf ppf "edge (%d,%d)" u v
  | Row v -> Format.fprintf ppf "row %d" v
  | Offset i -> Format.fprintf ppf "offset %d" i
  | Phase i -> Format.fprintf ppf "phase %d" i

let pp ppf d =
  Format.fprintf ppf "[%s] %a: %s" d.rule pp_where d.where d.message

let to_string d = Format.asprintf "%a" pp d

let where_kind = function
  | Global -> "global"
  | Vertex _ -> "vertex"
  | Edge _ -> "edge"
  | Graph_edge _ -> "graph_edge"
  | Row _ -> "row"
  | Offset _ -> "offset"
  | Phase _ -> "phase"

let where_indices = function
  | Global -> []
  | Vertex i | Edge i | Row i | Offset i | Phase i -> [ i ]
  | Graph_edge (u, v) -> [ u; v ]

(* Bounded accumulator: certifiers on corrupted large inputs must not
   build million-entry diagnostic lists.  Overflow is summarized by one
   trailing diagnostic so "how much more is wrong" is never silent. *)
type acc = {
  limit : int;
  mutable kept : t list; (* newest first *)
  mutable count : int;
}

let default_limit = 64
let acc ?(limit = default_limit) () = { limit; kept = []; count = 0 }

let push a d =
  a.count <- a.count + 1;
  if a.count <= a.limit then a.kept <- d :: a.kept

let count a = a.count

let close a =
  let kept = List.rev a.kept in
  if a.count <= a.limit then kept
  else
    kept
    @ [ v "diagnostic-limit" Global
          "%d further diagnostics suppressed (limit %d)" (a.count - a.limit)
          a.limit ]
