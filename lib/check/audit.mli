(** Whole-run certification: everything Theorem 1.1 promises about a
    finished reduction, re-checked from first principles.

    Combines the conflict-free multicoloring certifier with the phase
    decay/budget audits and cross-checks the run's own bookkeeping
    (reported color count vs. the multicoloring).  An empty diagnostic
    list is the machine-checkable certificate [pslocal audit] and the
    server's [check] method report. *)

val reduction :
  h:Ps_hypergraph.Hypergraph.t ->
  k:int ->
  multicoloring:Ps_cfc.Multicolor.t ->
  colors_used:int ->
  total_phases:int ->
  phases:Check_phase.phase list ->
  Diagnostic.t list

val ok : Diagnostic.t list -> bool
(** [ok d] iff [d] is empty. *)
