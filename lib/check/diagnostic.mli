(** Positioned audit diagnostics.

    Every certifier in this library reports failures as a list of these —
    a machine-readable rule name, a structured position inside the object
    being checked, and a human message.  An empty list is the certificate
    that every invariant held.  The server's [check] method and
    [pslocal audit] render the same values, so wire and CLI diagnostics
    cannot drift apart. *)

type where =
  | Global                    (** the object as a whole *)
  | Vertex of int             (** a (hyper)graph vertex *)
  | Edge of int               (** a hyperedge index *)
  | Graph_edge of int * int   (** a graph edge (u, v) *)
  | Row of int                (** a CSR adjacency row *)
  | Offset of int             (** a CSR offset slot *)
  | Phase of int              (** a reduction phase index *)

type t = { rule : string; where : where; message : string }

val v : string -> where -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [v rule where fmt ...] formats a diagnostic. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["[rule] where: message"]. *)

val to_string : t -> string

val pp_where : Format.formatter -> where -> unit

val where_kind : where -> string
(** Stable lowercase tag for wire encodings ("vertex", "graph_edge", ...). *)

val where_indices : where -> int list
(** The integer coordinates of the position, outermost first. *)

(** {1 Bounded accumulation}

    Certifiers use an accumulator capped at {!default_limit} entries (a
    corrupted million-edge input must not materialize a million
    diagnostics); overflow is summarized by a final [diagnostic-limit]
    entry carrying the suppressed count. *)

type acc

val default_limit : int
(** 64. *)

val acc : ?limit:int -> unit -> acc
val push : acc -> t -> unit

val count : acc -> int
(** Total pushed, including suppressed. *)

val close : acc -> t list
(** Kept diagnostics in push order, plus the overflow summary if any. *)
