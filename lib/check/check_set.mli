(** Independent-set and dominating-set certificates.

    The two vertex-set objects the repository's solvers emit, audited
    against the graph: an independent set has no internal edge (Lemma 2.1
    rests on exactly this for the conflict graph), a dominating set
    touches every closed neighborhood.  Each violation is positioned at
    the offending edge or vertex. *)

val independent : Ps_graph.Graph.t -> Ps_util.Bitset.t -> Diagnostic.t list
(** Rule [independent-set]: one diagnostic per internal edge (canonical
    [u < v] orientation), bounded per {!Diagnostic.acc}. *)

val maximal_independent :
  Ps_graph.Graph.t -> Ps_util.Bitset.t -> Diagnostic.t list
(** {!independent} plus rule [maximal-independent-set]: every outside
    vertex must see a selected neighbor. *)

val dominating : Ps_graph.Graph.t -> Ps_util.Bitset.t -> Diagnostic.t list
(** Rule [dominating-set]: one diagnostic per undominated vertex. *)

(** {1 Untrusted vertex lists}

    The server's [check] method receives sets as id lists; out-of-range
    ids become positioned diagnostics instead of exceptions.  Range
    errors short-circuit the semantic check (a set that does not parse
    has no meaningful certificate). *)

val independent_list : Ps_graph.Graph.t -> int list -> Diagnostic.t list
val dominating_list : Ps_graph.Graph.t -> int list -> Diagnostic.t list
