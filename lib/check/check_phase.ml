module D = Diagnostic

type phase = {
  index : int;
  edges_before : int;
  is_size : int;
  newly_happy : int;
  lambda_effective : float;
}

(* Floating-point slack for the analytic inequalities: the recorded λ is
   itself a quotient of the recorded integers, so the re-derived bounds
   are exact up to rounding of that division. *)
let eps = 1e-9

let happiness ps =
  let a = D.acc () in
  List.iter
    (fun p ->
      if p.newly_happy < p.is_size then
        D.push a
          (D.v "phase-happiness" (D.Phase p.index)
             "only %d edges became happy for an independent set of size %d \
              (Lemma 2.1 promises one per selected triple)"
             p.newly_happy p.is_size);
      if p.newly_happy <= 0 then
        D.push a
          (D.v "phase-happiness" (D.Phase p.index)
             "phase retired no edge — the loop cannot terminate"))
    ps;
  D.close a

let lambda ps =
  let a = D.acc () in
  List.iter
    (fun p ->
      if p.is_size > 0 then begin
        let expected =
          float_of_int p.edges_before /. float_of_int p.is_size
        in
        if Float.abs (p.lambda_effective -. expected) > eps then
          D.push a
            (D.v "phase-lambda" (D.Phase p.index)
               "recorded λ = %.6f but |E_i|/|I_i| = %d/%d = %.6f"
               p.lambda_effective p.edges_before p.is_size expected)
      end
      else if p.edges_before > 0 && Float.is_finite p.lambda_effective then
        D.push a
          (D.v "phase-lambda" (D.Phase p.index)
             "empty independent set on %d edges must record λ = ∞"
             p.edges_before))
    ps;
  D.close a

let decay ps =
  let a = D.acc () in
  let rec walk = function
    | [] | [ _ ] -> ()
    | p :: (q :: _ as rest) ->
        if q.index <> p.index + 1 then
          D.push a
            (D.v "phase-decay" (D.Phase q.index)
               "phase indices not consecutive: %d after %d" q.index p.index);
        (* Exact bookkeeping: the next phase sees precisely the edges
           this one did not retire. *)
        if q.edges_before <> p.edges_before - p.newly_happy then
          D.push a
            (D.v "phase-decay" (D.Phase q.index)
               "|E_{i+1}| = %d but |E_i| - newly_happy = %d - %d = %d"
               q.edges_before p.edges_before p.newly_happy
               (p.edges_before - p.newly_happy));
        (* The proof's analytic bound: |E_{i+1}| ≤ (1 - 1/λ_i)·|E_i|. *)
        let bound =
          float_of_int p.edges_before
          *. (1.0 -. (1.0 /. p.lambda_effective))
        in
        if float_of_int q.edges_before > bound +. eps then
          D.push a
            (D.v "phase-decay" (D.Phase q.index)
               "|E_{i+1}| = %d exceeds (1 - 1/λ)·|E_i| = %.3f"
               q.edges_before bound);
        walk rest
  in
  walk ps;
  D.close a

let termination ps =
  let a = D.acc () in
  (match List.rev ps with
  | [] -> ()
  | last :: _ ->
      let leftover = last.edges_before - last.newly_happy in
      if leftover <> 0 then
        D.push a
          (D.v "phase-termination" (D.Phase last.index)
             "%d edges remain after the final phase" leftover));
  D.close a

let lambda_max ps =
  List.fold_left (fun m p -> Float.max m p.lambda_effective) 1.0 ps

let rho_bound ~m ~total_phases ps =
  let a = D.acc () in
  let lmax = lambda_max ps in
  let rho = if m = 0 then 1.0 else (lmax *. log (float_of_int m)) +. 1.0 in
  if float_of_int total_phases > rho +. eps then
    D.push a
      (D.v "rho-bound" D.Global
         "%d phases exceed ρ = λmax·ln m + 1 = %.2f·ln %d + 1 = %.2f"
         total_phases lmax m rho);
  D.close a

let color_budget ~k ~total_phases ~colors_used =
  let a = D.acc () in
  let budget = k * total_phases in
  if colors_used > budget then
    D.push a
      (D.v "color-budget" D.Global
         "%d colors used exceed the k·ρ budget of k·phases = %d·%d = %d"
         colors_used k total_phases budget);
  D.close a

let audit ~m ~k ~colors_used ~total_phases ps =
  let a = D.acc () in
  if List.length ps <> total_phases then
    D.push a
      (D.v "phase-bookkeeping" D.Global
         "%d phase records for a run reporting %d phases" (List.length ps)
         total_phases);
  (match ps with
  | p0 :: _ when p0.edges_before <> m ->
      D.push a
        (D.v "phase-bookkeeping" (D.Phase p0.index)
           "first phase saw %d edges, hypergraph has %d" p0.edges_before m)
  | [] when m > 0 ->
      D.push a
        (D.v "phase-bookkeeping" D.Global
           "no phase records for a hypergraph with %d edges" m)
  | _ -> ());
  D.close a
  @ happiness ps @ lambda ps @ decay ps @ termination ps
  @ rho_bound ~m ~total_phases ps
  @ color_budget ~k ~total_phases ~colors_used
