(** Conflict-free multicoloring certification (the reduction's output
    object, Theorem 1.2's input problem).

    Two layers: representation — the {!Ps_cfc.Multicolor.t} array must
    cover the vertex set with sorted, distinct, nonnegative color lists —
    and semantics — every hyperedge must own a (vertex, color) pair
    unique within the edge.  An unhappy edge's diagnostic names a
    concrete collision, which is what makes a rejected certificate
    actionable. *)

val representation :
  Ps_hypergraph.Hypergraph.t -> Ps_cfc.Multicolor.t -> Diagnostic.t list
(** Rule [multicoloring-rep]: shape and per-vertex color-list invariants. *)

val multicoloring :
  Ps_hypergraph.Hypergraph.t -> Ps_cfc.Multicolor.t -> Diagnostic.t list
(** {!representation} first; when the shape is sound, rule
    [conflict-free] adds one positioned diagnostic per unhappy edge. *)

val conflict_free :
  Ps_hypergraph.Hypergraph.t -> Ps_cfc.Multicolor.t -> bool
