(** Per-phase decay and budget audits for the Theorem 1.1 reduction.

    The reduction's correctness argument is quantitative: with a
    λ-approximate MaxIS oracle each phase retires at least [|E_i|/λ]
    edges ([|E_{i+1}| ≤ (1 − 1/λ)·|E_i|]), so [ρ = λ·ln m + 1] phases
    suffice and the union coloring spends at most [k·ρ] colors.  These
    certifiers re-derive every one of those inequalities from recorded
    per-phase numbers.  The record type here is deliberately independent
    of [Ps_core] (this library sits below it so the reduction loop can
    call the graph/set checkers at phase boundaries);
    [Ps_core.Certify.diagnostics] converts and aggregates. *)

type phase = {
  index : int;              (** 0-based, consecutive *)
  edges_before : int;       (** [|E_i|] *)
  is_size : int;            (** [|I^i|] *)
  newly_happy : int;        (** edges retired by the phase *)
  lambda_effective : float; (** recorded [|E_i| / |I^i|] *)
}

val happiness : phase list -> Diagnostic.t list
(** Rule [phase-happiness]: [newly_happy ≥ is_size] (Lemma 2.1: each
    selected triple makes its edge happy) and [newly_happy > 0]. *)

val lambda : phase list -> Diagnostic.t list
(** Rule [phase-lambda]: the recorded λ equals [|E_i|/|I_i|]. *)

val decay : phase list -> Diagnostic.t list
(** Rule [phase-decay]: consecutive indices, exact edge bookkeeping
    [|E_{i+1}| = |E_i| − newly_happy], and the analytic bound
    [|E_{i+1}| ≤ (1 − 1/λ_i)·|E_i|]. *)

val termination : phase list -> Diagnostic.t list
(** Rule [phase-termination]: the final phase leaves zero edges. *)

val rho_bound : m:int -> total_phases:int -> phase list -> Diagnostic.t list
(** Rule [rho-bound]: [total_phases ≤ λmax·ln m + 1]. *)

val color_budget :
  k:int -> total_phases:int -> colors_used:int -> Diagnostic.t list
(** Rule [color-budget]: [colors_used ≤ k·total_phases]. *)

val lambda_max : phase list -> float
(** Largest recorded λ (1.0 when empty). *)

val audit :
  m:int ->
  k:int ->
  colors_used:int ->
  total_phases:int ->
  phase list ->
  Diagnostic.t list
(** Everything above, plus rule [phase-bookkeeping] (record count matches
    the reported phase count; the first phase saw all [m] edges). *)
