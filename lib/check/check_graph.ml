module G = Ps_graph.Graph
module D = Diagnostic

let rule = "csr"

(* The checker re-derives every structural invariant from the raw arrays
   rather than trusting the accessors: [Graph.of_csr ~validate:false]
   (the production fast path) adopts caller arrays unchecked, so this is
   the independent referee for that trust. *)
let csr g =
  let a = D.acc () in
  let offsets, adj = G.to_csr g in
  let n = G.n_vertices g in
  let len_adj = Array.length adj in
  if Array.length offsets <> n + 1 then begin
    D.push a
      (D.v rule D.Global "offsets has length %d, expected n+1 = %d"
         (Array.length offsets) (n + 1));
    D.close a
  end
  else begin
    if offsets.(0) <> 0 then
      D.push a (D.v rule (D.Offset 0) "offsets.(0) = %d, expected 0" offsets.(0));
    for v = 0 to n - 1 do
      if offsets.(v + 1) < offsets.(v) then
        D.push a
          (D.v rule (D.Offset (v + 1)) "offsets decrease: %d after %d"
             offsets.(v + 1) offsets.(v))
    done;
    if offsets.(n) <> len_adj then
      D.push a
        (D.v rule (D.Offset n) "offsets.(n) = %d but |adj| = %d" offsets.(n)
           len_adj);
    if len_adj mod 2 <> 0 then
      D.push a
        (D.v rule D.Global "|adj| = %d is odd — rows cannot be symmetric"
           len_adj);
    (* Per-row invariants; guard the bounds so a corrupted offsets array
       yields diagnostics, not an array access exception. *)
    let row_ok v = offsets.(v) >= 0 && offsets.(v) <= offsets.(v + 1)
                   && offsets.(v + 1) <= len_adj in
    for v = 0 to n - 1 do
      if not (row_ok v) then
        D.push a
          (D.v rule (D.Row v) "row bounds [%d, %d) fall outside adj (length %d)"
             offsets.(v) offsets.(v + 1) len_adj)
      else begin
        let lo = offsets.(v) and hi = offsets.(v + 1) in
        for i = lo to hi - 1 do
          let u = adj.(i) in
          if u < 0 || u >= n then
            D.push a
              (D.v rule (D.Row v) "entry %d out of range [0, %d)" u n)
          else if u = v then
            D.push a (D.v rule (D.Row v) "self-loop: %d adjacent to itself" v)
          else if i > lo && adj.(i - 1) >= u then
            D.push a
              (D.v rule (D.Row v)
                 "row not strictly increasing: %d then %d (slots %d, %d)"
                 adj.(i - 1) u (i - 1) i)
        done
      end
    done;
    (* Symmetry: every arc (v, u) needs its mate (u, v).  Linear row scan
       on purpose — binary search would assume the sortedness we may just
       have found violated. *)
    for v = 0 to n - 1 do
      if row_ok v then
        for i = offsets.(v) to offsets.(v + 1) - 1 do
          let u = adj.(i) in
          if u >= 0 && u < n && u <> v && row_ok u then begin
            let present = ref false in
            for j = offsets.(u) to offsets.(u + 1) - 1 do
              if adj.(j) = v then present := true
            done;
            if not !present then
              D.push a
                (D.v rule (D.Graph_edge (v, u))
                   "asymmetric: %d lists %d but %d does not list %d" v u u v)
          end
        done
    done;
    (* Accessor consistency: the sizes the rest of the repository reads
       must match what the arrays actually hold. *)
    if D.count a = 0 then begin
      if G.n_edges g * 2 <> len_adj then
        D.push a
          (D.v rule D.Global "n_edges = %d but adj holds %d arcs" (G.n_edges g)
             len_adj);
      for v = 0 to n - 1 do
        if G.degree g v <> offsets.(v + 1) - offsets.(v) then
          D.push a
            (D.v rule (D.Row v) "degree %d but row length %d" (G.degree g v)
               (offsets.(v + 1) - offsets.(v)))
      done
    end;
    D.close a
  end

let csr_ok g = csr g = []
