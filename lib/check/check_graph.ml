module G = Ps_graph.Graph
module D = Diagnostic

let rule = "csr"

(* The checker re-derives every structural invariant from the raw
   representation rather than trusting the accessors: [Graph.of_csr
   ~validate:false] (the production fast path) adopts caller arrays
   unchecked, so this is the independent referee for that trust.

   It audits through [Graph.csr_view] — a zero-copy window onto the
   internal offsets array and adjacency store — instead of the copying
   [Graph.to_csr]: on a 10^8-edge instance the copy would double peak
   memory and cost more than the audit itself, and a copy can only ever
   show what the copier chose to materialize.  The view's [v_exact] flag
   distinguishes exact graphs (physical lengths equal logical ones) from
   arena-backed prefixes ([Graph.of_csr_prefix]), whose spare capacity
   is legal and ignored. *)
let csr g =
  let a = D.acc () in
  let v = G.csr_view g in
  let n = v.G.v_n in
  let offsets = v.G.v_offsets in
  let get = v.G.v_get in
  let store_len = v.G.v_store_len in
  let off_len = Array.length offsets in
  if (if v.G.v_exact then off_len <> n + 1 else off_len < n + 1) then begin
    D.push a
      (D.v rule D.Global "offsets has length %d, expected %s n+1 = %d" off_len
         (if v.G.v_exact then "" else "at least")
         (n + 1));
    D.close a
  end
  else begin
    if offsets.(0) <> 0 then
      D.push a (D.v rule (D.Offset 0) "offsets.(0) = %d, expected 0" offsets.(0));
    for x = 0 to n - 1 do
      if offsets.(x + 1) < offsets.(x) then
        D.push a
          (D.v rule (D.Offset (x + 1)) "offsets decrease: %d after %d"
             offsets.(x + 1) offsets.(x))
    done;
    if
      if v.G.v_exact then offsets.(n) <> store_len
      else offsets.(n) > store_len
    then
      D.push a
        (D.v rule (D.Offset n) "offsets.(n) = %d but store holds %d entries"
           offsets.(n) store_len);
    let arcs = offsets.(n) in
    if arcs >= 0 && arcs mod 2 <> 0 then
      D.push a
        (D.v rule D.Global "%d arcs — odd, rows cannot be symmetric" arcs);
    (* Per-row invariants; guard the bounds so a corrupted offsets array
       yields diagnostics, not an array access exception.  The physical
       store length is the hard bound — arena spare capacity past
       [offsets.(n)] is legal but no row may reach into it, which the
       monotonicity + offsets.(n) checks above already police. *)
    let row_ok x = offsets.(x) >= 0 && offsets.(x) <= offsets.(x + 1)
                   && offsets.(x + 1) <= store_len in
    for x = 0 to n - 1 do
      if not (row_ok x) then
        D.push a
          (D.v rule (D.Row x)
             "row bounds [%d, %d) fall outside the store (length %d)"
             offsets.(x) offsets.(x + 1) store_len)
      else begin
        let lo = offsets.(x) and hi = offsets.(x + 1) in
        for i = lo to hi - 1 do
          let u = get i in
          if u < 0 || u >= n then
            D.push a
              (D.v rule (D.Row x) "entry %d out of range [0, %d)" u n)
          else if u = x then
            D.push a (D.v rule (D.Row x) "self-loop: %d adjacent to itself" x)
          else if i > lo && get (i - 1) >= u then
            D.push a
              (D.v rule (D.Row x)
                 "row not strictly increasing: %d then %d (slots %d, %d)"
                 (get (i - 1)) u (i - 1) i)
        done
      end
    done;
    (* Symmetry: every arc (x, u) needs its mate (u, x).  Linear row scan
       on purpose — binary search would assume the sortedness we may just
       have found violated. *)
    for x = 0 to n - 1 do
      if row_ok x then
        for i = offsets.(x) to offsets.(x + 1) - 1 do
          let u = get i in
          if u >= 0 && u < n && u <> x && row_ok u then begin
            let present = ref false in
            for j = offsets.(u) to offsets.(u + 1) - 1 do
              if get j = x then present := true
            done;
            if not !present then
              D.push a
                (D.v rule (D.Graph_edge (x, u))
                   "asymmetric: %d lists %d but %d does not list %d" x u u x)
          end
        done
    done;
    (* Accessor consistency: the sizes the rest of the repository reads
       must match what the store actually holds. *)
    if D.count a = 0 then begin
      if G.n_edges g * 2 <> arcs then
        D.push a
          (D.v rule D.Global "n_edges = %d but the store holds %d arcs"
             (G.n_edges g) arcs);
      for x = 0 to n - 1 do
        if G.degree g x <> offsets.(x + 1) - offsets.(x) then
          D.push a
            (D.v rule (D.Row x) "degree %d but row length %d" (G.degree g x)
               (offsets.(x + 1) - offsets.(x)))
      done
    end;
    D.close a
  end

let csr_ok g = match csr g with [] -> true | _ :: _ -> false
