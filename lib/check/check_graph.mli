(** CSR well-formedness certification.

    {!Ps_graph.Graph.of_csr} and {!Ps_graph.Graph.of_sorted_edge_array}
    adopt caller-built arrays with no normalization (their [validate]
    pass is off on the production path), and the parallel conflict-graph
    builder writes rows from several domains.  This checker re-derives
    every representation invariant from the raw arrays
    ({!Ps_graph.Graph.to_csr}): offsets shape and monotonicity, rows
    strictly increasing / in range / self-loop-free, arc symmetry, and
    consistency of the [degree]/[n_edges] accessors with the storage. *)

val csr : Ps_graph.Graph.t -> Diagnostic.t list
(** Empty iff the representation is well-formed.  Diagnostics are
    positioned at the offending offset slot, row, or arc; output is
    bounded per {!Diagnostic.acc}. *)

val csr_ok : Ps_graph.Graph.t -> bool
