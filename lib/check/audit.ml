module H = Ps_hypergraph.Hypergraph

let reduction ~h ~k ~multicoloring ~colors_used ~total_phases ~phases =
  let colors_rederived = Ps_cfc.Multicolor.total_colors multicoloring in
  let bookkeeping =
    if colors_rederived <> colors_used then
      [ Diagnostic.v "phase-bookkeeping" Diagnostic.Global
          "run reports %d colors used but the multicoloring holds %d"
          colors_used colors_rederived ]
    else []
  in
  Check_cfc.multicoloring h multicoloring
  @ bookkeeping
  @ Check_phase.audit ~m:(H.n_edges h) ~k ~colors_used ~total_phases phases

let ok diags = match diags with [] -> true | _ :: _ -> false
