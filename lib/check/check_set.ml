module G = Ps_graph.Graph
module B = Ps_util.Bitset
module D = Diagnostic

let capacity_check rule a g s =
  let n = G.n_vertices g in
  if B.capacity s <> n then begin
    D.push a
      (D.v rule D.Global "certificate universe is %d vertices, graph has %d"
         (B.capacity s) n);
    false
  end
  else true

let independent g s =
  let a = D.acc () in
  if capacity_check "independent-set" a g s then
    (* Scan arcs u -> v with u < v so each offending edge is reported
       once, at its canonical orientation. *)
    for u = 0 to G.n_vertices g - 1 do
      if B.mem s u then
        G.iter_neighbors g u (fun v ->
            if u < v && B.mem s v then
              D.push a
                (D.v "independent-set" (D.Graph_edge (u, v))
                   "both endpoints selected"))
    done;
  D.close a

let maximal_independent g s =
  let a = D.acc () in
  if capacity_check "maximal-independent-set" a g s then begin
    List.iter (D.push a) (independent g s);
    for v = 0 to G.n_vertices g - 1 do
      if (not (B.mem s v)) && not (G.exists_neighbor g v (B.mem s)) then
        D.push a
          (D.v "maximal-independent-set" (D.Vertex v)
             "outside the set with no selected neighbor — the set is not \
              maximal")
    done
  end;
  D.close a

let dominating g s =
  let a = D.acc () in
  if capacity_check "dominating-set" a g s then
    for v = 0 to G.n_vertices g - 1 do
      if (not (B.mem s v)) && not (G.exists_neighbor g v (B.mem s)) then
        D.push a
          (D.v "dominating-set" (D.Vertex v)
             "neither selected nor adjacent to a selected vertex")
    done;
  D.close a

(* Wire-facing variants: vertex lists arrive from untrusted payloads, so
   range errors must become diagnostics, not [Bitset] exceptions. *)
let of_vertex_list rule g vs =
  let n = G.n_vertices g in
  let a = D.acc () in
  let s = B.create n in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        D.push a
          (D.v rule (D.Vertex v) "vertex id out of range [0, %d)" n)
      else B.add s v)
    vs;
  (s, a)

let independent_list g vs =
  let s, a = of_vertex_list "independent-set" g vs in
  if D.count a = 0 then List.iter (D.push a) (independent g s);
  D.close a

let dominating_list g vs =
  let s, a = of_vertex_list "dominating-set" g vs in
  if D.count a = 0 then List.iter (D.push a) (dominating g s);
  D.close a
