(** Transports for the solve service: newline-delimited JSON over
    stdin/stdout or a Unix-domain socket, in front of one {!Engine}.

    Both modes follow the same lifecycle: read lines, validate with
    {!Protocol.parse_request} (malformed lines are answered immediately
    with their typed error — they never occupy the queue), submit valid
    requests to the engine, and interleave responses onto the output as
    workers finish (out-of-order; correlate by [id]).  On [SIGTERM],
    [SIGINT] or end of input the server stops reading, drains every
    queued and in-flight job so each accepted request still gets its
    response, and returns — the exit is clean, never a crash. *)

type config = {
  engine : Engine.config;
  max_line_bytes : int;  (** request-line cap; longer → [payload_too_large] *)
}

val default_config : config
(** {!Engine.default_config} plus {!Protocol.default_max_bytes}. *)

val serve_stdio : ?config:config -> unit -> unit
(** Serve stdin → stdout until EOF or a termination signal, then drain
    and return.  Responses are written one per line, each flushed, writes
    serialized by an internal lock. *)

val serve_unix_socket : ?config:config -> path:string -> unit -> unit
(** Bind (replacing a {e stale} socket file — see
    {!prepare_socket_path}), accept concurrent connections (one reader
    thread each), serve until a termination signal, then stop accepting,
    drain, unlink the socket and return.  [SIGPIPE] is ignored for the
    duration; replies to a hung-up client are dropped and counted as
    reply failures. *)

val prepare_socket_path : string -> (unit, string) result
(** Make [path] bindable: nothing there is fine; a socket file whose
    owner died (connect probe answers [ECONNREFUSED]) is unlinked; a
    socket with a {e live} listener, a non-socket file, or an unlinkable
    stale file is an [Error] explaining why — so a crashed server's
    leftover never causes [EADDRINUSE], and a running server's address
    is never hijacked. *)

(**/**)

val handle_line :
  engine:Engine.t -> max_line_bytes:int -> reply:(string -> unit) ->
  string -> unit
(** One line through validate-or-reject + submit; exposed for tests and
    the load generator.  Blank lines are ignored. *)

val accept_retrying :
  should_stop:(unit -> bool) -> (unit -> 'a) -> 'a option
(** The accept loop's retry wrapper: re-run the accept function on
    [EINTR] / [ECONNABORTED] (polling [should_stop] between attempts),
    [None] on stop or [EBADF] (listener closed), propagate anything
    else.  Exposed so the retry contract is pinned by a deterministic
    test alongside the live signal-storm regression test. *)

val bind_unix_socket : string -> Unix.file_descr
(** {!prepare_socket_path} (raising [Failure] on its errors), then
    bind + listen(64).  Shared with the shard tier's per-shard
    listeners. *)

(** {2 Termination latch}

    The async-signal-safe stop flag the transports block on (see the
    comment in the implementation for why it is a polled atomic rather
    than a condvar or [Thread.wait_signal]).  Exposed for {!Ps_shard},
    whose shard children and supervisor share exactly this lifecycle. *)

type latch

val with_termination_latch : (latch -> 'a) -> 'a
(** Run with [SIGTERM]/[SIGINT] tripping the latch; previous signal
    dispositions are restored on exit. *)

val trip : latch -> unit
val tripped : latch -> bool

val await : latch -> unit
(** Block (50 ms poll) until the latch trips. *)
