(** Minimal JSON for the wire protocol.

    The container intentionally carries no JSON library, and the solve
    server needs only the newline-delimited subset of RFC 8259: one value
    per line, UTF-8, no streaming.  This module is that subset — a strict
    recursive-descent parser that never raises on untrusted input (every
    failure is a positioned [Error]), and a compact single-line printer
    whose output re-parses to the same value.

    Integers that fit in OCaml's [int] parse as {!Int}; other numeric
    literals (fractions, exponents, magnitudes beyond [max_int]) parse as
    {!Float}.  Object member order is preserved; duplicate keys are kept
    as written (accessors return the first). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : ?max_depth:int -> string -> (t, string) result
(** Parse exactly one JSON value spanning the whole input (surrounding
    whitespace allowed).  Trailing garbage, truncation, bad escapes,
    malformed numbers and nesting deeper than [max_depth] (default 256)
    all yield [Error] with a byte offset — never an exception. *)

val to_string : t -> string
(** Compact single-line encoding.  Strings are emitted as UTF-8 with the
    mandatory escapes; non-finite floats (which JSON cannot represent)
    are emitted as strings, matching {!Ps_util.Telemetry}'s convention. *)

val to_buffer : Buffer.t -> t -> unit

(** {1 Accessors} — total, for picking requests apart. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_int_opt : t -> int option
(** [Int n] only — no silent float truncation. *)

val to_float_opt : t -> float option
(** [Float f], or [Int n] widened. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

val equal : t -> t -> bool
(** Structural; object member order and duplicates are significant. *)
