(** Request semantics: one validated {!Protocol.request} in, one result
    out.  Pure dispatch — no queues, no IO — so the engine, the one-shot
    CLI and the tests all execute methods through the same code path.

    [cancel] is the cooperative deadline hook threaded into the phase
    loop ({!Ps_core.Reduction.run}); a cancelled solve escapes as
    {!Ps_core.Reduction.Canceled}, which the caller (the engine) maps to
    a [timeout] or [shutting_down] error.  Any other exception is the
    caller's to turn into an [internal] error. *)

val handle :
  stats:(unit -> Json.t) ->
  cancel:(unit -> bool) ->
  Protocol.request ->
  (Json.t, Protocol.error) result
(** Execute the request.  [stats] supplies the [stats] method's snapshot
    (the engine closes over itself).  Never returns [Error] for [reduce]
    on a valid instance — a failed certificate is reported inside the
    result ([certified: false]), not as a protocol error. *)

val mis_entries :
  seed:int -> Protocol.mis_algo -> Ps_graph.Graph.t -> Json.t list
(** Per-algorithm result rows ([Mis_all] = the whole zoo, in the CLI's
    table order); shared by the server and [pslocal mis --json]. *)

val check_target : Protocol.check_target -> Json.t
(** The [check] method's body: run the {!Ps_check} certifiers named by
    the target and wrap their diagnostics as a
    {!Protocol.check_result}.  Always an [ok] result — [valid: false]
    with diagnostics is the answer for a bad certificate. *)
