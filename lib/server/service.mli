(** Request semantics: one validated {!Protocol.request} in, one result
    out.  Pure dispatch — no queues, no IO — so the engine, the one-shot
    CLI and the tests all execute methods through the same code path.

    [cancel] is the cooperative deadline hook threaded into the phase
    loop ({!Ps_core.Reduction.run}); a cancelled solve escapes as
    {!Ps_core.Reduction.Canceled}, which the caller (the engine) maps to
    a [timeout] or [shutting_down] error.  Any other exception is the
    caller's to turn into an [internal] error. *)

val handle :
  stats:(unit -> Json.t) ->
  cancel:(unit -> bool) ->
  Protocol.request ->
  (Json.t, Protocol.error) result
(** Execute the request.  [stats] supplies the [stats] method's snapshot
    (the engine closes over itself).  Never returns [Error] for [reduce]
    on a valid instance — a failed certificate is reported inside the
    result ([certified: false]), not as a protocol error. *)

val handle_cached :
  cache:Ps_cache.Cache.t ->
  stats:(unit -> Json.t) ->
  cancel:(unit -> bool) ->
  Protocol.request ->
  (Json.t, Protocol.error) result
(** {!handle} with the solved-instance cache in the loop: [reduce] /
    [certify] go through {!Ps_cache.Cache.solve} (result reuse +
    phase-0 warm start), [mis] / [decompose] through the opaque
    graph-result tier.  Responses are bit-identical to {!handle} — a
    hit is observable only in the cache counters. *)

val cached_lookup : Ps_cache.Cache.t -> Protocol.call -> Json.t option
(** Lookup-only fast path (no solving, no storing): the rendered
    response payload when the call is cacheable and present (equality
    verified, sampled audit passed).  The engine calls this before
    enqueueing so hits never consume a queue slot or a worker. *)

val mis_entries :
  seed:int -> Protocol.mis_algo -> Ps_graph.Graph.t -> Json.t list
(** Per-algorithm result rows ([Mis_all] = the whole zoo, in the CLI's
    table order); shared by the server and [pslocal mis --json]. *)

val check_target : Protocol.check_target -> Json.t
(** The [check] method's body: run the {!Ps_check} certifiers named by
    the target and wrap their diagnostics as a
    {!Protocol.check_result}.  Always an [ok] result — [valid: false]
    with diagnostics is the answer for a bad certificate. *)
