(** The job engine: a bounded request queue in front of a pool of OCaml 5
    worker domains, with explicit load shedding, per-job deadlines and a
    draining shutdown.

    {b Shed policy.}  The queue is the only buffer in the system, and it
    is bounded: a submission that finds it full is rejected {e now} with
    an [overloaded] error response instead of queueing unboundedly —
    callers get immediate backpressure and latency of accepted jobs stays
    bounded by [capacity / throughput].

    {b Deadlines.}  A job's deadline is measured from the moment it is
    accepted (so time spent queued counts — a job that waited past its
    deadline is answered [timeout] without running).  During a solve the
    deadline is enforced cooperatively: the cancel hook is polled once
    per phase of the reduction loop ({!Ps_core.Reduction.run}), so
    cancellation latency is one phase, not one instruction.

    {b Shutdown.}  [shutdown] (drain mode, the default) stops accepting,
    lets the workers finish every queued and in-flight job, and joins the
    pool; with [~drain:false] the queue is still emptied but the cancel
    hook answers [true] immediately, so running solves abort at the next
    phase boundary and remaining jobs are answered [shutting_down].

    {b Observability.}  Every finished job becomes a [server.job]
    telemetry span (fields: method, ok, queue_wait_ns, solve_ns,
    serialize_ns) and feeds the [server.*] counters and gauges; the same
    numbers, plus latency percentiles over a sliding window, are returned
    by {!stats_json} — which is exactly what the protocol's [stats]
    method responds with. *)

type config = {
  domains : int;                  (** worker pool size (≥ 1) *)
  queue_capacity : int;           (** pending-job bound (≥ 1) *)
  default_timeout_ms : int option;
      (** deadline for requests that carry none; [None] = unbounded *)
  cache : Ps_cache.Cache.t option;
      (** solved-instance cache.  When set, {!submit} consults it
          before enqueueing (a verified hit replies synchronously,
          consuming no queue slot or worker), the default handler
          becomes {!Service.handle_cached}, and {!stats_json} reports a
          ["cache"] counter block.  [None] = uncached (the default). *)
}

val default_config : config
(** 4 workers (clamped to the machine), capacity 64, no default
    deadline, no cache. *)

type handler =
  stats:(unit -> Json.t) ->
  cancel:(unit -> bool) ->
  Protocol.request ->
  (Json.t, Protocol.error) result
(** What workers run.  [Ps_core.Reduction.Canceled] escaping the handler
    is mapped to [timeout] (deadline) or [shutting_down] (abort); any
    other exception to an [internal] error.  The [stats] argument is this
    engine's own {!stats_json}. *)

type t

val create : ?handler:handler -> ?render:(Json.t -> string) -> config -> t
(** Spawn the worker domains.  [handler] defaults to {!Service.handle},
    or to {!Service.handle_cached} when [config.cache] is set.  [render]
    serializes every response handed to a [reply] callback — the compact
    JSON line ({!Protocol.response_to_line}, the default) or a binary
    frame ({!Protocol.Binary.frame}) when the transport speaks frames. *)

type submit_outcome = Accepted | Rejected_overloaded | Rejected_shutting_down

val submit : t -> Protocol.request -> reply:(string -> unit) -> submit_outcome
(** Hand a validated request to the pool.  [reply] is invoked exactly
    once per submission with the serialized response (rendered by the
    engine's [render]; no newline appended): from a worker domain for
    accepted jobs, or synchronously on the calling thread with the
    [overloaded] / [shutting_down] error when the job is shed.  [reply]
    must be thread-safe and must not block for long (it holds a worker);
    exceptions it raises are swallowed and counted as
    [server.reply_failures]. *)

val submit_batch :
  t -> (Protocol.request * (string -> unit)) list -> submit_outcome list
(** [submit] for a whole coalesced batch under one mutex acquisition and
    at most one worker wakeup (broadcast): the entry point for readers
    that stage decoded requests and dispatch per wakeup
    ({!Ps_shard.Batch}) instead of enqueueing one at a time.  Outcomes
    are in input order, each with exactly [submit]'s per-request
    semantics — admission is still per request, so one batch can mix
    accepted, cache-served and shed members. *)

val record_invalid : t -> unit
(** Count a line the transport rejected before submission (parse or
    validation failure) so [stats] reflects malformed traffic too. *)

val stats_json : t -> Json.t
(** Snapshot: configuration, uptime, queue depth, in-flight count,
    accepted/rejected/completed/failed/timeout totals, throughput, and
    p50/p95/p99/max/mean latency (ms) over the last 4096 jobs.  The
    completion counters are disjoint: [completed] splits exactly into
    ok responses, [failed] (non-timeout errors) and [timeouts] — this
    is the wire contract of the protocol's [stats] method, pinned by
    test.  With a cache configured, a ["cache"] object carries the
    {!Ps_cache.Cache.stats} counters (hits/misses/stores/evictions/
    bytes/audits/poisoned/warm_hits/disk_hits…).  Also refreshes the
    [server.latency_p*_ms] telemetry gauges. *)

val set_stats_extra : t -> (unit -> (string * Json.t) list) -> unit
(** Register transport-level fields appended to every {!stats_json}
    snapshot (e.g. a shard's batching and quota counters).  The hook
    runs outside the engine lock; last registration wins. *)

val wait_capacity : t -> int
(** Block until the request queue has at least one free slot (or the
    engine is shut down) and return the free-slot count.  The count is
    a promise only to a {e sole} submitter — the tier's batch
    dispatcher uses it to size each {!submit_batch} to what the engine
    will admit, turning queue overflow into backpressure instead of
    shed.  Returns [max_int] once the engine is closed (submit anyway;
    every item is answered [shutting_down]). *)

val queue_depth : t -> int
val inflight : t -> int
val completed : t -> int

val shutdown : ?drain:bool -> t -> unit
(** Stop accepting, dispose of every pending job as described above, join
    the workers.  Idempotent; concurrent submissions during shutdown are
    answered [shutting_down]. *)
