module P = Protocol
module Tm = Ps_util.Telemetry

type config = {
  domains : int;
  queue_capacity : int;
  default_timeout_ms : int option;
  cache : Ps_cache.Cache.t option;
}

let default_config =
  { domains = max 1 (min 4 (Ps_util.Parallel.available ()));
    queue_capacity = 64;
    default_timeout_ms = None;
    cache = None }

type handler =
  stats:(unit -> Json.t) ->
  cancel:(unit -> bool) ->
  Protocol.request ->
  (Json.t, Protocol.error) result

type job = {
  req : P.request;
  reply : string -> unit;
  enqueued_ns : int64;
  deadline_ns : int64 option;
}

(* Latencies of the last [Array.length ring] jobs, in ms, as a circular
   buffer — enough for meaningful p99 without unbounded memory. *)
type latency_window = {
  ring : float array;
  mutable next : int;
  mutable filled : int;
}

type t = {
  cfg : config;
  handler : handler;
  render : Json.t -> string;  (* response serializer: JSON line (the
                                 default) or a binary frame *)
  queue : job Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  not_full : Condition.t;  (* signalled when a worker frees a slot *)
  mutable closed : bool;     (* no new submissions; guarded by [mutex] *)
  aborting : bool Atomic.t;  (* cancel hook answers true for everyone *)
  mutable joined : bool;
  mutable workers : unit Domain.t array;
  mutable stats_extra : (unit -> (string * Json.t) list) option;
      (* transport-level counters appended to stats_json; guarded by
         [mutex], called outside it *)
  started_ns : int64;
  (* stats, all guarded by [mutex] *)
  mutable accepted : int;
  mutable rejected : int;
  mutable invalid : int;
  mutable completed : int;
  mutable failed : int;   (* completed with ok=false for a non-timeout
                             reason; disjoint from [timeouts], so
                             completed = ok + failed + timeouts *)
  mutable timeouts : int;
  mutable inflight : int;
  mutable reply_failures : int;
  window : latency_window;
}

type submit_outcome = Accepted | Rejected_overloaded | Rejected_shutting_down

(* [@pslint.blocking_ok]: every critical section under the engine mutex
   is bounded bookkeeping (queue push/pop, counters); nothing solves,
   renders, or touches I/O while holding it. *)
let[@pslint.blocking_ok] locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record_latency t ms =
  let w = t.window in
  w.ring.(w.next) <- ms;
  w.next <- (w.next + 1) mod Array.length w.ring;
  if w.filled < Array.length w.ring then w.filled <- w.filled + 1

let safe_reply t job line =
  try job.reply line
  with _ ->
    locked t (fun () -> t.reply_failures <- t.reply_failures + 1);
    Tm.incr "server.reply_failures"

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats_json t =
  let snapshot =
    locked t (fun () ->
        let w = t.window in
        let lat = Array.make w.filled 0.0 in
        (* Oldest-to-newest order is irrelevant for percentiles; copy the
           live prefix (the ring wraps in place). *)
        Array.blit w.ring 0 lat 0 w.filled;
        ( t.accepted,
          t.rejected,
          t.invalid,
          t.completed,
          t.failed,
          t.timeouts,
          t.inflight,
          Queue.length t.queue,
          t.reply_failures,
          lat ))
  in
  let ( accepted,
        rejected,
        invalid,
        completed,
        failed,
        timeouts,
        inflight,
        depth,
        reply_failures,
        lat ) =
    snapshot
  in
  Array.sort Float.compare lat;
  let p50 = Ps_util.Stats.percentile_nearest lat 0.50
  and p95 = Ps_util.Stats.percentile_nearest lat 0.95
  and p99 = Ps_util.Stats.percentile_nearest lat 0.99 in
  let mean =
    if Array.length lat = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lat /. float_of_int (Array.length lat)
  in
  let lat_max = if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1) in
  Tm.gauge "server.latency_p50_ms" p50;
  Tm.gauge "server.latency_p95_ms" p95;
  Tm.gauge "server.latency_p99_ms" p99;
  let uptime_s = ms_of_ns (Int64.sub (Tm.now_ns ()) t.started_ns) /. 1e3 in
  let cache_fields =
    match t.cfg.cache with
    | None -> []
    | Some c ->
        let s = Ps_cache.Cache.stats c in
        [ ( "cache",
            Json.Obj
              [ ("hits", Json.Int s.Ps_cache.Cache.hits);
                ("misses", Json.Int s.misses);
                ("stores", Json.Int s.stores);
                ("evictions", Json.Int s.evictions);
                ("entries", Json.Int s.entries);
                ("bytes", Json.Int s.bytes);
                ("budget", Json.Int s.budget);
                ("audits", Json.Int s.audits);
                ("poisoned", Json.Int s.poisoned);
                ("warm_hits", Json.Int s.warm_hits);
                ("warm_entries", Json.Int s.warm_entries);
                ("warm_bytes", Json.Int s.warm_bytes);
                ("disk_hits", Json.Int s.disk_hits) ] ) ]
  in
  let extra_fields =
    (* Snapshot the hook under the lock, run it outside: extras come
       from the transport layer (batching, quotas), which has locks of
       its own. *)
    match locked t (fun () -> t.stats_extra) with
    | None -> []
    | Some f -> f ()
  in
  Json.Obj
    ([ ("domains", Json.Int t.cfg.domains);
      ("queue_capacity", Json.Int t.cfg.queue_capacity);
      ("uptime_s", Json.Float uptime_s);
      ("queue_depth", Json.Int depth);
      ("inflight", Json.Int inflight);
      ("accepted", Json.Int accepted);
      ("rejected", Json.Int rejected);
      ("invalid_lines", Json.Int invalid);
      ("completed", Json.Int completed);
      ("failed", Json.Int failed);
      ("timeouts", Json.Int timeouts);
      ("reply_failures", Json.Int reply_failures);
      ( "throughput_rps",
        Json.Float
          (if uptime_s > 0.0 then float_of_int completed /. uptime_s else 0.0)
      );
      ( "latency_ms",
        Json.Obj
          [ ("window", Json.Int (Array.length lat));
            ("p50", Json.Float p50);
            ("p95", Json.Float p95);
            ("p99", Json.Float p99);
            ("max", Json.Float lat_max);
            ("mean", Json.Float mean) ] ) ]
    @ cache_fields @ extra_fields)

(* ------------------------------------------------------------------ *)
(* Workers *)

let run_job t job =
  let start_ns = Tm.now_ns () in
  let queue_wait_ns = Int64.sub start_ns job.enqueued_ns in
  let deadline_passed () =
    match job.deadline_ns with
    | Some d -> Tm.now_ns () > d
    | None -> false
  in
  let cancel () = Atomic.get t.aborting || deadline_passed () in
  let timeout_error () =
    P.
      { code = Timeout;
        message =
          Printf.sprintf "deadline of %d ms exceeded"
            (match (job.req.timeout_ms, t.cfg.default_timeout_ms) with
            | Some ms, _ | None, Some ms -> ms
            | None, None -> 0) }
  in
  let result =
    if Atomic.get t.aborting then
      Error P.{ code = Shutting_down; message = "server is shutting down" }
    else if deadline_passed () then
      (* Spent its whole budget in the queue: answer without solving. *)
      Error (timeout_error ())
    else
      match t.handler ~stats:(fun () -> stats_json t) ~cancel job.req with
      | result -> result
      | exception Ps_core.Reduction.Canceled ->
          if Atomic.get t.aborting then
            Error
              P.{ code = Shutting_down; message = "canceled by shutdown" }
          else Error (timeout_error ())
      | exception e ->
          Error
            P.
              { code = Internal;
                message = "handler raised: " ^ Printexc.to_string e }
  in
  let solved_ns = Tm.now_ns () in
  let response =
    match result with
    | Ok payload -> P.ok_response ~id:job.req.id payload
    | Error e -> P.error_response ~id:job.req.id e
  in
  let line = t.render response in
  let done_ns = Tm.now_ns () in
  safe_reply t job line;
  let total_ms = ms_of_ns (Int64.sub done_ns job.enqueued_ns) in
  locked t (fun () ->
      t.inflight <- t.inflight - 1;
      t.completed <- t.completed + 1;
      (match result with
      | Ok _ -> ()
      | Error { code = Timeout; _ } -> t.timeouts <- t.timeouts + 1
      | Error _ -> t.failed <- t.failed + 1);
      record_latency t total_ms);
  if Tm.enabled () then begin
    Tm.incr "server.completed";
    (match result with Ok _ -> () | Error _ -> Tm.incr "server.failed");
    Tm.gauge "server.inflight" (float_of_int (locked t (fun () -> t.inflight)));
    Tm.add_completed_span ~name:"server.job" ~start_ns:job.enqueued_ns
      ~stop_ns:done_ns
      [ ("method", Tm.Str (P.method_name job.req.call));
        ("ok", Tm.Bool (Result.is_ok result));
        ("queue_wait_ns", Tm.Int (Int64.to_int queue_wait_ns));
        ("solve_ns", Tm.Int (Int64.to_int (Int64.sub solved_ns start_ns)));
        ("serialize_ns", Tm.Int (Int64.to_int (Int64.sub done_ns solved_ns)))
      ]
  end

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue then begin
      (* closed and drained: the pool winds down *)
      Mutex.unlock t.mutex;
      ()
    end
    else begin
      let job = Queue.pop t.queue in
      t.inflight <- t.inflight + 1;
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      run_job t job;
      next ()
    end
  in
  next ()

(* ------------------------------------------------------------------ *)

let create ?handler ?(render = P.response_to_line) cfg =
  let handler =
    match handler with
    | Some h -> h
    | None -> (
        (* With a cache configured, the default dispatch becomes the
           cache-aware one (misses store, solves warm-start). *)
        match cfg.cache with
        | Some cache -> Service.handle_cached ~cache
        | None -> Service.handle)
  in
  if cfg.domains < 1 then invalid_arg "Engine.create: domains must be >= 1";
  if cfg.queue_capacity < 1 then
    invalid_arg "Engine.create: queue_capacity must be >= 1";
  let t =
    { cfg;
      handler;
      render;
      stats_extra = None;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      not_full = Condition.create ();
      closed = false;
      aborting = Atomic.make false;
      joined = false;
      workers = [||];
      started_ns = Tm.now_ns ();
      accepted = 0;
      rejected = 0;
      invalid = 0;
      completed = 0;
      failed = 0;
      timeouts = 0;
      inflight = 0;
      reply_failures = 0;
      window = { ring = Array.make 4096 0.0; next = 0; filled = 0 } }
  in
  t.workers <- Array.init cfg.domains (fun _ -> Domain.spawn (worker_loop t));
  t

(* Batched submission: per-item preparation (deadline arithmetic, the
   cache consult) runs outside the lock, then one locked pass enqueues
   the whole batch — one mutex acquisition and at most one
   [Condition.broadcast] per wakeup, however many requests the reader
   coalesced.  [submit] is the one-element special case, so there is a
   single admission path to reason about.

   Cache consult before enqueueing: a verified hit is answered
   synchronously on the submitting thread and never consumes a queue
   slot or a worker.  The sampled re-audit (when drawn) runs here — it
   is bounded by the instance size, far below a solve, and shed
   pressure on the queue is exactly what the cache exists to relieve. *)
let submit_batch t items =
  let enqueued_ns = Tm.now_ns () in
  let prepped =
    List.map
      (fun ((req : P.request), reply) ->
        let timeout_ms =
          match req.P.timeout_ms with
          | Some _ as s -> s
          | None -> t.cfg.default_timeout_ms
        in
        let deadline_ns =
          Option.map
            (fun ms -> Int64.add enqueued_ns (Int64.of_int (ms * 1_000_000)))
            timeout_ms
        in
        let cached =
          match t.cfg.cache with
          | None -> None
          | Some c -> (
              (* The consult re-renders results and re-audits
                 certificates with real solver code; a bug there must
                 degrade to a cache miss — the job takes the ordinary
                 worker path — not unwind the submitting thread, which
                 in the shard tier is the engine's sole submitter. *)
              try Service.cached_lookup c req.P.call
              with _ ->
                Tm.incr "engine.cache_consult_error";
                None)
        in
        (req, reply, deadline_ns, cached))
      items
  in
  let outcomes =
    locked t (fun () ->
        let enqueued = ref false in
        let out =
          List.map
            (fun ((req : P.request), reply, deadline_ns, cached) ->
              if t.closed then Rejected_shutting_down
              else
                match cached with
                | Some _ ->
                    t.accepted <- t.accepted + 1;
                    t.completed <- t.completed + 1;
                    record_latency t
                      (ms_of_ns (Int64.sub (Tm.now_ns ()) enqueued_ns));
                    Accepted
                | None ->
                    if Queue.length t.queue >= t.cfg.queue_capacity then begin
                      t.rejected <- t.rejected + 1;
                      Rejected_overloaded
                    end
                    else begin
                      t.accepted <- t.accepted + 1;
                      Queue.push { req; reply; enqueued_ns; deadline_ns }
                        t.queue;
                      enqueued := true;
                      Accepted
                    end)
            prepped
        in
        if !enqueued then Condition.broadcast t.nonempty;
        out)
  in
  (* Replies that happen on the submitting thread: cache hits and the
     two shed responses.  Enqueued jobs answer from a worker. *)
  let answer reply response =
    try reply (t.render response)
    with _ -> locked t (fun () -> t.reply_failures <- t.reply_failures + 1)
  in
  List.iter2
    (fun ((req : P.request), reply, _deadline_ns, cached) outcome ->
      match (outcome, cached) with
      | Accepted, Some payload ->
          Tm.incr "server.accepted";
          Tm.incr "server.completed";
          Tm.incr "server.cache_served";
          answer reply (P.ok_response ~id:req.P.id payload)
      | Accepted, None -> Tm.incr "server.accepted"
      | Rejected_overloaded, _ ->
          Tm.incr "server.rejected";
          answer reply
            (P.error_response ~id:req.P.id
               P.
                 { code = Overloaded;
                   message =
                     Printf.sprintf "queue full (%d pending)"
                       t.cfg.queue_capacity })
      | Rejected_shutting_down, _ ->
          Tm.incr "server.rejected";
          answer reply
            (P.error_response ~id:req.P.id
               P.{ code = Shutting_down; message = "server is shutting down" }))
    prepped outcomes;
  outcomes

let submit t req ~reply =
  match submit_batch t [ (req, reply) ] with
  | [ outcome ] -> outcome
  | _ -> assert false

let set_stats_extra t f = locked t (fun () -> t.stats_extra <- Some f)

let record_invalid t =
  locked t (fun () -> t.invalid <- t.invalid + 1);
  Tm.incr "server.invalid"

(* Blocks until the queue has at least one free slot, so a single
   submitter (the tier's batch dispatcher) can size its next
   [submit_batch] to what the engine will actually admit and convert
   overflow into waiting instead of shed.  The count is only a promise
   to a *sole* submitter: with concurrent submitters the slots may be
   gone by the time the batch lands (it then sheds as before).  Once
   the engine is closed there is nothing to wait for — returns
   [max_int] so the caller submits everything and the items are
   answered [shutting_down] individually. *)
let[@pslint.blocking_ok] wait_capacity t =
  (* [@pslint.blocking_ok]: parking here is the design — the sole
     submitter converts queue overflow into waiting (socket
     backpressure) instead of shed; see the comment above. *)
  locked t (fun () ->
      while
        (not t.closed) && Queue.length t.queue >= t.cfg.queue_capacity
      do
        Condition.wait t.not_full t.mutex
      done;
      if t.closed then max_int
      else t.cfg.queue_capacity - Queue.length t.queue)

let queue_depth t = locked t (fun () -> Queue.length t.queue)
let inflight t = locked t (fun () -> t.inflight)
let completed t = locked t (fun () -> t.completed)

let shutdown ?(drain = true) t =
  let join_now =
    locked t (fun () ->
        let first = not t.closed in
        t.closed <- true;
        if not drain then Atomic.set t.aborting true;
        Condition.broadcast t.nonempty;
        Condition.broadcast t.not_full;
        first && not t.joined)
  in
  if join_now then begin
    Array.iter Domain.join t.workers;
    locked t (fun () -> t.joined <- true)
  end
