module H = Ps_hypergraph.Hypergraph
module Hio = Ps_hypergraph.Hio
module Gio = Ps_graph.Gio
module Mc = Ps_cfc.Multicolor

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_method
  | Payload_too_large
  | Overloaded
  | Timeout
  | Shutting_down
  | Internal

type error = { code : error_code; message : string }

let error_code_string = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_method -> "unknown_method"
  | Payload_too_large -> "payload_too_large"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

type solve_params = {
  hypergraph : H.t;
  solver : Ps_maxis.Approx.solver;
  solver_name : string;
  presolve : Ps_maxis.Kernel.choice;
  k : int option;
  seed : int;
  detail : bool;
}

type mis_algo = Mis_greedy | Mis_luby | Mis_slocal | Mis_derandomized | Mis_all

type check_target =
  | Check_multicoloring of {
      hypergraph : H.t;
      multicoloring : Mc.t;
    }
  | Check_graph_sets of {
      graph : Ps_graph.Graph.t;
      independent_set : int list option;
      dominating_set : int list option;
    }

type call =
  | Reduce of solve_params
  | Certify of solve_params
  | Mis of { graph : Ps_graph.Graph.t; algo : mis_algo; seed : int }
  | Decompose of { graph : Ps_graph.Graph.t }
  | Check of check_target
  | Ping
  | Stats

type request = {
  id : Json.t;
  timeout_ms : int option;
  tenant : string option;
  call : call;
}

let default_max_bytes = 4 * 1024 * 1024

let solver_of_name = function
  | "greedy" -> Some Ps_maxis.Approx.greedy_min_degree
  | "caro-wei" -> Some Ps_maxis.Approx.caro_wei
  | "caro-wei-x8" -> Some (Ps_maxis.Approx.caro_wei_boosted 8)
  | "adversarial" -> Some Ps_maxis.Approx.greedy_adversarial
  | "exact" -> Some Ps_maxis.Approx.exact
  | "clique-removal" -> Some Ps_maxis.Clique_removal.solver
  | "portfolio" -> Some Ps_maxis.Portfolio.solver
  | _ -> None

let presolve_of_name = function
  | "kernel" -> Some (`Kernel : Ps_maxis.Kernel.choice)
  | "none" -> Some `None
  | _ -> None

let presolve_name = function `Kernel -> "kernel" | `None -> "none"

let mis_algo_of_name = function
  | "greedy" -> Some Mis_greedy
  | "luby" -> Some Mis_luby
  | "slocal" -> Some Mis_slocal
  | "derandomized" -> Some Mis_derandomized
  | "all" -> Some Mis_all
  | _ -> None

let method_name = function
  | Reduce _ -> "reduce"
  | Certify _ -> "certify"
  | Mis _ -> "mis"
  | Decompose _ -> "decompose"
  | Check _ -> "check"
  | Ping -> "ping"
  | Stats -> "stats"

let mis_algo_name = function
  | Mis_greedy -> "greedy"
  | Mis_luby -> "luby"
  | Mis_slocal -> "slocal"
  | Mis_derandomized -> "derandomized"
  | Mis_all -> "all"

(* ------------------------------------------------------------------ *)
(* Request validation *)

(* Short-circuiting field extraction: every branch either produces the
   value or a typed [error]; nothing in this file raises on bad input. *)

let err code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let opt_field params key decode what =
  match Json.member key params with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match decode v with
      | Some x -> Ok (Some x)
      | None ->
          Error (err Invalid_request "field %S must be %s" key what))

let str_field params key =
  opt_field params key Json.to_string_opt "a string"

let int_field params key = opt_field params key Json.to_int_opt "an integer"
let bool_field params key = opt_field params key Json.to_bool_opt "a boolean"

let required what key = function
  | Some v -> Ok v
  | None -> Error (err Invalid_request "missing required field %S (%s)" key what)

let positive key = function
  | Some v when v <= 0 ->
      Error (err Invalid_request "field %S must be positive (got %d)" key v)
  | v -> Ok v

(* Inline payloads: the Gio/Hio readers raise [Failure] with a
   line-numbered message on malformed text (bad headers, negative or
   out-of-range ids, junk tokens); that message becomes the typed
   [invalid_request] response body. *)
let hypergraph_payload params =
  let* text = str_field params "hypergraph" in
  let* text = required "inline Hio text" "hypergraph" text in
  match Hio.of_text text with
  | h -> Ok h
  | exception Failure msg ->
      Error (err Invalid_request "hypergraph payload: %s" msg)

let graph_payload params =
  let* text = str_field params "graph" in
  let* text = required "inline Gio edge-list text" "graph" text in
  match Gio.of_edge_list text with
  | g -> Ok g
  | exception Failure msg -> Error (err Invalid_request "graph payload: %s" msg)

let solve_params params =
  let* hypergraph = hypergraph_payload params in
  let* solver_name = str_field params "solver" in
  let solver_name = Option.value solver_name ~default:"greedy" in
  let* solver =
    match solver_of_name solver_name with
    | Some s -> Ok s
    | None -> Error (err Invalid_request "unknown solver %S" solver_name)
  in
  let* presolve = str_field params "presolve" in
  let* presolve =
    match presolve with
    | None -> Ok `Kernel
    | Some name -> (
        match presolve_of_name name with
        | Some c -> Ok c
        | None ->
            Error
              (err Invalid_request "field \"presolve\" must be %S or %S"
                 "kernel" "none"))
  in
  let* k = int_field params "k" in
  let* k = positive "k" k in
  let* seed = int_field params "seed" in
  let* detail = bool_field params "detail" in
  (* The effective name is what run records report and cache keys hash:
     kernel-on and kernel-off results must never alias. *)
  let solver_name =
    (Ps_maxis.Kernel.apply presolve solver).Ps_maxis.Approx.name
  in
  Ok
    { hypergraph;
      solver;
      solver_name;
      presolve;
      k;
      seed = Option.value seed ~default:0;
      detail = Option.value detail ~default:false }

(* [check] payloads: vertex/color lists arrive as JSON arrays of
   integers.  Shape errors (non-arrays, non-integers) are protocol-level
   [invalid_request]s; {e semantic} errors (out-of-range ids, unhappy
   edges) are the checkers' job and come back as positioned diagnostics
   in an [ok] response — a failed certificate is a result, not a
   protocol failure. *)
let int_list_field params key =
  match Json.member key params with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_list_opt v with
      | None ->
          Error (err Invalid_request "field %S must be an array" key)
      | Some items -> (
          let ints = List.filter_map Json.to_int_opt items in
          if List.length ints = List.length items then Ok (Some ints)
          else
            Error
              (err Invalid_request "field %S must hold only integers" key)))

let multicoloring_field params =
  match Json.member "multicoloring" params with
  | None | Some Json.Null ->
      Error
        (err Invalid_request
           "missing required field \"multicoloring\" (array of per-vertex \
            color arrays)")
  | Some v -> (
      match Json.to_list_opt v with
      | None ->
          Error (err Invalid_request "field \"multicoloring\" must be an array")
      | Some rows ->
          let mc = Array.make (List.length rows) [] in
          (* A vertex-count mismatch with the hypergraph is let through
             deliberately: the checker reports it as a positioned
             diagnostic, which is the whole point of the method. *)
          let rec fill i = function
            | [] -> Ok mc
            | row :: rest -> (
                match Json.to_list_opt row with
                | None ->
                    Error
                      (err Invalid_request
                         "multicoloring entry %d must be an array of colors" i)
                | Some cells ->
                    let colors = List.filter_map Json.to_int_opt cells in
                    if List.length colors <> List.length cells then
                      Error
                        (err Invalid_request
                           "multicoloring entry %d must hold only integers" i)
                    else begin
                      mc.(i) <- List.sort_uniq Int.compare colors;
                      fill (i + 1) rest
                    end)
          in
          fill 0 rows)

let check_params params =
  match Json.member "hypergraph" params with
  | Some _ ->
      let* hypergraph = hypergraph_payload params in
      let* multicoloring = multicoloring_field params in
      Ok (Check_multicoloring { hypergraph; multicoloring })
  | None -> (
      match Json.member "graph" params with
      | Some _ ->
          let* graph = graph_payload params in
          let* independent_set = int_list_field params "independent_set" in
          let* dominating_set = int_list_field params "dominating_set" in
          Ok (Check_graph_sets { graph; independent_set; dominating_set })
      | None ->
          Error
            (err Invalid_request
               "check needs a \"hypergraph\" (with \"multicoloring\") or a \
                \"graph\" (optionally with \"independent_set\" / \
                \"dominating_set\")"))

let parse_call meth params =
  match meth with
  | "reduce" ->
      let* p = solve_params params in
      Ok (Reduce p)
  | "certify" ->
      let* p = solve_params params in
      Ok (Certify p)
  | "mis" ->
      let* graph = graph_payload params in
      let* algo = str_field params "algo" in
      let algo_name = Option.value algo ~default:"greedy" in
      let* algo =
        match mis_algo_of_name algo_name with
        | Some a -> Ok a
        | None -> Error (err Invalid_request "unknown MIS algo %S" algo_name)
      in
      let* seed = int_field params "seed" in
      Ok (Mis { graph; algo; seed = Option.value seed ~default:0 })
  | "decompose" ->
      let* graph = graph_payload params in
      Ok (Decompose { graph })
  | "check" ->
      let* target = check_params params in
      Ok (Check target)
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | other -> Error (err Unknown_method "unknown method %S" other)

let validate_request_unsafe envelope =
  let tag id r = Result.map_error (fun e -> (id, e)) r in
  match envelope with
  | Json.Obj _ ->
      let id = Option.value (Json.member "id" envelope) ~default:Json.Null in
      tag id
        (let* meth =
           match Json.member "method" envelope with
           | Some (Json.Str m) -> Ok m
           | Some _ ->
               Error (err Invalid_request "field \"method\" must be a string")
           | None ->
               Error (err Invalid_request "missing required field \"method\"")
         in
         let* params =
           match Json.member "params" envelope with
           | None | Some Json.Null -> Ok (Json.Obj [])
           | Some (Json.Obj _ as p) -> Ok p
           | Some _ ->
               Error (err Invalid_request "field \"params\" must be an object")
         in
         let* timeout_ms = int_field params "timeout_ms" in
         let* timeout_ms = positive "timeout_ms" timeout_ms in
         let* tenant = str_field params "tenant" in
         let* call = parse_call meth params in
         Ok { id; timeout_ms; tenant; call })
  | _ -> Error (Json.Null, err Invalid_request "request must be a JSON object")

(* Total on untrusted structure.  The payload constructors reached from
   [parse_call] ([Hypergraph.of_member_arrays], the CSR builder, the
   multicoloring decoder) do their own validation with [invalid_arg]
   and friends; the wire contract says parsing never raises, so any
   such escape becomes one [Invalid_request] naming the culprit instead
   of an exception that kills the transport thread. *)
let validate_request envelope =
  try validate_request_unsafe envelope
  with exn ->
    let id =
      match envelope with
      | Json.Obj _ ->
          Option.value (Json.member "id" envelope) ~default:Json.Null
      | _ -> Json.Null
    in
    Error (id, err Invalid_request "invalid payload: %s" (Printexc.to_string exn))

let parse_request ?(max_bytes = default_max_bytes) line =
  if String.length line > max_bytes then
    Error
      ( Json.Null,
        err Payload_too_large "request line is %d bytes (cap %d)"
          (String.length line) max_bytes )
  else
    match Json.parse line with
    | Error msg -> Error (Json.Null, err Parse_error "%s" msg)
    | Ok envelope -> validate_request envelope

(* ------------------------------------------------------------------ *)
(* Responses *)

let ok_response ~id result =
  Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let error_response ~id { code; message } =
  Json.Obj
    [ ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("code", Json.Str (error_code_string code));
            ("message", Json.Str message) ] ) ]

let response_to_line = Json.to_string

(* ------------------------------------------------------------------ *)
(* Result encoders *)

let certificate_json (c : Ps_core.Certify.t) =
  Json.Obj
    [ ("conflict_free", Json.Bool c.conflict_free);
      ("phase_happiness_ok", Json.Bool c.phase_happiness_ok);
      ("decay_ok", Json.Bool c.decay_ok);
      ("lambda_max", Json.Float c.lambda_max);
      ("rho_bound", Json.Float c.rho_bound);
      ("phases_used", Json.Int c.phases_used);
      ("phases_within_rho", Json.Bool c.phases_within_rho);
      ("colors_used", Json.Int c.colors_used);
      ("color_budget", Json.Int c.color_budget);
      ("colors_within_budget", Json.Bool c.colors_within_budget);
      ("all_ok", Json.Bool c.all_ok) ]

let phase_record_json (p : Ps_core.Reduction.phase_record) =
  Json.Obj
    [ ("phase", Json.Int p.phase);
      ("edges_before", Json.Int p.edges_before);
      ("conflict_vertices", Json.Int p.conflict_vertices);
      ("conflict_edges", Json.Int p.conflict_edges);
      ("is_size", Json.Int p.is_size);
      ("newly_happy", Json.Int p.newly_happy);
      ("lambda_effective", Json.Float p.lambda_effective) ]

let reduce_result ~detail (r : Ps_core.Pipeline.result) =
  let red = r.Ps_core.Pipeline.reduction in
  let _, compacted = Mc.compact red.Ps_core.Reduction.multicoloring in
  let base =
    [ ("k", Json.Int r.Ps_core.Pipeline.k);
      ("solver", Json.Str red.Ps_core.Reduction.solver_name);
      ("n", Json.Int (H.n_vertices red.Ps_core.Reduction.hypergraph));
      ("m", Json.Int (H.n_edges red.Ps_core.Reduction.hypergraph));
      ("phases", Json.Int red.Ps_core.Reduction.total_phases);
      ("colors_used", Json.Int red.Ps_core.Reduction.colors_used);
      ("colors_compacted", Json.Int compacted);
      ( "certified",
        Json.Bool r.Ps_core.Pipeline.certificate.Ps_core.Certify.all_ok );
      ("certificate", certificate_json r.Ps_core.Pipeline.certificate) ]
  in
  let extra =
    if not detail then []
    else
      [ ( "phase_records",
          Json.List
            (List.map phase_record_json red.Ps_core.Reduction.phases) );
        ( "multicoloring",
          Json.List
            (Array.to_list
               (Array.map
                  (fun colors ->
                    Json.List (List.map (fun c -> Json.Int c) colors))
                  red.Ps_core.Reduction.multicoloring)) ) ]
  in
  Json.Obj (base @ extra)

let mis_entry ~algorithm ~size ?rounds ?locality () =
  Json.Obj
    ([ ("algorithm", Json.Str algorithm); ("size", Json.Int size) ]
    @ (match rounds with Some r -> [ ("rounds", Json.Int r) ] | None -> [])
    @
    match locality with Some l -> [ ("locality", Json.Int l) ] | None -> [])

let mis_result entries = Json.Obj [ ("algorithms", Json.List entries) ]

let diagnostic_json (d : Ps_check.Diagnostic.t) =
  Json.Obj
    [ ("rule", Json.Str d.Ps_check.Diagnostic.rule);
      ( "where",
        Json.Obj
          [ ( "kind",
              Json.Str (Ps_check.Diagnostic.where_kind d.Ps_check.Diagnostic.where) );
            ( "at",
              Json.List
                (List.map
                   (fun i -> Json.Int i)
                   (Ps_check.Diagnostic.where_indices d.Ps_check.Diagnostic.where))
            ) ] );
      ( "position",
        Json.Str
          (Format.asprintf "%a" Ps_check.Diagnostic.pp_where
             d.Ps_check.Diagnostic.where) );
      ("message", Json.Str d.Ps_check.Diagnostic.message) ]

let check_result ~checks diagnostics =
  Json.Obj
    [ ( "valid",
        Json.Bool (match diagnostics with [] -> true | _ :: _ -> false) );
      ("checks", Json.List (List.map (fun c -> Json.Str c) checks));
      ("diagnostics", Json.List (List.map diagnostic_json diagnostics)) ]

let decompose_result (d : Ps_slocal.Decomposition.t) ~verified =
  Json.Obj
    [ ("clusters", Json.Int d.Ps_slocal.Decomposition.n_clusters);
      ("colors", Json.Int d.Ps_slocal.Decomposition.n_colors);
      ("max_radius", Json.Int d.Ps_slocal.Decomposition.max_radius);
      ("verified", Json.Bool verified) ]

(* ------------------------------------------------------------------ *)
(* Binary framing *)

module Binary = struct
  (* One frame per message, either direction:

       0xB5 | u32 big-endian payload length | payload

     The payload is a tagged binary encoding of exactly the {!Json}
     value the JSON codec would put on the wire, so the two codecs are
     interchangeable message-for-message (the qcheck suite pins
     decode∘encode = id and cross-codec equality).  The hot-path win is
     the decoder: tagged fixed-width scalars and length-prefixed
     strings replace character-level JSON scanning, and the inline
     Hio/Gio payload strings are taken verbatim — no escape decoding.

     Tags: n null · t true · f false · i int64 · d float bits ·
     s string · l list · o object (key = u32 length + bytes).  All
     integers big-endian.  Decoding is total: every malformed input —
     truncated value, negative or over-long length, unknown tag,
     out-of-range integer, trailing garbage, over-deep nesting — is a
     positioned [Error], never an exception. *)

  let magic = '\xb5'
  let header_bytes = 5

  let rec encode_value buf v =
    let add_len n = Buffer.add_int32_be buf (Int32.of_int n) in
    match v with
    | Json.Null -> Buffer.add_char buf 'n'
    | Json.Bool true -> Buffer.add_char buf 't'
    | Json.Bool false -> Buffer.add_char buf 'f'
    | Json.Int n ->
        Buffer.add_char buf 'i';
        Buffer.add_int64_be buf (Int64.of_int n)
    | Json.Float f ->
        Buffer.add_char buf 'd';
        Buffer.add_int64_be buf (Int64.bits_of_float f)
    | Json.Str s ->
        Buffer.add_char buf 's';
        add_len (String.length s);
        Buffer.add_string buf s
    | Json.List items ->
        Buffer.add_char buf 'l';
        add_len (List.length items);
        List.iter (encode_value buf) items
    | Json.Obj members ->
        Buffer.add_char buf 'o';
        add_len (List.length members);
        List.iter
          (fun (k, v) ->
            add_len (String.length k);
            Buffer.add_string buf k;
            encode_value buf v)
          members

  let to_bytes v =
    let buf = Buffer.create 256 in
    encode_value buf v;
    Buffer.contents buf

  exception Bad of int * string

  let bad pos fmt = Printf.ksprintf (fun m -> raise (Bad (pos, m))) fmt

  let of_bytes ?(max_depth = 256) s =
    let len = String.length s in
    let pos = ref 0 in
    let need n what =
      if !pos + n > len then
        bad !pos "truncated %s (need %d bytes, have %d)" what n (len - !pos)
    in
    let read_len what =
      need 4 what;
      let n = Int32.to_int (String.get_int32_be s !pos) in
      pos := !pos + 4;
      if n < 0 then bad (!pos - 4) "negative %s length" what;
      n
    in
    let read_bytes n what =
      need n what;
      let b = String.sub s !pos n in
      pos := !pos + n;
      b
    in
    let rec value depth =
      if depth > max_depth then bad !pos "nesting deeper than %d" max_depth;
      need 1 "tag";
      let tag = s.[!pos] in
      incr pos;
      match tag with
      | 'n' -> Json.Null
      | 't' -> Json.Bool true
      | 'f' -> Json.Bool false
      | 'i' ->
          need 8 "integer";
          let v = String.get_int64_be s !pos in
          pos := !pos + 8;
          let n = Int64.to_int v in
          if Int64.of_int n <> v then bad (!pos - 8) "integer out of range";
          Json.Int n
      | 'd' ->
          need 8 "float";
          let v = Int64.float_of_bits (String.get_int64_be s !pos) in
          pos := !pos + 8;
          Json.Float v
      | 's' ->
          let n = read_len "string" in
          Json.Str (read_bytes n "string body")
      | 'l' ->
          let n = read_len "list" in
          (* Each element is at least one tag byte: an element count
             beyond the remaining bytes is hostile, not huge. *)
          if n > len - !pos then bad (!pos - 4) "list length %d overruns frame" n;
          Json.List (List.init n (fun _ -> value (depth + 1)))
      | 'o' ->
          let n = read_len "object" in
          if n > len - !pos then
            bad (!pos - 4) "object length %d overruns frame" n;
          Json.Obj
            (List.init n (fun _ ->
                 let kn = read_len "key" in
                 let k = read_bytes kn "key body" in
                 (k, value (depth + 1))))
      | c -> bad (!pos - 1) "unknown tag 0x%02x" (Char.code c)
    in
    match value 0 with
    | v ->
        if !pos <> len then
          Error (Printf.sprintf "byte %d: trailing garbage after value" !pos)
        else Ok v
    | exception Bad (p, m) -> Error (Printf.sprintf "byte %d: %s" p m)

  let frame v =
    let payload = to_bytes v in
    let buf = Buffer.create (String.length payload + header_bytes) in
    Buffer.add_char buf magic;
    Buffer.add_int32_be buf (Int32.of_int (String.length payload));
    Buffer.add_string buf payload;
    Buffer.contents buf

  let frame_length header =
    if String.length header < header_bytes then Error "short frame header"
    else if header.[0] <> magic then
      Error
        (Printf.sprintf "bad frame magic 0x%02x (want 0x%02x)"
           (Char.code header.[0]) (Char.code magic))
    else
      let n = Int32.to_int (String.get_int32_be header 1) in
      if n < 0 then Error "negative frame length" else Ok n

  let decode_request ?(max_bytes = default_max_bytes) payload =
    if String.length payload > max_bytes then
      Error
        ( Json.Null,
          err Payload_too_large "binary frame is %d bytes (cap %d)"
            (String.length payload) max_bytes )
    else
      match of_bytes payload with
      | Error msg -> Error (Json.Null, err Parse_error "binary frame: %s" msg)
      | Ok envelope -> validate_request envelope
end
