module P = Protocol
module Is = Ps_maxis.Independent_set

let solve ~cancel (p : P.solve_params) =
  Ps_core.Pipeline.solve_unchecked ~cancel ~seed:p.seed
    ?k:(Option.map (fun k -> Ps_core.Pipeline.Fixed k) p.k)
    ~presolve:p.presolve ~solver:p.solver p.hypergraph

let mis_one ~seed g = function
  | P.Mis_greedy ->
      let is = Ps_maxis.Greedy.min_degree g in
      P.mis_entry ~algorithm:"greedy" ~size:(Is.size is) ()
  | P.Mis_luby ->
      let flags, stats = Ps_local.Luby.run ~seed g in
      P.mis_entry ~algorithm:"luby"
        ~size:(Is.size (Is.of_indicator flags))
        ~rounds:stats.Ps_local.Network.rounds ()
  | P.Mis_slocal ->
      let flags, _ = Ps_slocal.Greedy_mis.run ~seed g in
      P.mis_entry ~algorithm:"slocal"
        ~size:(Is.size (Is.of_indicator flags))
        ~locality:1 ()
  | P.Mis_derandomized ->
      let d = Ps_slocal.Derandomize.mis g in
      P.mis_entry ~algorithm:"derandomized"
        ~size:(Is.size (Is.of_indicator d.Ps_slocal.Derandomize.outputs))
        ~rounds:d.Ps_slocal.Derandomize.simulated_rounds ()
  | P.Mis_all -> assert false

let mis_entries ~seed algo g =
  match algo with
  | P.Mis_all ->
      List.map (mis_one ~seed g)
        [ P.Mis_greedy; P.Mis_luby; P.Mis_slocal; P.Mis_derandomized ]
  | one -> [ mis_one ~seed g one ]

let check_target = function
  | P.Check_multicoloring { hypergraph; multicoloring } ->
      P.check_result ~checks:[ "multicoloring" ]
        (Ps_check.Check_cfc.multicoloring hypergraph multicoloring)
  | P.Check_graph_sets { graph; independent_set; dominating_set } ->
      let csr = Ps_check.Check_graph.csr graph in
      let is_checks, is_diags =
        match independent_set with
        | None -> ([], [])
        | Some vs ->
            ([ "independent_set" ], Ps_check.Check_set.independent_list graph vs)
      in
      let ds_checks, ds_diags =
        match dominating_set with
        | None -> ([], [])
        | Some vs ->
            ([ "dominating_set" ], Ps_check.Check_set.dominating_list graph vs)
      in
      P.check_result
        ~checks:(("csr" :: is_checks) @ ds_checks)
        (csr @ is_diags @ ds_diags)

let decompose graph =
  let d = Ps_slocal.Decomposition.ball_carving graph in
  let check = Ps_slocal.Decomposition.verify graph d in
  P.decompose_result d ~verified:(Ps_slocal.Decomposition.check_all check)

let handle ~stats ~cancel (req : P.request) =
  match req.call with
  | P.Ping -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | P.Stats -> Ok (stats ())
  | P.Check target -> Ok (check_target target)
  | P.Reduce p -> Ok (P.reduce_result ~detail:p.detail (solve ~cancel p))
  | P.Certify p ->
      Ok (P.certificate_json (solve ~cancel p).Ps_core.Pipeline.certificate)
  | P.Mis { graph; algo; seed } ->
      Ok (P.mis_result (mis_entries ~seed algo graph))
  | P.Decompose { graph } -> Ok (decompose graph)

(* ------------------------------------------------------------------ *)
(* Cache-aware paths.  Responses are built from the same encoders as
   the fresh paths over stored values that a fresh solve would produce
   bit-for-bit, so hits and misses are indistinguishable on the wire
   (hit-ness shows up only in the stats counters). *)

module Cache = Ps_cache.Cache

let solve_cached ~cache ~cancel (p : P.solve_params) =
  Cache.solve cache ~cancel ~k:p.k ~presolve:p.presolve ~solver:p.solver
    ~solver_name:p.solver_name
    ~seed:p.seed p.hypergraph

(* Deterministic given the graph; no seed or solver choice in the key. *)
let decompose_key_seed = 0

(* Memory-tier only (the [_mem] lookups): this consult runs on the
   submitting thread — in the shard tier, the engine's sole submitter —
   where a disk read under the cache mutex would wedge every request
   behind one stall.  A memory miss falls through to a worker, whose
   cache-aware handlers ({!solve}, {!graph_result_cached}) consult the
   disk tier before solving. *)
let cached_lookup cache (call : P.call) =
  let parsed payload =
    match Json.parse payload with Ok j -> Some j | Error _ -> None
  in
  match call with
  | P.Reduce p ->
      Option.map
        (P.reduce_result ~detail:p.detail)
        (Cache.find_solve_mem cache ~k:p.k ~solver_name:p.solver_name
           ~seed:p.seed p.hypergraph)
  | P.Certify p ->
      Option.map
        (fun r -> P.certificate_json r.Ps_core.Pipeline.certificate)
        (Cache.find_solve_mem cache ~k:p.k ~solver_name:p.solver_name
           ~seed:p.seed p.hypergraph)
  | P.Mis { graph; algo; seed } ->
      Option.bind
        (Cache.find_graph_result_mem cache ~kind:Cache.Mis
           ~solver_name:(P.mis_algo_name algo) ~seed graph)
        parsed
  | P.Decompose { graph } ->
      Option.bind
        (Cache.find_graph_result_mem cache ~kind:Cache.Decompose
           ~solver_name:"ball-carving" ~seed:decompose_key_seed graph)
        parsed
  | P.Ping | P.Stats | P.Check _ -> None

let graph_result_cached cache ~kind ~solver_name ~seed graph render =
  match
    Option.bind
      (Cache.find_graph_result cache ~kind ~solver_name ~seed graph)
      (fun payload ->
        match Json.parse payload with Ok j -> Some j | Error _ -> None)
  with
  | Some j -> j
  | None ->
      let j = render () in
      Cache.store_graph_result cache ~kind ~solver_name ~seed graph
        (Json.to_string j);
      j

let handle_cached ~cache ~stats ~cancel (req : P.request) =
  match req.call with
  | P.Ping | P.Stats | P.Check _ -> handle ~stats ~cancel req
  | P.Reduce p ->
      Ok (P.reduce_result ~detail:p.detail (solve_cached ~cache ~cancel p))
  | P.Certify p ->
      Ok
        (P.certificate_json
           (solve_cached ~cache ~cancel p).Ps_core.Pipeline.certificate)
  | P.Mis { graph; algo; seed } ->
      Ok
        (graph_result_cached cache ~kind:Cache.Mis
           ~solver_name:(P.mis_algo_name algo) ~seed graph (fun () ->
             P.mis_result (mis_entries ~seed algo graph)))
  | P.Decompose { graph } ->
      Ok
        (graph_result_cached cache ~kind:Cache.Decompose
           ~solver_name:"ball-carving" ~seed:decompose_key_seed graph
           (fun () -> decompose graph))
