module P = Protocol

type config = {
  engine : Engine.config;
  max_line_bytes : int;
}

let default_config =
  { engine = Engine.default_config; max_line_bytes = P.default_max_bytes }

(* The reply-boundary contract: every line produces exactly one
   response and never kills the reader thread.  Parsing is total on
   untrusted bytes by design, but a bug in a solver or an encoder
   reached through [Engine.submit]'s synchronous prefix (cache lookup,
   validation) would otherwise unwind the whole connection; such a bug
   surfaces as one [internal] error response instead.  This catch-all
   is the containment the escape analysis checks for (DESIGN.md). *)
let handle_line ~engine ~max_line_bytes ~reply line =
  if not (String.equal (String.trim line) "") then
    try
      match P.parse_request ~max_bytes:max_line_bytes line with
      | Ok req ->
          ignore (Engine.submit engine req ~reply : Engine.submit_outcome)
      | Error (id, err) ->
          Engine.record_invalid engine;
          reply (P.response_to_line (P.error_response ~id err))
    with exn ->
      Engine.record_invalid engine;
      Ps_util.Telemetry.incr "server.handler_escape";
      reply
        (P.response_to_line
           (P.error_response ~id:Json.Null
              { P.code = P.Internal; message = Printexc.to_string exn }))

(* Stop latch: the accept/read loops block in their own threads; the
   main thread sleeps in [await] until SIGTERM/SIGINT/EOF trips the
   latch, then runs the drain.

   The latch is a bare atomic and [await] polls it, deliberately.  Two
   alternatives both fail here:
   - A mutex/condvar latch woken from a [Sys.signal] handler: OCaml
     signal handlers run at poll points on whatever thread polls next,
     which can be the thread already holding the latch mutex (relocking
     raises mid-handler), and with main, the readers and every worker
     domain parked in blocking C calls there may be no poll point at
     all — SIGTERM hangs.  The handler below only flips the atomic,
     which is async-safe, and the 50 ms poll in [await] guarantees a
     prompt poll point.
   - Masking + [Thread.wait_signal]: the runtime's internal threads
     (the systhreads tick thread, domain 0's backup thread) are created
     before user code and keep the signals unblocked, so with the
     disposition left at default the kernel can deliver there and kill
     the process.  Installing a handler fixes the disposition
     process-wide whichever thread the kernel picks. *)
type latch = { stopped : bool Atomic.t }

let make_latch () = { stopped = Atomic.make false }
let trip latch = Atomic.set latch.stopped true
let tripped latch = Atomic.get latch.stopped

let await latch =
  while not (tripped latch) do
    Thread.delay 0.05
  done

(* [f latch] runs with SIGTERM/SIGINT tripping the latch; previous
   dispositions are restored on exit. *)
let with_termination_latch f =
  let latch = make_latch () in
  let install s = Sys.signal s (Sys.Signal_handle (fun _ -> trip latch)) in
  let prev_term = install Sys.sigterm and prev_int = install Sys.sigint in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () -> f latch)

(* ------------------------------------------------------------------ *)
(* stdio *)

let serve_stdio ?(config = default_config) () =
  with_termination_latch @@ fun latch ->
  let engine = Engine.create config.engine in
  let out_mutex = Mutex.create () in
  let reply line =
    Mutex.lock out_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_mutex)
      (fun () ->
        (* stdout is the wire protocol here *)
        print_string line (* pslint: allow no-print *);
        print_newline ();
        flush stdout)
  in
  let reader () =
    (try
       let rec loop () =
         let line = input_line stdin in
         handle_line ~engine ~max_line_bytes:config.max_line_bytes ~reply line;
         loop ()
       in
       loop ()
     with End_of_file | Sys_error _ -> ());
    trip latch
  in
  let _reader : Thread.t = Thread.create reader () in
  await latch;
  (* Drain: every accepted job still answers before we return.  The
     reader thread may stay blocked in [input_line]; it holds no locks
     and dies with the process. *)
  Engine.shutdown ~drain:true engine

(* ------------------------------------------------------------------ *)
(* Unix socket *)

(* Retry [accept_fn] through the transient accept failures: EINTR (a
   signal landed mid-accept — routine for a process that fields SIGTERM
   and friends) and ECONNABORTED (the peer gave up while queued — says
   nothing about the listener).  Without this, one such failure inside
   the ready branch of the accept loop killed the acceptor thread and
   the server silently stopped accepting while looking healthy.  [None]
   when [should_stop] answers [true] between retries or the socket is
   gone (EBADF); every other exception propagates.  Parameterized over
   the accept function so the retry contract is testable without a
   kernel that cooperates on signal timing. *)
let rec accept_retrying ~should_stop accept_fn =
  match accept_fn () with
  | conn -> Some conn
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      if should_stop () then None
      else accept_retrying ~should_stop accept_fn
  | exception
      Unix.Unix_error
        ((Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM), _, _) ->
      (* Resource exhaustion: the listener is fine, the process (or the
         host) is out of fds or buffer space.  Retrying immediately
         would spin at 100% CPU; give in-flight connections 50 ms to
         release resources and try again.  Killing the acceptor here
         would turn a transient spike into a permanently deaf server. *)
      if should_stop () then None
      else begin
        Ps_util.Telemetry.incr "server.accept_backoff";
        Thread.delay 0.05;
        accept_retrying ~should_stop accept_fn
      end
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> None

(* A leftover socket file makes a fresh bind fail with EADDRINUSE, but
   blindly unlinking would silently hijack the address from a server
   that is still alive.  Disambiguate with a connect probe: a live
   listener accepts (or at least queues) the probe, while a file whose
   owner died answers ECONNREFUSED — that one is stale and safe to
   remove.  Every outcome is a [result]; callers turn the message into
   their own clean exit. *)
let prepare_socket_path path =
  if not (Sys.file_exists path) then Ok ()
  else
    match (Unix.stat path).Unix.st_kind with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
    | Unix.S_SOCK -> (
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let verdict =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close probe with Unix.Unix_error _ -> ())
            (fun () ->
              match Unix.connect probe (Unix.ADDR_UNIX path) with
              | () -> `Live
              | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
              | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
              | exception Unix.Unix_error (e, _, _) -> `Err e)
        in
        match verdict with
        | `Live ->
            Error
              (Printf.sprintf
                 "%s is in use by a live server (connect probe succeeded)"
                 path)
        | `Gone -> Ok ()
        | `Stale -> (
            match Unix.unlink path with
            | () -> Ok ()
            | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
            | exception Unix.Unix_error (e, _, _) ->
                Error
                  (Printf.sprintf "cannot remove stale socket %s: %s" path
                     (Unix.error_message e)))
        | `Err e ->
            Error
              (Printf.sprintf "probing %s failed: %s" path
                 (Unix.error_message e)))
    | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)

let bind_unix_socket path =
  match prepare_socket_path path with
  | Error msg -> failwith (Printf.sprintf "serve: %s" msg)
  | Ok () ->
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listen_fd (Unix.ADDR_UNIX path);
      Unix.listen listen_fd 64;
      listen_fd

let serve_unix_socket ?(config = default_config) ~path () =
  with_termination_latch @@ fun latch ->
  let engine = Engine.create config.engine in
  let listen_fd = bind_unix_socket path in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let connection fd () =
    (* The channel conversions sit inside the [try] with the read loop:
       they hit the same fd, so the same hangup errors apply. *)
    (try
       let ic = Unix.in_channel_of_descr fd in
       let oc = Unix.out_channel_of_descr fd in
       let out_mutex = Mutex.create () in
       let reply line =
         Mutex.lock out_mutex;
         Fun.protect
           ~finally:(fun () -> Mutex.unlock out_mutex)
           (fun () ->
             output_string oc line;
             output_char oc '\n';
             flush oc)
       in
       let rec loop () =
         let line = input_line ic in
         handle_line ~engine ~max_line_bytes:config.max_line_bytes ~reply line;
         loop ()
       in
       loop ()
     with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
    (* Leave the fd open until the process exits or the client hangs up
       first: in-flight replies for this connection may still be pending
       in the engine.  Closing here would turn them into reply failures
       during drain.  The kernel reclaims the fd at exit; long-running
       servers recycle few enough connection threads for this to hold. *)
    ()
  in
  let accept_loop () =
    let rec loop () =
      (* Poll so a tripped latch stops the accept loop promptly. *)
      match Unix.select [ listen_fd ] [] [] 0.25 with
      | [], _, _ -> if tripped latch then () else loop ()
      | _ :: _, _, _ ->
          (match
             accept_retrying
               ~should_stop:(fun () -> tripped latch)
               (fun () -> Unix.accept listen_fd)
           with
          | Some (fd, _) ->
              let _t : Thread.t = Thread.create (connection fd) () in
              ()
          | None -> ());
          if tripped latch then () else loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          if tripped latch then () else loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
    in
    (* A dead acceptor is this server's worst failure mode: the process
       looks healthy while refusing every new client.  Anything the
       retry ladder above does not classify (ENOMEM out of [select],
       EPERM from a security module, an accept error outside the
       transient set) lands here; count it, back off, and keep
       accepting until told to stop. *)
    let rec run () =
      try loop ()
      with _ ->
        Ps_util.Telemetry.incr "server.acceptor_restart";
        if tripped latch then ()
        else begin
          Thread.delay 0.05;
          run ()
        end
    in
    run ()
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigpipe prev_pipe;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let acceptor = Thread.create accept_loop () in
      await latch;
      Thread.join acceptor;
      Engine.shutdown ~drain:true engine)
