(** The solve service's wire protocol: newline-delimited JSON.

    One request per line, one response per line, in either direction of a
    byte stream (stdin/stdout or a Unix socket).  A request is

    {v {"id": <any>, "method": "reduce", "params": {...}} v}

    and every request — including malformed ones — produces exactly one
    response, either

    {v {"id": <echoed>, "ok": true,  "result": {...}}
       {"id": <echoed>, "ok": false, "error": {"code": "...", "message": "..."}} v}

    Responses may arrive out of order (jobs run on a worker pool); the
    echoed [id] is the correlation key.  Malformed input of any kind maps
    to a typed {!error} — parsing never raises on untrusted bytes.

    Methods: [reduce] and [certify] (Theorem 1.1 pipeline on an inline
    Hio hypergraph payload), [mis] and [decompose] (inline Gio edge-list
    payload), [ping], [stats].  The same result encoders back the CLI's
    [--json] mode, so one-shot and served output are byte-compatible. *)

type error_code =
  | Parse_error        (** line is not a JSON value *)
  | Invalid_request    (** JSON fine; envelope, params or payload invalid *)
  | Unknown_method
  | Payload_too_large  (** request line exceeds the configured byte cap *)
  | Overloaded         (** queue full — the shed response *)
  | Timeout            (** per-job deadline expired *)
  | Shutting_down      (** submitted to, or aborted by, a closing server *)
  | Internal           (** handler raised: a bug, reported not crashed *)

type error = { code : error_code; message : string }

val error_code_string : error_code -> string
(** Lower-snake wire names: ["parse_error"], ["overloaded"], ... *)

(** What a validated request asks for.  Inline payloads arrive already
    parsed: Hio/Gio rejection (negative ids, out-of-range vertices,
    malformed headers) happens at validation time and surfaces as
    {!Invalid_request}. *)

type solve_params = {
  hypergraph : Ps_hypergraph.Hypergraph.t;
  solver : Ps_maxis.Approx.solver;
  solver_name : string;
      (** the {e effective} name — carries the ["kernel+"] prefix when
          [presolve] is [`Kernel] and the solver does not already own
          its kernelization; run records and cache keys use it *)
  presolve : Ps_maxis.Kernel.choice;
  k : int option;       (** [None]: derive k from the conservative CF coloring *)
  seed : int;
  detail : bool;        (** include per-phase records and the multicoloring *)
}

type mis_algo = Mis_greedy | Mis_luby | Mis_slocal | Mis_derandomized | Mis_all

(** What the [check] method certifies: a claimed conflict-free
    multicoloring against an inline Hio hypergraph, or vertex-set
    certificates (independent / dominating) against an inline Gio graph
    (the graph's CSR representation is audited either way).  Semantic
    failures — an unhappy edge, an internal edge, an out-of-range id —
    are {e results} (positioned diagnostics with [valid: false]), not
    protocol errors. *)
type check_target =
  | Check_multicoloring of {
      hypergraph : Ps_hypergraph.Hypergraph.t;
      multicoloring : Ps_cfc.Multicolor.t;
    }
  | Check_graph_sets of {
      graph : Ps_graph.Graph.t;
      independent_set : int list option;
      dominating_set : int list option;
    }

type call =
  | Reduce of solve_params
  | Certify of solve_params
  | Mis of { graph : Ps_graph.Graph.t; algo : mis_algo; seed : int }
  | Decompose of { graph : Ps_graph.Graph.t }
  | Check of check_target
  | Ping
  | Stats

type request = {
  id : Json.t;               (** echoed verbatim; [Null] when absent *)
  timeout_ms : int option;   (** per-job deadline, measured from accept *)
  tenant : string option;
      (** quota accounting key ([params.tenant]); requests without one
          share the anonymous bucket.  Ignored unless the serving tier
          has per-tenant quotas configured ({!Ps_shard.Quota}). *)
  call : call;
}

val default_max_bytes : int
(** Request-line size cap when none is configured: 4 MiB. *)

val parse_request : ?max_bytes:int -> string -> (request, Json.t * error) result
(** Validate one request line.  On error the returned [Json.t] is the
    request id if one could be recovered from the line ([Null] otherwise)
    so the error response still correlates. *)

val validate_request : Json.t -> (request, Json.t * error) result
(** Envelope validation alone (everything after the line is a
    {!Json.t}): the shared second half of {!parse_request}, and the whole
    story for the binary codec, whose frames decode straight to a
    {!Json.t} without touching the JSON text parser. *)

val method_name : call -> string
(** Wire name of the method a call came from ("reduce", "ping", ...). *)

val solver_of_name : string -> Ps_maxis.Approx.solver option
(** The CLI's solver registry, shared: greedy, caro-wei, caro-wei-x8,
    adversarial, exact, clique-removal, portfolio. *)

val presolve_of_name : string -> Ps_maxis.Kernel.choice option
(** ["kernel"] or ["none"] — the wire/CLI names of the presolve knob. *)

val presolve_name : Ps_maxis.Kernel.choice -> string

val mis_algo_of_name : string -> mis_algo option
val mis_algo_name : mis_algo -> string

(** {1 Response construction} *)

val ok_response : id:Json.t -> Json.t -> Json.t
val error_response : id:Json.t -> error -> Json.t

val response_to_line : Json.t -> string
(** Compact encoding, no trailing newline (the transport adds it). *)

(** {1 Result encoders} (shared with [pslocal --json]) *)

val reduce_result : detail:bool -> Ps_core.Pipeline.result -> Json.t
val certificate_json : Ps_core.Certify.t -> Json.t

val mis_entry :
  algorithm:string -> size:int -> ?rounds:int -> ?locality:int -> unit -> Json.t

val mis_result : Json.t list -> Json.t
(** Wraps per-algorithm entries as [{"algorithms": [...]}]. *)

val decompose_result :
  Ps_slocal.Decomposition.t -> verified:bool -> Json.t

val diagnostic_json : Ps_check.Diagnostic.t -> Json.t
(** [{"rule", "where": {"kind", "at"}, "position", "message"}] — the wire
    form of a positioned audit diagnostic. *)

val check_result : checks:string list -> Ps_check.Diagnostic.t list -> Json.t
(** [{"valid", "checks", "diagnostics"}]; [valid] iff no diagnostics.
    [checks] names the certifiers that ran ("csr", "multicoloring",
    "independent_set", "dominating_set").  Shared by the served [check]
    method and [pslocal audit --json]. *)

(** {1 Binary framing}

    The hot-path alternative to JSON lines: one length-prefixed frame
    per message ([0xB5] · u32 big-endian payload length · payload), the
    payload a tagged binary encoding of exactly the {!Json} value the
    JSON codec would emit.  The two codecs carry the same request and
    response surface — the qcheck suite pins [of_bytes ∘ to_bytes = id]
    and cross-codec payload equality — but the binary decoder replaces
    character-level JSON scanning with fixed-width reads, and inline
    Hio/Gio payload strings arrive verbatim with no escape decoding.
    JSON stays the compatibility protocol; [pslocal serve --binary]
    switches a shard tier to frames. *)
module Binary : sig
  val magic : char
  (** First byte of every frame, [0xB5] — distinguishable from any JSON
      line (which starts with whitespace or a printable ASCII byte), so
      JSON sent to a binary port is rejected with a typed error, not
      misparsed. *)

  val header_bytes : int
  (** Frame header size: magic + u32 length = 5. *)

  val to_bytes : Json.t -> string
  (** Payload encoding of one value (no frame header). *)

  val of_bytes : ?max_depth:int -> string -> (Json.t, string) result
  (** Total decoder: truncated values, bad tags, negative or over-long
      lengths, out-of-range integers, over-deep nesting (default cap
      256) and trailing garbage are positioned [Error]s — never
      exceptions.  Inverse of {!to_bytes} on every value. *)

  val frame : Json.t -> string
  (** Header + payload: the full wire form of one message. *)

  val frame_length : string -> (int, string) result
  (** Parse a frame header (first {!header_bytes} bytes): the payload
      length, or why the header is unusable (short, wrong magic,
      negative length).  Length-cap enforcement is the reader's job —
      it knows its configured maximum. *)

  val decode_request : ?max_bytes:int -> string -> (request, Json.t * error) result
  (** One frame payload through decode + {!validate_request}: the
      binary analogue of {!parse_request}, with the same typed-error
      contract ([parse_error] for undecodable bytes,
      [payload_too_large] over the cap). *)
end
