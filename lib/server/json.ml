type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Bad of int * string
(* Internal only: [parse] catches it and returns [Error].  Carrying the
   byte offset separately keeps error construction allocation-light on
   the hot reject path. *)

let fail pos msg = raise (Bad (pos, msg))

type state = { s : string; mutable pos : int; max_depth : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let peek_is st c =
  match peek st with Some c' -> Char.equal c' c | None -> false

let skip_ws st =
  let n = String.length st.s in
  while
    st.pos < n
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail st.pos (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st.pos (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "invalid literal (expected %s)" word)

(* Append the UTF-8 encoding of a code point. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.s then fail st.pos "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.s.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail (st.pos + i) "invalid hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st.pos "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
        if st.pos >= String.length st.s then
          fail st.pos "truncated escape sequence";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let cp = hex4 st in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* High surrogate: require the paired low surrogate. *)
              if
                st.pos + 2 <= String.length st.s
                && st.s.[st.pos] = '\\'
                && st.s.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 st in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail st.pos "invalid low surrogate";
                add_utf8 buf
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else fail st.pos "unpaired surrogate"
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then
              fail st.pos "unpaired surrogate"
            else add_utf8 buf cp
        | _ -> fail (st.pos - 1) "invalid escape character");
        go ()
      end
    | c when Char.code c < 0x20 ->
        fail (st.pos - 1) "unescaped control character in string"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let n = String.length st.s in
  let is_int = ref true in
  if st.pos < n && st.s.[st.pos] = '-' then st.pos <- st.pos + 1;
  let digits_from p =
    let q = ref p in
    while !q < n && st.s.[!q] >= '0' && st.s.[!q] <= '9' do
      incr q
    done;
    !q
  in
  let d0 = st.pos in
  st.pos <- digits_from st.pos;
  if st.pos = d0 then fail st.pos "expected digit";
  (* JSON forbids leading zeros on multi-digit integers. *)
  if st.pos - d0 > 1 && st.s.[d0] = '0' then fail d0 "leading zero";
  if st.pos < n && st.s.[st.pos] = '.' then begin
    is_int := false;
    st.pos <- st.pos + 1;
    let f0 = st.pos in
    st.pos <- digits_from st.pos;
    if st.pos = f0 then fail st.pos "expected digit after decimal point"
  end;
  if st.pos < n && (st.s.[st.pos] = 'e' || st.s.[st.pos] = 'E') then begin
    is_int := false;
    st.pos <- st.pos + 1;
    if st.pos < n && (st.s.[st.pos] = '+' || st.s.[st.pos] = '-') then
      st.pos <- st.pos + 1;
    let e0 = st.pos in
    st.pos <- digits_from st.pos;
    if st.pos = e0 then fail st.pos "expected digit in exponent"
  end;
  let text = String.sub st.s start (st.pos - start) in
  if !is_int then
    (* Out-of-range integer literals (|x| > max_int) widen to float so a
       protocol-level range check can reject them with a typed error
       instead of the parser crashing. *)
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail start "malformed number"

let rec parse_value st depth =
  if depth > st.max_depth then fail st.pos "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_obj st depth
  | Some '[' -> parse_list st depth
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %C" c)

and parse_obj st depth =
  expect st '{';
  skip_ws st;
  if peek_is st '}' then begin
    st.pos <- st.pos + 1;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st (depth + 1) in
      skip_ws st;
      match peek st with
      | Some ',' ->
          st.pos <- st.pos + 1;
          members ((key, v) :: acc)
      | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((key, v) :: acc)
      | _ -> fail st.pos "expected ',' or '}' in object"
    in
    Obj (members [])
  end

and parse_list st depth =
  expect st '[';
  skip_ws st;
  if peek_is st ']' then begin
    st.pos <- st.pos + 1;
    List []
  end
  else begin
    let rec elements acc =
      let v = parse_value st (depth + 1) in
      skip_ws st;
      match peek st with
      | Some ',' ->
          st.pos <- st.pos + 1;
          elements (v :: acc)
      | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
      | _ -> fail st.pos "expected ',' or ']' in array"
    in
    List (elements [])
  end

let parse ?(max_depth = 256) s =
  let st = { s; pos = 0; max_depth } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> String.length s then fail st.pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (pos, msg) ->
      Error (Printf.sprintf "byte %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Printer *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then begin
        (* Shortest representation that round-trips; ensure it still
           reads as a number (17 significant digits always re-parse to
           the same float). *)
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string buf s
      end
      else escape_to buf (Float.to_string f)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj kvs ->
      List.find_map
        (fun (k, v) -> if String.equal k key then Some v else None)
        kvs
  | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None

let equal = ( = )
