(** Simulating the conflict graph in the LOCAL model.

    The paper: "The conflict graph [G_k] can be efficiently simulated in
    [H] in the LOCAL model."  The reason: a triple [(e, v, c)] lives at
    hypergraph vertex [v], and every [G_k]-neighbor of the triple lives
    at a vertex within {e two} hops of [v] in the primal graph of [H]
    ([E_edge]/[E_vertex] neighbors share a primal neighbor; [E_color]
    neighbors are in an edge through [v] or through a co-member of [v]).
    So each virtual round of a LOCAL algorithm on [G_k] costs O(1) rounds
    of [H], and node [v] hosts the [deg(v)·k] triples of [v].

    This module runs LOCAL algorithms on [G_k] through exactly that
    interface: the implicit adjacency oracle of {!Conflict_graph} —
    never materializing the graph — and reports both the virtual round
    count and the host-round cost. *)

val host_dilation : int
(** Primal-hop span of a [G_k] edge: [2].  Host rounds = virtual rounds
    × this constant. *)

val neighbors_oracle :
  Ps_hypergraph.Hypergraph.t -> Triple.Indexer.indexer -> int -> int array
(** Encoded [G_k]-neighbors of an encoded triple, sorted — a drop-in
    adjacency oracle for {!Ps_local.Network.Run_oracle}. *)

type mis_result = {
  independent_set : Ps_maxis.Independent_set.t;  (** over encoded triples *)
  virtual_rounds : int;   (** rounds of the LOCAL algorithm on [G_k] *)
  host_rounds : int;      (** = virtual_rounds × {!host_dilation} *)
  messages : int;
}

val luby_mis :
  ?seed:int -> Ps_hypergraph.Hypergraph.t -> k:int -> mis_result
(** Luby's MIS on the {e virtual} [G_k]: a maximal independent set of the
    conflict graph computed by message passing over the oracle, with
    LOCAL-model cost accounting.  Bit-identical to running Luby on the
    materialized [G_k] with the same seed. *)

val local_solver : seed:int -> Ps_maxis.Approx.solver
(** Package {!luby_mis} as a MaxIS solver over materialized conflict
    graphs is impossible (it needs [H]); instead this solver runs Luby
    directly on whatever graph it is handed — the reduction driver uses
    it to make the whole Theorem 1.1 loop message-passing-flavored.  A
    maximal IS is a [Δ(G_k)+1]-approximation, which on conflict graphs is
    far better in practice (experiment E6). *)
