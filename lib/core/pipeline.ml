module H = Ps_hypergraph.Hypergraph
module Cf = Ps_cfc.Cf_coloring
module Cg = Ps_cfc.Cf_greedy

type k_choice =
  | Fixed of int
  | From_conservative
  | From_ruler

let choose_k choice h =
  match choice with
  | Fixed k ->
      if k < 1 then invalid_arg "Pipeline.choose_k: k must be >= 1";
      k
  | From_conservative ->
      let f = Cg.conservative h in
      Cf.verify_exn h f;
      max 1 (Cf.max_color f + 1)
  | From_ruler ->
      let f = Cg.ruler h in
      Cf.verify_exn h f;
      max 1 (Cg.ruler_color_count (max 1 (H.n_vertices h)))

type result = {
  reduction : Reduction.run;
  certificate : Certify.t;
  k : int;
}

let solve_unchecked ?cancel ?seed ?engine ?domains ?warm ?on_phase0 ?presolve
    ?(k = From_conservative) ~solver h =
  let k = choose_k k h in
  let reduction =
    Reduction.run ?cancel ?seed ?engine ?domains ?warm ?on_phase0 ?presolve
      ~solver ~k h
  in
  { reduction; certificate = Certify.certify reduction; k }

let solve ?cancel ?seed ?engine ?domains ?warm ?on_phase0 ?presolve ?k ~solver
    h =
  let result =
    solve_unchecked ?cancel ?seed ?engine ?domains ?warm ?on_phase0 ?presolve
      ?k ~solver h
  in
  if not result.certificate.Certify.all_ok then
    failwith
      (Format.asprintf "Pipeline.solve: certificate failed: %a" Certify.pp
         result.certificate);
  result
