module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Is = Ps_maxis.Independent_set
module Mc = Ps_cfc.Multicolor
module Cf = Ps_cfc.Cf_coloring
module Bs = Ps_util.Bitset
module Tm = Ps_util.Telemetry

type phase_record = {
  phase : int;
  edges_before : int;
  conflict_vertices : int;
  conflict_edges : int;
  is_size : int;
  newly_happy : int;
  lambda_effective : float;
}

type run = {
  hypergraph : H.t;
  k : int;
  solver_name : string;
  multicoloring : Mc.t;
  phases : phase_record list;
  total_phases : int;
  colors_used : int;
}

type engine = [ `Rebuild | `Incremental ]

exception Stalled of int
exception Canceled

let log_src = Logs.Src.create "ps_core.reduction" ~doc:"Theorem 1.1 phases"

module Log = (val Logs.src_log log_src)

(* Deep per-phase certification, mirroring the PSLOCAL_DEBUG convention
   of [Ps_graph.Graph]'s fast constructors: off, the phase loop trusts
   its components; on, every conflict graph is audited for CSR
   well-formedness and every solver answer for independence before the
   phase commits.  A violation aborts loudly with the first positioned
   diagnostic — these invariants failing means a bug, not bad input.
   Both engines run the same audits: the incremental path certifies its
   compacted arena graph exactly as the rebuild path certifies its
   fresh one. *)
let debug_checks =
  match Sys.getenv_opt "PSLOCAL_DEBUG" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let phase_boundary_checks ~phase graph is =
  let fail what = function
    | [] -> ()
    | d :: _ ->
        invalid_arg
          (Printf.sprintf "Reduction.run: phase %d %s: %s" phase what
             (Ps_check.Diagnostic.to_string d))
  in
  fail "conflict graph" (Ps_check.Check_graph.csr graph);
  fail "solver output" (Ps_check.Check_set.independent graph is)

let run ?max_phases ?(cancel = fun () -> false) ?(seed = 0)
    ?(engine = (`Incremental : engine)) ?(domains = 0) ?warm ?on_phase0
    ?(presolve = (`Kernel : Ps_maxis.Kernel.choice)) ~solver ~k h =
  Tm.with_span "reduction.run" @@ fun () ->
  let solver = Ps_maxis.Kernel.apply presolve solver in
  let m = H.n_edges h in
  Tm.set_int "m" m;
  Tm.set_int "k" k;
  Tm.set_str "solver" solver.Ps_maxis.Approx.name;
  let engine_name =
    match engine with `Rebuild -> "rebuild" | `Incremental -> "incremental"
  in
  Tm.set_str "engine" engine_name;
  let max_phases =
    match max_phases with Some p -> p | None -> (4 * m) + 16
  in
  let rng = Ps_util.Rng.create seed in
  let multicoloring = Mc.blank h in
  let phases = ref [] in
  (* Surviving-edge bookkeeping: a bitset plus an explicit count replaces
     the seed implementation's int list + O(|remaining|) List.filter per
     phase — removal is O(1) per retired edge and the loop guard is a
     counter read. *)
  let remaining = Bs.create (max m 1) in
  for e = 0 to m - 1 do
    Bs.add remaining e
  done;
  let n_remaining = ref m in
  let phase = ref 0 in
  let phase_prologue () =
    if !phase >= max_phases then raise (Stalled !phase);
    if cancel () then raise Canceled
  in
  (* Everything downstream of the solved phase — publishing the phase's
     colors on the global palette, recording the phase, retiring the
     newly happy edges — is engine-independent given the phase coloring
     and the happy list. *)
  let commit_phase ~graph ~f_i ~is_size happy_global =
    Array.iteri
      (fun v c ->
        if c <> Cf.uncolored then
          Mc.add_color multicoloring v ((!phase * k) + c))
      f_i;
    let newly_happy = List.length happy_global in
    if newly_happy = 0 then raise (Stalled !phase);
    let edges_before = !n_remaining in
    Log.debug (fun m ->
        m "phase %d: |E|=%d |V(Gk)|=%d |I|=%d happy=%d" !phase edges_before
          (G.n_vertices graph) is_size newly_happy);
    let lambda_effective =
      if is_size = 0 then infinity
      else float_of_int edges_before /. float_of_int is_size
    in
    if Tm.enabled () then begin
      Tm.set_int "edges_before" edges_before;
      Tm.set_int "conflict_vertices" (G.n_vertices graph);
      Tm.set_int "conflict_edges" (G.n_edges graph);
      Tm.set_int "is_size" is_size;
      Tm.set_int "newly_happy" newly_happy;
      Tm.set_float "lambda_effective" lambda_effective;
      Tm.set_float "decay_factor"
        (1.0 -. (float_of_int newly_happy /. float_of_int edges_before));
      Tm.incr "reduction.phases";
      Tm.count "reduction.edges_retired" newly_happy;
      Tm.gauge_max "reduction.lambda_max" lambda_effective
    end;
    phases :=
      { phase = !phase;
        edges_before;
        conflict_vertices = G.n_vertices graph;
        conflict_edges = G.n_edges graph;
        is_size;
        newly_happy;
        lambda_effective }
      :: !phases;
    List.iter (fun e -> Bs.remove remaining e) happy_global;
    n_remaining := !n_remaining - newly_happy;
    incr phase
  in
  (match engine with
  | `Rebuild ->
      (* Seed path, kept verbatim in structure: restrict the hypergraph,
         rebuild tables/indexer/CSR from scratch each phase.  This is the
         oracle the incremental engine is differential-tested against. *)
      while !n_remaining > 0 do
        phase_prologue ();
        Tm.with_span "phase" @@ fun () ->
        Tm.set_int "phase" !phase;
        Tm.set_str "build_mode" engine_name;
        let hi, back = H.restrict_edges h (Bs.to_list remaining) in
        let cg = Conflict_graph.build ~domains hi ~k in
        let is =
          Tm.with_span "solve" (fun () ->
              Ps_maxis.Approx.solve_verified solver rng cg.graph)
        in
        if debug_checks then
          phase_boundary_checks ~phase:!phase cg.Conflict_graph.graph is;
        let f_i = Correspondence.coloring_of_is hi cg.indexer is in
        let happy_local = Cf.happy_edges hi f_i in
        let happy_global =
          List.map (fun e_local -> back.(e_local)) happy_local
        in
        commit_phase ~graph:cg.Conflict_graph.graph ~f_i ~is_size:(Is.size is)
          happy_global
      done
  | `Incremental ->
      (* Build G_k once; every later phase reuses the compacted arena.
         Per-phase this skips the hypergraph restriction, the indexer
         rebuild and both CSR passes — compaction is one filtered copy
         of the surviving rows.  Bit-identity with the rebuild path
         holds because compaction reproduces the exact numbering a
         rebuild would assign (see [Conflict_graph.Incremental]), so
         the solver sees equal graphs and draws the same randomness. *)
      let st =
        (* Warm start: skip the phase-0 CSR enumeration when the cache
           supplies a snapshot taken over an equal hypergraph at the
           same k; bit-identity with the cold path is the snapshot's
           contract. *)
        match warm with
        | Some snap ->
            if Conflict_graph.Incremental.snapshot_k snap <> k then
              invalid_arg "Reduction.run: warm snapshot built for another k";
            Conflict_graph.Incremental.create_from_snapshot h snap
        | None -> Conflict_graph.Incremental.create ~domains h ~k
      in
      (match on_phase0 with
      | Some f -> f (Conflict_graph.Incremental.snapshot st)
      | None -> ());
      let n_vertices = H.n_vertices h in
      let happy_cnt = Cf.happy_scratch ~k in
      while !n_remaining > 0 do
        phase_prologue ();
        Tm.with_span "phase" @@ fun () ->
        Tm.set_int "phase" !phase;
        Tm.set_str "build_mode" engine_name;
        let graph = Conflict_graph.Incremental.graph st in
        let is =
          Tm.with_span "solve" (fun () ->
              Ps_maxis.Approx.solve_verified solver rng graph)
        in
        if debug_checks then phase_boundary_checks ~phase:!phase graph is;
        let f_i =
          Correspondence.coloring_of_is_with ~n_vertices
            ~decode:(Conflict_graph.Incremental.decode st)
            is
        in
        (* Happy scan over surviving edges only, against the original
           hypergraph: global ids directly, no [back] translation. *)
        let happy_global =
          List.rev
            (Bs.fold
               (fun e acc ->
                 if Cf.happy_fast happy_cnt h f_i e then e :: acc else acc)
               remaining [])
        in
        commit_phase ~graph ~f_i ~is_size:(Is.size is) happy_global;
        Conflict_graph.Incremental.retire_edges st happy_global;
        Conflict_graph.Incremental.compact st;
        if Tm.enabled () then Tm.incr "reduction.compactions"
      done);
  let colors_used = Mc.total_colors multicoloring in
  Tm.set_int "total_phases" !phase;
  Tm.set_int "colors_used" colors_used;
  { hypergraph = h;
    k;
    solver_name = solver.Ps_maxis.Approx.name;
    multicoloring;
    phases = List.rev !phases;
    total_phases = !phase;
    colors_used }
