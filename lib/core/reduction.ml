module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Is = Ps_maxis.Independent_set
module Mc = Ps_cfc.Multicolor
module Cf = Ps_cfc.Cf_coloring
module Tm = Ps_util.Telemetry

type phase_record = {
  phase : int;
  edges_before : int;
  conflict_vertices : int;
  conflict_edges : int;
  is_size : int;
  newly_happy : int;
  lambda_effective : float;
}

type run = {
  hypergraph : H.t;
  k : int;
  solver_name : string;
  multicoloring : Mc.t;
  phases : phase_record list;
  total_phases : int;
  colors_used : int;
}

exception Stalled of int
exception Canceled

let log_src = Logs.Src.create "ps_core.reduction" ~doc:"Theorem 1.1 phases"

module Log = (val Logs.src_log log_src)

(* Deep per-phase certification, mirroring the PSLOCAL_DEBUG convention
   of [Ps_graph.Graph]'s fast constructors: off, the phase loop trusts
   its components; on, every conflict graph is audited for CSR
   well-formedness and every solver answer for independence before the
   phase commits.  A violation aborts loudly with the first positioned
   diagnostic — these invariants failing means a bug, not bad input. *)
let debug_checks =
  match Sys.getenv_opt "PSLOCAL_DEBUG" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let phase_boundary_checks ~phase (cg : Conflict_graph.t) is =
  let fail what = function
    | [] -> ()
    | d :: _ ->
        invalid_arg
          (Printf.sprintf "Reduction.run: phase %d %s: %s" phase what
             (Ps_check.Diagnostic.to_string d))
  in
  fail "conflict graph" (Ps_check.Check_graph.csr cg.Conflict_graph.graph);
  fail "solver output"
    (Ps_check.Check_set.independent cg.Conflict_graph.graph is)

let run ?max_phases ?(cancel = fun () -> false) ?(seed = 0) ~solver ~k h =
  Tm.with_span "reduction.run" @@ fun () ->
  let m = H.n_edges h in
  Tm.set_int "m" m;
  Tm.set_int "k" k;
  Tm.set_str "solver" solver.Ps_maxis.Approx.name;
  let max_phases =
    match max_phases with Some p -> p | None -> (4 * m) + 16
  in
  let rng = Ps_util.Rng.create seed in
  let multicoloring = Mc.blank h in
  let phases = ref [] in
  let remaining = ref (List.init m (fun e -> e)) in
  (* Scratch reused every phase: global edge id -> retired by some phase.
     Turns the remaining-edge prune into O(|remaining|) array lookups
     instead of an O(|remaining|·|happy|) List.mem scan. *)
  let retired = Array.make (max m 1) false in
  let phase = ref 0 in
  while (match !remaining with [] -> false | _ :: _ -> true) do
    if !phase >= max_phases then raise (Stalled !phase);
    if cancel () then raise Canceled;
    Tm.with_span "phase" @@ fun () ->
    Tm.set_int "phase" !phase;
    let hi, back = H.restrict_edges h !remaining in
    let cg = Conflict_graph.build hi ~k in
    let is =
      Tm.with_span "solve" (fun () ->
          Ps_maxis.Approx.solve_verified solver rng cg.graph)
    in
    if debug_checks then phase_boundary_checks ~phase:!phase cg is;
    let f_i = Correspondence.coloring_of_is hi cg.indexer is in
    (* Publish phase colors on the global palette [phase·k ..]. *)
    Array.iteri
      (fun v c ->
        if c <> Cf.uncolored then
          Mc.add_color multicoloring v ((!phase * k) + c))
      f_i;
    (* Remove the edges the phase coloring made happy. *)
    let happy_local = Cf.happy_edges hi f_i in
    let happy_global =
      List.map (fun e_local -> back.(e_local)) happy_local
    in
    let newly_happy = List.length happy_global in
    if newly_happy = 0 then raise (Stalled !phase);
    let is_size = Is.size is in
    Log.debug (fun m ->
        m "phase %d: |E|=%d |V(Gk)|=%d |I|=%d happy=%d" !phase (H.n_edges hi)
          (G.n_vertices cg.graph) is_size newly_happy);
    let lambda_effective =
      if is_size = 0 then infinity
      else float_of_int (H.n_edges hi) /. float_of_int is_size
    in
    if Tm.enabled () then begin
      Tm.set_int "edges_before" (H.n_edges hi);
      Tm.set_int "conflict_vertices" (G.n_vertices cg.graph);
      Tm.set_int "conflict_edges" (G.n_edges cg.graph);
      Tm.set_int "is_size" is_size;
      Tm.set_int "newly_happy" newly_happy;
      Tm.set_float "lambda_effective" lambda_effective;
      Tm.set_float "decay_factor"
        (1.0 -. (float_of_int newly_happy /. float_of_int (H.n_edges hi)));
      Tm.incr "reduction.phases";
      Tm.count "reduction.edges_retired" newly_happy;
      Tm.gauge_max "reduction.lambda_max" lambda_effective
    end;
    phases :=
      { phase = !phase;
        edges_before = H.n_edges hi;
        conflict_vertices = G.n_vertices cg.graph;
        conflict_edges = G.n_edges cg.graph;
        is_size;
        newly_happy;
        lambda_effective }
      :: !phases;
    List.iter (fun e -> retired.(e) <- true) happy_global;
    remaining := List.filter (fun e -> not retired.(e)) !remaining;
    incr phase
  done;
  let colors_used = Mc.total_colors multicoloring in
  Tm.set_int "total_phases" !phase;
  Tm.set_int "colors_used" colors_used;
  { hypergraph = h;
    k;
    solver_name = solver.Ps_maxis.Approx.name;
    multicoloring;
    phases = List.rev !phases;
    total_phases = !phase;
    colors_used }
