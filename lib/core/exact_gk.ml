module H = Ps_hypergraph.Hypergraph
module Ix = Triple.Indexer
module Is = Ps_maxis.Independent_set

(* Adjacency of triples from *different* hyperedges (the per-edge choice
   already rules out E_edge pairs): E_vertex or E_color. *)
let conflicts h (t1 : Triple.t) (t2 : Triple.t) =
  (t1.vertex = t2.vertex && t1.color <> t2.color)
  || (t1.color = t2.color
     && t1.vertex <> t2.vertex
     && (H.edge_mem h t1.edge t2.vertex || H.edge_mem h t2.edge t1.vertex))

exception Budget_exhausted

let maximum ?(budget = 10_000_000) h ~k =
  let ix = Ix.make h ~k in
  let m = H.n_edges h in
  let best = ref [] and best_size = ref (-1) in
  let nodes = ref 0 in
  let rec branch e chosen n_chosen =
    incr nodes;
    if !nodes > budget then raise Budget_exhausted;
    if e = m then begin
      if n_chosen > !best_size then begin
        best := chosen;
        best_size := n_chosen
      end
    end
    else if n_chosen + (m - e) > !best_size then begin
      (* try each compatible triple of edge e, then the skip branch *)
      List.iter
        (fun (t : Triple.t) ->
          if not (List.exists (conflicts h t) chosen) then
            branch (e + 1) (t :: chosen) (n_chosen + 1))
        (Ix.triples_of_edge ix e);
      branch (e + 1) chosen n_chosen
    end
  in
  match branch 0 [] 0 with
  | () ->
      let set = Ps_util.Bitset.create (Ix.total ix) in
      List.iter (fun t -> Ps_util.Bitset.add set (Ix.encode ix t)) !best;
      Some set
  | exception Budget_exhausted -> None

let independence_number ?budget h ~k =
  Option.map Is.size (maximum ?budget h ~k)

let solver h ~k =
  let ix = Ix.make h ~k in
  { Ps_maxis.Approx.name = "exact-gk";
    solve =
      (fun _rng g ->
        if Ps_graph.Graph.n_vertices g <> Ix.total ix then
          invalid_arg "Exact_gk.solver: graph is not this instance's G_k";
        match maximum h ~k with
        | Some set -> set
        | None -> failwith "Exact_gk.solver: budget exhausted") }
