(** The conflict graph [G_k] — the paper's central construction.

    Vertices: all triples [(e, v, c)] with [v ∈ e ∈ E(H)], [c] a color
    (see {!Triple}).  Edges, as in Section 2:

    {ul
    {- [E_vertex]: [(e,v,c) ~ (g,v,d)] — same hypergraph vertex, distinct
       colors ("a vertex gets at most one color per phase");}
    {- [E_edge]: [(e,v,c) ~ (e,u,d)] — same hyperedge ("an edge nominates
       at most one witness");}
    {- [E_color]: [(e,v,c) ~ (g,u,c)] — same color, {e distinct} vertices
       [u ≠ v], and [{u,v} ⊆ e] or [{u,v} ⊆ g] ("a witness's color is
       unique within its edge").}}

    The [u ≠ v] requirement in [E_color] is load-bearing: two edges may
    nominate the {e same} vertex with the same color in [I_f], and the
    proof of Lemma 2.1(a) needs those pairs to be non-adjacent (the
    lemma's case analysis derives contradictions only for [u ≠ v]).  The
    [|e|·k] triples of an edge do form a clique via [E_edge].

    Independent sets of [G_k] are partial CF colorings (Lemma 2.1); that
    file is {!Correspondence}.  This module offers the graph two ways: a
    materialized {!Ps_graph.Graph.t} (what the MaxIS solvers consume) and
    an implicit adjacency oracle (what a LOCAL-model simulation of [G_k]
    inside [H] would use — each triple's neighborhood is computable from
    the 1-hop structure of [H], which is why the paper can say "[G_k] can
    be efficiently simulated in [H] in the LOCAL model").  The test suite
    checks oracle and materialization agree edge-for-edge. *)

type t = {
  graph : Ps_graph.Graph.t;
  indexer : Triple.Indexer.indexer;
  k : int;
}

val build : ?domains:int -> Ps_hypergraph.Hypergraph.t -> k:int -> t
(** Materialize [G_k].  Size is polynomial:
    [|V| = k·Σ|e|] and [|E| = O(k² · Σ_e |e|² · max-degree)].

    Builds the CSR representation directly: a counting pass sizes every
    adjacency row by enumerating each triple's neighborhood (as encoded
    ids, deduplicated by sort + adjacent-skip in a reusable buffer) and
    a fill pass writes the rows in place — no intermediate edge list, no
    hashing, cost linear in the output size.  [domains > 1] splits both
    passes across that many OCaml domains ({!Ps_util.Parallel}); rows
    are computed independently into disjoint regions, so the result is
    bit-identical ({!Ps_graph.Graph.equal}) for every domain count.
    Default [domains = 1] (sequential). *)

val build_reference : Ps_hypergraph.Hypergraph.t -> k:int -> t
(** The straightforward list-based builder the CSR path replaced:
    emits every family's pairs into an edge list and normalizes through
    {!Ps_graph.Graph.of_edges}.  Kept as the differential-testing oracle
    for {!build} (the property suite checks [Graph.equal] on random
    hypergraphs) and as the micro-benchmark baseline. *)

val adjacent : Ps_hypergraph.Hypergraph.t -> k:int -> Triple.t -> Triple.t -> bool
(** Direct evaluation of the edge-family definitions, no graph needed —
    the specification the materialization is tested against. *)

val iter_neighbors_implicit :
  Ps_hypergraph.Hypergraph.t -> Triple.Indexer.indexer -> Triple.t ->
  (Triple.t -> unit) -> unit
(** Enumerate the neighbors of a triple straight from the hypergraph
    (each neighbor exactly once). *)

type family_counts = {
  n_vertex_family : int;  (** [|E_vertex|] *)
  n_edge_family : int;    (** [|E_edge|] *)
  n_color_family : int;   (** [|E_color|] *)
  n_union : int;          (** [|E(G_k)|] — the families overlap *)
}

val edge_family_counts : Ps_hypergraph.Hypergraph.t -> k:int -> family_counts
(** Exhaustive O(|V(G_k)|²) enumeration straight from the definitions;
    experiment E5 checks [n_union] equals the materialized edge count. *)

val size_formula : Ps_hypergraph.Hypergraph.t -> k:int -> int
(** Predicted vertex count [k·Σ|e|] (checked in experiment E5). *)

val to_dot : Ps_hypergraph.Hypergraph.t -> k:int -> string
(** Graphviz rendering of [G_k] for small instances: triple-labelled
    vertices, edges colored by family (red = [E_vertex], blue =
    [E_edge], green = [E_color]; overlapping memberships pick the first
    in that order). *)
