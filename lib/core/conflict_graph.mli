(** The conflict graph [G_k] — the paper's central construction.

    Vertices: all triples [(e, v, c)] with [v ∈ e ∈ E(H)], [c] a color
    (see {!Triple}).  Edges, as in Section 2:

    {ul
    {- [E_vertex]: [(e,v,c) ~ (g,v,d)] — same hypergraph vertex, distinct
       colors ("a vertex gets at most one color per phase");}
    {- [E_edge]: [(e,v,c) ~ (e,u,d)] — same hyperedge ("an edge nominates
       at most one witness");}
    {- [E_color]: [(e,v,c) ~ (g,u,c)] — same color, {e distinct} vertices
       [u ≠ v], and [{u,v} ⊆ e] or [{u,v} ⊆ g] ("a witness's color is
       unique within its edge").}}

    The [u ≠ v] requirement in [E_color] is load-bearing: two edges may
    nominate the {e same} vertex with the same color in [I_f], and the
    proof of Lemma 2.1(a) needs those pairs to be non-adjacent (the
    lemma's case analysis derives contradictions only for [u ≠ v]).  The
    [|e|·k] triples of an edge do form a clique via [E_edge].

    Independent sets of [G_k] are partial CF colorings (Lemma 2.1); that
    file is {!Correspondence}.  This module offers the graph two ways: a
    materialized {!Ps_graph.Graph.t} (what the MaxIS solvers consume) and
    an implicit adjacency oracle (what a LOCAL-model simulation of [G_k]
    inside [H] would use — each triple's neighborhood is computable from
    the 1-hop structure of [H], which is why the paper can say "[G_k] can
    be efficiently simulated in [H] in the LOCAL model").  The test suite
    checks oracle and materialization agree edge-for-edge. *)

type t = {
  graph : Ps_graph.Graph.t;
  indexer : Triple.Indexer.indexer;
  k : int;
}

type width = [ `Auto | `Int | `Int32 ]
(** Physical width of the materialized adjacency store (see
    {!Ps_graph.Graph.width}).  [`Auto] — the default everywhere — picks
    the int32 Bigarray store whenever the triple count [k·Σ|e|] fits in
    int32 (halving the memory traffic of every solver scan over [G_k]),
    and the plain int store otherwise.  [`Int] forces the int store;
    it is the differential oracle the property suite compares the
    narrow store against — the resulting graphs are bit-identical
    ({!Ps_graph.Graph.equal}) by construction and by test. *)

val build :
  ?domains:int -> ?width:width -> Ps_hypergraph.Hypergraph.t -> k:int -> t
(** Materialize [G_k].  Size is polynomial:
    [|V| = k·Σ|e|] and [|E| = O(k² · Σ_e |e|² · max-degree)].

    Builds the CSR representation directly: a counting pass sizes every
    adjacency row by enumerating each triple's neighborhood (as encoded
    ids, deduplicated by sort + adjacent-skip in a reusable buffer) and
    a fill pass writes the rows in place — no intermediate edge list, no
    hashing, cost linear in the output size.

    {b Domain semantics.}  [domains] requests parallel construction:

    {ul
    {- [domains = 1] (the default): sequential, no spawning.}
    {- [domains > 1]: both passes run on a {e single} staged fork-join
       ({!Ps_util.Parallel.fork_join_staged} — one spawn set, not one
       per pass), scheduled by per-domain sharded cursors with work
       stealing ({!Ps_util.Parallel.Sharded_cursor}: chunk claims stay
       uncontended until the tail of the slot range).  The request is
       clamped to the slot count [Σ|e|], so no spawned domain can be
       left without a slice of work — asking for 8 domains on a
       3-slot instance spawns 2, not 7 idle ones.}
    {- [domains = 0]: automatic, via
       {!Ps_util.Parallel.effective_domains} with the triple count
       [k·Σ|e|] as the unit count — the calibration constant
       ({!Ps_util.Parallel.auto_units_per_domain}) and the clamping
       rule are shared with every other [?domains:0] heuristic in the
       repository.}}

    Rows are computed independently into disjoint regions whichever
    domain claims them, so the result is bit-identical
    ({!Ps_graph.Graph.equal}) for every domain count and schedule. *)

(** Incremental cross-phase engine.

    The reduction loop only shrinks its hypergraph (happy edges retire;
    nothing is ever added), and every adjacency family of [G_k] is a
    predicate on the two triples and their own edges' membership — so
    the conflict graph of the restricted hypergraph is exactly the
    induced subgraph of the current [G_k] on surviving triples.  This
    engine builds [G_k] once, then after each phase {!retire_edges} +
    {!compact} renumber the surviving slots monotonically and filter
    the CSR rows in place, writing into a double-buffered scratch arena
    (two offsets/adj pairs allocated at the first compact and swapped
    thereafter — no per-phase allocation; reuse is reported on the
    [conflict_graph.reused_bytes] telemetry counter).

    Because [Hypergraph.restrict_edges] preserves the relative order
    and member arrays of surviving edges, the monotone renumbering
    assigns exactly the triple ids a fresh rebuild would — the
    compacted graph is bit-identical to [build (restrict_edges h alive)
    ~k], which is what lets {!Reduction.run}'s [`Incremental] engine
    promise bit-identical multicolorings to its [`Rebuild] baseline.

    The graph returned by {!graph} is an arena view over the current
    buffer pair: it stays valid until the {e next-but-one} {!compact}
    call clobbers that buffer.  The reduction loop consumes each phase's
    graph before compacting again, so this is invisible there; external
    callers wanting a stable snapshot should copy via
    {!Ps_graph.Graph.to_csr}. *)
module Incremental : sig
  type state

  val create :
    ?domains:int -> ?width:width -> Ps_hypergraph.Hypergraph.t -> k:int ->
    state
  (** Build phase-0 [G_k] and the arena bookkeeping.  [domains] as in
      {!build}, but defaulting to [0] (automatic); [width] as in
      {!build} — both arena buffer pairs share the chosen width, and
      compaction is bit-identical across widths. *)

  val graph : state -> Ps_graph.Graph.t
  (** The current conflict graph (see validity caveat above). *)

  val k : state -> int

  val n_alive_edges : state -> int
  (** Hyperedges not yet retired. *)

  val decode : state -> int -> Triple.t
  (** Triple of a {e current} conflict-graph vertex id, with its edge
      field holding the {e original} hyperedge id (not a
      restricted-local one).  Edge membership is unchanged by
      restriction, so coloring extraction and audits see the same
      answers as the rebuild path. *)

  val retire_edges : state -> int list -> unit
  (** Mark original hyperedge ids dead (idempotent).  The graph is
      unchanged until {!compact}.  Raises [Invalid_argument] on an
      out-of-range id. *)

  val compact : state -> unit
  (** Drop every triple of a retired edge and renumber; no-op if
      nothing was retired since the last compact. *)

  type snapshot
  (** An immutable copy of a state's phase-0 CSR, safe to keep after
      the state itself is discarded or compacted (warm-start tier of
      the solved-instance cache). *)

  val snapshot : state -> snapshot
  (** Capture the phase-0 CSR.  Only valid before any retirement:
      raises [Invalid_argument] once edges have been retired, because
      the compacted CSR no longer describes the full hypergraph. *)

  val snapshot_k : snapshot -> int
  (** The [k] the snapshot was built for. *)

  val snapshot_bytes : snapshot -> int
  (** Approximate heap footprint of the copied arrays, for cache byte
      budgets. *)

  val create_from_snapshot :
    Ps_hypergraph.Hypergraph.t -> snapshot -> state
  (** Rebuild a fresh phase-0 state for [h] from a snapshot taken over
      the {e same} hypergraph, replacing the neighborhood-enumeration
      CSR build with two array copies (plus the cheap slot-table
      pass).  The resulting state — and therefore the whole solve — is
      bit-identical to [create h ~k].  The caller must guarantee [h]
      equals the snapshot's hypergraph ({!Ps_hypergraph.Hypergraph.equal});
      only the slot-count is re-checked here ([Invalid_argument] on
      mismatch). *)
end

val build_reference : Ps_hypergraph.Hypergraph.t -> k:int -> t
(** The straightforward list-based builder the CSR path replaced:
    emits every family's pairs into an edge list and normalizes through
    {!Ps_graph.Graph.of_edges}.  Kept as the differential-testing oracle
    for {!build} (the property suite checks [Graph.equal] on random
    hypergraphs) and as the micro-benchmark baseline. *)

val adjacent : Ps_hypergraph.Hypergraph.t -> k:int -> Triple.t -> Triple.t -> bool
(** Direct evaluation of the edge-family definitions, no graph needed —
    the specification the materialization is tested against. *)

val iter_neighbors_implicit :
  Ps_hypergraph.Hypergraph.t -> Triple.Indexer.indexer -> Triple.t ->
  (Triple.t -> unit) -> unit
(** Enumerate the neighbors of a triple straight from the hypergraph
    (each neighbor exactly once). *)

type family_counts = {
  n_vertex_family : int;  (** [|E_vertex|] *)
  n_edge_family : int;    (** [|E_edge|] *)
  n_color_family : int;   (** [|E_color|] *)
  n_union : int;          (** [|E(G_k)|] — the families overlap *)
}

val edge_family_counts : Ps_hypergraph.Hypergraph.t -> k:int -> family_counts
(** Exhaustive O(|V(G_k)|²) enumeration straight from the definitions;
    experiment E5 checks [n_union] equals the materialized edge count. *)

val size_formula : Ps_hypergraph.Hypergraph.t -> k:int -> int
(** Predicted vertex count [k·Σ|e|] (checked in experiment E5). *)

val to_dot : Ps_hypergraph.Hypergraph.t -> k:int -> string
(** Graphviz rendering of [G_k] for small instances: triple-labelled
    vertices, edges colored by family (red = [E_vertex], blue =
    [E_edge], green = [E_color]; overlapping memberships pick the first
    in that order). *)
