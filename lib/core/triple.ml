module H = Ps_hypergraph.Hypergraph

type t = { edge : int; vertex : int; color : int }

let compare a b =
  match Int.compare a.edge b.edge with
  | 0 -> (
      match Int.compare a.vertex b.vertex with
      | 0 -> Int.compare a.color b.color
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf t = Format.fprintf ppf "(e%d, v%d, c%d)" t.edge t.vertex t.color

module Indexer = struct
  type indexer = {
    h : H.t;
    k : int;
    start : int array;        (* start.(e) = Σ_{e' < e} |e'|; length m+1 *)
    position : (int, int) Hashtbl.t;
        (* e·n + v -> rank of v in e; int-encoded keys avoid boxed-tuple
           allocation and polymorphic hashing on every encode *)
  }

  let pos_key ix e v = (e * H.n_vertices ix.h) + v

  let make h ~k =
    if k < 1 then invalid_arg "Triple.Indexer.make: k must be >= 1";
    let m = H.n_edges h in
    let n = H.n_vertices h in
    let start = Array.make (m + 1) 0 in
    let position = Hashtbl.create 64 in
    for e = 0 to m - 1 do
      start.(e + 1) <- start.(e) + H.edge_size h e;
      Array.iteri (fun p v -> Hashtbl.add position ((e * n) + v) p) (H.edge h e)
    done;
    { h; k; start; position }

  let total ix = ix.start.(H.n_edges ix.h) * ix.k

  let k ix = ix.k

  let in_bounds ix t =
    t.edge >= 0 && t.edge < H.n_edges ix.h
    && t.vertex >= 0 && t.vertex < H.n_vertices ix.h

  let encode ix t =
    if t.color < 0 || t.color >= ix.k then
      invalid_arg "Triple.Indexer.encode: color out of range";
    if not (in_bounds ix t) then
      invalid_arg "Triple.Indexer.encode: vertex not in edge";
    match Hashtbl.find_opt ix.position (pos_key ix t.edge t.vertex) with
    | None -> invalid_arg "Triple.Indexer.encode: vertex not in edge"
    | Some p -> ((ix.start.(t.edge) + p) * ix.k) + t.color

  let decode ix idx =
    if idx < 0 || idx >= total ix then
      invalid_arg "Triple.Indexer.decode: index out of range";
    let slot = idx / ix.k and color = idx mod ix.k in
    (* Find the edge owning this slot by binary search over [start]. *)
    let lo = ref 0 and hi = ref (H.n_edges ix.h - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if ix.start.(mid) <= slot then lo := mid else hi := mid - 1
    done;
    let edge = !lo in
    let vertex = (H.edge ix.h edge).(slot - ix.start.(edge)) in
    { edge; vertex; color }

  let mem ix t =
    t.color >= 0 && t.color < ix.k && in_bounds ix t
    && Hashtbl.mem ix.position (pos_key ix t.edge t.vertex)

  let iter ix f =
    for idx = 0 to total ix - 1 do
      f (decode ix idx)
    done

  let triples_of_edge ix e =
    H.fold_edge ix.h e
      (fun acc v ->
        List.fold_left
          (fun acc c -> { edge = e; vertex = v; color = c } :: acc)
          acc
          (List.init ix.k (fun c -> c)))
      []
    |> List.sort compare

  let triples_of_vertex ix v =
    List.concat_map
      (fun e ->
        List.init ix.k (fun c -> { edge = e; vertex = v; color = c }))
      (H.incident_edges ix.h v)
    |> List.sort compare
end
