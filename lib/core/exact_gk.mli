(** Exact maximum independent sets of conflict graphs, exploiting their
    structure.

    [E_edge] makes the [|e|·k] triples of each hyperedge a clique, so an
    independent set of [G_k] picks {e at most one triple per hyperedge}.
    Branching over hyperedges — "which triple represents edge [e], if
    any" — bounds the search depth by [m] and the branching factor by
    [|e|·k + 1], dramatically beating the generic branch-and-bound of
    {!Ps_maxis.Exact} on [G_k] (which must rediscover the clique
    structure).  Used to verify Lemma 2.1(a)'s maximality claim
    ([α(G_k) = m] exactly when [H] admits a CF k-coloring) on instances
    far beyond the generic solver's reach, and to measure true per-phase
    λ in the experiments.

    Compatibility of two triples is checked against the same
    {!Conflict_graph.adjacent} specification the materialized graph is
    tested against. *)

val maximum :
  ?budget:int ->
  Ps_hypergraph.Hypergraph.t ->
  k:int ->
  Ps_maxis.Independent_set.t option
(** A maximum independent set of [G_k] as a bitset over
    {!Triple.Indexer} codes, or [None] if [budget] search nodes (default
    [10_000_000]) are exhausted. *)

val independence_number :
  ?budget:int -> Ps_hypergraph.Hypergraph.t -> k:int -> int option

val solver : Ps_hypergraph.Hypergraph.t -> k:int -> Ps_maxis.Approx.solver
(** Package as an {!Ps_maxis.Approx.solver} for the given instance: the
    solve function ignores the graph argument's identity and answers for
    this [H, k] (λ = 1 when the budget suffices; raises [Failure]
    otherwise). *)
