module H = Ps_hypergraph.Hypergraph
module Is = Ps_maxis.Independent_set
module Mc = Ps_cfc.Multicolor
module Cf = Ps_cfc.Cf_coloring
module Bs = Ps_util.Bitset
module Ix = Triple.Indexer
module Tm = Ps_util.Telemetry

type local_cost = {
  phases : int;
  virtual_rounds : int;
  host_rounds : int;
  messages : int;
}

type run = {
  reduction : Reduction.run;
  cost : local_cost;
}

(* Coordination cost charged per phase besides the Luby run: one round to
   publish the freshly chosen colors, one to re-evaluate happiness (both
   1-hop exchanges in H). *)
let coordination_rounds_per_phase = 2

let run ?max_phases ?(cancel = fun () -> false) ?(seed = 0)
    ?(engine = (`Incremental : Reduction.engine)) ~k h =
  Tm.with_span "reduction_local.run" @@ fun () ->
  let m = H.n_edges h in
  Tm.set_int "m" m;
  Tm.set_int "k" k;
  let max_phases =
    match max_phases with Some p -> p | None -> (4 * m) + 16
  in
  let multicoloring = Mc.blank h in
  let phases = ref [] in
  (* Bitset + count bookkeeping, as in [Reduction.run].  Unlike there,
     the conflict graph itself cannot be carried across phases: Luby
     runs on the {e implicit} G_k of the restricted hypergraph and its
     randomness is drawn per restricted-local id, so the per-phase
     [restrict_edges] must stay for bit-identical answers.  The engines
     therefore differ only in bookkeeping — [`Incremental] swaps the
     List.filter prune and the Hashtbl-per-edge happiness scan for O(1)
     bitset removal and the allocation-free [Cf.happy_fast]. *)
  let remaining = Bs.create (max m 1) in
  for e = 0 to m - 1 do
    Bs.add remaining e
  done;
  let n_remaining = ref m in
  let happy_cnt = Cf.happy_scratch ~k in
  let phase = ref 0 in
  let virtual_rounds = ref 0 and messages = ref 0 in
  while !n_remaining > 0 do
    if !phase >= max_phases then raise (Reduction.Stalled !phase);
    if cancel () then raise Reduction.Canceled;
    Tm.with_span "phase" @@ fun () ->
    Tm.set_int "phase" !phase;
    let hi, back = H.restrict_edges h (Bs.to_list remaining) in
    let ix = Ix.make hi ~k in
    (* Luby over the implicit conflict graph: no materialization. *)
    let sim = Simulate.luby_mis ~seed:(seed + !phase) hi ~k in
    virtual_rounds := !virtual_rounds + sim.Simulate.virtual_rounds;
    messages := !messages + sim.Simulate.messages;
    let is = sim.Simulate.independent_set in
    let f_i = Correspondence.coloring_of_is hi ix is in
    Array.iteri
      (fun v c ->
        if c <> Cf.uncolored then
          Mc.add_color multicoloring v ((!phase * k) + c))
      f_i;
    let happy_global =
      match engine with
      | `Rebuild ->
          List.map (fun e -> back.(e)) (Cf.happy_edges hi f_i)
      | `Incremental ->
          (* Same verdicts, no per-edge Hashtbl: walk the restricted
             edges with the scratch counter and translate as we go. *)
          let acc = ref [] in
          for e = H.n_edges hi - 1 downto 0 do
            if Cf.happy_fast happy_cnt hi f_i e then acc := back.(e) :: !acc
          done;
          !acc
    in
    let newly_happy = List.length happy_global in
    if newly_happy = 0 then raise (Reduction.Stalled !phase);
    let is_size = Is.size is in
    let lambda_effective =
      if is_size = 0 then infinity
      else float_of_int (H.n_edges hi) /. float_of_int is_size
    in
    if Tm.enabled () then begin
      Tm.set_int "edges_before" (H.n_edges hi);
      Tm.set_int "conflict_vertices" (Ix.total ix);
      Tm.set_int "is_size" is_size;
      Tm.set_int "newly_happy" newly_happy;
      Tm.set_float "lambda_effective" lambda_effective;
      Tm.set_int "virtual_rounds" sim.Simulate.virtual_rounds;
      Tm.set_int "messages" sim.Simulate.messages;
      Tm.incr "reduction_local.phases";
      Tm.count "reduction_local.virtual_rounds" sim.Simulate.virtual_rounds;
      Tm.count "reduction_local.messages" sim.Simulate.messages
    end;
    phases :=
      { Reduction.phase = !phase;
        edges_before = H.n_edges hi;
        conflict_vertices = Ix.total ix;
        conflict_edges = -1;
        (* never materialized; -1 marks "not measured" *)
        is_size;
        newly_happy;
        lambda_effective }
      :: !phases;
    List.iter (fun e -> Bs.remove remaining e) happy_global;
    n_remaining := !n_remaining - newly_happy;
    incr phase
  done;
  let reduction =
    { Reduction.hypergraph = h;
      k;
      solver_name = "luby-on-implicit-Gk";
      multicoloring;
      phases = List.rev !phases;
      total_phases = !phase;
      colors_used = Mc.total_colors multicoloring }
  in
  Tm.set_int "total_phases" !phase;
  Tm.set_int "virtual_rounds" !virtual_rounds;
  Tm.set_int "messages" !messages;
  { reduction;
    cost =
      { phases = !phase;
        virtual_rounds = !virtual_rounds;
        host_rounds =
          (Simulate.host_dilation * !virtual_rounds)
          + (coordination_rounds_per_phase * !phase);
        messages = !messages } }
