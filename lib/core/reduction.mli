(** The Theorem 1.1 reduction: conflict-free multicoloring via iterated
    MaxIS approximation — the paper's hardness direction, executable.

    Given a hypergraph [H] admitting a conflict-free k-coloring and an
    algorithm computing λ-approximations of MaxIS, run phases
    [i = 1, 2, ...]: build the conflict graph [G_k^i] of the still-unhappy
    edges [E_i], compute an independent set [I^i] with the approximation
    algorithm, let every hypergraph vertex with some [(·, v, c) ∈ I^i]
    take color [c] from phase [i]'s {e fresh} palette, and remove the
    edges that became happy.  Lemma 2.1 gives [α(G_k^i) = |E_i|], so a
    λ-approximation yields [|I^i| ≥ |E_i|/λ] and at least that many edges
    leave: [|E_{i+1}| ≤ (1 − 1/λ)|E_i|].  After [ρ = λ·ln m + 1] phases no
    edge remains, and the union of the per-phase colorings is a
    conflict-free multicoloring with [k·ρ] colors.

    This module runs exactly that loop with any {!Ps_maxis.Approx.solver}
    plugged in as the λ-approximation oracle, recording per-phase numbers
    so the experiments can compare the observed decay and phase count to
    the proof's bounds. *)

type phase_record = {
  phase : int;                (** 0-based phase index *)
  edges_before : int;         (** [|E_i|] *)
  conflict_vertices : int;    (** [|V(G_k^i)|] *)
  conflict_edges : int;       (** [|E(G_k^i)|] *)
  is_size : int;              (** [|I^i|] *)
  newly_happy : int;          (** edges removed after this phase (≥ is_size) *)
  lambda_effective : float;   (** [|E_i| / |I^i|] — the λ actually achieved,
                                  valid because [α(G_k^i) = |E_i|] *)
}

type run = {
  hypergraph : Ps_hypergraph.Hypergraph.t;
  k : int;
  solver_name : string;
  multicoloring : Ps_cfc.Multicolor.t;
      (** phase [i] contributes colors [i·k .. i·k + k - 1] *)
  phases : phase_record list; (** in phase order *)
  total_phases : int;
  colors_used : int;          (** distinct colors actually appearing *)
}

type engine = [ `Rebuild | `Incremental ]
(** How each phase obtains its conflict graph:

    {ul
    {- [`Rebuild] — the seed implementation: restrict the hypergraph to
       the surviving edges and rebuild tables, indexer and CSR from
       scratch every phase.  Kept as the differential-testing oracle.}
    {- [`Incremental] (default) — build [G_k] once and compact it in
       place after each phase ({!Conflict_graph.Incremental}): retired
       edges' triples are dropped and survivors renumbered through a
       reusable double-buffered arena, skipping the per-phase
       restriction, indexer rebuild and CSR passes entirely.}}

    The two engines are {e bit-identical}: compaction reassigns exactly
    the triple ids a fresh rebuild would, so the solver sees equal
    graphs, consumes the same randomness, and both engines produce the
    same multicoloring, the same phase records and the same audit
    verdicts (the property suite asserts all three). *)

val log_src : Logs.src
(** Per-phase progress is logged here at debug level — enable with
    [Logs.Src.set_level Reduction.log_src (Some Logs.Debug)] (the CLI's
    [--verbose] does). *)

exception Stalled of int
(** Raised if a phase removes no edge (impossible for a solver returning
    non-empty independent sets on non-empty graphs; the guard exists so a
    broken solver cannot loop forever). Carries the phase index. *)

exception Canceled
(** Raised when the [cancel] hook of {!run} returns [true] — see below. *)

val run :
  ?max_phases:int ->
  ?cancel:(unit -> bool) ->
  ?seed:int ->
  ?engine:engine ->
  ?domains:int ->
  ?warm:Conflict_graph.Incremental.snapshot ->
  ?on_phase0:(Conflict_graph.Incremental.snapshot -> unit) ->
  ?presolve:Ps_maxis.Kernel.choice ->
  solver:Ps_maxis.Approx.solver ->
  k:int ->
  Ps_hypergraph.Hypergraph.t ->
  run
(** Execute the reduction.  [max_phases] defaults to [4·m + 16] — far
    beyond the theoretical [ρ] of any reasonable solver, as even a
    1-edge-per-phase solver finishes in [m] phases.  The result's
    multicoloring is conflict-free by construction; {!Certify} re-checks
    everything independently.

    [engine] selects the phase-graph strategy (default [`Incremental],
    see {!type-engine}); [domains] is forwarded to the conflict-graph
    builder (default [0] — automatic, see {!Conflict_graph.build}) and
    affects only construction speed, never the result.

    [warm] hands the [`Incremental] engine a phase-0 CSR snapshot taken
    over an {e equal} hypergraph at the same [k]
    ({!Conflict_graph.Incremental.create_from_snapshot}; equality is the
    caller's contract, [k] is checked — [Invalid_argument] on mismatch),
    replacing the phase-0 build with array copies; the run is
    bit-identical either way.  [on_phase0] is called once with a
    snapshot of the freshly built (or warm-started) phase-0 CSR, which
    is how the solved-instance cache populates its warm tier.  Both are
    ignored by the [`Rebuild] oracle, which has no cross-phase state.

    [presolve] (default [`Kernel]) wraps the solver with
    {!Ps_maxis.Kernel.apply}: each phase's conflict graph is kernelized
    before the solver runs and the answer is lifted (and made maximal)
    on the original ids.  The effective solver name — and hence
    [run.solver_name] and every cache key derived from it — carries the
    ["kernel+"] prefix, so kernel-on and kernel-off runs never alias.
    Pass [`None] to study a solver's raw λ profile (the λ-degradation
    experiments do: the repair pass built into the lift would restore
    maximality and erase the degradation).

    [cancel] (default: never) is polled once per phase, before any phase
    work; a [true] answer raises {!Canceled}.  This is the cooperative
    hook the solve server uses for per-job deadlines: the check costs one
    call per phase and cancellation latency is bounded by one phase.

    With the [PSLOCAL_DEBUG] environment variable set, every phase
    boundary additionally runs the deep {!Ps_check} certifiers on its
    intermediate objects — CSR well-formedness of the conflict graph and
    independence of the solver's answer — and raises [Invalid_argument]
    with the first positioned diagnostic on a violation. *)
