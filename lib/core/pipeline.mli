(** One-call driver: pick [k], run the reduction, certify.

    The proof of Theorem 1.1 starts from "the graphs used for the
    hardness all admit a conflict-free k-coloring with k = polylog n; fix
    this k".  On concrete instances we obtain such a [k] constructively,
    by running a direct CF-coloring algorithm on [H] and counting its
    colors — this both fixes [k] and witnesses the premise. *)

type k_choice =
  | Fixed of int        (** caller-supplied [k] (must admit a CF coloring) *)
  | From_conservative   (** k = colors of {!Ps_cfc.Cf_greedy.conservative} *)
  | From_ruler          (** k = [⌊log2 n⌋+1] via {!Ps_cfc.Cf_greedy.ruler};
                            only sound on interval hypergraphs *)

val choose_k : k_choice -> Ps_hypergraph.Hypergraph.t -> int
(** Resolve the choice; for the algorithmic choices the witness coloring
    is verified conflict-free first (raises [Invalid_argument] if not —
    e.g. [From_ruler] on a non-interval hypergraph). Returns at least 1. *)

type result = {
  reduction : Reduction.run;
  certificate : Certify.t;
  k : int;
}

val solve :
  ?cancel:(unit -> bool) ->
  ?seed:int ->
  ?engine:Reduction.engine ->
  ?domains:int ->
  ?warm:Conflict_graph.Incremental.snapshot ->
  ?on_phase0:(Conflict_graph.Incremental.snapshot -> unit) ->
  ?presolve:Ps_maxis.Kernel.choice ->
  ?k:k_choice ->
  solver:Ps_maxis.Approx.solver ->
  Ps_hypergraph.Hypergraph.t ->
  result
(** Run end to end ([k] defaults to [From_conservative]).  Raises
    [Failure] when the certificate fails — by Theorem 1.1 that can only
    mean a bug, so it is loud.  [cancel], [engine], [domains], [warm],
    [on_phase0] and [presolve] are forwarded to {!Reduction.run} (defaults there:
    per-phase cooperative-cancellation poll off, [`Incremental],
    automatic domain count, no warm start, no snapshot callback).
    Callers passing [warm] must resolve [k] with {!choose_k} first and
    pass [Fixed] so the snapshot's [k] is the one used. *)

val solve_unchecked :
  ?cancel:(unit -> bool) ->
  ?seed:int ->
  ?engine:Reduction.engine ->
  ?domains:int ->
  ?warm:Conflict_graph.Incremental.snapshot ->
  ?on_phase0:(Conflict_graph.Incremental.snapshot -> unit) ->
  ?presolve:Ps_maxis.Kernel.choice ->
  ?k:k_choice ->
  solver:Ps_maxis.Approx.solver ->
  Ps_hypergraph.Hypergraph.t ->
  result
(** Same but returns the (possibly failing) certificate instead of
    raising — for experiments that chart failure modes (e.g. the
    palette-reuse ablation). *)
