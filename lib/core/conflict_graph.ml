module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Ix = Triple.Indexer

type t = {
  graph : G.t;
  indexer : Ix.indexer;
  k : int;
}

let validate h ~k (t : Triple.t) =
  t.color >= 0 && t.color < k
  && t.edge >= 0 && t.edge < H.n_edges h
  && H.edge_mem h t.edge t.vertex

let adjacent h ~k (t1 : Triple.t) (t2 : Triple.t) =
  if not (validate h ~k t1 && validate h ~k t2) then
    invalid_arg "Conflict_graph.adjacent: invalid triple";
  (not (Triple.equal t1 t2))
  && (* E_vertex *)
     ((t1.vertex = t2.vertex && t1.color <> t2.color)
     || (* E_edge *)
     t1.edge = t2.edge
     || (* E_color: same color, distinct vertices, and {u,v} ⊆ e or
           {u,v} ⊆ g.  [u ≠ v] matters: the proof of Lemma 2.1 lets two
           edges nominate the same vertex with the same color, so those
           pairs must NOT be adjacent. *)
     (t1.color = t2.color
     && t1.vertex <> t2.vertex
     && (H.edge_mem h t1.edge t2.vertex || H.edge_mem h t2.edge t1.vertex)))

let build h ~k =
  let ix = Ix.make h ~k in
  let edges = ref [] in
  let add t1 t2 =
    let a = Ix.encode ix t1 and b = Ix.encode ix t2 in
    if a <> b then edges := (a, b) :: !edges
  in
  let clique triples =
    let arr = Array.of_list triples in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        add arr.(i) arr.(j)
      done
    done
  in
  (* E_edge (plus intra-edge parts of the other families): one clique per
     hyperedge over its |e|·k triples. *)
  for e = 0 to H.n_edges h - 1 do
    clique (Ix.triples_of_edge ix e)
  done;
  (* E_vertex: triples sharing a hypergraph vertex are adjacent exactly
     when their colors differ (same-vertex same-color pairs from distinct
     edges are independent — Lemma 2.1(a) relies on it). *)
  for v = 0 to H.n_vertices h - 1 do
    let triples = Array.of_list (Ix.triples_of_vertex ix v) in
    let n = Array.length triples in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if triples.(i).Triple.color <> triples.(j).Triple.color then
          add triples.(i) triples.(j)
      done
    done
  done;
  (* E_color (u ≠ v by definition): (e,v,c) ~ (g,u,c) whenever u ∈ e. *)
  for e = 0 to H.n_edges h - 1 do
    let members = H.edge h e in
    Array.iter
      (fun v ->
        Array.iter
          (fun u ->
            if u <> v then
              List.iter
                (fun g ->
                  for c = 0 to k - 1 do
                    add
                      { Triple.edge = e; vertex = v; color = c }
                      { Triple.edge = g; vertex = u; color = c }
                  done)
                (H.incident_edges h u))
          members)
      members
  done;
  { graph = G.of_edges (Ix.total ix) !edges; indexer = ix; k }

let iter_neighbors_implicit h ix (t : Triple.t) f =
  let k = Ix.k ix in
  if not (validate h ~k t) then
    invalid_arg "Conflict_graph.iter_neighbors_implicit: invalid triple";
  let self = Ix.encode ix t in
  let seen = Hashtbl.create 64 in
  let emit (u : Triple.t) =
    let idx = Ix.encode ix u in
    if idx <> self && not (Hashtbl.mem seen idx) then begin
      Hashtbl.add seen idx ();
      f u
    end
  in
  (* Same hyperedge: every other triple of edge e. *)
  List.iter emit (Ix.triples_of_edge ix t.edge);
  (* E_vertex: triples of vertex v whose color differs. *)
  List.iter
    (fun (u : Triple.t) -> if u.color <> t.color then emit u)
    (Ix.triples_of_vertex ix t.vertex);
  (* E_color (u ≠ v): (g,u,c) for u ∈ e \ {v} (any g ∋ u), and (g,u,c)
     for g ∋ v, u ∈ g \ {v}. *)
  H.iter_edge h t.edge (fun u ->
      if u <> t.vertex then
        List.iter
          (fun g -> emit { Triple.edge = g; vertex = u; color = t.color })
          (H.incident_edges h u));
  List.iter
    (fun g ->
      H.iter_edge h g (fun u ->
          if u <> t.vertex then
            emit { Triple.edge = g; vertex = u; color = t.color }))
    (H.incident_edges h t.vertex)

let size_formula h ~k =
  let sum = ref 0 in
  for e = 0 to H.n_edges h - 1 do
    sum := !sum + H.edge_size h e
  done;
  k * !sum

let to_dot h ~k =
  let ix = Ix.make h ~k in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph conflict_graph {\n  node [shape=box];\n";
  Ix.iter ix (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"(e%d,v%d,c%d)\"];\n"
           (Ix.encode ix t) t.Triple.edge t.Triple.vertex t.Triple.color));
  Ix.iter ix (fun t1 ->
      let i1 = Ix.encode ix t1 in
      Ix.iter ix (fun t2 ->
          let i2 = Ix.encode ix t2 in
          if i1 < i2 then begin
            let color =
              if t1.vertex = t2.vertex && t1.color <> t2.color then
                Some "red" (* E_vertex *)
              else if t1.edge = t2.edge then Some "blue" (* E_edge *)
              else if
                t1.color = t2.color
                && t1.vertex <> t2.vertex
                && (H.edge_mem h t1.edge t2.vertex
                   || H.edge_mem h t2.edge t1.vertex)
              then Some "green" (* E_color *)
              else None
            in
            match color with
            | Some c ->
                Buffer.add_string buf
                  (Printf.sprintf "  %d -- %d [color=%s];\n" i1 i2 c)
            | None -> ()
          end));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type family_counts = {
  n_vertex_family : int;
  n_edge_family : int;
  n_color_family : int;
  n_union : int;
}

let edge_family_counts h ~k =
  let ix = Ix.make h ~k in
  let n_vertex = ref 0 and n_edge = ref 0 and n_color = ref 0 in
  let n_union = ref 0 in
  Ix.iter ix (fun t1 ->
      let i1 = Ix.encode ix t1 in
      Ix.iter ix (fun t2 ->
          let i2 = Ix.encode ix t2 in
          if i1 < i2 then begin
            let in_vertex = t1.vertex = t2.vertex && t1.color <> t2.color in
            let in_edge = t1.edge = t2.edge in
            let in_color =
              t1.color = t2.color
              && t1.vertex <> t2.vertex
              && (H.edge_mem h t1.edge t2.vertex
                 || H.edge_mem h t2.edge t1.vertex)
            in
            if in_vertex then incr n_vertex;
            if in_edge then incr n_edge;
            if in_color then incr n_color;
            if in_vertex || in_edge || in_color then incr n_union
          end));
  { n_vertex_family = !n_vertex;
    n_edge_family = !n_edge;
    n_color_family = !n_color;
    n_union = !n_union }
