module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Ix = Triple.Indexer
module Tm = Ps_util.Telemetry

type t = {
  graph : G.t;
  indexer : Ix.indexer;
  k : int;
}

let validate h ~k (t : Triple.t) =
  t.color >= 0 && t.color < k
  && t.edge >= 0 && t.edge < H.n_edges h
  && H.edge_mem h t.edge t.vertex

let adjacent h ~k (t1 : Triple.t) (t2 : Triple.t) =
  if not (validate h ~k t1 && validate h ~k t2) then
    invalid_arg "Conflict_graph.adjacent: invalid triple";
  (not (Triple.equal t1 t2))
  && (* E_vertex *)
     ((t1.vertex = t2.vertex && t1.color <> t2.color)
     || (* E_edge *)
     t1.edge = t2.edge
     || (* E_color: same color, distinct vertices, and {u,v} ⊆ e or
           {u,v} ⊆ g.  [u ≠ v] matters: the proof of Lemma 2.1 lets two
           edges nominate the same vertex with the same color, so those
           pairs must NOT be adjacent. *)
     (t1.color = t2.color
     && t1.vertex <> t2.vertex
     && (H.edge_mem h t1.edge t2.vertex || H.edge_mem h t2.edge t1.vertex)))

let build_reference h ~k =
  let ix = Ix.make h ~k in
  let edges = ref [] in
  let add t1 t2 =
    let a = Ix.encode ix t1 and b = Ix.encode ix t2 in
    if a <> b then edges := (a, b) :: !edges
  in
  let clique triples =
    let arr = Array.of_list triples in
    let n = Array.length arr in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        add arr.(i) arr.(j)
      done
    done
  in
  (* E_edge (plus intra-edge parts of the other families): one clique per
     hyperedge over its |e|·k triples. *)
  for e = 0 to H.n_edges h - 1 do
    clique (Ix.triples_of_edge ix e)
  done;
  (* E_vertex: triples sharing a hypergraph vertex are adjacent exactly
     when their colors differ (same-vertex same-color pairs from distinct
     edges are independent — Lemma 2.1(a) relies on it). *)
  for v = 0 to H.n_vertices h - 1 do
    let triples = Array.of_list (Ix.triples_of_vertex ix v) in
    let n = Array.length triples in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if triples.(i).Triple.color <> triples.(j).Triple.color then
          add triples.(i) triples.(j)
      done
    done
  done;
  (* E_color (u ≠ v by definition): (e,v,c) ~ (g,u,c) whenever u ∈ e. *)
  for e = 0 to H.n_edges h - 1 do
    let members = H.edge h e in
    Array.iter
      (fun v ->
        Array.iter
          (fun u ->
            if u <> v then
              List.iter
                (fun g ->
                  for c = 0 to k - 1 do
                    add
                      { Triple.edge = e; vertex = v; color = c }
                      { Triple.edge = g; vertex = u; color = c }
                  done)
                (H.incident_edges h u))
          members)
      members
  done;
  { graph = G.of_edges (Ix.total ix) !edges; indexer = ix; k }

(* ------------------------------------------------------------------ *)
(* Direct-CSR builder.

   The reference builder above materializes a duplicate-heavy edge list
   (every pair is emitted by up to three families) and pays for boxed
   tuples, polymorphic hashing and list sorting in [Graph.of_edges].
   The fast path instead flattens [H] into int tables once, then for
   every triple enumerates its neighborhood directly as encoded ids into
   a reusable buffer — sort + adjacent-dedup replaces the hash table.
   Two passes over the triples (a counting pass sizing [offsets], a fill
   pass writing [adj] in place) yield the CSR arrays with no
   intermediate edge list, making the build linear in the size of its
   output (up to the constant duplicate factor ≤ 4 and the per-row
   sort).  Both passes split the slot range across domains when
   [domains > 1]; every row is computed independently and written to a
   disjoint region, so the output is bit-identical for any domain
   count. *)

(* Flat integer tables describing H.  A "slot" is a (edge, member)
   position — slot s of edge e holds the p-th vertex of e where
   s = start.(e) + p — and triple (e, v, c) with v in slot s has encoded
   id s·k + c, matching [Triple.Indexer.encode]. *)
type tables = {
  nslots : int;            (* Σ|e| *)
  start : int array;       (* length m+1: slots of edge e are [start.(e), start.(e+1)) *)
  slot_vertex : int array; (* slot -> hypergraph vertex sitting there *)
  slot_edge : int array;   (* slot -> owning hyperedge *)
  voff : int array;        (* length n+1: incidence offsets per vertex *)
  vslot : int array;       (* the slots holding vertex v, increasing edge order *)
}

let tables_of h =
  let m = H.n_edges h and n = H.n_vertices h in
  let start = Array.make (m + 1) 0 in
  for e = 0 to m - 1 do
    start.(e + 1) <- start.(e) + H.edge_size h e
  done;
  let nslots = start.(m) in
  let slot_vertex = Array.make (max nslots 1) 0 in
  let slot_edge = Array.make (max nslots 1) 0 in
  let vdeg = Array.make (max n 1) 0 in
  for e = 0 to m - 1 do
    let p = ref start.(e) in
    H.iter_edge h e (fun v ->
        slot_vertex.(!p) <- v;
        slot_edge.(!p) <- e;
        vdeg.(v) <- vdeg.(v) + 1;
        incr p)
  done;
  let voff = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    voff.(v + 1) <- voff.(v) + vdeg.(v)
  done;
  let vslot = Array.make (max voff.(n) 1) 0 in
  let cursor = Array.copy voff in
  for s = 0 to nslots - 1 do
    let v = slot_vertex.(s) in
    vslot.(cursor.(v)) <- s;
    cursor.(v) <- cursor.(v) + 1
  done;
  { nslots; start; slot_vertex; slot_edge; voff; vslot }

(* Reusable per-worker growable int buffer. *)
type buf = { mutable data : int array; mutable len : int }

let buf_create () = { data = Array.make 1024 0; len = 0 }

let buf_push b x =
  if b.len = Array.length b.data then begin
    let d = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

(* The k triples living in a slot all see the same neighbor *slots*, and
   which colors of a neighbor slot are adjacent depends only on which
   families relate the two slots — so the builder works per slot, not
   per triple.  For the triple (s, c) and a neighbor slot x:

   - x = s (same edge, same vertex):           colors c' ≠ c   (k-1)
   - x in the same edge (E_edge, u ≠ v):       all colors      (k)
   - x holds the same vertex elsewhere
     (E_vertex; never also E_edge or E_color): colors c' ≠ c   (k-1)
   - x only E_color-related (u ≠ v, u ∈ e or
     v ∈ g; never also E_vertex):              color c          (1)

   Row lengths are therefore the same for every color of a slot, and a
   row is emitted sorted by one walk over the slot's sorted neighbor
   list — no per-row sort, no pair-level dedup.  Families are unioned
   with per-slot bitmasks in a byte table; the list of touched slots is
   kept in a reusable buffer, so clearing is proportional to the row. *)

let edge_bit = 1
let samev_bit = 2

type scratch = { mask : Bytes.t; slots : buf }

let scratch_create nslots =
  { mask = Bytes.make (max nslots 1) '\000'; slots = buf_create () }

let touch sc x bit =
  let m = Char.code (Bytes.get sc.mask x) in
  if m = 0 then buf_push sc.slots x;
  Bytes.set sc.mask x (Char.chr (m lor bit))

(* Record every neighbor slot of [s] with its family mask (ecolor-only
   slots carry mask bit 4, but only "no other bit" matters for them). *)
let collect_slots tb sc s =
  sc.slots.len <- 0;
  let e = tb.slot_edge.(s) and v = tb.slot_vertex.(s) in
  (* E_edge: all slots of edge e (including s itself). *)
  for s' = tb.start.(e) to tb.start.(e + 1) - 1 do
    touch sc s' edge_bit
  done;
  (* E_vertex: every slot holding v (including s itself). *)
  for j = tb.voff.(v) to tb.voff.(v + 1) - 1 do
    touch sc tb.vslot.(j) samev_bit
  done;
  (* E_color, {u,v} ⊆ e: u ∈ e \ {v} in any of u's slots. *)
  for s' = tb.start.(e) to tb.start.(e + 1) - 1 do
    let u = tb.slot_vertex.(s') in
    if u <> v then
      for j = tb.voff.(u) to tb.voff.(u + 1) - 1 do
        touch sc tb.vslot.(j) 4
      done
  done;
  (* E_color, {u,v} ⊆ g: slots of edges g ∋ v, minus v's own slots. *)
  for j = tb.voff.(v) to tb.voff.(v + 1) - 1 do
    let g = tb.slot_edge.(tb.vslot.(j)) in
    for s' = tb.start.(g) to tb.start.(g + 1) - 1 do
      if tb.slot_vertex.(s') <> v then touch sc s' 4
    done
  done

let clear_slots sc =
  for i = 0 to sc.slots.len - 1 do
    Bytes.set sc.mask sc.slots.data.(i) '\000'
  done

(* Shared row length of slot [s]'s k rows (see the table above). *)
let slot_degree sc ~k s =
  let d = ref 0 in
  for i = 0 to sc.slots.len - 1 do
    let x = sc.slots.data.(i) in
    let m = Char.code (Bytes.get sc.mask x) in
    if x = s then d := !d + (k - 1)
    else if m land edge_bit <> 0 then d := !d + k
    else if m land samev_bit <> 0 then d := !d + (k - 1)
    else incr d
  done;
  !d

(* Count the k rows of slot [s]: write their shared degree into [deg]. *)
let count_slot tb sc ~k deg s =
  collect_slots tb sc s;
  let ds = slot_degree sc ~k s in
  clear_slots sc;
  for c = 0 to k - 1 do
    deg.((s * k) + c) <- ds
  done

(* Fill pass for one slot: sort its neighbor slots once, then write its
   k rows in place with a linear walk — ascending slots × ascending
   colors keep every row strictly increasing. *)
let fill_slot tb sc ~k offsets adj s =
  collect_slots tb sc s;
  Ps_util.Intsort.sort_range sc.slots.data 0 sc.slots.len;
  for c = 0 to k - 1 do
    let w = ref offsets.((s * k) + c) in
    for i = 0 to sc.slots.len - 1 do
      let x = sc.slots.data.(i) in
      let m = Char.code (Bytes.get sc.mask x) in
      let base = x * k in
      if x = s || m land edge_bit = 0 && m land samev_bit <> 0 then
        for c' = 0 to k - 1 do
          if c' <> c then begin
            adj.(!w) <- base + c';
            incr w
          end
        done
      else if m land edge_bit <> 0 then
        for c' = 0 to k - 1 do
          adj.(!w) <- base + c';
          incr w
        done
      else begin
        adj.(!w) <- base + c;
        incr w
      end
    done
  done;
  clear_slots sc

(* Same fill pass writing an int32 Bigarray store.  Kept as a literal
   sibling of [fill_slot] rather than abstracted over a [set] closure:
   this loop touches every adjacency entry of G_k and a per-entry
   closure call would cost more than the duplication saves. *)
let fill_slot_i32 tb sc ~k offsets (adj : G.i32) s =
  collect_slots tb sc s;
  Ps_util.Intsort.sort_range sc.slots.data 0 sc.slots.len;
  for c = 0 to k - 1 do
    let w = ref offsets.((s * k) + c) in
    for i = 0 to sc.slots.len - 1 do
      let x = sc.slots.data.(i) in
      let m = Char.code (Bytes.get sc.mask x) in
      let base = x * k in
      if x = s || m land edge_bit = 0 && m land samev_bit <> 0 then
        for c' = 0 to k - 1 do
          if c' <> c then begin
            Bigarray.Array1.unsafe_set adj !w (Int32.of_int (base + c'));
            incr w
          end
        done
      else if m land edge_bit <> 0 then
        for c' = 0 to k - 1 do
          Bigarray.Array1.unsafe_set adj !w (Int32.of_int (base + c'));
          incr w
        done
      else begin
        Bigarray.Array1.unsafe_set adj !w (Int32.of_int (base + c));
        incr w
      end
    done
  done;
  clear_slots sc

(* One unit of bulk work is one triple; one schedulable slice is one
   slot (a slot's k rows are built together).  The calibration constant
   and the clamping rule live in {!Ps_util.Parallel.effective_domains}
   so every ?domains:0 heuristic in the repository resolves the same
   way. *)
let effective_domains ~requested ~nslots ~k =
  Ps_util.Parallel.effective_domains ~requested ~units:(nslots * k)
    ~slices:nslots

(* Physical width of the G_k adjacency store.  Triple ids go up to
   nslots·k, so the narrow store is valid exactly when that fits int32;
   [`Auto] picks it whenever it does (which is every realistic instance
   — 2^31 triples would not fit in memory at any width). *)
type width = [ `Auto | `Int | `Int32 ]

type adj_store = A_int of int array | A_i32 of G.i32

let resolve_width (w : width) ~total : [ `Int | `Int32 ] =
  match w with
  | (`Int | `Int32) as w -> w
  | `Auto -> if total <= 0x7FFF_FFFF then `Int32 else `Int

let i32_create len =
  Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max len 1)

(* Compute the CSR arrays of G_k, exactly sized.  [domains] must already
   be effective (>= 1, <= nslots).  Parallel runs use a single staged
   fork-join — one spawn set for both passes — and per-domain sharded
   cursors with work stealing ({!Ps_util.Parallel.Sharded_cursor})
   rather than one static slice per domain: slot neighborhoods vary
   wildly in size, and static slices leave the domains that drew cheap
   slots idle, while the single shared cursor this replaces made every
   chunk claim a cross-core cache-line bounce.  Every slot's rows are
   written to a disjoint region whichever domain claims it, so the
   arrays are bit-identical for any domain count and any schedule. *)
let csr_arrays ~k ~domains ~width tb =
  let total = tb.nslots * k in
  let pick = resolve_width width ~total in
  let deg = Array.make (max total 1) 0 in
  let offsets = Array.make (total + 1) 0 in
  let prefix_sum () =
    for i = 0 to total - 1 do
      offsets.(i + 1) <- offsets.(i) + deg.(i)
    done
  in
  let adj = ref (A_int [||]) in
  let alloc_adj () =
    adj :=
      (match pick with
      | `Int -> A_int (Array.make (max offsets.(total) 1) 0)
      | `Int32 -> A_i32 (i32_create offsets.(total)))
  in
  if domains <= 1 then begin
    let sc = scratch_create tb.nslots in
    Tm.with_span "count_pass" (fun () ->
        for s = 0 to tb.nslots - 1 do
          count_slot tb sc ~k deg s
        done);
    prefix_sum ();
    alloc_adj ();
    Tm.with_span "fill_pass" (fun () ->
        match !adj with
        | A_int a ->
            for s = 0 to tb.nslots - 1 do
              fill_slot tb sc ~k offsets a s
            done
        | A_i32 a ->
            for s = 0 to tb.nslots - 1 do
              fill_slot_i32 tb sc ~k offsets a s
            done)
  end
  else begin
    let module Cur = Ps_util.Parallel.Sharded_cursor in
    let cursor1 = Cur.create ~domains ~lo:0 ~hi:tb.nslots () in
    let cursor2 = Cur.create ~domains ~lo:0 ~hi:tb.nslots () in
    let scratches =
      Array.init domains (fun _ -> scratch_create tb.nslots)
    in
    let t0 = Tm.now_ns () in
    let t1 = ref t0 and t2 = ref t0 in
    Ps_util.Parallel.fork_join_staged ~domains
      ~stage1:(fun d ->
        let sc = scratches.(d) in
        Cur.drain cursor1 d (count_slot tb sc ~k deg))
      ~mid:(fun () ->
        t1 := Tm.now_ns ();
        prefix_sum ();
        alloc_adj ();
        t2 := Tm.now_ns ())
      ~stage2:(fun d ->
        let sc = scratches.(d) in
        match !adj with
        | A_int a -> Cur.drain cursor2 d (fill_slot tb sc ~k offsets a)
        | A_i32 a -> Cur.drain cursor2 d (fill_slot_i32 tb sc ~k offsets a));
    if Tm.enabled () then begin
      let t3 = Tm.now_ns () in
      Tm.add_completed_span ~name:"count_pass" ~start_ns:t0 ~stop_ns:!t1 [];
      Tm.add_completed_span ~name:"fill_pass" ~start_ns:!t2 ~stop_ns:t3 []
    end
  end;
  (* The store was sized [max _ 1] so an edgeless graph still gets a live
     array; [offsets.(total)] is the logical size. *)
  (offsets, !adj)

let prefix_graph total ~offsets store =
  match store with
  | A_int adj -> G.of_csr_prefix total ~offsets ~adj
  | A_i32 adj -> G.of_csr_prefix_i32 total ~offsets ~adj

let csr_graph ~k ~domains ~width tb =
  let total = tb.nslots * k in
  let offsets, adj = csr_arrays ~k ~domains ~width tb in
  Tm.set_int "csr_rows" total;
  Tm.set_int "csr_edges" (offsets.(total) / 2);
  prefix_graph total ~offsets adj

let build ?(domains = 1) ?(width = `Auto) h ~k =
  Tm.with_span "conflict_graph.build" @@ fun () ->
  Tm.set_int "k" k;
  Tm.set_int "domains" domains;
  Tm.set_int "hyperedges" (H.n_edges h);
  let ix = Ix.make h ~k in
  let tb = Tm.with_span "tables" (fun () -> tables_of h) in
  Tm.set_int "slots" tb.nslots;
  let domains = effective_domains ~requested:domains ~nslots:tb.nslots ~k in
  Tm.set_int "domains_effective" domains;
  let graph = csr_graph ~k ~domains ~width tb in
  if Tm.enabled () then begin
    Tm.incr "conflict_graph.builds";
    Tm.count "conflict_graph.csr_rows" (G.n_vertices graph);
    Tm.count "conflict_graph.csr_edges" (G.n_edges graph)
  end;
  { graph; indexer = ix; k }

(* ------------------------------------------------------------------ *)
(* Incremental engine.

   The reduction loop only ever *shrinks* its hypergraph — each phase
   retires the edges that became happy and keeps the rest untouched.
   All three adjacency families are predicates on the two triples and
   their own edges' membership, so the conflict graph of the restricted
   hypergraph is exactly the induced subgraph of G_k on the triples of
   surviving edges.  Rather than rebuilding (tables, indexer, CSR) from
   scratch every phase, the incremental engine builds G_k once and then
   compacts it in place after every retirement.

   Numbering identity (what makes the result bit-identical to a
   rebuild): [Hypergraph.restrict_edges] keeps surviving edges in
   increasing original order with identical member arrays, so the fresh
   indexer of the restricted hypergraph assigns slots — and hence triple
   ids s·k + c — in exactly the order that surviving slots appear in the
   current numbering.  Compaction therefore renumbers alive slots
   monotonically (old order preserved), which also keeps every filtered
   adjacency row sorted with no re-sort.

   Buffers are double-buffered: compaction reads the current offsets/adj
   pair and writes the spare pair (allocated once, at the first compact,
   sized like the originals — rows only ever shrink), then swaps.  The
   graph handed out is an arena view ([Graph.of_csr_prefix]) over the
   current pair, valid until the *next* compact clobbers that buffer. *)

module Incremental = struct
  type state = {
    k : int;
    tb : tables;                    (* tables of the ORIGINAL hypergraph *)
    edge_alive : Bytes.t;           (* per original hyperedge *)
    mutable n_alive : int;          (* alive hyperedges *)
    mutable nslots_cur : int;       (* slots surviving in current numbering *)
    slot_orig : int array;          (* current slot -> original slot *)
    slot_map : int array;           (* compaction scratch: old cur slot -> new *)
    triple_map : int array;         (* compaction scratch: old cur triple -> new *)
    mutable cur_offsets : int array;
    mutable cur_adj : adj_store;
    mutable spare_offsets : int array; (* [||] until the first compact *)
    mutable spare_adj : adj_store;     (* same width as cur_adj *)
    mutable graph : G.t;
    mutable dirty : bool;           (* retirements since the last compact *)
  }

  let create ?(domains = 0) ?(width = `Auto) h ~k =
    Tm.with_span "conflict_graph.incremental.create" @@ fun () ->
    let m = H.n_edges h in
    let tb = tables_of h in
    let domains = effective_domains ~requested:domains ~nslots:tb.nslots ~k in
    Tm.set_int "domains_effective" domains;
    let offsets, adj = csr_arrays ~k ~domains ~width tb in
    { k;
      tb;
      edge_alive = Bytes.make (max m 1) '\001';
      n_alive = m;
      nslots_cur = tb.nslots;
      slot_orig = Array.init (max tb.nslots 1) (fun s -> s);
      slot_map = Array.make (max tb.nslots 1) (-1);
      triple_map = Array.make (max (tb.nslots * k) 1) (-1);
      cur_offsets = offsets;
      cur_adj = adj;
      spare_offsets = [||];
      spare_adj = A_int [||];
      graph = prefix_graph (tb.nslots * k) ~offsets adj;
      dirty = false }

  let graph st = st.graph
  let k st = st.k
  let n_alive_edges st = st.n_alive

  (* ---- Phase-0 snapshots (warm start) ----

     A snapshot captures the expensive product of [create] — the fully
     enumerated phase-0 CSR — as an immutable value that outlives the
     state (whose buffers are clobbered by later compacts).  A later
     solve over the *same* hypergraph with the same k can then rebuild
     its state from the snapshot with two array copies plus the cheap
     O(sum |e|) [tables_of] pass, skipping the neighborhood enumeration
     entirely.  Identity of the resulting state (and hence of the whole
     solve) with a cold [create] is immediate: every field is
     recomputed from [h] except the CSR pair, which is a value-equal
     copy of what [csr_arrays] produced. *)

  type snapshot = {
    snap_k : int;
    snap_nslots : int;
    snap_offsets : int array;
    snap_adj : adj_store;
  }

  let copy_store = function
    | A_int a -> A_int (Array.copy a)
    | A_i32 a ->
        let b = i32_create (Bigarray.Array1.dim a) in
        Bigarray.Array1.blit a b;
        A_i32 b

  let snapshot st =
    if st.dirty || st.nslots_cur <> st.tb.nslots then
      invalid_arg "Conflict_graph.Incremental.snapshot: not at phase 0";
    { snap_k = st.k;
      snap_nslots = st.tb.nslots;
      snap_offsets = Array.copy st.cur_offsets;
      snap_adj = copy_store st.cur_adj }

  let snapshot_k s = s.snap_k

  let snapshot_bytes s =
    (8 * Array.length s.snap_offsets)
    +
    match s.snap_adj with
    | A_int a -> 8 * Array.length a
    | A_i32 a -> 4 * Bigarray.Array1.dim a

  let create_from_snapshot h snap =
    Tm.with_span "conflict_graph.incremental.warm_create" @@ fun () ->
    let m = H.n_edges h in
    let tb = tables_of h in
    if tb.nslots <> snap.snap_nslots then
      invalid_arg
        "Conflict_graph.Incremental.create_from_snapshot: hypergraph does \
         not match the snapshot";
    let k = snap.snap_k in
    let offsets = Array.copy snap.snap_offsets in
    let adj = copy_store snap.snap_adj in
    if Tm.enabled () then begin
      Tm.incr "conflict_graph.warm_starts";
      Tm.count "conflict_graph.warm_bytes" (snapshot_bytes snap)
    end;
    { k;
      tb;
      edge_alive = Bytes.make (max m 1) '\001';
      n_alive = m;
      nslots_cur = tb.nslots;
      slot_orig = Array.init (max tb.nslots 1) (fun s -> s);
      slot_map = Array.make (max tb.nslots 1) (-1);
      triple_map = Array.make (max (tb.nslots * k) 1) (-1);
      cur_offsets = offsets;
      cur_adj = adj;
      spare_offsets = [||];
      spare_adj = A_int [||];
      graph = prefix_graph (tb.nslots * k) ~offsets adj;
      dirty = false }

  (* Current conflict-graph vertex id -> triple over the ORIGINAL
     hypergraph (global edge ids, not restricted-local ones).  Edge
     membership is unchanged by restriction, so every consumer of the
     triple — coloring extraction, happiness checks, audits — sees the
     same answers it would get from the rebuild path's local triple. *)
  let decode st id =
    let os = st.slot_orig.(id / st.k) in
    { Triple.edge = st.tb.slot_edge.(os);
      vertex = st.tb.slot_vertex.(os);
      color = id mod st.k }

  let retire_edges st dead =
    List.iter
      (fun e ->
        if e < 0 || e >= Bytes.length st.edge_alive then
          invalid_arg "Conflict_graph.Incremental.retire_edges: bad edge";
        if Bytes.get st.edge_alive e <> '\000' then begin
          Bytes.set st.edge_alive e '\000';
          st.n_alive <- st.n_alive - 1;
          st.dirty <- true
        end)
      dead

  let slot_alive st s =
    Bytes.get st.edge_alive st.tb.slot_edge.(st.slot_orig.(s)) <> '\000'

  let compact st =
    if st.dirty then begin
      Tm.with_span "conflict_graph.compact" @@ fun () ->
      if Array.length st.spare_offsets = 0 then begin
        (* First compact: allocate the write buffers once, sized like
           the phase-0 arrays — the graph only ever shrinks. *)
        st.spare_offsets <- Array.make (Array.length st.cur_offsets) 0;
        st.spare_adj <-
          (match st.cur_adj with
          | A_int a -> A_int (Array.make (Array.length a) 0)
          | A_i32 a -> A_i32 (i32_create (Bigarray.Array1.dim a)))
      end
      else if Tm.enabled () then
        Tm.count "conflict_graph.reused_bytes"
          ((8 * Array.length st.spare_offsets)
          +
          match st.spare_adj with
          | A_int a -> 8 * Array.length a
          | A_i32 a -> 4 * Bigarray.Array1.dim a);
      let k = st.k in
      (* Monotone renumbering of surviving slots, expanded to triple ids
         in [triple_map] so the copy loop below remaps with one array
         read per adjacency entry — no division by [k] on the hot path
         (the adj scan touches every entry; the expansion is only
         O(nslots·k)). *)
      let nslots' = ref 0 in
      let tmap = st.triple_map in
      for s = 0 to st.nslots_cur - 1 do
        if slot_alive st s then begin
          let s' = !nslots' in
          st.slot_map.(s) <- s';
          for c = 0 to k - 1 do
            tmap.((s * k) + c) <- (s' * k) + c
          done;
          incr nslots'
        end
        else begin
          st.slot_map.(s) <- -1;
          for c = 0 to k - 1 do
            tmap.((s * k) + c) <- -1
          done
        end
      done;
      (* Filter + remap every surviving row into the spare buffers.
         Increasing old slots map to increasing new slots, so rows stay
         sorted without re-sorting.  The copy loop is duplicated per
         store width (both buffers share one width by construction):
         it touches every surviving adjacency entry, so no per-entry
         dispatch or closure belongs here. *)
      let woff = st.spare_offsets in
      let roff = st.cur_offsets in
      let w = ref 0 in
      woff.(0) <- 0;
      (match (st.cur_adj, st.spare_adj) with
      | A_int radj, A_int wadj ->
          for s = 0 to st.nslots_cur - 1 do
            let s' = st.slot_map.(s) in
            if s' >= 0 then
              for c = 0 to k - 1 do
                let row = (s * k) + c in
                for i = roff.(row) to roff.(row + 1) - 1 do
                  let x' = tmap.(radj.(i)) in
                  if x' >= 0 then begin
                    wadj.(!w) <- x';
                    incr w
                  end
                done;
                woff.((s' * k) + c + 1) <- !w
              done
          done
      | A_i32 radj, A_i32 wadj ->
          for s = 0 to st.nslots_cur - 1 do
            let s' = st.slot_map.(s) in
            if s' >= 0 then
              for c = 0 to k - 1 do
                let row = (s * k) + c in
                for i = roff.(row) to roff.(row + 1) - 1 do
                  let x =
                    Int32.to_int (Bigarray.Array1.unsafe_get radj i)
                  in
                  let x' = tmap.(x) in
                  if x' >= 0 then begin
                    Bigarray.Array1.unsafe_set wadj !w (Int32.of_int x');
                    incr w
                  end
                done;
                woff.((s' * k) + c + 1) <- !w
              done
          done
      | (A_int _ | A_i32 _), _ ->
          (* Buffers are allocated pairwise at the first compact. *)
          assert false);
      (* Compact [slot_orig] in place: new ids never exceed old ids, so
         the increasing walk cannot clobber unread entries. *)
      for s = 0 to st.nslots_cur - 1 do
        let s' = st.slot_map.(s) in
        if s' >= 0 then st.slot_orig.(s') <- st.slot_orig.(s)
      done;
      st.nslots_cur <- !nslots';
      let o = st.cur_offsets and a = st.cur_adj in
      st.cur_offsets <- st.spare_offsets;
      st.cur_adj <- st.spare_adj;
      st.spare_offsets <- o;
      st.spare_adj <- a;
      st.dirty <- false;
      let total = !nslots' * k in
      Tm.set_int "csr_rows" total;
      Tm.set_int "csr_edges" (st.cur_offsets.(total) / 2);
      st.graph <- prefix_graph total ~offsets:st.cur_offsets st.cur_adj
    end
end

let iter_neighbors_implicit h ix (t : Triple.t) f =
  let k = Ix.k ix in
  if not (validate h ~k t) then
    invalid_arg "Conflict_graph.iter_neighbors_implicit: invalid triple";
  let self = Ix.encode ix t in
  let seen = Hashtbl.create 64 in
  let emit (u : Triple.t) =
    let idx = Ix.encode ix u in
    if idx <> self && not (Hashtbl.mem seen idx) then begin
      Hashtbl.add seen idx ();
      f u
    end
  in
  (* Same hyperedge: every other triple of edge e. *)
  List.iter emit (Ix.triples_of_edge ix t.edge);
  (* E_vertex: triples of vertex v whose color differs. *)
  List.iter
    (fun (u : Triple.t) -> if u.color <> t.color then emit u)
    (Ix.triples_of_vertex ix t.vertex);
  (* E_color (u ≠ v): (g,u,c) for u ∈ e \ {v} (any g ∋ u), and (g,u,c)
     for g ∋ v, u ∈ g \ {v}. *)
  H.iter_edge h t.edge (fun u ->
      if u <> t.vertex then
        List.iter
          (fun g -> emit { Triple.edge = g; vertex = u; color = t.color })
          (H.incident_edges h u));
  List.iter
    (fun g ->
      H.iter_edge h g (fun u ->
          if u <> t.vertex then
            emit { Triple.edge = g; vertex = u; color = t.color }))
    (H.incident_edges h t.vertex)

let size_formula h ~k =
  let sum = ref 0 in
  for e = 0 to H.n_edges h - 1 do
    sum := !sum + H.edge_size h e
  done;
  k * !sum

let to_dot h ~k =
  let ix = Ix.make h ~k in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph conflict_graph {\n  node [shape=box];\n";
  Ix.iter ix (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"(e%d,v%d,c%d)\"];\n"
           (Ix.encode ix t) t.Triple.edge t.Triple.vertex t.Triple.color));
  Ix.iter ix (fun t1 ->
      let i1 = Ix.encode ix t1 in
      Ix.iter ix (fun t2 ->
          let i2 = Ix.encode ix t2 in
          if i1 < i2 then begin
            let color =
              if t1.vertex = t2.vertex && t1.color <> t2.color then
                Some "red" (* E_vertex *)
              else if t1.edge = t2.edge then Some "blue" (* E_edge *)
              else if
                t1.color = t2.color
                && t1.vertex <> t2.vertex
                && (H.edge_mem h t1.edge t2.vertex
                   || H.edge_mem h t2.edge t1.vertex)
              then Some "green" (* E_color *)
              else None
            in
            match color with
            | Some c ->
                Buffer.add_string buf
                  (Printf.sprintf "  %d -- %d [color=%s];\n" i1 i2 c)
            | None -> ()
          end));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type family_counts = {
  n_vertex_family : int;
  n_edge_family : int;
  n_color_family : int;
  n_union : int;
}

let edge_family_counts h ~k =
  let ix = Ix.make h ~k in
  let n_vertex = ref 0 and n_edge = ref 0 and n_color = ref 0 in
  let n_union = ref 0 in
  Ix.iter ix (fun t1 ->
      let i1 = Ix.encode ix t1 in
      Ix.iter ix (fun t2 ->
          let i2 = Ix.encode ix t2 in
          if i1 < i2 then begin
            let in_vertex = t1.vertex = t2.vertex && t1.color <> t2.color in
            let in_edge = t1.edge = t2.edge in
            let in_color =
              t1.color = t2.color
              && t1.vertex <> t2.vertex
              && (H.edge_mem h t1.edge t2.vertex
                 || H.edge_mem h t2.edge t1.vertex)
            in
            if in_vertex then incr n_vertex;
            if in_edge then incr n_edge;
            if in_color then incr n_color;
            if in_vertex || in_edge || in_color then incr n_union
          end));
  { n_vertex_family = !n_vertex;
    n_edge_family = !n_edge;
    n_color_family = !n_color;
    n_union = !n_union }
