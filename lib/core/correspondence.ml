module H = Ps_hypergraph.Hypergraph
module Ix = Triple.Indexer
module Is = Ps_maxis.Independent_set
module Cf = Ps_cfc.Cf_coloring

let is_of_coloring h ix f =
  let k = Ix.k ix in
  let chosen = ref [] in
  for e = 0 to H.n_edges h - 1 do
    match Cf.unique_color_witness h f e with
    | Some (v, c) ->
        if c >= k then
          invalid_arg "Correspondence.is_of_coloring: color exceeds k";
        chosen := Ix.encode ix { Triple.edge = e; vertex = v; color = c }
                  :: !chosen
    | None -> ()
  done;
  let set = Ps_util.Bitset.create (Ix.total ix) in
  List.iter (Ps_util.Bitset.add set) !chosen;
  set

let coloring_of_is_with ~n_vertices ~decode i =
  let f = Array.make n_vertices Cf.uncolored in
  Ps_util.Bitset.iter
    (fun idx ->
      let t : Triple.t = decode idx in
      if f.(t.vertex) <> Cf.uncolored && f.(t.vertex) <> t.color then
        invalid_arg
          (Printf.sprintf
             "Correspondence.coloring_of_is: vertex %d assigned colors %d \
              and %d"
             t.vertex f.(t.vertex) t.color);
      f.(t.vertex) <- t.color)
    i;
  f

let coloring_of_is h ix i =
  coloring_of_is_with ~n_vertices:(H.n_vertices h) ~decode:(Ix.decode ix) i

let max_is_size h = H.n_edges h

let happy_at_least_lemma h ix i =
  let f = coloring_of_is h ix i in
  Cf.count_happy h f >= Is.size i
