(** Theorem 1.1 as an actual LOCAL computation.

    {!Reduction} runs the phase loop with a centralized MaxIS oracle on a
    materialized conflict graph.  This module runs the {e same} loop the
    way the reduction statement means it: each phase's independent set is
    computed by Luby's algorithm on the {e implicit} [G_k^i] of the
    still-unhappy edges — pure message passing over the adjacency oracle,
    nothing materialized — and the LOCAL cost is accounted end to end:

    [host rounds = Σ_i 2·(Luby rounds on G_k^i) + O(1) per phase]

    (each virtual [G_k] round costs {!Simulate.host_dilation} rounds of
    [H]; the [O(1)] covers publishing the phase's colors and recomputing
    edge happiness, both 1-hop information).  A maximal independent set
    is not a polylog approximation in general, but on conflict graphs it
    is excellent (E6), so the loop terminates in few phases — and any
    better LOCAL MaxIS-approximation plugged into the same skeleton would
    inherit the paper's ρ bound. *)

type local_cost = {
  phases : int;
  virtual_rounds : int;    (** Σ Luby rounds over all phases *)
  host_rounds : int;       (** dilated + per-phase coordination *)
  messages : int;          (** Σ messages over all phases *)
}

type run = {
  reduction : Reduction.run;   (** same record as the centralized driver *)
  cost : local_cost;
}

val run :
  ?max_phases:int ->
  ?cancel:(unit -> bool) ->
  ?seed:int ->
  ?engine:Reduction.engine ->
  k:int ->
  Ps_hypergraph.Hypergraph.t ->
  run
(** Execute the message-passing reduction.  The output multicoloring is
    conflict-free (certify with {!Certify.certify} on [reduction]); raises
    {!Reduction.Stalled} under the same conditions as the centralized
    driver, and {!Reduction.Canceled} when [cancel] (polled once per
    phase, as in {!Reduction.run}) answers [true].

    [engine] (default [`Incremental]) switches {e bookkeeping only}:
    Luby draws its randomness per restricted-local triple id, so the
    conflict graph cannot be carried across phases here and both
    engines still restrict the hypergraph each phase — [`Incremental]
    merely replaces the list-based edge prune and Hashtbl-backed
    happiness scan with the bitset + scratch-counter fast path.  The
    engines are bit-identical, as in {!Reduction.run}. *)
