(** Vertices of the conflict graph: triples [(e, v, c)].

    Section 2 of the paper: the vertex set of the conflict graph [G_k] of
    conflict-free [k]-coloring a hypergraph [H] is every triple [(e, v, c)]
    with [e ∈ E(H)], [v ∈ e], and a color [c].  Colors are 0-based here
    ([0 .. k-1]; the paper writes [1 .. k]).

    {!Indexer} maps triples to a dense integer range so they can serve as
    vertices of a {!Ps_graph.Graph.t}: triple [(e, v, c)] with [v] the
    [p]-th member of edge [e] gets index [(start e + p)·k + c]. *)

type t = { edge : int; vertex : int; color : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Indexer : sig
  type indexer

  val make : Ps_hypergraph.Hypergraph.t -> k:int -> indexer
  (** Requires [k >= 1]. *)

  val total : indexer -> int
  (** [k · Σ_e |e|] — the conflict graph's vertex count. *)

  val k : indexer -> int

  val encode : indexer -> t -> int
  (** Raises [Invalid_argument] if the triple is invalid ([v ∉ e], color
      out of range, bad edge index). *)

  val decode : indexer -> int -> t

  val mem : indexer -> t -> bool
  (** Whether the triple is a vertex of [G_k]. *)

  val iter : indexer -> (t -> unit) -> unit
  (** All triples in increasing index order. *)

  val triples_of_edge : indexer -> int -> t list
  (** The [|e|·k] triples with first component [e]. *)

  val triples_of_vertex : indexer -> int -> t list
  (** The [deg(v)·k] triples with second component [v]. *)
end
