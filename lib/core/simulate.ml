module H = Ps_hypergraph.Hypergraph
module Ix = Triple.Indexer

let host_dilation = 2

let neighbors_oracle h ix idx =
  let acc = ref [] in
  Conflict_graph.iter_neighbors_implicit h ix (Ix.decode ix idx) (fun t ->
      acc := Ix.encode ix t :: !acc);
  let arr = Array.of_list !acc in
  Array.sort Int.compare arr;
  arr

type mis_result = {
  independent_set : Ps_maxis.Independent_set.t;
  virtual_rounds : int;
  host_rounds : int;
  messages : int;
}

let luby_mis ?(seed = 0) h ~k =
  let ix = Ix.make h ~k in
  let n = Ix.total ix in
  let flags, stats =
    Ps_local.Luby.run_oracle ~seed ~n ~neighbors:(neighbors_oracle h ix) ()
  in
  let set = Ps_util.Bitset.create n in
  Array.iteri (fun i flag -> if flag then Ps_util.Bitset.add set i) flags;
  { independent_set = set;
    virtual_rounds = stats.Ps_local.Network.rounds;
    host_rounds = host_dilation * stats.Ps_local.Network.rounds;
    messages = stats.Ps_local.Network.messages_sent }

let local_solver ~seed =
  { Ps_maxis.Approx.name = Printf.sprintf "luby-local(seed=%d)" seed;
    solve =
      (fun _rng g ->
        let flags, _ = Ps_local.Luby.run ~seed g in
        Ps_maxis.Independent_set.of_indicator flags) }
