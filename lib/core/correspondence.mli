(** Lemma 2.1 — the two-way correspondence between independent sets of the
    conflict graph [G_k] and (partial) conflict-free colorings of [H].

    Direction (a): a conflict-free k-coloring [f] of [H] induces an
    independent set [I_f] of [G_k] of size [m = |E(H)|] — one triple
    [(e, v, c)] per edge [e], where [v] is a unique-colored vertex of [e]
    (ties broken toward the smallest vertex) — and [m] is the maximum
    possible, so [I_f] is a {e maximum} independent set.

    Direction (b): any independent set [I ⊆ V(G_k)] induces a partial
    coloring [f_I] ([f_I(v) = c] iff some [(·, v, c) ∈ I]), which is
    well-defined ([E_vertex] forbids two colors per vertex) and makes at
    least [|I|] edges of [H] happy ([E_edge] gives one triple per edge,
    [E_color] protects the witness's uniqueness).

    These functions implement both directions {e and} their quantitative
    claims as checkable equalities; the test suite and experiments E1/E2
    exercise them on curated and random instances. *)

val is_of_coloring :
  Ps_hypergraph.Hypergraph.t -> Triple.Indexer.indexer -> int array ->
  Ps_maxis.Independent_set.t
(** [is_of_coloring h ix f] builds [I_f] over the conflict graph indexed
    by [ix].  [f] may be partial: each {e happy} edge contributes one
    triple, so [|I_f| = count_happy f] — equal to [m] when [f] is
    conflict-free (Lemma 2.1(a)).  The result is independent for every
    [f] that is a function (at most one color per vertex by
    representation), including non-CF ones. *)

val coloring_of_is :
  Ps_hypergraph.Hypergraph.t -> Triple.Indexer.indexer ->
  Ps_maxis.Independent_set.t -> int array
(** [coloring_of_is h ix i] is [f_I].  Raises [Invalid_argument] if two
    triples of [i] assign different colors to one vertex — impossible for
    independent [i] (Lemma 2.1(b) well-definedness); callers feed solver
    output through {!Ps_maxis.Independent_set.verify_exn} first. *)

val coloring_of_is_with :
  n_vertices:int -> decode:(int -> Triple.t) ->
  Ps_maxis.Independent_set.t -> int array
(** [coloring_of_is] generalized over the id-to-triple decoding, for
    callers whose conflict graph is not backed by a
    {!Triple.Indexer.indexer} — the incremental phase engine decodes
    through its compaction tables
    ({!Conflict_graph.Incremental.decode}).  [f_I] only reads each
    triple's vertex and color, so any decode agreeing with the
    indexer's on those fields yields the identical coloring. *)

val max_is_size : Ps_hypergraph.Hypergraph.t -> int
(** The independence number of [G_k] for any [H] admitting a CF
    k-coloring: exactly [m = |E(H)|] (Lemma 2.1(a)). *)

val happy_at_least_lemma :
  Ps_hypergraph.Hypergraph.t -> Triple.Indexer.indexer ->
  Ps_maxis.Independent_set.t -> bool
(** The checkable form of Lemma 2.1(b): does
    [count_happy (coloring_of_is i) >= |i|] hold?  (Always [true] for
    independent input; the property tests assert it.) *)
