(** Independent end-to-end certification of a reduction run.

    {!Reduction.run} is correct by construction; this module re-derives
    every claim from scratch so a bug anywhere in the pipeline surfaces
    as a failed certificate rather than silent nonsense.  Checks mirror
    the proof of Theorem 1.1:

    {ul
    {- the output multicoloring is conflict-free on the {e original} [H];}
    {- each phase made at least [|I^i|] edges happy (Lemma 2.1(b));}
    {- phase decay [|E_{i+1}| ≤ (1 − 1/λ_i)·|E_i|] with the measured
       per-phase [λ_i];}
    {- the phase count is within [ρ = λ_max·ln m + 1];}
    {- the color budget [k·ρ] (with [total colors = k·phases] as the
       constructive bound) is respected.}} *)

type t = {
  conflict_free : bool;
  phase_happiness_ok : bool;   (** every phase: newly_happy ≥ is_size *)
  decay_ok : bool;             (** every phase: |E_{i+1}| ≤ (1−1/λ_i)·|E_i| *)
  lambda_max : float;          (** worst per-phase effective λ *)
  rho_bound : float;           (** λ_max·ln m + 1 (ρ from the proof) *)
  phases_used : int;
  phases_within_rho : bool;
  colors_used : int;
  color_budget : int;          (** k · phases_used *)
  colors_within_budget : bool;
  all_ok : bool;
}

val certify : Reduction.run -> t

val phases_for_check : Reduction.run -> Ps_check.Check_phase.phase list
(** The run's phase records in {!Ps_check.Check_phase}'s core-agnostic
    form — what the deep auditors consume. *)

val diagnostics : Reduction.run -> Ps_check.Diagnostic.t list
(** The deep audit behind {!certify}'s booleans: the full
    {!Ps_check.Audit.reduction} pass over the run, yielding {e positioned}
    diagnostics (which edge is unhappy, which phase broke the decay
    bound) instead of a pass/fail summary.  Empty iff the run certifies;
    [pslocal audit] and the server's [check] method render exactly this
    list. *)

val pp : Format.formatter -> t -> unit
