module H = Ps_hypergraph.Hypergraph
module Mc = Ps_cfc.Multicolor

type t = {
  conflict_free : bool;
  phase_happiness_ok : bool;
  decay_ok : bool;
  lambda_max : float;
  rho_bound : float;
  phases_used : int;
  phases_within_rho : bool;
  colors_used : int;
  color_budget : int;
  colors_within_budget : bool;
  all_ok : bool;
}

let certify (run : Reduction.run) =
  let h = run.hypergraph in
  let m = H.n_edges h in
  let conflict_free = Mc.is_conflict_free h run.multicoloring in
  let phase_happiness_ok =
    List.for_all
      (fun (p : Reduction.phase_record) -> p.newly_happy >= p.is_size)
      run.phases
  in
  (* |E_{i+1}| = |E_i| - newly_happy and newly_happy >= is_size, so the
     proof's decay amounts to: next_edges <= |E_i| - |E_i|/λ_i. Re-check
     it numerically from the records. *)
  let rec decay_holds = function
    | [] | [ _ ] -> true
    | (p : Reduction.phase_record) :: (q :: _ as rest) ->
        let bound =
          float_of_int p.edges_before
          *. (1.0 -. (1.0 /. p.lambda_effective))
        in
        float_of_int q.edges_before <= bound +. 1e-9 && decay_holds rest
  in
  let decay_ok = decay_holds run.phases in
  let lambda_max =
    List.fold_left
      (fun acc (p : Reduction.phase_record) -> Float.max acc p.lambda_effective)
      1.0 run.phases
  in
  let rho_bound =
    if m = 0 then 1.0 else (lambda_max *. log (float_of_int m)) +. 1.0
  in
  let phases_within_rho = float_of_int run.total_phases <= rho_bound in
  let color_budget = run.k * run.total_phases in
  let colors_within_budget = run.colors_used <= color_budget in
  let all_ok =
    conflict_free && phase_happiness_ok && decay_ok && phases_within_rho
    && colors_within_budget
  in
  { conflict_free;
    phase_happiness_ok;
    decay_ok;
    lambda_max;
    rho_bound;
    phases_used = run.total_phases;
    phases_within_rho;
    colors_used = run.colors_used;
    color_budget;
    colors_within_budget;
    all_ok }

let phases_for_check (run : Reduction.run) =
  List.map
    (fun (p : Reduction.phase_record) ->
      { Ps_check.Check_phase.index = p.phase;
        edges_before = p.edges_before;
        is_size = p.is_size;
        newly_happy = p.newly_happy;
        lambda_effective = p.lambda_effective })
    run.phases

let diagnostics (run : Reduction.run) =
  Ps_check.Audit.reduction ~h:run.hypergraph ~k:run.k
    ~multicoloring:run.multicoloring ~colors_used:run.colors_used
    ~total_phases:run.total_phases ~phases:(phases_for_check run)

let pp ppf c =
  Format.fprintf ppf
    "cf=%b happiness=%b decay=%b λmax=%.2f ρ=%.1f phases=%d within_ρ=%b \
     colors=%d/%d ok=%b"
    c.conflict_free c.phase_happiness_ok c.decay_ok c.lambda_max c.rho_bound
    c.phases_used c.phases_within_rho c.colors_used c.color_budget c.all_ok
