module Tm = Ps_util.Telemetry

type bucket = { mutable tokens : float; mutable last_ns : int64 }

type t = {
  rate : float;
  burst : float;
  mutex : Mutex.t;
  buckets : (string, bucket) Hashtbl.t;
  mutable admitted : int;
  mutable rejected : int;
}

type stats = { admitted : int; rejected : int; tenants : int }

let create ~rate ~burst =
  if rate <= 0.0 then invalid_arg "Quota.create: rate must be positive";
  if burst < 1.0 then invalid_arg "Quota.create: burst must be at least 1";
  {
    rate;
    burst;
    mutex = Mutex.create ();
    buckets = Hashtbl.create 16;
    admitted = 0;
    rejected = 0;
  }

(* Refill is computed lazily at admission time from the bucket's last
   touch, so idle tenants cost nothing: no timer thread, no periodic
   sweep.  The clock is the caller's (monotonic [Telemetry.now_ns] by
   default, injectable for deterministic tests); a clock that stands
   still simply refills nothing. *)
let admit ?now_ns t ~tenant =
  let now = match now_ns with Some n -> n | None -> Tm.now_ns () in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let b =
        match Hashtbl.find_opt t.buckets tenant with
        | Some b -> b
        | None ->
            let b = { tokens = t.burst; last_ns = now } in
            Hashtbl.add t.buckets tenant b;
            b
      in
      let elapsed_ns = Int64.sub now b.last_ns in
      if Int64.compare elapsed_ns 0L > 0 then begin
        let refill = Int64.to_float elapsed_ns *. 1e-9 *. t.rate in
        b.tokens <- Float.min t.burst (b.tokens +. refill);
        b.last_ns <- now
      end;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        t.admitted <- t.admitted + 1;
        true
      end
      else begin
        t.rejected <- t.rejected + 1;
        Tm.incr "shard.quota_rejected";
        false
      end)

let stats t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      {
        admitted = t.admitted;
        rejected = t.rejected;
        tenants = Hashtbl.length t.buckets;
      })
