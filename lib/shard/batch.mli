(** Request coalescing: a bounded staging queue between the connection
    readers and the engine.

    The per-request cost of {!Ps_server.Engine.submit} is one mutex
    acquisition and one condvar signal — negligible for solve-bound
    jobs, dominant for protocol-bound traffic (ping floods, cache hits).
    This stage amortizes it: readers [push] decoded requests into a
    staging list (one short lock, a signal only on the empty→non-empty
    edge), and a single dispatcher thread drains {e everything} staged
    per wakeup, feeding {!Ps_server.Engine.submit_batch} in
    capacity-sized slices — one engine-lock acquisition and one worker
    broadcast per slice, however many requests it carries.  Batch size
    is emergent, not configured: while the engine is busy admitting one
    batch the readers stage the next, so batches grow exactly when the
    system is loaded and stay at 1 when it is idle (no added latency
    from a coalescing timer).

    Overflow is backpressure, not shed.  The dispatcher waits on
    {!Ps_server.Engine.wait_capacity} before each slice, so the engine
    queue never overflows from this path; when staging reaches
    [max_staged], [push] blocks the reader, the kernel socket buffers
    fill, and the client's writes stall.  A flood therefore costs
    latency, bounded by the staging watermark plus the queue depth —
    the only request-dropping edges in a shard are the per-tenant quota
    (checked before staging) and engine shutdown. *)

type t

type stats = {
  batches : int;    (** dispatcher wakeups that carried work *)
  requests : int;   (** total requests dispatched through batches *)
  max_batch : int;  (** largest single staging drain so far *)
}

val create : ?max_staged:int -> Ps_server.Engine.t -> t
(** Spawns the dispatcher thread.  [max_staged] (default 8192) is the
    staging watermark above which [push] blocks; raising it trades
    memory for burst absorption. *)

val push :
  t -> Ps_server.Protocol.request -> reply:(string -> unit) -> unit
(** Stage one request; blocks while the staging queue is at its
    watermark.  [reply] has {!Ps_server.Engine.submit}'s contract
    (invoked exactly once with the rendered response, possibly on the
    dispatcher thread for shed or cache-served requests).  After
    {!stop}, falls through to a direct engine submit so the
    exactly-one-response guarantee survives the race. *)

val stop : t -> unit
(** Flush whatever is staged in one final batch, then join the
    dispatcher.  Call before engine shutdown so drained jobs include
    every pushed request. *)

val stats : t -> stats
