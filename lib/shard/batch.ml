module Engine = Ps_server.Engine
module P = Ps_server.Protocol

type stats = { batches : int; requests : int; max_batch : int }

type t = {
  engine : Engine.t;
  max_staged : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  not_full : Condition.t;
  mutable staged : (P.request * (string -> unit)) list; (* newest first *)
  mutable staged_len : int;
  mutable stopping : bool;
  mutable batches : int;
  mutable requests : int;
  mutable max_batch : int;
  mutable dispatcher : Thread.t option;
}

let is_empty = function [] -> true | _ :: _ -> false

(* First [n] items of [batch] (all of them when [n] exceeds the
   length), plus the rest — the dispatcher feeds the engine in
   capacity-sized slices. *)
let split_at n batch =
  let rec go acc n = function
    | rest when n <= 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n batch

(* The dispatcher drains the whole staging list per wakeup: while it is
   inside [Engine.submit_batch] (one engine-mutex acquisition, one
   worker broadcast for the lot), the reader threads keep staging, so
   under load batches grow naturally — coalescing is an emergent
   property of the engine being busy, not a timer.

   Feeding is capacity-sized: [Engine.wait_capacity] blocks until the
   queue has room and says how much, and each [submit_batch] carries at
   most that.  With this dispatcher as the engine's sole submitter,
   queue overflow therefore never sheds — the batch waits, the staging
   queue fills to its watermark, [push] blocks the readers, and the
   kernel socket buffers push back on the clients.  Overload becomes
   latency; the only load-shedding edges left are per-tenant quota
   (ahead of staging) and engine shutdown. *)
let[@pslint.nonblocking] dispatcher_loop t () =
  let rec feed = function
    | [] -> ()
    | batch ->
        let free = Engine.wait_capacity t.engine in
        let now, rest = split_at free batch in
        ignore (Engine.submit_batch t.engine now : Engine.submit_outcome list);
        feed rest
  in
  let rec loop () =
    (* Draining its own staging queue is the dispatcher's job: parking
       here when staging is empty is the idle state, not a wedge.
       pslint: allow blocking *)
    Mutex.lock t.mutex;
    while is_empty t.staged && not t.stopping do
      (* pslint: allow blocking *)
      Condition.wait t.nonempty t.mutex
    done;
    let batch = List.rev t.staged in
    t.staged <- [];
    t.staged_len <- 0;
    Condition.broadcast t.not_full;
    let stop_after = t.stopping in
    (match batch with
    | [] -> ()
    | _ :: _ ->
        let n = List.length batch in
        t.batches <- t.batches + 1;
        t.requests <- t.requests + n;
        if n > t.max_batch then t.max_batch <- n);
    Mutex.unlock t.mutex;
    feed batch;
    if not (stop_after && is_empty batch) then loop ()
  in
  loop ()

let create ?(max_staged = 8192) engine =
  if max_staged < 1 then invalid_arg "Batch.create: max_staged must be >= 1";
  let t =
    {
      engine;
      max_staged;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      not_full = Condition.create ();
      staged = [];
      staged_len = 0;
      stopping = false;
      batches = 0;
      requests = 0;
      max_batch = 0;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Thread.create (dispatcher_loop t) ());
  t

let push t req ~reply =
  Mutex.lock t.mutex;
  while t.staged_len >= t.max_staged && not t.stopping do
    Condition.wait t.not_full t.mutex
  done;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    (* The dispatcher may already be gone; the engine answers
       [shutting_down] (or drains the job) itself. *)
    ignore (Engine.submit t.engine req ~reply : Engine.submit_outcome)
  end
  else begin
    let was_empty = is_empty t.staged in
    t.staged <- (req, reply) :: t.staged;
    t.staged_len <- t.staged_len + 1;
    (* Signal only on the empty->nonempty edge: a busy dispatcher will
       sweep later stagings up in the same batch anyway. *)
    if was_empty then Condition.signal t.nonempty;
    Mutex.unlock t.mutex
  end

let stop t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  match t.dispatcher with
  | None -> ()
  | Some d ->
      Thread.join d;
      t.dispatcher <- None

let stats t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      { batches = t.batches; requests = t.requests; max_batch = t.max_batch })
