(** The tier's observability endpoint: Prometheus text format over a
    Unix-socket HTTP listener, aggregated across shards.

    The collector owns no state of its own — on each scrape it fetches
    every shard's [stats] response over the ordinary solve protocol
    ({!fetch_stats}; whichever codec the shards speak), merges in the
    supervisor's liveness/restart bookkeeping and the router's
    connection counters, and renders one text exposition:

    - per-shard engine series ([pslocal_completed_total{shard="2"}],
      queue/inflight/throughput gauges, latency quantiles) plus
      [pslocal_cluster_*_total] sums,
    - shard-tier series (batch dispatches and sizes, quota
      admissions/rejections) from the [shard] stats block,
    - [pslocal_shard_up] / [pslocal_shard_restarts_total] /
      [pslocal_shard_pid] / [pslocal_shard_scrape_ok] health series,
    - cache and router counters when present.

    A shard that cannot be scraped (mid-restart) degrades to
    [scrape_ok 0] — the exposition never fails wholesale.

    Scrape with [curl --unix-socket <path> http://localhost/metrics]. *)

val fetch_stats :
  framing:Frame.framing ->
  path:string ->
  (Ps_server.Json.t, string) result
(** One [stats] request to a shard socket: connect, send, read the
    response, return its [result] object.  2 s receive timeout.  Total:
    every failure — down to fd exhaustion at [socket] — is an [Error],
    never an exception. *)

val render :
  children:Supervisor.child_info list ->
  shard_stats:(int * (Ps_server.Json.t, string) result) list ->
  router:Router.stats option ->
  string
(** Pure exposition rendering from already-collected inputs (unit
    tested without sockets). *)

val serve_http :
  listen_fd:Unix.file_descr ->
  body:(unit -> string) ->
  should_stop:(unit -> bool) ->
  unit
(** Answer [GET /metrics] (or [/]) on an already-listening socket with
    [body ()] until [should_stop]; unknown paths get 404, other methods
    405.  Serial, connection-per-request.  The caller binds the socket
    — on its main thread, so a bad metrics path fails startup instead
    of killing a background thread — and closes/unlinks it after this
    returns.  Unclassified accept errors restart the loop after a
    short back-off (counted as [metrics.acceptor_restart]). *)

(**/**)

val http_response : status:string -> body:string -> string
