module Engine = Ps_server.Engine
module Server = Ps_server.Server
module P = Ps_server.Protocol
module Json = Ps_server.Json

type quota_config = { rate : float; burst : float }

type config = {
  engine : Engine.config;
  framing : Frame.framing;
  max_message_bytes : int;
  quota : quota_config option;
  index : int;
}

(* The tier's shipped queue depth.  The legacy server signals a worker
   per enqueue, so a deep queue under overload thrashes — its 64 is the
   right ceiling there.  Here the dispatcher drains the staging queue
   into one [submit_batch] per wakeup, so queue pressure is amortised
   and a deep queue turns bursts into latency instead of shed. *)
let default_queue_capacity = 4096

let default_config =
  {
    engine =
      { Engine.default_config with queue_capacity = default_queue_capacity };
    framing = Frame.Json_lines;
    max_message_bytes = P.default_max_bytes;
    quota = None;
    index = 0;
  }

let quota_error =
  {
    P.code = P.Overloaded;
    message = "per-tenant quota exhausted — retry after backoff";
  }

let shard_stats_fields ~config ~batch ~quota () =
  let bs = Batch.stats batch in
  let base =
    [
      ("index", Json.Int config.index);
      ("pid", Json.Int (Unix.getpid ()));
      ("framing", Json.Str (Frame.framing_name config.framing));
      ("batches", Json.Int bs.Batch.batches);
      ("batched_requests", Json.Int bs.Batch.requests);
      ("max_batch", Json.Int bs.Batch.max_batch);
    ]
  in
  let quota_fields =
    match quota with
    | None -> []
    | Some q ->
        let qs = Quota.stats q in
        [
          ("quota_admitted", Json.Int qs.Quota.admitted);
          ("quota_rejected", Json.Int qs.Quota.rejected);
          ("quota_tenants", Json.Int qs.Quota.tenants);
        ]
  in
  [ ("shard", Json.Obj (base @ quota_fields)) ]

let serve ?(config = default_config) ~path () =
  Server.with_termination_latch @@ fun latch ->
  let render =
    match config.framing with
    | Frame.Json_lines -> P.response_to_line
    | Frame.Binary -> P.Binary.frame
  in
  let engine = Engine.create ~render config.engine in
  (* Staging watermark tracks the queue: overflow beyond queue + 2x
     queue of staged burst blocks the readers (socket backpressure)
     rather than growing memory. *)
  let batch =
    Batch.create
      ~max_staged:(max 64 (2 * config.engine.Engine.queue_capacity))
      engine
  in
  let quota =
    Option.map (fun q -> Quota.create ~rate:q.rate ~burst:q.burst) config.quota
  in
  Engine.set_stats_extra engine (shard_stats_fields ~config ~batch ~quota);
  let listen_fd = Server.bind_unix_socket path in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  (* Writers outlive their connection threads (a reader at EOF may
     still have engine replies in flight); the drain closes them all
     after the engine is empty so every buffered reply reaches the
     wire before the process exits. *)
  let writers_mutex = Mutex.create () in
  let writers = ref [] in
  let connection fd () =
    (* The channel conversion and writer setup sit inside the [try]
       with the read loop: same fd, same hangup errors.  [Failure] is
       in the catch set because [Frame.send] raises it once the writer
       is closed — the reader should stop, not die noisily. *)
    try
      let ic = Unix.in_channel_of_descr fd in
      let w = Frame.writer fd ~framing:config.framing in
      Mutex.lock writers_mutex;
      writers := w :: !writers;
      Mutex.unlock writers_mutex;
      let reply line = Frame.send w line in
    let answer_error ~id err =
      Engine.record_invalid engine;
      match Frame.send w (render (P.error_response ~id err)) with
      | () -> ()
      | exception Failure _ -> ()
    in
    let rec loop () =
      match
        Frame.read_event ic ~framing:config.framing
          ~max_bytes:config.max_message_bytes
      with
      | Frame.Eof -> ()
      | Frame.Poisoned err ->
          (* Stream desynchronized: one typed answer, then stop
             reading this connection. *)
          answer_error ~id:Json.Null err
      | Frame.Request (Error (id, err)) ->
          answer_error ~id err;
          loop ()
      | Frame.Request (Ok req) -> (
          match quota with
          | Some q
            when not
                   (Quota.admit q
                      ~tenant:(Option.value req.P.tenant ~default:"")) ->
              (match
                 Frame.send w (render (P.error_response ~id:req.P.id quota_error))
               with
              | () -> ()
              | exception Failure _ -> ());
              loop ()
          | _ ->
              Batch.push batch req ~reply;
              loop ())
    in
      loop ()
      (* Like the single-process transport: leave the fd open — replies
         for this connection may still be in flight in the engine. *)
    with Sys_error _ | Unix.Unix_error _ | Failure _ -> ()
  in
  let accept_loop () =
    let rec loop () =
      match Unix.select [ listen_fd ] [] [] 0.25 with
      | [], _, _ -> if Server.tripped latch then () else loop ()
      | _ :: _, _, _ ->
          (match
             Server.accept_retrying
               ~should_stop:(fun () -> Server.tripped latch)
               (fun () -> Unix.accept listen_fd)
           with
          | Some (fd, _) ->
              let _t : Thread.t = Thread.create (connection fd) () in
              ()
          | None -> ());
          if Server.tripped latch then () else loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          if Server.tripped latch then () else loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
    in
    (* Mirror of the single-process server's last-resort wrapper: a
       shard that stops accepting looks up to the supervisor (the
       process is alive) while serving nobody. *)
    let rec run () =
      try loop ()
      with _ ->
        Ps_util.Telemetry.incr "shard.acceptor_restart";
        if Server.tripped latch then ()
        else begin
          Thread.delay 0.05;
          run ()
        end
    in
    run ()
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigpipe prev_pipe;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let acceptor = Thread.create accept_loop () in
      Server.await latch;
      Thread.join acceptor;
      (* Order matters: flush the staging queue into the engine, drain
         the engine (every accepted request renders its reply into a
         writer), then flush and join the writers — zero dropped
         replies on SIGTERM. *)
      Batch.stop batch;
      Engine.shutdown ~drain:true engine;
      Mutex.lock writers_mutex;
      let ws = !writers in
      writers := [];
      Mutex.unlock writers_mutex;
      List.iter Frame.close_writer ws)
