module Tm = Ps_util.Telemetry
module Server = Ps_server.Server

type child = {
  index : int;
  socket : string;
  mutable pid : int;
  mutable restarts : int;
  mutable up : bool;
  mutable spawned_ns : int64;
}

type child_info = { c_index : int; c_pid : int; c_restarts : int; c_up : bool }

type t = {
  spawn : int -> string -> int;
  children : child array;
  mutex : Mutex.t;
  mutable stopping : bool;
}

let shard_socket_path ~front index = Printf.sprintf "%s.shard.%d" front index

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let start ~spawn ~front ~shards =
  if shards < 1 then invalid_arg "Supervisor.start: shards must be >= 1";
  (* Refuse to start over a live foreign listener before forking
     anything; each child re-checks its own path at bind time (and
     cleans genuinely stale files itself). *)
  let sockets =
    List.init shards (fun i ->
        let socket = shard_socket_path ~front i in
        match Server.prepare_socket_path socket with
        | Ok () -> socket
        | Error msg -> failwith (Printf.sprintf "serve: %s" msg))
  in
  let children =
    Array.of_list
      (List.mapi
         (fun i socket ->
           let pid = spawn i socket in
           {
             index = i;
             socket;
             pid;
             restarts = 0;
             up = true;
             spawned_ns = Tm.now_ns ();
           })
         sockets)
  in
  { spawn; children; mutex = Mutex.create (); stopping = false }

let sockets t = Array.to_list (Array.map (fun c -> c.socket) t.children)

let children_info t =
  locked t (fun () ->
      Array.to_list
        (Array.map
           (fun c ->
             {
               c_index = c.index;
               c_pid = c.pid;
               c_restarts = c.restarts;
               c_up = c.up;
             })
           t.children))

let restarts_total t =
  locked t (fun () ->
      Array.fold_left (fun acc c -> acc + c.restarts) 0 t.children)

let socket_ready path =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect s (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let wait_ready ?(timeout_s = 10.0) t =
  let deadline = Int64.add (Tm.now_ns ()) (Int64.of_float (timeout_s *. 1e9)) in
  let rec wait_one c =
    if socket_ready c.socket then Ok ()
    else if Int64.compare (Tm.now_ns ()) deadline > 0 then
      Error
        (Printf.sprintf "shard %d (pid %d) not accepting on %s after %.1fs"
           c.index c.pid c.socket timeout_s)
    else begin
      Thread.delay 0.02;
      wait_one c
    end
  in
  Array.fold_left
    (fun acc c -> match acc with Error _ -> acc | Ok () -> wait_one c)
    (Ok ()) t.children

(* The supervision loop: reap with WNOHANG, respawn what died.  A child
   that dies young (< 1 s) trips a short brake before its respawn so a
   crash loop burns retries at ~5/s instead of as fast as fork can go.
   Run this on its own thread; [terminate] must only be called after it
   has returned (single reaper — no waitpid races). *)
let supervise t ~should_stop =
  let check_child c =
    if c.up then
      match Unix.waitpid [ Unix.WNOHANG ] c.pid with
      | 0, _ -> ()
      | _, _status ->
          let stopping = locked t (fun () -> t.stopping) in
          if stopping then locked t (fun () -> c.up <- false)
          else begin
            let lived_ns = Int64.sub (Tm.now_ns ()) c.spawned_ns in
            if Int64.compare lived_ns 1_000_000_000L < 0 then
              Thread.delay 0.2;
            let pid = t.spawn c.index c.socket in
            locked t (fun () ->
                c.restarts <- c.restarts + 1;
                c.pid <- pid;
                c.spawned_ns <- Tm.now_ns ());
            Tm.incr "shard.restarts"
          end
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          (* Already reaped, or the pid went stale after a failed
             respawn: nothing left to wait for. *)
          locked t (fun () -> c.up <- false)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  while not (should_stop ()) do
    (* The reaper is the only thread allowed to [waitpid] (single-reaper
       rule), so if it dies the tier silently stops respawning children.
       A respawn that fails (fork EAGAIN, fd exhaustion in child setup)
       is counted here and the child is marked down by the ECHILD branch
       on the next sweep — never reaper death. *)
    Array.iter
      (fun c -> try check_child c with _ -> Tm.incr "shard.reaper_error")
      t.children;
    Thread.delay 0.05
  done

let terminate ?(grace_s = 30.0) t =
  locked t (fun () -> t.stopping <- true);
  Array.iter
    (fun c ->
      if c.up then
        try Unix.kill c.pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.children;
  let deadline = Int64.add (Tm.now_ns ()) (Int64.of_float (grace_s *. 1e9)) in
  let rec reap c =
    match Unix.waitpid [ Unix.WNOHANG ] c.pid with
    | 0, _ ->
        if Int64.compare (Tm.now_ns ()) deadline > 0 then begin
          (* Grace expired: the child is wedged mid-drain.  Kill it so
             the tier's own shutdown stays bounded. *)
          (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
          match Unix.waitpid [] c.pid with
          | _ -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        end
        else begin
          Thread.delay 0.02;
          reap c
        end
    | _, _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  Array.iter
    (fun c ->
      if c.up then begin
        reap c;
        locked t (fun () -> c.up <- false)
      end;
      try Unix.unlink c.socket with Unix.Unix_error _ -> ())
    t.children
