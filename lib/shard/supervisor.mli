(** Shard process supervision: spawn N solver children, restart the
    ones that crash, drain them all on shutdown.

    The supervisor owns no sockets and speaks no protocol — each child
    is a full {!Shard.serve} process behind its own socket path
    ({!shard_socket_path}), spawned through a caller-supplied closure
    (the CLI re-executes its own binary with hidden child flags:
    fork+exec, never bare fork — the parent runs threads, and a forked
    child would inherit whatever locks they held).  Crash recovery
    leans on {!Ps_server.Server.prepare_socket_path}: the dead child's
    leftover socket file probes as stale, so its replacement binds the
    same path without help.

    Restart counts are the tier's health signal — exported per shard as
    [pslocal_shard_restarts_total] by {!Metrics} and pinned by the
    kill-a-shard integration test. *)

type t

type child_info = {
  c_index : int;
  c_pid : int;
  c_restarts : int;
  c_up : bool;
}

val shard_socket_path : front:string -> int -> string
(** [front ^ ".shard." ^ i] — derived from the front socket path so one
    [--socket] flag names the whole family. *)

val start : spawn:(int -> string -> int) -> front:string -> shards:int -> t
(** Pre-check every shard socket path (a live foreign listener is a
    [Failure] before anything forks), then spawn all children.
    [spawn index socket] must return the child pid. *)

val wait_ready : ?timeout_s:float -> t -> (unit, string) result
(** Poll-connect each shard socket until it accepts (children bind
    asynchronously after exec).  Default timeout 10 s. *)

val supervise : t -> should_stop:(unit -> bool) -> unit
(** Reap-and-respawn loop (50 ms poll, 200 ms brake before respawning
    a child that lived under a second).  Returns once [should_stop]
    answers [true].  Run on a dedicated thread; call {!terminate} only
    after it returns — one reaper at a time. *)

val terminate : ?grace_s:float -> t -> unit
(** [SIGTERM] every live child (each drains in-flight work and exits
    cleanly), reap them, unlink their socket files.  A child still
    alive after [grace_s] (default 30 s) is [SIGKILL]ed. *)

val children_info : t -> child_info list
val restarts_total : t -> int

val sockets : t -> string list
(** Shard socket paths, index order. *)

val socket_ready : string -> bool
(** One connect probe: is something accepting at this path right now? *)
