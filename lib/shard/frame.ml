module Json = Ps_server.Json
module P = Ps_server.Protocol
module B = P.Binary

type framing = Json_lines | Binary

let framing_name = function Json_lines -> "json" | Binary -> "binary"

let framing_of_name s =
  match String.lowercase_ascii s with
  | "json" | "json-lines" | "jsonl" -> Some Json_lines
  | "binary" | "frames" -> Some Binary
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reading *)

type event =
  | Request of (P.request, Json.t * P.error) result
  | Eof
  | Poisoned of P.error

let parse_error fmt =
  Printf.ksprintf (fun message -> { P.code = P.Parse_error; message }) fmt

let too_large n cap =
  {
    P.code = P.Payload_too_large;
    message = Printf.sprintf "frame declares %d bytes (cap %d)" n cap;
  }

(* A binary frame read in two steps: the 5-byte header, then exactly the
   declared payload.  Every way the stream can deviate — EOF inside the
   header, a non-magic first byte (a client speaking JSON at a binary
   port shows up here: JSON lines start with a printable ASCII byte,
   never 0xB5), a negative or over-cap length, EOF mid-payload — is a
   distinct result so the caller can answer with the right typed error
   before hanging up. *)
type frame_read =
  | Frame of string
  | Frame_eof
  | Frame_bad of string
  | Frame_too_large of int

let read_binary_frame ic ~max_bytes =
  match input_char ic with
  | exception (End_of_file | Sys_error _) -> Frame_eof
  | first -> (
      match really_input_string ic (B.header_bytes - 1) with
      | exception (End_of_file | Sys_error _) ->
          Frame_bad "EOF inside frame header"
      | rest -> (
          let header = String.make 1 first ^ rest in
          match B.frame_length header with
          | Error msg ->
              if Char.equal first B.magic then Frame_bad msg
              else if first >= ' ' && first <= '~' then
                Frame_bad
                  (Printf.sprintf
                     "%s — first byte %C looks like text; is the client \
                      speaking JSON lines at a binary port?"
                     msg first)
              else Frame_bad msg
          | Ok n ->
              if n > max_bytes then Frame_too_large n
              else (
                match really_input_string ic n with
                | payload -> Frame payload
                | exception (End_of_file | Sys_error _) ->
                    Frame_bad
                      (Printf.sprintf
                         "EOF inside frame payload (declared %d bytes)" n))))

let read_event ic ~framing ~max_bytes =
  match framing with
  | Json_lines -> (
      (* Blank lines are a keep-alive idiom on line protocols: skip. *)
      let rec next () =
        match input_line ic with
        | exception (End_of_file | Sys_error _) -> Eof
        | line ->
            if String.equal (String.trim line) "" then next ()
            else Request (P.parse_request ~max_bytes line)
      in
      next ())
  | Binary -> (
      match read_binary_frame ic ~max_bytes with
      | Frame_eof -> Eof
      | Frame_bad msg -> Poisoned (parse_error "binary frame: %s" msg)
      | Frame_too_large n -> Poisoned (too_large n max_bytes)
      | Frame payload -> Request (B.decode_request ~max_bytes payload))

(* Client-side reads (the metrics collector, the load generator): one
   whole message to a [Json.t]. *)
let read_message ic ~framing ~max_bytes =
  match framing with
  | Json_lines -> (
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> None
      | line -> Some (Json.parse line))
  | Binary -> (
      match read_binary_frame ic ~max_bytes with
      | Frame_eof -> None
      | Frame_bad msg -> Some (Error msg)
      | Frame_too_large n ->
          Some (Error (Printf.sprintf "frame declares %d bytes (cap %d)" n max_bytes))
      | Frame payload -> Some (B.of_bytes payload))

let encode_message framing v =
  match framing with
  | Json_lines -> Json.to_string v ^ "\n"
  | Binary -> B.frame v

(* ------------------------------------------------------------------ *)
(* Writing: one coalescing writer thread per connection *)

type writer = {
  fd : Unix.file_descr;
  framing : framing;
  mutex : Mutex.t;
  have_pending : Condition.t;
  buf : Buffer.t;
  mutable closing : bool;
  mutable failed : bool;
  mutable thread : Thread.t option;
}

let rec write_all fd bytes off len =
  if len > 0 then
    match Unix.write fd bytes off len with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes off len

(* The writer thread flushes whatever accumulated since its last wakeup
   in a single [write]: replies landing while a flush syscall is in
   flight coalesce into the next one, so a loaded connection costs one
   syscall per wakeup, not one per response.  (The engine-side analogue
   is {!Batch}; together they bound the syscall + lock traffic per
   request from below as load grows.) *)
let writer_loop w () =
  let rec loop () =
    Mutex.lock w.mutex;
    while Buffer.length w.buf = 0 && not w.closing do
      Condition.wait w.have_pending w.mutex
    done;
    let chunk = Buffer.contents w.buf in
    Buffer.clear w.buf;
    let closing = w.closing in
    Mutex.unlock w.mutex;
    let n = String.length chunk in
    (if n > 0 && not w.failed then
       match write_all w.fd (Bytes.unsafe_of_string chunk) 0 n with
       | () -> ()
       | exception (Unix.Unix_error _ | Sys_error _) ->
           Mutex.lock w.mutex;
           w.failed <- true;
           Mutex.unlock w.mutex);
    if not (closing && n = 0) then loop ()
  in
  loop ()

let writer fd ~framing =
  let w =
    {
      fd;
      framing;
      mutex = Mutex.create ();
      have_pending = Condition.create ();
      buf = Buffer.create 4096;
      closing = false;
      failed = false;
      thread = None;
    }
  in
  w.thread <- Some (Thread.create (writer_loop w) ());
  w

(* [@pslint.nonblocking]: engine workers call this with replies; the
   actual write syscall belongs to the writer thread alone, so a slow
   client can never wedge a worker.  The buffer mutex below is the one
   audited exception. *)
let[@pslint.nonblocking] send w payload =
  (* pslint: allow blocking — the audited exception described above:
     the buffer mutex guards a few Buffer ops, never a syscall. *)
  Mutex.lock w.mutex;
  if w.failed || w.closing then begin
    Mutex.unlock w.mutex;
    (* Raising lets the engine count the lost reply as a reply failure
       instead of silently dropping it. *)
    failwith "Frame.send: connection writer is closed"
  end
  else begin
    let was_empty = Buffer.length w.buf = 0 in
    Buffer.add_string w.buf payload;
    (match w.framing with
    | Json_lines -> Buffer.add_char w.buf '\n'
    | Binary -> ());
    if was_empty then Condition.signal w.have_pending;
    Mutex.unlock w.mutex
  end

let close_writer w =
  Mutex.lock w.mutex;
  w.closing <- true;
  Condition.broadcast w.have_pending;
  Mutex.unlock w.mutex;
  match w.thread with
  | None -> ()
  | Some t ->
      Thread.join t;
      w.thread <- None

let writer_failed w =
  Mutex.lock w.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.mutex)
    (fun () -> w.failed)
