(** Per-tenant token-bucket admission, layered {e in front of} the
    engine's overload shed.

    The engine's bounded queue protects the process from aggregate
    overload but cannot stop one tenant from starving the rest: a single
    client pushing requests as fast as the socket carries them fills the
    queue and every other tenant sees [overloaded].  This bucket is the
    fairness layer: each tenant ([params.tenant]; absent means the
    shared anonymous bucket) accumulates [rate] tokens per second up to
    [burst], one request costs one token, and an empty bucket rejects
    {e before} the request touches the queue — so a flooding tenant is
    clipped to its rate while the queue stays available for everyone
    else.  Thread-safe; one instance per shard process. *)

type t

type stats = {
  admitted : int;  (** requests that consumed a token *)
  rejected : int;  (** requests clipped with an empty bucket *)
  tenants : int;   (** distinct buckets (anonymous counts as one) *)
}

val create : rate:float -> burst:float -> t
(** [rate] tokens/second refill, capacity (and initial fill) [burst].
    Raises [Invalid_argument] unless [rate > 0] and [burst >= 1]. *)

val admit : ?now_ns:int64 -> t -> tenant:string -> bool
(** Spend one token from [tenant]'s bucket if it has one.  [now_ns]
    overrides the monotonic clock — tests drive refill deterministically
    by hand-feeding timestamps; production callers omit it. *)

val stats : t -> stats
