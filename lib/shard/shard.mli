(** One shard: a complete solve server process behind its own Unix
    socket, built from the existing {!Ps_server.Engine} plus the tier's
    three per-request layers — {!Frame} (codec), {!Quota} (per-tenant
    admission), {!Batch} (coalesced dispatch).

    Request path per connection: framed read → typed-error reject or
    quota check → staging queue → batched engine submit → rendered
    reply through the coalescing writer.  Lifecycle matches
    {!Ps_server.Server.serve_unix_socket}: bind (stale socket files
    replaced, live ones refused), accept until [SIGTERM]/[SIGINT], then
    stop accepting, flush the staging queue, drain the engine and flush
    every connection writer — an accepted request never loses its reply
    to shutdown.

    The supervisor runs one of these per child process; the [shard]
    stats block (index, pid, framing, batching and quota counters) is
    injected into the engine's [stats] response so the metrics
    collector can scrape everything over the ordinary protocol. *)

type quota_config = {
  rate : float;   (** tokens/second per tenant *)
  burst : float;  (** bucket capacity *)
}

type config = {
  engine : Ps_server.Engine.config;
  framing : Frame.framing;
  max_message_bytes : int;  (** line / frame-payload cap *)
  quota : quota_config option;  (** [None] = no per-tenant limits *)
  index : int;  (** this shard's position, echoed in stats/metrics *)
}

val default_queue_capacity : int
(** The tier's shipped engine queue depth (4096 — deeper than
    {!Ps_server.Engine.default_config}'s 64).  Batched dispatch drains
    the staging queue into one engine submit per wakeup, so a deep
    queue absorbs bursts as latency instead of shedding them; the
    legacy per-request signalling path cannot sustain that depth. *)

val default_config : config
(** Engine defaults with [default_queue_capacity], JSON lines,
    {!Ps_server.Protocol.default_max_bytes}, no quota, index 0. *)

val serve : ?config:config -> path:string -> unit -> unit
(** Bind [path] and serve until a termination signal; returns after the
    drain described above. *)
