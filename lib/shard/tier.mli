(** The whole serve tier, assembled: supervisor + router + metrics in
    the front process, one {!Shard.serve} per child.

    [pslocal serve --shards N] lands here.  The front process owns the
    public socket and splices accepted connections across the children
    ({!Router}); the children own the protocol and the solving
    ({!Shard}); a crashed child is respawned ({!Supervisor}) while the
    router fails new connections over to its siblings; [--metrics-socket]
    adds the Prometheus endpoint ({!Metrics}).

    [SIGTERM]/[SIGINT] runs the no-drop drain: stop accepting, SIGTERM
    every child (each drains queued and in-flight jobs and flushes its
    reply writers), then hold the front process open until the relay
    pumps have delivered those final bytes to the clients. *)

type config = {
  shards : int;
  framing : Frame.framing;  (** what the children speak (router is codec-blind) *)
  metrics_socket : string option;
  ready_timeout_s : float;  (** startup budget for all children to bind *)
}

val default_config : config
(** 2 shards, JSON lines, no metrics endpoint, 10 s ready timeout. *)

val run : spawn:(int -> string -> int) -> front:string -> config -> unit
(** Serve until a termination signal.  [spawn index socket] starts one
    shard child and returns its pid (the CLI re-execs its own binary
    with hidden flags).  Raises [Failure] with a clean message when the
    front path is held by a live listener or a child never comes up. *)
