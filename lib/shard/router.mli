(** The front-end acceptor: one public socket, connections sharded
    round-robin across the solver children by byte splicing.

    The router is deliberately codec-blind — it parses nothing it
    relays, so JSON lines and binary frames (and a mixed population of
    clients) flow through the same two pump threads per connection.
    All protocol work (framing, quotas, batching, solving) happens in
    the shard a connection lands on; connection affinity means a
    client's pipelined requests keep their single-shard ordering
    semantics.

    Failover: a connect refused by the chosen shard (typically the
    crash-to-restart window) falls through to the next, so a dying
    shard drops only its established connections, never new arrivals. *)

type t

type stats = {
  accepted : int;   (** connections accepted at the front socket *)
  active : int;     (** currently spliced connections *)
  failovers : int;  (** shard connect attempts that failed over *)
  unrouted : int;   (** connections dropped with every shard refusing *)
}

val create : shard_sockets:string array -> t

val accept_loop :
  t -> listen_fd:Unix.file_descr -> should_stop:(unit -> bool) -> unit
(** Accept until [should_stop]; each connection gets a relay thread
    pair.  Established relays keep running after this returns — see
    {!await_drained}. *)

val await_drained : ?timeout_s:float -> t -> bool
(** Block until every active relay has finished (clients have received
    everything the draining shards wrote), or [false] on timeout
    (default 30 s). *)

val stats : t -> stats

(**/**)

val handle : t -> Unix.file_descr -> unit
(** Route one already-accepted client fd (exposed for tests). *)
