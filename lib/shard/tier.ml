module Server = Ps_server.Server

type config = {
  shards : int;
  framing : Frame.framing;
  metrics_socket : string option;
  ready_timeout_s : float;
}

let default_config =
  {
    shards = 2;
    framing = Frame.Json_lines;
    metrics_socket = None;
    ready_timeout_s = 10.0;
  }

let run ~spawn ~front config =
  if config.shards < 1 then invalid_arg "Tier.run: shards must be >= 1";
  Server.with_termination_latch @@ fun latch ->
  (* Fail on a hijacked front path before any child exists. *)
  (match Server.prepare_socket_path front with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "serve: %s" msg));
  let sup = Supervisor.start ~spawn ~front ~shards:config.shards in
  match Supervisor.wait_ready ~timeout_s:config.ready_timeout_s sup with
  | Error msg ->
      Supervisor.terminate ~grace_s:2.0 sup;
      failwith (Printf.sprintf "serve: %s" msg)
  | Ok () ->
      let router =
        Router.create ~shard_sockets:(Array.of_list (Supervisor.sockets sup))
      in
      let listen_fd = Server.bind_unix_socket front in
      (* Bind the metrics endpoint here, on the main thread, before any
         background thread exists: a hijacked or unwritable metrics
         path fails startup loudly (the [failwith] inside
         [bind_unix_socket] reaches the caller) instead of killing the
         metrics thread after the tier already looks up. *)
      let metrics_listener =
        Option.map
          (fun mpath -> (mpath, Server.bind_unix_socket mpath))
          config.metrics_socket
      in
      let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let should_stop () = Server.tripped latch in
      let metrics_body () =
        let children = Supervisor.children_info sup in
        let shard_stats =
          List.mapi
            (fun i path ->
              (i, Metrics.fetch_stats ~framing:config.framing ~path))
            (Supervisor.sockets sup)
        in
        Metrics.render ~children ~shard_stats
          ~router:(Some (Router.stats router))
      in
      Fun.protect
        ~finally:(fun () ->
          Sys.set_signal Sys.sigpipe prev_pipe;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (try Unix.unlink front with Unix.Unix_error _ -> ());
          Option.iter
            (fun (mpath, mfd) ->
              (try Unix.close mfd with Unix.Unix_error _ -> ());
              try Unix.unlink mpath with Unix.Unix_error _ -> ())
            metrics_listener)
        (fun () ->
          let acceptor =
            Thread.create
              (fun () -> Router.accept_loop router ~listen_fd ~should_stop)
              ()
          in
          let reaper =
            Thread.create
              (fun () -> Supervisor.supervise sup ~should_stop)
              ()
          in
          let metrics_thread =
            Option.map
              (fun (_, mfd) ->
                Thread.create
                  (fun () ->
                    Metrics.serve_http ~listen_fd:mfd ~body:metrics_body
                      ~should_stop)
                  ())
              metrics_listener
          in
          Server.await latch;
          (* Drain choreography: stop taking connections, let the
             reaper retire (single-reaper rule), SIGTERM the children —
             each drains its engine and flushes its writers — then wait
             for the relay pumps to deliver those final bytes to the
             clients.  Nothing accepted is dropped. *)
          Thread.join acceptor;
          Thread.join reaper;
          Supervisor.terminate sup;
          ignore (Router.await_drained router : bool);
          Option.iter Thread.join metrics_thread)
