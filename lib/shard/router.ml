module Server = Ps_server.Server

type t = {
  shard_sockets : string array;
  rr : int Atomic.t;
  accepted : int Atomic.t;
  active : int Atomic.t;
  failovers : int Atomic.t;
  unrouted : int Atomic.t;
}

type stats = {
  accepted : int;
  active : int;
  failovers : int;
  unrouted : int;
}

let create ~shard_sockets =
  if Array.length shard_sockets = 0 then
    invalid_arg "Router.create: need at least one shard socket";
  {
    shard_sockets;
    rr = Atomic.make 0;
    accepted = Atomic.make 0;
    active = Atomic.make 0;
    failovers = Atomic.make 0;
    unrouted = Atomic.make 0;
  }

let stats (t : t) =
  {
    accepted = Atomic.get t.accepted;
    active = Atomic.get t.active;
    failovers = Atomic.get t.failovers;
    unrouted = Atomic.get t.unrouted;
  }

(* Round-robin with connect failover: a shard that refuses (just
   crashed; its replacement not bound yet) costs one failover tick and
   the connection lands on the next shard — callers never see the
   restart window as long as one shard accepts. *)
let connect_shard (t : t) =
  let n = Array.length t.shard_sockets in
  let first = Atomic.fetch_and_add t.rr 1 in
  let rec attempt k =
    if k >= n then None
    else
      let idx = (first + k) mod n in
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ ->
          (* Out of fds (EMFILE and friends): for routing purposes
             indistinguishable from a refusing shard — count a failover
             and move on, down to [None] once the ring is exhausted,
             which hangs up this client without killing its thread. *)
          Atomic.incr t.failovers;
          attempt (k + 1)
      | s -> (
          match Unix.connect s (Unix.ADDR_UNIX t.shard_sockets.(idx)) with
          | () -> Some (s, idx)
          | exception Unix.Unix_error _ ->
              (try Unix.close s with Unix.Unix_error _ -> ());
              Atomic.incr t.failovers;
              attempt (k + 1))
  in
  attempt 0

let rec write_all fd bytes off len =
  if len > 0 then
    match Unix.write fd bytes off len with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes off len

(* Splice bytes one way until EOF or either side dies, then half-close
   the destination so the peer sees EOF for this direction.  The router
   never parses what it relays — both codecs (and future ones) flow
   through unchanged. *)
let pump ~src ~dst =
  let buf = Bytes.create 65536 in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n -> (
        match write_all dst buf 0 n with
        | () -> loop ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  try Unix.shutdown dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let handle (t : t) client =
  match connect_shard t with
  | None ->
      (* Every shard refused: nothing to say in-protocol (the router is
         codec-blind), so hang up and count it. *)
      Atomic.incr t.unrouted;
      (try Unix.close client with Unix.Unix_error _ -> ())
  | Some (shard_fd, _idx) ->
      Atomic.incr t.active;
      let forward = Thread.create (fun () -> pump ~src:client ~dst:shard_fd) () in
      pump ~src:shard_fd ~dst:client;
      (* The shard hung up (its EOF ended the backward pump), so this
         connection is over in both directions: the forward pump may
         still be parked in [read client] waiting for bytes the shard
         will never see — half-close the read side so that read returns
         0 now, not when the client eventually closes.  Without this a
         drain with idle-but-open clients stalls on the join below. *)
      (try Unix.shutdown client Unix.SHUTDOWN_RECEIVE
       with Unix.Unix_error _ -> ());
      Thread.join forward;
      (try Unix.close shard_fd with Unix.Unix_error _ -> ());
      (try Unix.close client with Unix.Unix_error _ -> ());
      Atomic.decr t.active

let accept_loop (t : t) ~listen_fd ~should_stop =
  let rec loop () =
    match Unix.select [ listen_fd ] [] [] 0.25 with
    | [], _, _ -> if should_stop () then () else loop ()
    | _ :: _, _, _ ->
        (match
           Server.accept_retrying ~should_stop (fun () ->
               Unix.accept listen_fd)
         with
        | Some (fd, _) ->
            Atomic.incr t.accepted;
            let _conn : Thread.t =
              Thread.create
                (fun () ->
                  try handle t fd
                  with _ ->
                    (* Last resort: a relay failure must not leak the
                       accepted fd.  [handle] only raises before it has
                       closed [fd] itself, so this close cannot double
                       up with its normal cleanup. *)
                    Atomic.incr t.unrouted;
                    (try Unix.close fd with Unix.Unix_error _ -> ()))
                ()
            in
            ()
        | None -> ());
        if should_stop () then () else loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if should_stop () then () else loop ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  (* A dead front acceptor leaves every shard healthy and every client
     refused; restart on anything the ladder above does not classify. *)
  let rec run () =
    try loop ()
    with _ ->
      Ps_util.Telemetry.incr "router.acceptor_restart";
      if should_stop () then ()
      else begin
        Thread.delay 0.05;
        run ()
      end
  in
  run ()

(* Shutdown helper: connections accepted before the stop are still
   relaying the shards' drain output; wait for the pumps to finish so
   every reply reaches its client before the front process exits. *)
let await_drained ?(timeout_s = 30.0) (t : t) =
  let deadline =
    Int64.add (Ps_util.Telemetry.now_ns ()) (Int64.of_float (timeout_s *. 1e9))
  in
  let rec wait () =
    if Atomic.get t.active = 0 then true
    else if Int64.compare (Ps_util.Telemetry.now_ns ()) deadline > 0 then false
    else begin
      Thread.delay 0.02;
      wait ()
    end
  in
  wait ()
