(** Message framing for shard connections: newline-delimited JSON (the
    compatibility protocol) or length-prefixed binary frames
    ({!Ps_server.Protocol.Binary}), behind one reader/writer surface so
    the serve loop is codec-agnostic.

    {b Reading} turns a connection into a stream of typed {!event}s.
    Malformed input never raises and never kills the process: a bad
    message on a recoverable boundary is a [Request (Error _)] (answer
    the typed error, keep reading), while damage that desynchronizes
    the stream itself — truncated frame header, EOF mid-payload, an
    over-cap length prefix, JSON text arriving at a binary port — is
    {!Poisoned} (answer once, then hang up: the next byte boundary is
    unknowable).

    {b Writing} goes through a per-connection coalescing writer thread:
    {!send} appends to a pending buffer and returns; the thread flushes
    everything accumulated per wakeup with a single [write].  Under
    load, many replies share one syscall. *)

type framing = Json_lines | Binary

val framing_name : framing -> string
(** ["json"] / ["binary"] — wire and CLI spelling. *)

val framing_of_name : string -> framing option

(** {1 Reading} *)

type event =
  | Request of (Ps_server.Protocol.request, Ps_server.Json.t * Ps_server.Protocol.error) result
      (** One decoded message: a valid request, or a typed rejection to
          answer (stream still usable). *)
  | Eof  (** clean end of stream at a message boundary *)
  | Poisoned of Ps_server.Protocol.error
      (** The byte stream is desynchronized; answer this once (id
          [Null]) and close. *)

val read_event :
  in_channel -> framing:framing -> max_bytes:int -> event
(** Read one message.  JSON mode skips blank lines; binary mode
    enforces [max_bytes] against the declared frame length {e before}
    reading the payload, so a hostile length prefix cannot make the
    reader allocate or block unboundedly. *)

val read_message :
  in_channel ->
  framing:framing ->
  max_bytes:int ->
  (Ps_server.Json.t, string) result option
(** Client-side: one whole message as a value ([None] = EOF).  Used by
    the metrics collector and the load generator. *)

val encode_message : framing -> Ps_server.Json.t -> string
(** Client-side: the full wire bytes of one message (JSON line with
    trailing newline, or a binary frame). *)

(** {1 Writing} *)

type writer

val writer : Unix.file_descr -> framing:framing -> writer
(** Spawn the coalescing writer thread for one connection.  The caller
    keeps fd ownership (the writer never closes it). *)

val send : writer -> string -> unit
(** Queue one rendered response (engine [render] output: a JSON line
    without newline, or a complete binary frame).  Thread-safe; returns
    without blocking on the socket.  Raises [Failure] once the writer
    has failed (peer hung up) or is closing — callers inside the engine
    reply path count that as a reply failure. *)

val close_writer : writer -> unit
(** Flush everything pending, then join the writer thread.  Idempotent
    in effect; the fd itself stays open. *)

val writer_failed : writer -> bool
