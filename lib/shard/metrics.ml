module Json = Ps_server.Json
module Server = Ps_server.Server

(* ------------------------------------------------------------------ *)
(* Scraping one shard over its own protocol *)

let rec send_all fd bytes off len =
  if len > 0 then
    match Unix.write fd bytes off len with
    | n -> send_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> send_all fd bytes off len

let fetch_stats_exn ~framing ~path =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect s (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "connect %s: %s" path (Unix.error_message e))
      | () -> (
          Unix.setsockopt_float s Unix.SO_RCVTIMEO 2.0;
          let req =
            Json.Obj [ ("id", Json.Int 0); ("method", Json.Str "stats") ]
          in
          let wire = Frame.encode_message framing req in
          match
            send_all s (Bytes.unsafe_of_string wire) 0 (String.length wire)
          with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "send: %s" (Unix.error_message e))
          | () -> (
              let ic = Unix.in_channel_of_descr s in
              match
                Frame.read_message ic ~framing
                  ~max_bytes:Ps_server.Protocol.default_max_bytes
              with
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Printf.sprintf "recv: %s" (Unix.error_message e))
              | None -> Error "EOF before stats response"
              | Some (Error msg) -> Error msg
              | Some (Ok resp) -> (
                  match Json.member "result" resp with
                  | Some r -> Ok r
                  | None -> Error "stats response carries no result"))))

(* Total on any failure: a scrape error is a value, never an exception
   — the metrics thread must survive a shard mid-restart, fd
   exhaustion at [socket], or a codec bug in the response. *)
let fetch_stats ~framing ~path =
  try fetch_stats_exn ~framing ~path with
  | Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exn -> Error (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* Prometheus text rendering *)

(* Engine stats fields exported per shard.  Names follow the stats-JSON
   wire contract; the split drives the TYPE line. *)
let counter_fields =
  [
    "accepted";
    "rejected";
    "invalid_lines";
    "completed";
    "failed";
    "timeouts";
    "reply_failures";
  ]

let gauge_fields = [ "queue_depth"; "inflight"; "throughput_rps"; "uptime_s" ]

let shard_counter_fields =
  [
    ("batches", "batch_dispatches_total");
    ("batched_requests", "batch_requests_total");
    ("quota_admitted", "quota_admitted_total");
    ("quota_rejected", "quota_rejected_total");
  ]

let shard_gauge_fields =
  [ ("max_batch", "batch_max_size"); ("quota_tenants", "quota_tenants") ]

let num = function
  | Json.Int n -> Some (float_of_int n)
  | Json.Float f -> Some f
  | _ -> None

let field_num name j = Option.bind (Json.member name j) num

let add_value buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.9g" v)

let series buf name labels v =
  Buffer.add_string buf name;
  (match labels with
  | [] -> ()
  | _ :: _ ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%s=%S" k value))
        labels;
      Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  add_value buf v;
  Buffer.add_char buf '\n'

let header buf name kind help =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let shard_label i = [ ("shard", string_of_int i) ]

let render ~children ~shard_stats ~router =
  let buf = Buffer.create 8192 in
  let ok_stats =
    List.filter_map
      (fun (i, r) -> match r with Ok j -> Some (i, j) | Error _ -> None)
      shard_stats
  in
  (* Supervisor: liveness, restarts, pids. *)
  header buf "pslocal_shards" "gauge" "configured shard count";
  series buf "pslocal_shards" [] (float_of_int (List.length children));
  header buf "pslocal_shard_up" "gauge" "1 if the shard process is running";
  List.iter
    (fun c ->
      series buf "pslocal_shard_up"
        (shard_label c.Supervisor.c_index)
        (if c.Supervisor.c_up then 1.0 else 0.0))
    children;
  header buf "pslocal_shard_restarts_total" "counter"
    "times the supervisor respawned this shard";
  List.iter
    (fun c ->
      series buf "pslocal_shard_restarts_total"
        (shard_label c.Supervisor.c_index)
        (float_of_int c.Supervisor.c_restarts))
    children;
  header buf "pslocal_shard_pid" "gauge" "current pid of the shard process";
  List.iter
    (fun c ->
      series buf "pslocal_shard_pid"
        (shard_label c.Supervisor.c_index)
        (float_of_int c.Supervisor.c_pid))
    children;
  header buf "pslocal_shard_scrape_ok" "gauge"
    "1 if the last stats scrape of this shard succeeded";
  List.iter
    (fun (i, r) ->
      series buf "pslocal_shard_scrape_ok" (shard_label i)
        (match r with Ok _ -> 1.0 | Error _ -> 0.0))
    shard_stats;
  (* Engine counters and gauges, per shard + cluster sums. *)
  List.iter
    (fun name ->
      let metric = Printf.sprintf "pslocal_%s_total" name in
      header buf metric "counter"
        (Printf.sprintf "engine %s count for one shard" name);
      List.iter
        (fun (i, j) ->
          match field_num name j with
          | Some v -> series buf metric (shard_label i) v
          | None -> ())
        ok_stats;
      let total =
        List.fold_left
          (fun acc (_, j) ->
            match field_num name j with Some v -> acc +. v | None -> acc)
          0.0 ok_stats
      in
      let cluster = Printf.sprintf "pslocal_cluster_%s_total" name in
      header buf cluster "counter"
        (Printf.sprintf "engine %s summed across shards" name);
      series buf cluster [] total)
    counter_fields;
  List.iter
    (fun name ->
      let metric = Printf.sprintf "pslocal_%s" name in
      header buf metric "gauge"
        (Printf.sprintf "engine %s for one shard" name);
      List.iter
        (fun (i, j) ->
          match field_num name j with
          | Some v -> series buf metric (shard_label i) v
          | None -> ())
        ok_stats)
    gauge_fields;
  (* Latency percentiles. *)
  header buf "pslocal_latency_ms" "gauge"
    "job latency percentiles over the engine's sliding window";
  List.iter
    (fun (i, j) ->
      match Json.member "latency_ms" j with
      | Some lat ->
          List.iter
            (fun q ->
              match field_num q lat with
              | Some v ->
                  series buf "pslocal_latency_ms"
                    (shard_label i @ [ ("quantile", q) ])
                    v
              | None -> ())
            [ "p50"; "p95"; "p99"; "max"; "mean" ]
      | None -> ())
    ok_stats;
  (* Shard-tier counters (batching, quota) from the injected block. *)
  let shard_block j = Json.member "shard" j in
  List.iter
    (fun (field, metric_suffix) ->
      let metric = "pslocal_" ^ metric_suffix in
      header buf metric "counter" ("shard tier " ^ field);
      List.iter
        (fun (i, j) ->
          match Option.bind (shard_block j) (field_num field) with
          | Some v -> series buf metric (shard_label i) v
          | None -> ())
        ok_stats)
    shard_counter_fields;
  List.iter
    (fun (field, metric_suffix) ->
      let metric = "pslocal_" ^ metric_suffix in
      header buf metric "gauge" ("shard tier " ^ field);
      List.iter
        (fun (i, j) ->
          match Option.bind (shard_block j) (field_num field) with
          | Some v -> series buf metric (shard_label i) v
          | None -> ())
        ok_stats)
    shard_gauge_fields;
  (* Cache counters, when the shards run one. *)
  let cache_block j = Json.member "cache" j in
  (match
     List.find_opt (fun (_, j) -> Option.is_some (cache_block j)) ok_stats
   with
  | None -> ()
  | Some _ ->
      List.iter
        (fun field ->
          let metric = Printf.sprintf "pslocal_cache_%s_total" field in
          header buf metric "counter" ("solved-instance cache " ^ field);
          List.iter
            (fun (i, j) ->
              match Option.bind (cache_block j) (field_num field) with
              | Some v -> series buf metric (shard_label i) v
              | None -> ())
            ok_stats)
        [ "hits"; "misses"; "stores"; "evictions"; "warm_hits"; "disk_hits" ]);
  (* Router. *)
  (match router with
  | None -> ()
  | Some r ->
      header buf "pslocal_router_connections_total" "counter"
        "connections accepted at the front socket";
      series buf "pslocal_router_connections_total" []
        (float_of_int r.Router.accepted);
      header buf "pslocal_router_active_connections" "gauge"
        "connections currently spliced to a shard";
      series buf "pslocal_router_active_connections" []
        (float_of_int r.Router.active);
      header buf "pslocal_router_failovers_total" "counter"
        "shard connect attempts that failed over";
      series buf "pslocal_router_failovers_total" []
        (float_of_int r.Router.failovers);
      header buf "pslocal_router_unrouted_total" "counter"
        "connections dropped with every shard refusing";
      series buf "pslocal_router_unrouted_total" []
        (float_of_int r.Router.unrouted));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The /metrics endpoint: minimal HTTP over a Unix socket *)

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.1 %s\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    status (String.length body) body

let handle_http_connection fd ~body =
  let reqbuf = Bytes.create 4096 in
  (match Unix.read fd reqbuf 0 (Bytes.length reqbuf) with
  | exception Unix.Unix_error _ -> ()
  | 0 -> ()
  | n ->
      let head = Bytes.sub_string reqbuf 0 n in
      let target =
        match String.split_on_char ' ' head with
        | "GET" :: path :: _ -> Some path
        | _ -> None
      in
      let resp =
        match target with
        | Some ("/metrics" | "/") -> http_response ~status:"200 OK" ~body:(body ())
        | Some _ -> http_response ~status:"404 Not Found" ~body:"not found\n"
        | None ->
            http_response ~status:"405 Method Not Allowed" ~body:"GET only\n"
      in
      (try
         send_all fd (Bytes.unsafe_of_string resp) 0 (String.length resp)
       with Unix.Unix_error _ -> ()));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Serial accept loop: a scraper hits this once per interval, and the
   render itself fans out to the shards, so concurrency buys nothing.

   The caller binds the socket (on its main thread, so a hijacked or
   unwritable metrics path fails startup loudly) and owns its
   close/unlink; this loop only accepts.  Unclassified errors restart
   the loop after a beat rather than leaving the endpoint silently
   dead while the tier looks healthy. *)
let serve_http ~listen_fd ~body ~should_stop =
  let rec loop () =
    match Unix.select [ listen_fd ] [] [] 0.25 with
    | [], _, _ -> if should_stop () then () else loop ()
    | _ :: _, _, _ ->
        (match
           Server.accept_retrying ~should_stop (fun () ->
               Unix.accept listen_fd)
         with
        | Some (fd, _) -> handle_http_connection fd ~body
        | None -> ());
        if should_stop () then () else loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if should_stop () then () else loop ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  let rec run () =
    try loop ()
    with _ ->
      Ps_util.Telemetry.incr "metrics.acceptor_restart";
      if should_stop () then ()
      else begin
        Thread.delay 0.05;
        run ()
      end
  in
  run ()
