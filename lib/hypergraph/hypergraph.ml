type t = {
  n : int;
  edges : int array array;        (* each sorted, distinct, non-empty *)
  incidence : int list array;     (* vertex -> edge indices, increasing *)
}

let build n edges =
  let incidence = Array.make (max n 1) [] in
  Array.iteri
    (fun i e ->
      Array.iter (fun v -> incidence.(v) <- i :: incidence.(v)) e)
    edges;
  let incidence = Array.map List.rev incidence in
  let incidence = if n = 0 then [||] else Array.sub incidence 0 n in
  { n; edges; incidence }

let normalize_edge n e =
  match List.sort_uniq Int.compare e with
  | [] -> invalid_arg "Hypergraph: empty edge"
  | e ->
      List.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Hypergraph: vertex out of range")
        e;
      Array.of_list e

let of_edges n edges =
  if n < 0 then invalid_arg "Hypergraph.of_edges: negative vertex count";
  build n (Array.of_list (List.map (normalize_edge n) edges))

let of_edge_arrays n edges =
  of_edges n (Array.to_list (Array.map Array.to_list edges))

(* Streaming-parser entry point: normalizes member arrays in place
   (monomorphic sort + adjacent dedup) instead of round-tripping every
   edge through lists and polymorphic [List.sort_uniq].  Takes ownership
   of [edges] and its rows. *)
let of_member_arrays n edges =
  if n < 0 then invalid_arg "Hypergraph.of_member_arrays: negative vertex count";
  let edges =
    Array.map
      (fun e ->
        if Array.length e = 0 then invalid_arg "Hypergraph: empty edge";
        Array.iter
          (fun v ->
            if v < 0 || v >= n then
              invalid_arg "Hypergraph: vertex out of range")
          e;
        Ps_util.Intsort.sort e;
        let len = Ps_util.Intsort.dedup_sorted_range e 0 (Array.length e) in
        if len = Array.length e then e else Array.sub e 0 len)
      edges
  in
  build n edges

let n_vertices h = h.n
let n_edges h = Array.length h.edges

let check_edge h i =
  if i < 0 || i >= n_edges h then invalid_arg "Hypergraph: edge index"

let edge h i =
  check_edge h i;
  Array.copy h.edges.(i)

let edge_size h i =
  check_edge h i;
  Array.length h.edges.(i)

let edge_mem h i v =
  check_edge h i;
  let e = h.edges.(i) in
  let lo = ref 0 and hi = ref (Array.length e - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if e.(mid) = v then found := true
    else if e.(mid) < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_edge h i f =
  check_edge h i;
  Array.iter f h.edges.(i)

let fold_edge h i f init =
  check_edge h i;
  Array.fold_left f init h.edges.(i)

let rank h = Array.fold_left (fun acc e -> max acc (Array.length e)) 0 h.edges

let min_edge_size h =
  if n_edges h = 0 then 0
  else Array.fold_left (fun acc e -> min acc (Array.length e)) max_int h.edges

let vertex_degree h v =
  if v < 0 || v >= h.n then invalid_arg "Hypergraph.vertex_degree";
  List.length h.incidence.(v)

let incident_edges h v =
  if v < 0 || v >= h.n then invalid_arg "Hypergraph.incident_edges";
  h.incidence.(v)

let edges_list h = Array.to_list (Array.map Array.to_list h.edges)

let almost_uniform_witness h eps =
  if eps < 0.0 then invalid_arg "Hypergraph.almost_uniform_witness";
  if n_edges h = 0 then None
  else begin
    let k = min_edge_size h in
    let bound = float_of_int k *. (1.0 +. eps) in
    if rank h <= int_of_float (Float.floor bound) then Some k else None
  end

let is_almost_uniform h eps = Option.is_some (almost_uniform_witness h eps)

let restrict_edges h keep =
  let keep = List.sort_uniq Int.compare keep in
  List.iter (check_edge h) keep;
  let back = Array.of_list keep in
  let edges = Array.map (fun i -> Array.copy h.edges.(i)) back in
  (build h.n edges, back)

let equal a b =
  a.n = b.n
  && n_edges a = n_edges b
  && Array.for_all2 (fun x y -> x = y) a.edges b.edges

let pp ppf h =
  Format.fprintf ppf "hypergraph(n=%d, m=%d, |e|=[%d..%d])" h.n (n_edges h)
    (min_edge_size h) (rank h)
