module G = Ps_graph.Graph

let primal h =
  let acc = ref [] in
  for i = 0 to Hypergraph.n_edges h - 1 do
    let e = Hypergraph.edge h i in
    let len = Array.length e in
    for a = 0 to len - 1 do
      for b = a + 1 to len - 1 do
        acc := (e.(a), e.(b)) :: !acc
      done
    done
  done;
  G.of_edges (Hypergraph.n_vertices h) !acc

let incidence h =
  let n = Hypergraph.n_vertices h in
  let acc = ref [] in
  for i = 0 to Hypergraph.n_edges h - 1 do
    Hypergraph.iter_edge h i (fun v -> acc := (v, n + i) :: !acc)
  done;
  G.of_edges (n + Hypergraph.n_edges h) !acc

let dual h =
  let edges = ref [] in
  for v = Hypergraph.n_vertices h - 1 downto 0 do
    match Hypergraph.incident_edges h v with
    | [] -> ()
    | incident -> edges := incident :: !edges
  done;
  Hypergraph.of_edges (max (Hypergraph.n_edges h) 1) !edges

let line_graph h =
  let m = Hypergraph.n_edges h in
  let acc = ref [] in
  (* Two edges are adjacent iff they share a vertex; collect pairs through
     each vertex's incidence list to avoid the m^2 subset test. *)
  for v = 0 to Hypergraph.n_vertices h - 1 do
    let incident = Array.of_list (Hypergraph.incident_edges h v) in
    let len = Array.length incident in
    for a = 0 to len - 1 do
      for b = a + 1 to len - 1 do
        acc := (incident.(a), incident.(b)) :: !acc
      done
    done
  done;
  G.of_edges m !acc
