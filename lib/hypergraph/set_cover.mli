(** Set cover over a hypergraph.

    The paper's list of P-SLOCAL-complete problems includes
    "approximations of dominating set and distributed set cover" [GHK18];
    this module carries set cover as a companion problem.  The universe
    is the hypergraph's vertex set; the sets are its hyperedges; a cover
    is a family of edge indices whose union is every vertex of positive
    degree (isolated vertices are uncoverable and excluded by
    definition). *)

val coverable : Hypergraph.t -> Ps_util.Bitset.t
(** The vertices of positive degree — what a cover must reach. *)

val is_cover : Hypergraph.t -> int list -> bool
(** Do the given edge indices cover every coverable vertex? *)

val verify_exn : Hypergraph.t -> int list -> unit

val greedy : Hypergraph.t -> int list
(** The textbook ln(n)+1 approximation: repeatedly pick the edge covering
    the most uncovered vertices (ties to the smaller index); returns
    chosen indices in selection order. *)

val minimum_within : budget:int -> Hypergraph.t -> int list option
(** Exact minimum cover by branching over the edges through an uncovered
    vertex; [None] if [budget] search nodes are exhausted. *)

val cover_number_within : budget:int -> Hypergraph.t -> int option
