(** Hypergraph generators.

    Workloads mirror the instances appearing in the paper's context:
    {ul
    {- {e almost-uniform random hypergraphs} — the hardness instances of
       Theorem 1.2 are almost uniform with polynomially many edges;}
    {- {e interval hypergraphs} — the [DN18] substrate the paper adapts:
       vertices are points on a line, edges are discrete intervals;}
    {- {e closed-neighborhood hypergraphs} of a graph — the classic bridge
       between graph problems (domination, coloring) and hypergraph
       conflict-free coloring.}} *)

val uniform_random :
  Ps_util.Rng.t -> n:int -> m:int -> k:int -> Hypergraph.t
(** [m] edges, each a uniform random [k]-subset of the [n] vertices.
    Requires [1 <= k <= n]. *)

val almost_uniform_random :
  Ps_util.Rng.t -> n:int -> m:int -> k:int -> eps:float -> Hypergraph.t
(** Each edge's size is uniform in [\[k, floor((1+eps)k)\]]; contents
    uniform. The result satisfies
    [Hypergraph.is_almost_uniform _ eps = true]. *)

val interval : n:int -> (int * int) list -> Hypergraph.t
(** [interval ~n ranges]: vertices are points [0..n-1]; each [(a,b)] with
    [0 <= a <= b < n] becomes the edge [{a, a+1, ..., b}]. *)

val random_intervals :
  Ps_util.Rng.t -> n:int -> m:int -> min_len:int -> max_len:int ->
  Hypergraph.t
(** [m] random discrete intervals with lengths uniform in
    [\[min_len, max_len\]] (clamped to fit), positions uniform. *)

val all_intervals_of_length : n:int -> len:int -> Hypergraph.t
(** Every interval of exactly [len] points — a uniform interval hypergraph
    with [n - len + 1] edges. *)

val all_intervals : n:int -> Hypergraph.t
(** Every interval [\[a, b\]], [0 <= a <= b < n]: the canonical
    "points with respect to intervals" instance with [n(n+1)/2] edges,
    whose conflict-free chromatic number is exactly [⌊log2 n⌋ + 1] —
    the ruler coloring is optimal on it. *)

val closed_neighborhoods : Ps_graph.Graph.t -> Hypergraph.t
(** Edge [i] is [N\[v_i\] = {v_i} ∪ N(v_i)] for each graph vertex. *)

val from_graph : Ps_graph.Graph.t -> Hypergraph.t
(** The graph's edges as a 2-uniform hypergraph (edge [i] of the result
    is the [i]-th edge of the graph in lexicographic order).  Under CF
    coloring a 2-uniform edge is happy iff some endpoint's color is not
    shared by the other — any {e proper} partial coloring with both
    endpoints colored works, as does coloring exactly one endpoint. *)

val sunflower : n_petals:int -> core:int -> petal:int -> Hypergraph.t
(** Sunflower with a shared core of [core] vertices and [n_petals]
    disjoint petals of [petal] extra vertices each; edge [i] = core ∪
    petal [i]. Classic CF-coloring stress instance: all edges intersect
    pairwise in the core. *)

val disjoint_blocks : blocks:int -> size:int -> Hypergraph.t
(** [blocks] pairwise-disjoint edges of the given size — CF 1-colorable. *)
