let to_text h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Hypergraph.n_vertices h)
       (Hypergraph.n_edges h));
  for i = 0 to Hypergraph.n_edges h - 1 do
    let e = Hypergraph.edge h i in
    Buffer.add_string buf (string_of_int (Array.length e));
    Array.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int v)) e;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let fail_line lineno msg =
  failwith (Printf.sprintf "Hio.of_text: line %d: %s" lineno msg)

(* Same whitespace tolerance as [Gio.of_edge_list]: tabs, CRLF line
   endings and form feeds all separate tokens instead of poisoning
   them. *)
let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

let tokens line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space line.[!i] do incr i done;
    let start = !i in
    while !i < n && not (is_space line.[!i]) do incr i done;
    if !i > start then out := String.sub line start (!i - start) :: !out
  done;
  List.rev !out

let ints_of_line lineno line =
  tokens line
  |> List.map (fun s ->
         try int_of_string s with Failure _ -> fail_line lineno "not a number")

let of_text text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.filter (fun (_, line) ->
           line <> "" && not (String.length line > 0 && line.[0] = '#'))
  in
  match lines with
  | [] -> failwith "Hio.of_text: empty input"
  | (lineno, header) :: rest ->
      let n, m =
        match ints_of_line lineno header with
        | [ n; m ] -> (n, m)
        | _ -> fail_line lineno "header must be \"n m\""
      in
      if n < 0 then fail_line lineno "vertex count must be nonnegative";
      if m < 0 then fail_line lineno "edge count must be nonnegative";
      let edges =
        List.map
          (fun (lineno, line) ->
            match ints_of_line lineno line with
            | size :: members ->
                if List.length members <> size then
                  fail_line lineno "edge size mismatch";
                List.iter
                  (fun v ->
                    if v < 0 || v >= n then
                      fail_line lineno
                        (Printf.sprintf "vertex id %d out of range [0, %d)" v
                           n))
                  members;
                members
            | [] -> fail_line lineno "empty line")
          rest
      in
      if List.length edges <> m then
        failwith
          (Printf.sprintf "Hio.of_text: header promises %d edges, found %d" m
             (List.length edges));
      Hypergraph.of_edges n edges

let write_file filename h =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_text h))

let read_file filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_text (In_channel.input_all ic))
