let fail_line lineno msg =
  failwith (Printf.sprintf "Hio.of_text: line %d: %s" lineno msg)

(* Same whitespace tolerance as [Gio.of_edge_list]: tabs, CRLF line
   endings and form feeds all separate tokens instead of poisoning
   them. *)
let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

let tokens line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space line.[!i] do incr i done;
    let start = !i in
    while !i < n && not (is_space line.[!i]) do incr i done;
    if !i > start then out := String.sub line start (!i - start) :: !out
  done;
  List.rev !out

let ints_of_line lineno line =
  tokens line
  |> List.map (fun s ->
         try int_of_string s with Failure _ -> fail_line lineno "not a number")

(* First non-space position of [line], or -1 when blank. *)
let content_start line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_space line.[!i] do incr i done;
  if !i = n then -1 else !i

(* Reusable growable int buffer for the per-line fast path. *)
type ibuf = { mutable data : int array; mutable len : int }

let ibuf_push b x =
  if b.len = Array.length b.data then begin
    let d = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

(* Parse every plain decimal int on the line into [b]; false on any
   token the fast scanner does not recognize (the caller falls back to
   the list-based slow path, which classifies the error or accepts
   exotic-but-valid forms like [0x1f]). *)
let ints_fast line start b =
  b.len <- 0;
  let n = String.length line in
  let i = ref start in
  let ok = ref true in
  while !ok && !i < n do
    while !i < n && is_space line.[!i] do incr i done;
    if !i < n then begin
      let neg = line.[!i] = '-' in
      if neg then incr i;
      let v = ref 0 and digits = ref 0 in
      while
        !i < n
        &&
        let c = line.[!i] in
        c >= '0' && c <= '9'
      do
        v := (!v * 10) + (Char.code line.[!i] - Char.code '0');
        incr digits;
        incr i
      done;
      if !digits = 0 || (!i < n && not (is_space line.[!i])) then ok := false
      else ibuf_push b (if neg then - !v else !v)
    end
  done;
  !ok

(* Streaming parser core, as in [Gio.parse]: numbered raw lines in,
   hypergraph out, with the member arrays built directly (no line list,
   no per-line int lists on the fast path). *)
let parse next_line =
  let rec header () =
    match next_line () with
    | None -> failwith "Hio.of_text: empty input"
    | Some (lineno, line) -> (
        match content_start line with
        | -1 -> header ()
        | s when line.[s] = '#' -> header ()
        | _ -> (lineno, line))
  in
  let lineno, hline = header () in
  let n, m =
    match ints_of_line lineno hline with
    | [ n; m ] -> (n, m)
    | _ -> fail_line lineno "header must be \"n m\""
  in
  if n < 0 then fail_line lineno "vertex count must be nonnegative";
  if m < 0 then fail_line lineno "edge count must be nonnegative";
  let edges = ref (Array.make (max m 16) [||]) in
  let nedges = ref 0 in
  let push e =
    if !nedges = Array.length !edges then begin
      let d = Array.make (2 * !nedges) [||] in
      Array.blit !edges 0 d 0 !nedges;
      edges := d
    end;
    !edges.(!nedges) <- e;
    incr nedges
  in
  let b = { data = Array.make 64 0; len = 0 } in
  let edge_of_ints lineno size members_len members_get =
    if members_len <> size then fail_line lineno "edge size mismatch";
    let e = Array.init size members_get in
    Array.iter
      (fun v ->
        if v < 0 || v >= n then
          fail_line lineno
            (Printf.sprintf "vertex id %d out of range [0, %d)" v n))
      e;
    e
  in
  let rec edges_loop () =
    match next_line () with
    | None -> ()
    | Some (lineno, line) ->
        (match content_start line with
        | -1 -> ()
        | s when line.[s] = '#' -> ()
        | s ->
            if ints_fast line s b && b.len > 0 then
              push
                (edge_of_ints lineno b.data.(0) (b.len - 1) (fun i ->
                     b.data.(i + 1)))
            else begin
              match ints_of_line lineno line with
              | size :: members ->
                  let members = Array.of_list members in
                  push
                    (edge_of_ints lineno size (Array.length members) (fun i ->
                         members.(i)))
              | [] -> fail_line lineno "empty line"
            end);
        edges_loop ()
  in
  edges_loop ();
  if !nedges <> m then
    failwith
      (Printf.sprintf "Hio.of_text: header promises %d edges, found %d" m
         !nedges);
  Hypergraph.of_member_arrays n (Array.sub !edges 0 !nedges)

let of_text text =
  let pos = ref 0 and lineno = ref 0 in
  let total = String.length text in
  let next_line () =
    if !pos > total then None
    else begin
      let stop =
        match String.index_from_opt text !pos '\n' with
        | Some j -> j
        | None -> total
      in
      let line = String.sub text !pos (stop - !pos) in
      pos := stop + 1;
      incr lineno;
      if stop = total && String.length line = 0 then None
      else Some (!lineno, line)
    end
  in
  parse next_line

let to_text h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Hypergraph.n_vertices h)
       (Hypergraph.n_edges h));
  for i = 0 to Hypergraph.n_edges h - 1 do
    let e = Hypergraph.edge h i in
    Buffer.add_string buf (string_of_int (Array.length e));
    Array.iter (fun v -> Buffer.add_string buf (" " ^ string_of_int v)) e;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Buffered streaming writer (64 KiB flushes), mirroring
   [Gio.write_file]: the file is never materialized as one string. *)
let write_file filename h =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Buffer.add_string buf
        (Printf.sprintf "%d %d\n" (Hypergraph.n_vertices h)
           (Hypergraph.n_edges h));
      for i = 0 to Hypergraph.n_edges h - 1 do
        Buffer.add_string buf (string_of_int (Hypergraph.edge_size h i));
        Hypergraph.iter_edge h i (fun v ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (string_of_int v));
        Buffer.add_char buf '\n';
        if Buffer.length buf >= 65536 then begin
          Buffer.output_buffer oc buf;
          Buffer.clear buf
        end
      done;
      Buffer.output_buffer oc buf)

let read_file filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let next_line () =
        match In_channel.input_line ic with
        | None -> None
        | Some line ->
            incr lineno;
            Some (!lineno, line)
      in
      parse next_line)
