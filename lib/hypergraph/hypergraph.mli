(** Hypergraphs [H = (V, E)] with integer vertices [0 .. n-1].

    This is the input structure of the conflict-free multicoloring problem
    (Theorem 1.2 of the paper) and hence of the completeness reduction.
    Hyperedges are non-empty sets of vertices, stored sorted; edges keep a
    stable index [0 .. m-1] which the conflict-graph construction uses as
    the [e] component of its triple vertices.

    The paper's hardness instances are {e almost uniform}: for a constant
    [ε] there is a [k] with [k <= |e| <= (1+ε)k] for every edge — see
    {!almost_uniform_witness}. *)

type t

(** {1 Construction} *)

val of_edges : int -> int list list -> t
(** [of_edges n edges]: each edge is a non-empty list of vertices in
    [0..n-1]; duplicate vertices within an edge collapse. Duplicate edges
    are kept (they are distinct constraints with distinct indices), as in
    the paper where [E] is a multiset of polynomially many edges. *)

val of_edge_arrays : int -> int array array -> t

val of_member_arrays : int -> int array array -> t
(** Like {!of_edge_arrays} but {e takes ownership} of the arrays and
    normalizes them in place (monomorphic sort + adjacent dedup, no list
    round-trip) — the allocation-lean entry point used by the streaming
    {!Hio} reader.  Same validation and semantics as {!of_edges}. *)

(** {1 Size and access} *)

val n_vertices : t -> int
val n_edges : t -> int

val edge : t -> int -> int array
(** Sorted members of edge [i] (fresh array). *)

val edge_size : t -> int -> int
val edge_mem : t -> int -> int -> bool
(** [edge_mem h i v]: does edge [i] contain vertex [v]? O(log |e|). *)

val iter_edge : t -> int -> (int -> unit) -> unit
val fold_edge : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val rank : t -> int
(** Maximum edge size; 0 when edgeless. *)

val min_edge_size : t -> int
(** Minimum edge size; 0 when edgeless. *)

val vertex_degree : t -> int -> int
(** Number of edges containing the vertex. *)

val incident_edges : t -> int -> int list
(** Indices of edges containing the vertex, increasing. *)

val edges_list : t -> int list list
(** All edges as sorted lists, in index order. *)

(** {1 Structure} *)

val almost_uniform_witness : t -> float -> int option
(** [almost_uniform_witness h eps] is [Some k] when every edge size lies in
    [k, (1+eps)k] for [k] = the minimum edge size, [None] otherwise (or
    when [h] has no edges). *)

val is_almost_uniform : t -> float -> bool

val restrict_edges : t -> int list -> t * int array
(** [restrict_edges h keep] is the hypergraph with only the edges whose
    indices are listed (same vertex set), plus the map from new edge index
    to old.  Used by the reduction when happy edges are removed between
    phases. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Summary: n, m, size range. *)
