(** Plain-text hypergraph I/O.

    Format: header line ["n m"], then [m] lines each ["s v1 ... vs"] where
    [s] is the edge size. Comment lines start with ['#'].

    {!read_file} and {!write_file} stream: reading parses line by line
    straight into member arrays ({!Hypergraph.of_member_arrays}) with no
    intermediate line or token lists, writing flushes through a
    fixed-size buffer — neither direction materializes the file as one
    string. *)

val to_text : Hypergraph.t -> string
val of_text : string -> Hypergraph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val write_file : string -> Hypergraph.t -> unit
val read_file : string -> Hypergraph.t
