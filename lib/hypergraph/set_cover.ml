module B = Ps_util.Bitset

let coverable h =
  let target = B.create (Hypergraph.n_vertices h) in
  for v = 0 to Hypergraph.n_vertices h - 1 do
    if Hypergraph.vertex_degree h v > 0 then B.add target v
  done;
  target

let covered_by h chosen =
  let set = B.create (Hypergraph.n_vertices h) in
  List.iter (fun e -> Hypergraph.iter_edge h e (B.add set)) chosen;
  set

let is_cover h chosen =
  B.subset (coverable h) (covered_by h chosen)

let verify_exn h chosen =
  let missing = coverable h in
  B.diff_into missing (covered_by h chosen);
  match B.choose_opt missing with
  | None -> ()
  | Some v ->
      invalid_arg
        (Printf.sprintf "Set_cover.verify_exn: vertex %d uncovered" v)

let greedy h =
  let target = coverable h in
  let covered = B.create (Hypergraph.n_vertices h) in
  let chosen = ref [] in
  let gain e =
    Hypergraph.fold_edge h e
      (fun acc v -> if B.mem covered v then acc else acc + 1)
      0
  in
  let remaining () =
    let rest = B.copy target in
    B.diff_into rest covered;
    B.cardinal rest
  in
  while remaining () > 0 do
    let best = ref (-1) and best_gain = ref 0 in
    for e = 0 to Hypergraph.n_edges h - 1 do
      let g = gain e in
      if g > !best_gain then begin
        best := e;
        best_gain := g
      end
    done;
    (* gain >= 1 exists while a positive-degree vertex is uncovered *)
    chosen := !best :: !chosen;
    Hypergraph.iter_edge h !best (B.add covered)
  done;
  List.rev !chosen

exception Budget_exhausted

let minimum_within ~budget h =
  if budget < 1 then invalid_arg "Set_cover.minimum_within";
  let target = coverable h in
  let m = Hypergraph.n_edges h in
  let best = ref None and best_size = ref (m + 1) in
  let nodes = ref 0 in
  let rec branch chosen n_chosen covered =
    incr nodes;
    if !nodes > budget then raise Budget_exhausted;
    if n_chosen >= !best_size then ()
    else begin
      let missing = B.copy target in
      B.diff_into missing covered;
      match B.choose_opt missing with
      | None ->
          best := Some chosen;
          best_size := n_chosen
      | Some v ->
          (* Any cover includes an edge through v. *)
          List.iter
            (fun e ->
              let covered' = B.copy covered in
              Hypergraph.iter_edge h e (B.add covered');
              branch (e :: chosen) (n_chosen + 1) covered')
            (Hypergraph.incident_edges h v)
    end
  in
  match branch [] 0 (B.create (Hypergraph.n_vertices h)) with
  | () -> Option.map (List.sort Int.compare) !best
  | exception Budget_exhausted -> None

let cover_number_within ~budget h =
  Option.map List.length (minimum_within ~budget h)
