module Rng = Ps_util.Rng

let random_subset rng n k =
  Array.to_list (Rng.sample_without_replacement rng k n)

let uniform_random rng ~n ~m ~k =
  if k < 1 || k > n then invalid_arg "Hgen.uniform_random: bad k";
  if m < 0 then invalid_arg "Hgen.uniform_random: bad m";
  Hypergraph.of_edges n (List.init m (fun _ -> random_subset rng n k))

let almost_uniform_random rng ~n ~m ~k ~eps =
  if k < 1 || k > n then invalid_arg "Hgen.almost_uniform_random: bad k";
  if eps < 0.0 then invalid_arg "Hgen.almost_uniform_random: bad eps";
  let hi = min n (int_of_float (Float.floor (float_of_int k *. (1.0 +. eps)))) in
  Hypergraph.of_edges n
    (List.init m (fun _ ->
         let size = Rng.int_in rng k hi in
         random_subset rng n size))

let interval ~n ranges =
  let edge (a, b) =
    if a < 0 || b >= n || a > b then invalid_arg "Hgen.interval: bad range";
    List.init (b - a + 1) (fun i -> a + i)
  in
  Hypergraph.of_edges n (List.map edge ranges)

let random_intervals rng ~n ~m ~min_len ~max_len =
  if min_len < 1 || max_len < min_len || min_len > n then
    invalid_arg "Hgen.random_intervals: bad lengths";
  let ranges =
    List.init m (fun _ ->
        let len = min n (Rng.int_in rng min_len max_len) in
        let a = Rng.int rng (n - len + 1) in
        (a, a + len - 1))
  in
  interval ~n ranges

let all_intervals_of_length ~n ~len =
  if len < 1 || len > n then invalid_arg "Hgen.all_intervals_of_length";
  interval ~n (List.init (n - len + 1) (fun a -> (a, a + len - 1)))

let all_intervals ~n =
  if n < 1 then invalid_arg "Hgen.all_intervals";
  let ranges = ref [] in
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      ranges := (a, b) :: !ranges
    done
  done;
  interval ~n !ranges

let closed_neighborhoods g =
  let module G = Ps_graph.Graph in
  let n = G.n_vertices g in
  Hypergraph.of_edges n
    (List.init n (fun v -> v :: Array.to_list (G.neighbors g v)))

let from_graph g =
  let module G = Ps_graph.Graph in
  Hypergraph.of_edges (G.n_vertices g)
    (List.map (fun (u, v) -> [ u; v ]) (G.edges g))

let sunflower ~n_petals ~core ~petal =
  if n_petals < 1 || core < 0 || petal < 0 || core + petal < 1 then
    invalid_arg "Hgen.sunflower";
  let n = core + (n_petals * petal) in
  let core_vertices = List.init core (fun i -> i) in
  let edges =
    List.init n_petals (fun p ->
        core_vertices
        @ List.init petal (fun i -> core + (p * petal) + i))
  in
  Hypergraph.of_edges (max n 1) edges

let disjoint_blocks ~blocks ~size =
  if blocks < 0 || size < 1 then invalid_arg "Hgen.disjoint_blocks";
  Hypergraph.of_edges
    (max (blocks * size) 1)
    (List.init blocks (fun b -> List.init size (fun i -> (b * size) + i)))
