(** Derived graphs of a hypergraph.

    The conflict graph [G_k] of the paper is simulated in the LOCAL model
    on top of the hypergraph's communication structure; the {!primal}
    graph (vertices adjacent when they share an edge) is exactly that
    structure, and the {!incidence} graph is the standard bipartite
    encoding used when hyperedges need to act as communication relays. *)

val primal : Hypergraph.t -> Ps_graph.Graph.t
(** Vertices of [H]; [u ~ v] iff some hyperedge contains both. *)

val incidence : Hypergraph.t -> Ps_graph.Graph.t
(** Bipartite graph on [n + m] vertices: hypergraph vertex [v] is graph
    vertex [v]; hyperedge [i] is graph vertex [n + i]; adjacency is
    membership. *)

val dual : Hypergraph.t -> Hypergraph.t
(** Dual hypergraph: one vertex per edge of [H], one edge per vertex [v]
    of [H] with [deg v >= 1], containing the indices of edges through
    [v]. Isolated vertices of [H] contribute nothing. *)

val line_graph : Hypergraph.t -> Ps_graph.Graph.t
(** One vertex per hyperedge; adjacent iff the hyperedges intersect. *)
