(** Conflict-free colorings of hypergraphs.

    A (partial) vertex coloring [f : V → {1..k} ∪ {⊥}] makes hyperedge [e]
    {e happy} when some [v ∈ e] carries a color no other vertex of [e]
    carries ([⊥] never counts).  [f] is a conflict-free coloring when
    every edge is happy.  Happiness of {e some} edges under {e partial}
    colorings is exactly the currency of Lemma 2.1, so the predicate is
    exposed directly.

    Representation: an int array over the hypergraph's vertices with
    {!uncolored} ([-1]) as [⊥]; real colors are nonnegative. *)

val uncolored : int

val blank : Ps_hypergraph.Hypergraph.t -> int array
(** All-[⊥] coloring. *)

val unique_color_witness :
  Ps_hypergraph.Hypergraph.t -> int array -> int -> (int * int) option
(** [unique_color_witness h f e] is [Some (v, c)] when vertex [v ∈ e] has
    color [c ≠ ⊥] unique within edge [e] (smallest such [v]); [None] when
    the edge is unhappy. *)

val happy : Ps_hypergraph.Hypergraph.t -> int array -> int -> bool

val happy_scratch : k:int -> int array
(** Zeroed color-count scratch for {!happy_fast}, sized for colorings
    that only use colors [0 .. k-1]. *)

val happy_fast :
  int array -> Ps_hypergraph.Hypergraph.t -> int array -> int -> bool
(** [happy_fast scratch h f e] — same verdict as {!happy}, but
    allocation-free: colors are counted in [scratch] (restored to
    all-zero before returning) instead of a per-call hash table.  Every
    color of [f] appearing in [e] must be below the [k] the scratch was
    created with.  This is the phase loop's inner edge scan. *)

val happy_edges : Ps_hypergraph.Hypergraph.t -> int array -> int list
val count_happy : Ps_hypergraph.Hypergraph.t -> int array -> int

val is_conflict_free : Ps_hypergraph.Hypergraph.t -> int array -> bool
(** Every edge happy. Vertices may stay uncolored as long as edges are
    happy. *)

val num_colors : int array -> int
(** Distinct non-[⊥] colors used. *)

val max_color : int array -> int
(** Largest color used, or [-1]. *)

val verify_exn : Ps_hypergraph.Hypergraph.t -> int array -> unit
(** Raises [Invalid_argument] naming the first unhappy edge when the
    coloring is not conflict-free, or on length/range errors. *)
