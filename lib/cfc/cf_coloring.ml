module H = Ps_hypergraph.Hypergraph

let uncolored = -1

let blank h = Array.make (H.n_vertices h) uncolored

let check h f =
  if Array.length f <> H.n_vertices h then
    invalid_arg "Cf_coloring: coloring length mismatch";
  Array.iter
    (fun c -> if c < uncolored then invalid_arg "Cf_coloring: bad color")
    f

let unique_color_witness h f e =
  check h f;
  (* Count occurrences of each color inside the edge, then return the
     smallest vertex whose color occurs once. *)
  let counts = Hashtbl.create 8 in
  H.iter_edge h e (fun v ->
      if f.(v) <> uncolored then
        Hashtbl.replace counts f.(v)
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts f.(v))));
  let witness = ref None in
  H.iter_edge h e (fun v ->
      if Option.is_none !witness && f.(v) <> uncolored
         && Hashtbl.find counts f.(v) = 1
      then witness := Some (v, f.(v)));
  !witness

let happy h f e = Option.is_some (unique_color_witness h f e)

(* Allocation-free happiness test for the phase loop's inner scan.  The
   Hashtbl-per-edge cost of [unique_color_witness] is fine for audits but
   dominates when every phase re-checks every surviving edge; this
   variant counts colors in a caller-owned scratch array instead (three
   O(|e|) walks, the last restoring the scratch to all-zero). *)
let happy_scratch ~k = Array.make (max k 1) 0

let happy_fast cnt h f e =
  let witness = ref false in
  H.iter_edge h e (fun v ->
      let c = f.(v) in
      if c <> uncolored then cnt.(c) <- cnt.(c) + 1);
  H.iter_edge h e (fun v ->
      let c = f.(v) in
      if c <> uncolored && cnt.(c) = 1 then witness := true);
  H.iter_edge h e (fun v ->
      let c = f.(v) in
      if c <> uncolored then cnt.(c) <- 0);
  !witness

let happy_edges h f =
  List.filter (happy h f) (List.init (H.n_edges h) (fun i -> i))

let count_happy h f = List.length (happy_edges h f)

let is_conflict_free h f = count_happy h f = H.n_edges h

let num_colors f =
  let seen = Hashtbl.create 16 in
  Array.iter (fun c -> if c <> uncolored then Hashtbl.replace seen c ()) f;
  Hashtbl.length seen

let max_color f = Array.fold_left max uncolored f

let verify_exn h f =
  check h f;
  for e = 0 to H.n_edges h - 1 do
    if not (happy h f e) then
      invalid_arg
        (Printf.sprintf "Cf_coloring.verify_exn: edge %d is unhappy" e)
  done
