(** Exact conflict-free chromatic numbers by exhaustive search.

    Ground truth for tests and benchmark tables on tiny hypergraphs: the
    smallest [k] such that a conflict-free coloring with colors
    [{0..k-1}] exists (vertices may stay uncolored — the standard
    "partial CF coloring" convention, which never needs more colors than
    the total one).  Exponential: intended for [n ≲ 15]. *)

val is_colorable : Ps_hypergraph.Hypergraph.t -> int -> int array option
(** [is_colorable h k] is [Some f] — a conflict-free coloring using colors
    [< k] — or [None] when none exists. [k = 0] succeeds only on edgeless
    hypergraphs. *)

val cf_number : Ps_hypergraph.Hypergraph.t -> int
(** Smallest such [k]; at most [n] always suffices (color every vertex
    distinctly). *)
