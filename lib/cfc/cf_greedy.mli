(** Direct conflict-free coloring algorithms.

    Two purposes: they witness that the generated workloads admit CF
    k-colorings with small k (the premise "fix this k" in the proof of
    Theorem 1.1), and they provide the honest baselines the reduction is
    compared against in the benchmark tables. *)

val ruler : Ps_hypergraph.Hypergraph.t -> int array
(** The classic coloring for {e interval} hypergraphs: vertex [i] (a point
    on the line) gets color = the exponent of 2 in [i+1] (the "ruler
    sequence").  Any set of consecutive integers contains a unique maximal
    ruler value, so every interval edge is happy, with
    [⌊log2 n⌋ + 1] colors.  Correct for every hypergraph whose edges are
    intervals of consecutive vertices; other edges may end up unhappy
    (verify before trusting). *)

val conservative : Ps_hypergraph.Hypergraph.t -> int array
(** General-purpose greedy: while some edge is unhappy, take one of its
    vertices (preferring uncolored ones) and give it the smallest color
    held by {e no} other vertex sharing an edge with it.  Such a vertex
    becomes a unique witness for every edge through it, so each step
    permanently fixes at least one edge and breaks none — at most [m]
    steps, always ending conflict-free, with at most
    [Δ(primal graph) + 1] colors.  A partial-coloring refinement of
    "properly color the primal graph", used as the honest direct
    baseline against the reduction. *)

val ruler_color_count : int -> int
(** [⌊log2 n⌋ + 1] for [n >= 1] — the palette {!ruler} draws from. *)
