module H = Ps_hypergraph.Hypergraph

type t = int list array

let blank h = Array.make (H.n_vertices h) []

let of_single f =
  Array.map (fun c -> if c = Cf_coloring.uncolored then [] else [ c ]) f

let add_color f v c =
  if c < 0 then invalid_arg "Multicolor.add_color: negative color";
  if not (List.exists (Int.equal c) f.(v)) then
    f.(v) <- List.sort Int.compare (c :: f.(v))

let colors_of f v = f.(v)

let unique_witness h f e =
  let counts = Hashtbl.create 8 in
  H.iter_edge h e (fun v ->
      List.iter
        (fun c ->
          Hashtbl.replace counts c
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
        f.(v));
  let witness = ref None in
  H.iter_edge h e (fun v ->
      if Option.is_none !witness then
        List.iter
          (fun c ->
            if Option.is_none !witness && Hashtbl.find counts c = 1 then
              witness := Some (v, c))
          f.(v));
  !witness

let happy h f e = Option.is_some (unique_witness h f e)

let count_happy h f =
  let acc = ref 0 in
  for e = 0 to H.n_edges h - 1 do
    if happy h f e then incr acc
  done;
  !acc

let is_conflict_free h f = count_happy h f = H.n_edges h

let total_colors f =
  let seen = Hashtbl.create 16 in
  Array.iter (List.iter (fun c -> Hashtbl.replace seen c ())) f;
  Hashtbl.length seen

let max_colors_per_vertex f =
  Array.fold_left (fun acc cs -> max acc (List.length cs)) 0 f

let verify_exn h f =
  if Array.length f <> H.n_vertices h then
    invalid_arg "Multicolor.verify_exn: length mismatch";
  for e = 0 to H.n_edges h - 1 do
    if not (happy h f e) then
      invalid_arg
        (Printf.sprintf "Multicolor.verify_exn: edge %d is unhappy" e)
  done

let compact f =
  let used = Hashtbl.create 16 in
  Array.iter (List.iter (fun c -> Hashtbl.replace used c ())) f;
  let sorted =
    List.sort Int.compare (Hashtbl.fold (fun c () l -> c :: l) used [])
  in
  let renumber = Hashtbl.create 16 in
  List.iteri (fun i c -> Hashtbl.add renumber c i) sorted;
  ( Array.map (List.map (Hashtbl.find renumber)) f,
    List.length sorted )

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Multicolor.merge: length mismatch";
  Array.init (Array.length a) (fun v ->
      List.sort_uniq Int.compare (a.(v) @ b.(v)))
