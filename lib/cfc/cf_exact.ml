module H = Ps_hypergraph.Hypergraph

let is_colorable h k =
  if k < 0 then invalid_arg "Cf_exact.is_colorable";
  let n = H.n_vertices h in
  let f = Cf_coloring.blank h in
  (* Edges checkable once their largest vertex is assigned. *)
  let completed_at = Array.make n [] in
  for e = 0 to H.n_edges h - 1 do
    let members = H.edge h e in
    let last = members.(Array.length members - 1) in
    completed_at.(last) <- e :: completed_at.(last)
  done;
  let exception Found in
  let rec assign v =
    if v = n then raise Found
    else
      (* ⊥ first biases the search toward sparse colorings. *)
      let candidates = Cf_coloring.uncolored :: List.init k (fun c -> c) in
      List.iter
        (fun c ->
          f.(v) <- c;
          if List.for_all (Cf_coloring.happy h f) completed_at.(v) then
            assign (v + 1))
        candidates;
      f.(v) <- Cf_coloring.uncolored
  in
  match assign 0 with
  | () -> None
  | exception Found -> Some (Array.copy f)

let cf_number h =
  let rec search k =
    match is_colorable h k with
    | Some _ -> k
    | None -> search (k + 1)
  in
  search 0
