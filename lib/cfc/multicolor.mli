(** Conflict-free {e multi}colorings — the source problem of the paper's
    reduction (Theorem 1.2).

    Each vertex carries a {e set} of colors; edge [e] is happy when some
    vertex [v ∈ e] has a color [c] that no {e other} vertex of [e] carries
    (if [v] itself holds further colors that is fine — uniqueness is of
    the (vertex, color) pair within the edge).  The reduction produces
    exactly this object: one phase-[i] palette contributes at most one
    color per vertex, and the union over phases is the multicoloring.

    Representation: a [Ps_util.Bitset.t]-free sorted [int list] per
    vertex, kept small because the reduction uses [k·ρ = polylog]
    colors. *)

type t = int list array
(** Index by vertex; each list sorted, distinct, colors nonnegative. *)

val blank : Ps_hypergraph.Hypergraph.t -> t

val of_single : int array -> t
(** Lift a partial single coloring ([-1] = no color). *)

val add_color : t -> int -> int -> unit
(** [add_color f v c] inserts color [c] into vertex [v]'s set. *)

val colors_of : t -> int -> int list

val happy : Ps_hypergraph.Hypergraph.t -> t -> int -> bool

val unique_witness :
  Ps_hypergraph.Hypergraph.t -> t -> int -> (int * int) option
(** [(vertex, color)] pair unique within the edge, smallest vertex first. *)

val count_happy : Ps_hypergraph.Hypergraph.t -> t -> int
val is_conflict_free : Ps_hypergraph.Hypergraph.t -> t -> bool

val total_colors : t -> int
(** Number of distinct colors used across all vertices. *)

val max_colors_per_vertex : t -> int

val verify_exn : Ps_hypergraph.Hypergraph.t -> t -> unit
(** Raises [Invalid_argument] naming the first unhappy edge. *)

val merge : t -> t -> t
(** Union of color sets, vertexwise (same length required). *)

val compact : t -> t * int
(** Renumber the colors actually used onto [0 .. c-1] (order-preserving)
    and return the compacted multicoloring with [c].  Happiness is
    invariant under injective recoloring, so a conflict-free input stays
    conflict-free — handy for presenting reduction output, whose phase
    palettes leave gaps. *)
