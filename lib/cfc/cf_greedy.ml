module H = Ps_hypergraph.Hypergraph

let ruler_color_count n =
  if n < 1 then invalid_arg "Cf_greedy.ruler_color_count";
  let rec log2 acc p = if 2 * p > n then acc else log2 (acc + 1) (2 * p) in
  log2 0 1 + 1

let ruler h =
  let exponent_of_two i =
    let rec go acc i = if i land 1 = 1 then acc else go (acc + 1) (i lsr 1) in
    go 0 i
  in
  Array.init (H.n_vertices h) (fun v -> exponent_of_two (v + 1))

let conservative h =
  let f = Cf_coloring.blank h in
  (* Coloring a vertex with a color held by none of its primal-graph
     neighbors makes every edge through it happy (the vertex is then a
     unique witness everywhere) and can break nothing, so each step
     permanently fixes at least one unhappy edge. *)
  let color_distinctly v =
    let blocked = Hashtbl.create 8 in
    List.iter
      (fun e ->
        H.iter_edge h e (fun u ->
            if u <> v && f.(u) <> Cf_coloring.uncolored then
              Hashtbl.replace blocked f.(u) ()))
      (H.incident_edges h v);
    let rec first c = if Hashtbl.mem blocked c then first (c + 1) else c in
    f.(v) <- first 0
  in
  let rec fix_all () =
    let unhappy =
      List.find_opt
        (fun e -> not (Cf_coloring.happy h f e))
        (List.init (H.n_edges h) (fun i -> i))
    in
    match unhappy with
    | None -> ()
    | Some e ->
        (* Prefer an uncolored vertex; otherwise recolor the smallest. *)
        let members = H.edge h e in
        let target =
          match
            Array.find_opt (fun v -> f.(v) = Cf_coloring.uncolored) members
          with
          | Some v -> v
          | None -> members.(0)
        in
        color_distinctly target;
        fix_all ()
  in
  fix_all ();
  f
