module G = Ps_graph.Graph
module B = Ps_util.Bitset
module Rng = Ps_util.Rng

(* As in [Greedy.with_layout]: solve on the degree-sorted relabeling,
   map the set back.  The permutation is drawn over the relabeled ids,
   so a fixed seed yields a different (equally distributed) sample per
   layout. *)
let with_layout layout g solve =
  match layout with
  | `Natural -> solve g
  | `Degree_sorted ->
      let g', perm = G.degree_sorted g in
      let s = solve g' in
      let out = B.create (G.n_vertices g) in
      B.iter (fun i -> B.add out perm.(i)) s;
      out

let run ?(layout = `Natural) rng g =
  with_layout layout g (fun g ->
      let n = G.n_vertices g in
      let position = Array.make n 0 in
      Array.iteri (fun pos v -> position.(v) <- pos) (Rng.permutation rng n);
      let chosen = B.create n in
      for v = 0 to n - 1 do
        if not (G.exists_neighbor g v (fun u -> position.(u) < position.(v)))
        then B.add chosen v
      done;
      chosen)

let run_maximal ?(layout = `Natural) rng g =
  with_layout layout g (fun g ->
      Greedy.in_order g (Rng.permutation rng (G.n_vertices g)))

let best_of ?layout rng t g =
  if t < 1 then invalid_arg "Caro_wei.best_of: need t >= 1";
  let best = ref (run_maximal ?layout rng g) in
  for _ = 2 to t do
    let candidate = run_maximal ?layout rng g in
    if B.cardinal candidate > B.cardinal !best then best := candidate
  done;
  !best

let expected_size_bound g =
  let acc = ref 0.0 in
  for v = 0 to G.n_vertices g - 1 do
    acc := !acc +. (1.0 /. float_of_int (G.degree g v + 1))
  done;
  !acc
