type solver = {
  name : string;
  solve : Ps_util.Rng.t -> Ps_graph.Graph.t -> Independent_set.t;
}

let greedy_min_degree =
  { name = "greedy-min-degree"; solve = (fun _rng g -> Greedy.min_degree g) }

let greedy_adversarial =
  { name = "greedy-max-degree";
    solve = (fun _rng g -> Greedy.max_degree_adversary g) }

let caro_wei = { name = "caro-wei"; solve = Caro_wei.run_maximal }

let caro_wei_boosted t =
  { name = Printf.sprintf "caro-wei-x%d" t;
    solve = (fun rng g -> Caro_wei.best_of rng t g) }

let exact = { name = "exact-bnb"; solve = (fun _rng g -> Exact.maximum g) }

let all_heuristics =
  [ greedy_min_degree; greedy_adversarial; caro_wei; caro_wei_boosted 8 ]

let degrade ~keep solver =
  if keep <= 0.0 || keep > 1.0 then invalid_arg "Approx.degrade";
  { name = Printf.sprintf "%s@%.0f%%" solver.name (100.0 *. keep);
    solve =
      (fun rng g ->
        let full = solver.solve rng g in
        let members = Independent_set.to_list full in
        let kept =
          List.filter (fun _ -> Ps_util.Rng.bernoulli rng keep) members
        in
        let kept =
          match (kept, members) with
          | [], v :: _ -> [ v ] (* never hand back an empty set *)
          | kept, _ -> kept
        in
        Independent_set.of_list g kept) }

let solve_verified solver rng g =
  let is = solver.solve rng g in
  Independent_set.verify_exn g is;
  is

type measurement = {
  solver_name : string;
  is_size : int;
  alpha_ref : int;
  alpha_exact : bool;
  lambda : float;
}

let measure ?(exact_budget = 200_000) solver rng g =
  let is = solve_verified solver rng g in
  let is_size = Independent_set.size is in
  let alpha_ref, alpha_exact =
    match Exact.maximum_within ~budget:exact_budget g with
    | Some opt -> (Independent_set.size opt, true)
    | None -> (snd (Bounds.sandwich g), false)
  in
  let lambda =
    if is_size = 0 then if alpha_ref = 0 then 1.0 else infinity
    else float_of_int alpha_ref /. float_of_int is_size
  in
  { solver_name = solver.name; is_size; alpha_ref; alpha_exact; lambda }
