(** Independent sets of a graph.

    An independent set is represented as a {!Ps_util.Bitset.t} over the
    graph's vertices.  A {e maximum} independent set (MaxIS) is one of
    largest cardinality; its size is the independence number α(G).  A
    λ-approximation is an independent set of size at least α(G)/λ — the
    object Theorem 1.1 proves P-SLOCAL-complete to compute for
    λ = polylog n. *)

type t = Ps_util.Bitset.t

val empty : Ps_graph.Graph.t -> t

val of_list : Ps_graph.Graph.t -> int list -> t

val of_indicator : bool array -> t

val to_list : t -> int list

val size : t -> int

val is_independent : Ps_graph.Graph.t -> t -> bool
(** No edge inside the set. *)

val is_maximal : Ps_graph.Graph.t -> t -> bool
(** Independent, and every vertex outside has a neighbor inside. *)

val verify_exn : Ps_graph.Graph.t -> t -> unit
(** Raises [Invalid_argument] when the set is not independent — the guard
    every pipeline stage runs before trusting a solver's output. *)

val make_maximal : Ps_graph.Graph.t -> t -> t
(** Greedily extend an independent set to a maximal one (fresh set). *)

val approximation_ratio : alpha:int -> t -> float
(** [alpha /. size]; the λ achieved against a known independence number.
    Raises if the set is empty while [alpha > 0]. *)
