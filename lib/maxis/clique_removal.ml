module G = Ps_graph.Graph
module B = Ps_util.Bitset

(* One Ramsey pass over the live set [s]: walk the non-neighbor spine
   iteratively (pivot, shrink to the non-neighbors, repeat), then fold
   back deepest-first, recursing only into the neighbor subsets.  That
   keeps the stack bounded by the nesting of neighborhood subproblems
   (clique-number-ish) instead of the spine length, which on sparse
   graphs is nearly |s|.  Returns a (clique, independent set) pair; the
   shared [budget] counts pivot expansions, and an exhausted budget
   returns the trivial pair for whatever is left unexplored — both sides
   stay valid, just smaller. *)
let rec ramsey g budget cancel s =
  let n = G.n_vertices g in
  let frames = ref [] in
  let cur = ref s in
  let walking = ref true in
  while !walking do
    match B.choose_opt !cur with
    | None -> walking := false
    | Some v ->
        if !budget <= 0 || cancel () then walking := false
        else begin
          decr budget;
          let nb = B.create n in
          let live = !cur in
          G.iter_neighbors g v (fun x -> if B.mem live x then B.add nb x);
          let rest = B.copy live in
          B.remove rest v;
          B.diff_into rest nb;
          frames := (v, nb) :: !frames;
          cur := rest
        end
  done;
  List.fold_left
    (fun (c2, i2) (v, nb) ->
      let c1, i1 = ramsey g budget cancel nb in
      (* c1 ⊆ nb ⊆ N(v), so v extends it; v is non-adjacent to the
         whole non-neighbor rest, so it extends i2. *)
      B.add c1 v;
      B.add i2 v;
      let c = if B.cardinal c1 >= B.cardinal c2 then c1 else c2 in
      let i = if B.cardinal i1 > B.cardinal i2 then i1 else i2 in
      (c, i))
    (B.create n, B.create n)
    !frames

let default_budget n = (64 * n) + 256

let run ?(cancel = fun () -> false) ?budget _rng g =
  let n = G.n_vertices g in
  let budget = ref (match budget with Some b -> b | None -> default_budget n) in
  let active = B.create n in
  B.fill active;
  let best = ref (B.create n) in
  let rounds = ref 0 in
  (try
     while (not (B.is_empty active)) && not (cancel ()) do
       let c, i = ramsey g budget cancel active in
       incr rounds;
       if B.cardinal i > B.cardinal !best then best := i;
       if B.is_empty c then raise Exit (* budget dry: nothing removed *)
       else B.diff_into active c
     done
   with Exit -> ());
  Independent_set.make_maximal g !best

let solver =
  { Approx.name = "clique-removal"; solve = (fun rng g -> run rng g) }
