(** The λ-approximation interface the reduction consumes.

    Theorem 1.1's reduction is parametric in "an algorithm computing
    λ-approximations for MaxIS".  A {!solver} packages a solving function
    with its name; {!measure} computes the λ a solver actually achieved
    on an instance against a reference α (exact when affordable, else a
    certified upper bound — in which case the reported λ is itself an
    upper bound on the true one). *)

type solver = {
  name : string;
  solve : Ps_util.Rng.t -> Ps_graph.Graph.t -> Independent_set.t;
}

val greedy_min_degree : solver
val greedy_adversarial : solver
(** Max-degree anti-greedy — the weak baseline. *)

val caro_wei : solver
val caro_wei_boosted : int -> solver
(** Best of [t] Caro–Wei runs. *)

val exact : solver
(** Branch-and-bound; only for small instances. *)

val all_heuristics : solver list
(** Every polynomial-time solver above (no {!exact}). *)

val degrade : keep:float -> solver -> solver
(** [degrade ~keep s] keeps each vertex of [s]'s output independently
    with probability [keep] (but never returns an empty set when the
    input set was non-empty).  The result is still independent — a
    subset of an independent set — just deliberately far from maximum:
    the knob experiments turn to sweep the reduction's λ and watch the
    phase count track [ρ = λ·ln m + 1].  Requires [0 < keep <= 1]. *)

val solve_verified :
  solver -> Ps_util.Rng.t -> Ps_graph.Graph.t -> Independent_set.t
(** Run the solver and {!Independent_set.verify_exn} its output. *)

type measurement = {
  solver_name : string;
  is_size : int;
  alpha_ref : int;     (** exact α, or a certified upper bound *)
  alpha_exact : bool;  (** whether [alpha_ref] is exact *)
  lambda : float;      (** [alpha_ref / is_size]; ≥ true λ when not exact *)
}

val measure :
  ?exact_budget:int ->
  solver ->
  Ps_util.Rng.t ->
  Ps_graph.Graph.t ->
  measurement
(** [exact_budget] (default 200_000 search nodes) caps the exact solver;
    beyond it the clique-cover/matching upper bound stands in for α. *)
