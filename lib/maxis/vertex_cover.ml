module G = Ps_graph.Graph
module B = Ps_util.Bitset

let is_cover g set =
  B.capacity set = G.n_vertices g
  &&
  let ok = ref true in
  G.iter_edges g (fun u v -> if not (B.mem set u || B.mem set v) then ok := false);
  !ok

let verify_exn g set =
  G.iter_edges g (fun u v ->
      if not (B.mem set u || B.mem set v) then
        invalid_arg
          (Printf.sprintf "Vertex_cover.verify_exn: edge (%d,%d) uncovered" u
             v))

let complement g set =
  let out = B.create (G.n_vertices g) in
  B.fill out;
  B.diff_into out set;
  out

let of_independent_set g is =
  Independent_set.verify_exn g is;
  complement g is

let to_independent_set g cover =
  verify_exn g cover;
  let is = complement g cover in
  Independent_set.verify_exn g is;
  is

let of_matching g partner =
  Ps_graph.Matching.verify_exn g partner;
  let cover = B.create (G.n_vertices g) in
  List.iter (B.add cover) (Ps_graph.Matching.matched_vertices partner);
  cover

let minimum_size_within ~budget g =
  Option.map
    (fun opt -> G.n_vertices g - Independent_set.size opt)
    (Exact.maximum_within ~budget g)
