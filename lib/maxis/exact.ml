module G = Ps_graph.Graph
module B = Ps_util.Bitset

exception Budget_exhausted

type searcher = {
  adj : B.t array;          (* adjacency masks *)
  mutable best : int list;  (* best solution found so far *)
  mutable best_size : int;
  mutable nodes : int;      (* expanded search nodes *)
  budget : int;             (* max_int = unlimited *)
}

let residual_degree s p v =
  let inter = B.copy s.adj.(v) in
  B.inter_into inter p;
  B.cardinal inter

(* Upper bound on α within [p]: size of a greedy clique cover — every
   clique contributes at most one vertex to any independent set. *)
let clique_cover_bound s p =
  let cliques = ref [] in
  B.iter
    (fun v ->
      (* Place v into the first clique it is fully adjacent to. *)
      let rec place = function
        | [] -> cliques := B.of_list (B.capacity p) [ v ] :: !cliques
        | members :: rest ->
            if B.subset members s.adj.(v) then B.add members v
            else place rest
      in
      place !cliques)
    p;
  List.length !cliques

let rec branch s p chosen n_chosen =
  s.nodes <- s.nodes + 1;
  if s.nodes > s.budget then raise Budget_exhausted;
  (* Reduction: vertices of residual degree 0 or 1 can be taken greedily
     (degree-1: swapping the neighbor for the vertex never loses). *)
  let p = B.copy p in
  let chosen = ref chosen and n_chosen = ref n_chosen in
  let reduced = ref true in
  while !reduced do
    reduced := false;
    let low = ref None in
    B.iter
      (fun v ->
        if Option.is_none !low && residual_degree s p v <= 1 then low := Some v)
      p;
    match !low with
    | None -> ()
    | Some v ->
        reduced := true;
        chosen := v :: !chosen;
        incr n_chosen;
        B.remove p v;
        B.diff_into p s.adj.(v)
  done;
  let chosen = !chosen and n_chosen = !n_chosen in
  if n_chosen > s.best_size then begin
    s.best <- chosen;
    s.best_size <- n_chosen
  end;
  if not (B.is_empty p) then begin
    if n_chosen + clique_cover_bound s p > s.best_size then begin
      (* Branch on a maximum-residual-degree vertex. *)
      let v = ref (-1) and vd = ref (-1) in
      B.iter
        (fun u ->
          let d = residual_degree s p u in
          if d > !vd then begin
            v := u;
            vd := d
          end)
        p;
      let v = !v in
      (* Include v. *)
      let p_in = B.copy p in
      B.remove p_in v;
      B.diff_into p_in s.adj.(v);
      branch s p_in (v :: chosen) (n_chosen + 1);
      (* Exclude v. *)
      let p_out = B.copy p in
      B.remove p_out v;
      branch s p_out chosen n_chosen
    end
  end

let search budget g =
  let n = G.n_vertices g in
  let adj =
    Array.init n (fun v ->
        let mask = B.create n in
        G.iter_neighbors g v (B.add mask);
        mask)
  in
  let s = { adj; best = []; best_size = 0; nodes = 0; budget } in
  let p = B.create n in
  B.fill p;
  branch s p [] 0;
  Independent_set.of_list g s.best

let maximum g = search max_int g

let independence_number g = Independent_set.size (maximum g)

let maximum_within ~budget g =
  if budget < 1 then invalid_arg "Exact.maximum_within";
  match search budget g with
  | is -> Some is
  | exception Budget_exhausted -> None
