(** Certified bounds on the independence number α(G).

    Upper bounds let experiments report approximation ratios even where
    exact α is out of reach; lower bounds certify solver output.  For any
    graph: [caro_wei_lower <= α <= clique_cover_upper <= n]. *)

val clique_cover_upper : Ps_graph.Graph.t -> int
(** Size of a greedy clique cover: partition the vertices into cliques
    (first-fit over increasing index); any independent set meets each
    clique at most once, so the cover size bounds α from above. *)

val greedy_coloring_upper : Ps_graph.Graph.t -> int
(** χ(complement)-style bound computed as a greedy coloring of the
    complement graph — equals a clique cover of [g]; quadratic, for small
    graphs. *)

val caro_wei_lower : Ps_graph.Graph.t -> float
(** [Σ_v 1/(deg v + 1)] — some independent set is at least this big. *)

val trivial_upper : Ps_graph.Graph.t -> int
(** [n] minus a crude matching bound: each matching edge kills one vertex,
    so [α <= n - maximal_matching_size]. *)

val sandwich : Ps_graph.Graph.t -> float * int
(** [(lower, upper)] combining the above: best lower and best upper. *)
