(** Exact maximum independent set by branch and bound.

    Exponential in the worst case — meant for the experiment harness,
    which needs true independence numbers α(G) on small instances to
    measure the approximation ratios the reduction's guarantee depends
    on.  Practical to a few hundred vertices on sparse graphs and ~60–80
    on dense conflict graphs.

    The search uses the classic ingredients: degree-0/1 reduction rules
    (both are always safe for MaxIS by an exchange argument), a greedy
    clique-cover upper bound for pruning, and branching on a maximum-
    residual-degree vertex. *)

val maximum : Ps_graph.Graph.t -> Independent_set.t
(** A maximum independent set (deterministic tie-breaking). *)

val independence_number : Ps_graph.Graph.t -> int
(** α(G). *)

val maximum_within : budget:int -> Ps_graph.Graph.t -> Independent_set.t option
(** Like {!maximum} but gives up after expanding [budget] search nodes —
    [None] signals the instance was too hard, so callers can skip rather
    than hang. *)
