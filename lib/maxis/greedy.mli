(** Greedy independent-set heuristics.

    Minimum-degree greedy repeatedly takes a vertex of smallest residual
    degree and deletes its closed neighborhood.  It guarantees
    [|IS| >= n / (Δ+1)] (indeed the Turán-type bound [Σ 1/(d(v)+1)]), so
    against the trivial [α <= n] it is a (Δ+1)-approximation — on the
    conflict graphs of the reduction this is far better than it sounds,
    because their independence number is exactly the number of happy-able
    hyperedges. *)

val min_degree :
  ?layout:[ `Natural | `Degree_sorted ] -> Ps_graph.Graph.t ->
  Independent_set.t
(** Deterministic: ties broken toward smaller vertex index.
    [~layout:`Degree_sorted] runs on the degree-sorted relabeling
    ({!Ps_graph.Graph.degree_sorted} — the hot high-degree rows packed
    into one cache block) and maps the set back; the result is a valid
    maximal independent set but may differ from the natural-layout one,
    because tie-breaking follows the relabeled order. *)

val in_order : Ps_graph.Graph.t -> int array -> Independent_set.t
(** First-fit greedy along a given vertex order: take each vertex whose
    neighborhood is still untouched.  [in_order g (random permutation)] is
    the Caro–Wei sampler. *)

val max_degree_adversary :
  ?layout:[ `Natural | `Degree_sorted ] -> Ps_graph.Graph.t ->
  Independent_set.t
(** Anti-greedy (repeatedly take a {e maximum}-degree vertex): a
    deliberately bad but still maximal baseline for the benchmark tables.
    [layout] as in {!min_degree}. *)
