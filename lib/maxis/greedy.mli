(** Greedy independent-set heuristics.

    Minimum-degree greedy repeatedly takes a vertex of smallest residual
    degree and deletes its closed neighborhood.  It guarantees
    [|IS| >= n / (Δ+1)] (indeed the Turán-type bound [Σ 1/(d(v)+1)]), so
    against the trivial [α <= n] it is a (Δ+1)-approximation — on the
    conflict graphs of the reduction this is far better than it sounds,
    because their independence number is exactly the number of happy-able
    hyperedges. *)

val min_degree : Ps_graph.Graph.t -> Independent_set.t
(** Deterministic: ties broken toward smaller vertex index. *)

val in_order : Ps_graph.Graph.t -> int array -> Independent_set.t
(** First-fit greedy along a given vertex order: take each vertex whose
    neighborhood is still untouched.  [in_order g (random permutation)] is
    the Caro–Wei sampler. *)

val max_degree_adversary : Ps_graph.Graph.t -> Independent_set.t
(** Anti-greedy (repeatedly take a {e maximum}-degree vertex): a
    deliberately bad but still maximal baseline for the benchmark tables. *)
