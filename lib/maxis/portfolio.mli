(** Racing solver portfolio over spare domains.

    [race] kernelizes the instance once, then runs genuinely different
    solvers on it concurrently — kernel+min-degree-greedy,
    kernel+Caro–Wei and Boppana–Halldórsson clique removal — and keeps
    the deterministic best certified answer: largest lifted set, ties
    broken by the lowest entry index.  The winner does not depend on
    domain scheduling, so portfolio runs stay single-seed reproducible
    like every other solver in the repository; the racing buys
    wall-clock, not nondeterminism.  Each entry draws from its own
    {!Ps_util.Rng.streams} child derived before any domain spawns. *)

exception Canceled
(** Raised by {!race} (and the {!solver} wrapper) when [cancel] returns
    [true] before a winner is decided.  Losing entries observe the same
    flag and stop cooperatively; {!Ps_util.Parallel.fork_join} joins
    every domain before the exception propagates, so cancellation never
    leaks a domain. *)

type outcome = {
  set : Independent_set.t;  (** winning set, on the original vertex ids *)
  winner : string;  (** name of the winning entry's solver *)
  sizes : (string * int) list;  (** lifted size per entry, entry order *)
  kernel_stats : Kernel.stats;  (** the shared kernelization's stats *)
}

val race :
  ?domains:int ->
  ?cancel:(unit -> bool) ->
  Ps_util.Rng.t ->
  Ps_graph.Graph.t ->
  outcome
(** [race rng g] runs the portfolio and returns the best entry's lifted,
    maximal independent set together with the race telemetry.  [domains]
    caps the domains used (default: one per entry, bounded by
    {!Ps_util.Parallel.available}; [domains <= 1] runs the entries
    sequentially on the calling domain).  [cancel] is polled inside every
    entry; when it trips, all entries wind down and {!Canceled} is
    raised after the join. *)

val solver : Approx.solver
(** The portfolio packaged for the solver registry, named ["portfolio"].
    {!Kernel.apply} treats it as already presolved — it kernelizes
    internally. *)
