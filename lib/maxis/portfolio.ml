module G = Ps_graph.Graph
module Rng = Ps_util.Rng
module Parallel = Ps_util.Parallel
module Tm = Ps_util.Telemetry

exception Canceled

type outcome = {
  set : Independent_set.t;
  winner : string;
  sizes : (string * int) list;
  kernel_stats : Kernel.stats;
}

(* The entries share one kernelization: reductions are exact, so every
   solver benefits, and lifting restores the original ids (and
   maximality) uniformly.  Clique removal also runs on the kernel — its
   λ profile comes from carving dense pockets whole, which survives
   kernelization untouched since the rules only fire below [rule_cap]
   degrees or on simplicial/dominated structure. *)
let race ?(domains = 0) ?(cancel = fun () -> false) rng g =
  Tm.with_span "portfolio.race" @@ fun () ->
  if Tm.enabled () then Tm.incr "portfolio.races_started";
  let r = Kernel.reduce g in
  let kg = Kernel.graph r in
  let entries =
    [| ("kernel+greedy-min-degree",
        fun rng -> Approx.greedy_min_degree.Approx.solve rng kg);
       ("kernel+caro-wei", fun rng -> Approx.caro_wei.Approx.solve rng kg);
       ("clique-removal", fun rng -> Clique_removal.run ~cancel rng kg) |]
  in
  let n_entries = Array.length entries in
  (* Children derived before any domain spawns: the race is replayable
     from the seed no matter how the domains interleave. *)
  let rngs = Rng.streams rng n_entries in
  let results = Array.make n_entries None in
  let run_entry i =
    if not (cancel ()) then begin
      let name, f = entries.(i) in
      Tm.with_span "portfolio.entry" @@ fun () ->
      if Tm.enabled () then Tm.set_str "entry" name;
      let ks = f rngs.(i) in
      Independent_set.verify_exn kg ks;
      results.(i) <- Some (Kernel.lift r ks)
    end
  in
  let d =
    if domains = 0 then min n_entries (Parallel.available ())
    else min domains n_entries
  in
  if d <= 1 then
    for i = 0 to n_entries - 1 do
      run_entry i
    done
  else
    Parallel.fork_join ~domains:d (fun di ->
        let i = ref di in
        while !i < n_entries do
          run_entry !i;
          i := !i + d
        done);
  if Array.exists Option.is_none results then begin
    if Tm.enabled () then Tm.incr "portfolio.races_canceled";
    raise Canceled
  end;
  let lifted =
    Array.mapi (fun i s -> (fst entries.(i), Option.get s)) results
  in
  let best = ref 0 in
  Array.iteri
    (fun i (_, s) ->
      if Independent_set.size s > Independent_set.size (snd lifted.(!best))
      then best := i)
    lifted;
  let winner, set = lifted.(!best) in
  if Tm.enabled () then begin
    Tm.set_str "winner" winner;
    Tm.set_int "winner_size" (Independent_set.size set)
  end;
  { set;
    winner;
    sizes =
      Array.to_list
        (Array.map (fun (n, s) -> (n, Independent_set.size s)) lifted);
    kernel_stats = Kernel.stats r }

let solver =
  { Approx.name = "portfolio"; solve = (fun rng g -> (race rng g).set) }
