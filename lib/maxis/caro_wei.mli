(** The Caro–Wei randomized independent set.

    Draw a uniform permutation π and keep every vertex that precedes all
    of its neighbors in π.  The result is independent, and linearity of
    expectation gives [E|IS| = Σ_v 1/(deg(v)+1) >= n/(Δ+1)] — the
    probabilistic proof of Turán's bound, and the one-shot core of Luby's
    algorithm. *)

val run :
  ?layout:[ `Natural | `Degree_sorted ] -> Ps_util.Rng.t ->
  Ps_graph.Graph.t -> Independent_set.t
(** One permutation; the "kept" set (not extended to maximal).
    [~layout:`Degree_sorted] samples over the degree-sorted relabeling
    ({!Ps_graph.Graph.degree_sorted}) and maps the set back — same
    distribution, better cache behavior on skewed-degree instances, but
    a fixed seed yields a different sample than the natural layout. *)

val run_maximal :
  ?layout:[ `Natural | `Degree_sorted ] -> Ps_util.Rng.t ->
  Ps_graph.Graph.t -> Independent_set.t
(** First-fit greedy along the random permutation — pointwise a superset
    of {!run}'s set for the same permutation, and always maximal.
    [layout] as in {!run}. *)

val best_of :
  ?layout:[ `Natural | `Degree_sorted ] -> Ps_util.Rng.t -> int ->
  Ps_graph.Graph.t -> Independent_set.t
(** [best_of rng t g]: largest of [t] runs of {!run_maximal}. *)

val expected_size_bound : Ps_graph.Graph.t -> float
(** The Turán-type bound [Σ_v 1/(deg(v)+1)] the construction meets in
    expectation. *)
