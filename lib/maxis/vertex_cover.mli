(** Vertex covers — the complement view of independent sets.

    [C] is a vertex cover iff [V \ C] is an independent set, so minimum
    vertex cover and maximum independent set are the same problem in
    disguise ([τ(G) = n − α(G)], Gallai).  The module exists to make that
    duality executable — and because "both endpoints of a maximal
    matching" is the classic 2-approximation, tying {!Ps_graph.Matching}
    into the MaxIS story. *)

val is_cover : Ps_graph.Graph.t -> Ps_util.Bitset.t -> bool
(** Every edge has an endpoint in the set. *)

val verify_exn : Ps_graph.Graph.t -> Ps_util.Bitset.t -> unit

val of_independent_set :
  Ps_graph.Graph.t -> Independent_set.t -> Ps_util.Bitset.t
(** The complement — a cover iff the input is independent (verified). *)

val to_independent_set :
  Ps_graph.Graph.t -> Ps_util.Bitset.t -> Independent_set.t
(** The complement — independent iff the input is a cover (verified). *)

val of_matching : Ps_graph.Graph.t -> int array -> Ps_util.Bitset.t
(** Both endpoints of a maximal matching: a vertex cover of size at most
    [2·τ(G)] (every matched edge needs a distinct cover vertex).  The
    matching is verified maximal first. *)

val minimum_size_within : budget:int -> Ps_graph.Graph.t -> int option
(** [τ(G) = n − α(G)] via the exact MaxIS solver. *)
