(** Linear-time kernelization for maximum independent set.

    [reduce] shrinks a graph with the classic exact reduction rules —
    degree-0/1, degree-2 path/cycle compression (vertex folding),
    isolated-clique (simplicial) removal and neighborhood domination —
    before any solver runs.  Rules are applied worklist-style off a
    [nodes_by_degree] bucket structure, so the whole pass is linear in
    the graph volume (plus a bounded per-vertex neighborhood scan capped
    by [rule_cap]).  Every rule is α-preserving: an undo journal records
    enough to translate {e any} independent set of the kernel back to an
    independent set of the original graph, and a final [vertex_addition]
    repair pass restores maximality on the original vertex ids.

    The pass is CSR-native and width-aware: input adjacency is read
    through the width-transparent accessors, and the kernel graph is
    built with automatic width selection, so int- and int32-backed
    inputs behave identically. *)

type stats = {
  original_vertices : int;
  original_edges : int;
  kernel_vertices : int;
  kernel_edges : int;
  isolated : int;  (** degree-0 vertices taken into the solution *)
  pendants : int;  (** degree-1 takes (vertex in, its neighbor out) *)
  folds : int;  (** degree-2 folds: path/cycle compression steps *)
  simplicial : int;
      (** isolated-clique removals at degree >= 2 (the whole closed
          neighborhood retired, the center taken) *)
  dominated : int;
      (** deletions of a vertex [u] with [N[v] ⊆ N[u]] for some
          neighbor [v] — an optimal solution never needs [u] *)
}

type t
(** A reduced instance: the kernel graph plus the undo journal that
    lifts kernel solutions back to the original graph. *)

val reduce : ?rule_cap:int -> Ps_graph.Graph.t -> t
(** [reduce g] applies the reduction rules to a fixed point (relative to
    the triggering discipline: every vertex is re-examined whenever its
    degree changes).  [rule_cap] bounds the degree up to which the
    quadratic-per-vertex simplicial/domination scan is attempted
    (default 16); vertices above the cap are still reduced once enough
    neighbors retire.  The input graph is not modified. *)

val graph : t -> Ps_graph.Graph.t
(** The kernel graph, on the compacted vertex ids [0 .. kernel_vertices - 1]. *)

val to_original : t -> int array
(** Position [i] holds the original id of kernel vertex [i]. *)

val stats : t -> stats

val shrink_ratio : stats -> float
(** [kernel_vertices / original_vertices]; 0 for an empty input. *)

val lift : t -> Ps_util.Bitset.t -> Ps_util.Bitset.t
(** [lift t s] translates an independent set [s] of the kernel graph to
    the original graph: map the kernel ids back, replay the undo journal
    in reverse (a taken vertex joins the set; a fold expands to its two
    endpoints when the merged vertex was selected, to its center
    otherwise), then run {!vertex_addition}.  The result is independent
    {e and maximal} on the original graph for any independent input —
    even a deliberately weakened kernel solution lifts to a maximal set.
    Raises [Invalid_argument] when [s] is not sized for the kernel
    graph. *)

val vertex_addition : Ps_graph.Graph.t -> Ps_util.Bitset.t -> Ps_util.Bitset.t
(** Greedy repair pass: scan all vertices once and add every vertex
    whose neighborhood is disjoint from the set.  Never removes a
    member; the result is maximal whenever the input is independent.
    The input set is not modified. *)

(** {1 Presolve combinator} *)

val presolve : Approx.solver -> Approx.solver
(** [presolve s] is the solver that kernelizes the instance, runs [s] on
    the kernel, verifies the kernel answer and lifts it.  Its name is
    ["kernel+" ^ s.name] — the prefix is the marker {!is_presolved}
    keys on, and it flows into run records and cache keys so kernel-on
    and kernel-off results never alias. *)

val is_presolved : Approx.solver -> bool
(** Whether a solver already owns its kernelization: a ["kernel+"]
    wrapped solver, or the portfolio (which kernelizes internally). *)

type choice = [ `None | `Kernel ]
(** The presolve knob threaded through the reduction pipeline. *)

val apply : choice -> Approx.solver -> Approx.solver
(** [apply `Kernel s] is [presolve s] unless [s] {!is_presolved} (the
    wrap is idempotent); [apply `None s] is [s]. *)
