module G = Ps_graph.Graph
module B = Ps_util.Bitset
module Pq = Ps_util.Pqueue

(* Shared core: repeatedly pop the extreme-degree vertex, add it to the
   set, delete its closed neighborhood, updating residual degrees. *)
let by_degree ~invert g =
  let n = G.n_vertices g in
  let queue = Pq.create n in
  let sign = if invert then -1 else 1 in
  for v = 0 to n - 1 do
    Pq.insert queue v (sign * G.degree g v)
  done;
  let alive = B.create n in
  B.fill alive;
  let chosen = B.create n in
  (* Scratch for the per-pop neighborhood sweep (at most max-degree
     entries used at a time). *)
  let removed = Array.make (max n 1) 0 in
  while not (Pq.is_empty queue) do
    let v, _ = Pq.pop_min queue in
    B.add chosen v;
    B.remove alive v;
    (* Delete N(v) in two passes: first drop every alive neighbor from
       the queue and the alive set, then propagate degree decrements
       from each.  Decrementing only after the whole neighborhood is
       dead skips the [Pq.update] sift chase for vertices this same
       sweep deletes anyway — their priorities are discarded on
       removal, so updating them first was pure overhead (dominant on
       dense rows).  Pops are ordered by (priority, key), a pure
       function of the priority map, so the chosen set is unchanged. *)
    let nr = ref 0 in
    G.iter_neighbors g v (fun u ->
        if B.mem alive u then begin
          B.remove alive u;
          Pq.remove queue u;
          removed.(!nr) <- u;
          incr nr
        end);
    for i = 0 to !nr - 1 do
      G.iter_neighbors g removed.(i) (fun w ->
          if B.mem alive w then
            Pq.update queue w (Pq.priority queue w - sign))
    done
  done;
  chosen

(* Degree-blocked layout: run the solver on the degree-sorted relabeling
   (hot high-degree rows packed together at the front of the CSR store —
   see [Graph.degree_sorted]) and map the chosen set back through the
   permutation.  The result is a valid (maximal) independent set either
   way, but NOT necessarily the same one: tie-breaking follows the
   relabeled vertex order. *)
let with_layout layout g solve =
  match layout with
  | `Natural -> solve g
  | `Degree_sorted ->
      let g', perm = G.degree_sorted g in
      let s = solve g' in
      let out = B.create (G.n_vertices g) in
      B.iter (fun i -> B.add out perm.(i)) s;
      out

let min_degree ?(layout = `Natural) g =
  with_layout layout g (by_degree ~invert:false)

let max_degree_adversary ?(layout = `Natural) g =
  with_layout layout g (by_degree ~invert:true)

let in_order g order =
  let n = G.n_vertices g in
  if Array.length order <> n then
    invalid_arg "Greedy.in_order: order length mismatch";
  let blocked = B.create n in
  let chosen = B.create n in
  Array.iter
    (fun v ->
      if not (B.mem blocked v) then begin
        B.add chosen v;
        B.add blocked v;
        G.iter_neighbors g v (fun u -> B.add blocked u)
      end)
    order;
  chosen
