module G = Ps_graph.Graph
module B = Ps_util.Bitset
module Pq = Ps_util.Pqueue

(* Shared core: repeatedly pop the extreme-degree vertex, add it to the
   set, delete its closed neighborhood, updating residual degrees. *)
let by_degree ~invert g =
  let n = G.n_vertices g in
  let queue = Pq.create n in
  let sign = if invert then -1 else 1 in
  for v = 0 to n - 1 do
    Pq.insert queue v (sign * G.degree g v)
  done;
  let alive = B.create n in
  B.fill alive;
  let chosen = B.create n in
  while not (Pq.is_empty queue) do
    let v, _ = Pq.pop_min queue in
    B.add chosen v;
    B.remove alive v;
    (* Delete N(v): each deleted neighbor decrements its own neighbors. *)
    G.iter_neighbors g v (fun u ->
        if B.mem alive u then begin
          B.remove alive u;
          Pq.remove queue u;
          G.iter_neighbors g u (fun w ->
              if B.mem alive w && w <> v then
                Pq.update queue w (Pq.priority queue w - sign))
        end)
  done;
  chosen

let min_degree g = by_degree ~invert:false g

let max_degree_adversary g = by_degree ~invert:true g

let in_order g order =
  let n = G.n_vertices g in
  if Array.length order <> n then
    invalid_arg "Greedy.in_order: order length mismatch";
  let blocked = B.create n in
  let chosen = B.create n in
  Array.iter
    (fun v ->
      if not (B.mem blocked v) then begin
        B.add chosen v;
        B.add blocked v;
        G.iter_neighbors g v (fun u -> B.add blocked u)
      end)
    order;
  chosen
