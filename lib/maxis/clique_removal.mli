(** Boppana–Halldórsson clique removal.

    Ramsey-style search: pick a pivot, recurse on its neighbors (growing
    a clique) and its non-neighbors (growing an independent set), keep
    the larger of each.  Clique removal iterates the Ramsey pass —
    delete the clique it finds, rerun on the remainder — accumulating
    the best independent set seen.  The clique side is what makes the
    solver's λ profile genuinely different from the greedy family: dense
    pockets are carved out whole instead of being nibbled vertex by
    vertex.

    The search is deterministically work-budgeted so conflict-graph
    phases keep their latency envelope; whatever the budget leaves
    unexplored is handled by a final maximality repair, so the answer is
    always an independent {e maximal} set. *)

val run :
  ?cancel:(unit -> bool) ->
  ?budget:int ->
  Ps_util.Rng.t ->
  Ps_graph.Graph.t ->
  Independent_set.t
(** [run rng g] returns a maximal independent set of [g].  [budget]
    bounds the number of Ramsey pivot expansions (default [64·n + 256]);
    [cancel] is polled between clique-removal rounds and raises
    {!Portfolio.Canceled} via the caller's wrapper — here it simply
    stops the search early and repairs what it has.  Deterministic for a
    fixed graph (the pivot is always the smallest live vertex; [rng] is
    reserved for tie-breaking experiments and currently unused). *)

val solver : Approx.solver
(** [run] packaged for the solver registry, named ["clique-removal"]. *)
