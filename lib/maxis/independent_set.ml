module B = Ps_util.Bitset
module G = Ps_graph.Graph

type t = B.t

let empty g = B.create (G.n_vertices g)

let of_list g vs =
  let s = empty g in
  List.iter (B.add s) vs;
  s

let of_indicator flags =
  let s = B.create (Array.length flags) in
  Array.iteri (fun v flag -> if flag then B.add s v) flags;
  s

let to_list = B.to_list

let size = B.cardinal

let is_independent g s =
  B.capacity s = G.n_vertices g
  &&
  let ok = ref true in
  B.iter
    (fun v ->
      if G.exists_neighbor g v (fun u -> u > v && B.mem s u) then ok := false)
    s;
  !ok

let is_maximal g s =
  is_independent g s
  &&
  let ok = ref true in
  for v = 0 to G.n_vertices g - 1 do
    if (not (B.mem s v)) && not (G.exists_neighbor g v (B.mem s)) then
      ok := false
  done;
  !ok

let verify_exn g s =
  if not (is_independent g s) then
    invalid_arg "Independent_set.verify_exn: set is not independent"

let make_maximal g s =
  verify_exn g s;
  let s = B.copy s in
  for v = 0 to G.n_vertices g - 1 do
    if (not (B.mem s v)) && not (G.exists_neighbor g v (B.mem s)) then
      B.add s v
  done;
  s

let approximation_ratio ~alpha s =
  if alpha > 0 && size s = 0 then
    invalid_arg "Independent_set.approximation_ratio: empty set";
  if alpha = 0 then 1.0 else float_of_int alpha /. float_of_int (size s)
