module G = Ps_graph.Graph
module B = Ps_util.Bitset

let clique_cover_upper g =
  let n = G.n_vertices g in
  let adj =
    Array.init n (fun v ->
        let mask = B.create n in
        G.iter_neighbors g v (B.add mask);
        mask)
  in
  let cliques = ref [] in
  for v = 0 to n - 1 do
    let rec place = function
      | [] -> cliques := B.of_list n [ v ] :: !cliques
      | members :: rest ->
          if B.subset members adj.(v) then B.add members v else place rest
    in
    place !cliques
  done;
  List.length !cliques

let greedy_coloring_upper g =
  let complement = G.complement g in
  Ps_graph.Coloring.num_colors (Ps_graph.Coloring.greedy complement)

let caro_wei_lower = Caro_wei.expected_size_bound

let trivial_upper g =
  (* Greedy maximal matching: α <= n - |M| because an independent set
     contains at most one endpoint of each matching edge. *)
  let n = G.n_vertices g in
  let matched = B.create n in
  let matching = ref 0 in
  G.iter_edges g (fun u v ->
      if (not (B.mem matched u)) && not (B.mem matched v) then begin
        B.add matched u;
        B.add matched v;
        incr matching
      end);
  n - !matching

let sandwich g =
  let lower = caro_wei_lower g in
  let upper = min (clique_cover_upper g) (trivial_upper g) in
  (lower, upper)
