module G = Ps_graph.Graph
module B = Ps_util.Bitset
module Tm = Ps_util.Telemetry

type stats = {
  original_vertices : int;
  original_edges : int;
  kernel_vertices : int;
  kernel_edges : int;
  isolated : int;
  pendants : int;
  folds : int;
  simplicial : int;
  dominated : int;
}

(* Undo journal, recorded in application order and replayed in reverse.
   [Take v]: v joins the solution; its whole closed neighborhood (in the
   working graph at that moment) was retired with it.  [Fold (v, u, w)]:
   degree-2 center v with non-adjacent neighbors u, w merged into one
   vertex reusing v's id — selected merged vertex means "take u and w",
   unselected means "take v".  Dominated deletions need no journal
   entry: the deleted vertex stays out and the vertex_addition repair
   re-adds it whenever that is still safe. *)
type op =
  | Take of int
  | Fold of int * int * int

type t = {
  original : G.t;
  kernel : G.t;
  to_orig : int array;
  journal : op list;  (* head = last operation *)
  stats : stats;
}

let graph t = t.kernel
let to_original t = t.to_orig
let stats t = t.stats

let shrink_ratio s =
  if s.original_vertices = 0 then 0.0
  else float_of_int s.kernel_vertices /. float_of_int s.original_vertices

let default_rule_cap = 16

(* Mutable working graph: adjacency rows seeded from the CSR, grown only
   by folds.  Rows are never physically cleaned — dead entries are
   skipped through [alive] — so [deg] (the count of live entries) is the
   authoritative degree.  Among live entries every row is duplicate-free:
   the CSR starts that way, and a fold only links the merged vertex to
   vertices it was not adjacent to before (its center had degree 2). *)
type work = {
  n : int;
  alive : bool array;
  deg : int array;
  row : int array array;
  len : int array;  (* physical row length, >= live count *)
  (* nodes_by_degree bucket queue (lazy entries: a vertex may sit in
     several buckets; staleness is detected on pop). *)
  buckets : int array array;
  bfill : int array;
  mutable cursor : int;
  cap : int;
  (* generation-stamped scratch marks for neighborhood scans *)
  mark : int array;
  mutable gen : int;
}

let bucket_push w v =
  let d = w.deg.(v) in
  if d <= w.cap then begin
    let b = w.buckets.(d) in
    let fill = w.bfill.(d) in
    if fill = Array.length b then begin
      let b' = Array.make (max 8 (2 * fill)) 0 in
      Array.blit b 0 b' 0 fill;
      w.buckets.(d) <- b'
    end;
    w.buckets.(d).(fill) <- v;
    w.bfill.(d) <- fill + 1;
    if d < w.cursor then w.cursor <- d
  end

let row_push w v x =
  let l = w.len.(v) in
  let r = w.row.(v) in
  if l = Array.length r then begin
    let r' = Array.make (max 4 (2 * l)) 0 in
    Array.blit r 0 r' 0 l;
    w.row.(v) <- r'
  end;
  w.row.(v).(l) <- x;
  w.len.(v) <- l + 1

(* Retire [v]: live neighbors lose a degree and get re-examined. *)
let kill w v =
  w.alive.(v) <- false;
  let r = w.row.(v) in
  for i = 0 to w.len.(v) - 1 do
    let x = Array.unsafe_get r i in
    if Array.unsafe_get w.alive x then begin
      w.deg.(x) <- w.deg.(x) - 1;
      bucket_push w x
    end
  done

(* Drop dead entries from [v]'s row in place once they outnumber the
   live ones.  Scans amortize against the kills that created the dead
   entries, keeping every row walk within 2x the live degree. *)
let compact_row w v =
  if w.len.(v) > 2 * w.deg.(v) then begin
    let r = w.row.(v) in
    let j = ref 0 in
    for i = 0 to w.len.(v) - 1 do
      let x = Array.unsafe_get r i in
      if Array.unsafe_get w.alive x then begin
        Array.unsafe_set r !j x;
        incr j
      end
    done;
    w.len.(v) <- !j
  end

let live_neighbors w v =
  compact_row w v;
  let out = Array.make w.deg.(v) 0 in
  let j = ref 0 in
  let r = w.row.(v) in
  for i = 0 to w.len.(v) - 1 do
    let x = Array.unsafe_get r i in
    if Array.unsafe_get w.alive x then begin
      Array.unsafe_set out !j x;
      incr j
    end
  done;
  out

(* Are the two live vertices [u] and [x] adjacent?  Membership in the
   shorter physical row is exact: dead entries only name dead vertices,
   and live entries are duplicate-free. *)
let adjacent w u x =
  let u, x = if w.len.(u) <= w.len.(x) then (u, x) else (x, u) in
  let r = w.row.(u) in
  let n = w.len.(u) in
  let rec go i = i < n && (Array.unsafe_get r i = x || go (i + 1)) in
  go 0

let reduce ?(rule_cap = default_rule_cap) g =
  Tm.with_span "kernel.reduce" @@ fun () ->
  let n = G.n_vertices g in
  let w =
    { n;
      alive = Array.make n true;
      deg = Array.init n (G.degree g);
      row = Array.init n (G.neighbors g);
      len = Array.init n (G.degree g);
      buckets = Array.make (rule_cap + 1) [||];
      bfill = Array.make (rule_cap + 1) 0;
      cursor = 0;
      cap = rule_cap;
      mark = Array.make n 0;
      gen = 0 }
  in
  let journal = ref [] in
  let isolated = ref 0
  and pendants = ref 0
  and folds = ref 0
  and simplicial = ref 0
  and dominated = ref 0 in
  for v = 0 to n - 1 do
    bucket_push w v
  done;
  let take v nbrs =
    journal := Take v :: !journal;
    kill w v;
    Array.iter (fun u -> if w.alive.(u) then kill w u) nbrs
  in
  (* Fold the degree-2 center [v] with non-adjacent neighbors [u], [w_]:
     the merged vertex reuses [v]'s id, its row becomes the live union
     N(u) ∪ N(w_) minus the triple, and every union member swaps its
     dead endpoint(s) for one link to the merged vertex. *)
  let fold v u w_ =
    w.gen <- w.gen + 1;
    let gen = w.gen in
    let union = ref [] and usize = ref 0 in
    let collect src =
      let r = w.row.(src) in
      for i = 0 to w.len.(src) - 1 do
        let x = r.(i) in
        if w.alive.(x) && x <> v then begin
          w.deg.(x) <- w.deg.(x) - 1;
          if w.mark.(x) <> gen then begin
            w.mark.(x) <- gen;
            union := x :: !union;
            incr usize
          end
        end
      done
    in
    collect u;
    collect w_;
    w.alive.(u) <- false;
    w.alive.(w_) <- false;
    let merged = Array.make (max 1 !usize) 0 in
    List.iteri
      (fun i x ->
        merged.(i) <- x;
        w.deg.(x) <- w.deg.(x) + 1;
        row_push w x v;
        bucket_push w x)
      !union;
    w.row.(v) <- merged;
    w.len.(v) <- !usize;
    w.deg.(v) <- !usize;
    journal := Fold (v, u, w_) :: !journal;
    bucket_push w v
  in
  let process v =
    let d = w.deg.(v) in
    if d = 0 then begin
      journal := Take v :: !journal;
      w.alive.(v) <- false;
      incr isolated
    end
    else if d = 1 then begin
      take v (live_neighbors w v);
      incr pendants
    end
    else if d = 2 then begin
      (* At degree 2 one adjacency test decides everything: adjacent
         neighbors mean N(v) is a clique (v simplicial, and domination
         by either neighbor coincides with this case); non-adjacent
         neighbors fold. *)
      let nbrs = live_neighbors w v in
      if adjacent w nbrs.(0) nbrs.(1) then begin
        take v nbrs;
        incr simplicial
      end
      else begin
        fold v nbrs.(0) nbrs.(1);
        incr folds
      end
    end
    else begin
      (* One marked-neighborhood pass decides both remaining rules:
         with N[v] marked, a neighbor u has c(u) = |N(u) ∩ N[v]| >= d
         exactly when N[v] ⊆ N[u].  All neighbors passing means N(v)
         is a clique (v is simplicial — take it); any single neighbor
         passing is dominated and can be deleted. *)
      let nbrs = live_neighbors w v in
      (* The pass costs one row walk per neighbor, Σ deg(u) in total.
         A v with a clique neighborhood has Σ deg(u) >= d(d-1), so a
         16·cap budget still admits every clique the cap admits; what
         it skips are low-degree vertices wired into much denser
         surroundings, where these rules essentially never fire but
         their check is at its most expensive (conservative: rules
         only ever apply on positive proof). *)
      let sdeg = Array.fold_left (fun a u -> a + w.deg.(u)) 0 nbrs in
      if sdeg <= 16 * w.cap then begin
      w.gen <- w.gen + 1;
      let gen = w.gen in
      w.mark.(v) <- gen;
      Array.iter (fun u -> w.mark.(u) <- gen) nbrs;
      let all_clique = ref true and drop = ref (-1) in
      Array.iter
        (fun u ->
          (* c(u) <= deg(u), so a neighbor below the threshold cannot
             pass — skip its row walk entirely. *)
          if w.deg.(u) < d then all_clique := false
          else begin
            compact_row w u;
            let c = ref 0 in
            let r = w.row.(u) in
            let len = w.len.(u) in
            let i = ref 0 in
            (* Abort as soon as the remaining entries cannot lift the
               count to the threshold. *)
            while !i < len && !c + (len - !i) >= d do
              let x = Array.unsafe_get r !i in
              if Array.unsafe_get w.alive x
                 && Array.unsafe_get w.mark x = gen
              then incr c;
              incr i
            done;
            if !c >= d then begin
              if !drop < 0 then drop := u
            end
            else all_clique := false
          end)
        nbrs;
      if !all_clique then begin
        take v nbrs;
        incr simplicial
      end
      else if !drop >= 0 then begin
        kill w !drop;
        incr dominated
      end
      end
    end
  in
  while w.cursor <= rule_cap do
    let d = w.cursor in
    if w.bfill.(d) = 0 then w.cursor <- d + 1
    else begin
      let fill = w.bfill.(d) - 1 in
      let v = w.buckets.(d).(fill) in
      w.bfill.(d) <- fill;
      if w.alive.(v) && w.deg.(v) = d then process v
    end
  done;
  (* Compact the survivors into a fresh CSR with automatic width. *)
  let to_kernel = Array.make n (-1) in
  let n_k = ref 0 in
  for v = 0 to n - 1 do
    if w.alive.(v) then begin
      to_kernel.(v) <- !n_k;
      incr n_k
    end
  done;
  let n_k = !n_k in
  if n_k = n then begin
    (* No rule fired (every rule retires at least one vertex): the
       graph is its own kernel — skip the CSR rebuild and reuse [g]. *)
    let stats =
      { original_vertices = n;
        original_edges = G.n_edges g;
        kernel_vertices = n;
        kernel_edges = G.n_edges g;
        isolated = 0;
        pendants = 0;
        folds = 0;
        simplicial = 0;
        dominated = 0 }
    in
    if Tm.enabled () then begin
      Tm.set_int "original_vertices" n;
      Tm.set_int "kernel_vertices" n;
      Tm.incr "kernel.reductions"
    end;
    { original = g; kernel = g; to_orig = Array.init n Fun.id;
      journal = []; stats }
  end
  else begin
  let to_orig = Array.make n_k 0 in
  for v = 0 to n - 1 do
    if to_kernel.(v) >= 0 then to_orig.(to_kernel.(v)) <- v
  done;
  let m_k = ref 0 in
  for v = 0 to n - 1 do
    if w.alive.(v) then m_k := !m_k + w.deg.(v)
  done;
  let m_k = !m_k / 2 in
  let eu = Array.make (max 1 m_k) 0 and ev = Array.make (max 1 m_k) 0 in
  let j = ref 0 in
  for v = 0 to n - 1 do
    if w.alive.(v) then begin
      let r = w.row.(v) in
      for i = 0 to w.len.(v) - 1 do
        let x = r.(i) in
        if w.alive.(x) && x > v then begin
          eu.(!j) <- to_kernel.(v);
          ev.(!j) <- to_kernel.(x);
          incr j
        end
      done
    end
  done;
  let kernel = G.of_unnormalized_pairs n_k ~u:eu ~v:ev ~len:!j in
  let stats =
    { original_vertices = n;
      original_edges = G.n_edges g;
      kernel_vertices = n_k;
      kernel_edges = G.n_edges kernel;
      isolated = !isolated;
      pendants = !pendants;
      folds = !folds;
      simplicial = !simplicial;
      dominated = !dominated }
  in
  if Tm.enabled () then begin
    Tm.set_int "original_vertices" n;
    Tm.set_int "kernel_vertices" n_k;
    Tm.set_int "folds" !folds;
    Tm.count "kernel.vertices_removed" (n - n_k);
    Tm.incr "kernel.reductions"
  end;
    { original = g; kernel; to_orig; journal = !journal; stats }
  end

let vertex_addition g s =
  let s = B.copy s in
  for v = 0 to G.n_vertices g - 1 do
    if (not (B.mem s v)) && not (G.exists_neighbor g v (B.mem s)) then
      B.add s v
  done;
  s

let lift t s =
  if B.capacity s <> G.n_vertices t.kernel then
    invalid_arg "Kernel.lift: set is not sized for the kernel graph";
  let out = B.create (G.n_vertices t.original) in
  B.iter (fun kv -> B.add out t.to_orig.(kv)) s;
  (* The journal head is the last rule application, so a plain left
     fold over the list replays the undos newest-first — each decision
     about a merged vertex is made before the fold that created it is
     expanded. *)
  List.iter
    (function
      | Take v -> B.add out v
      | Fold (v, u, w) ->
          if B.mem out v then begin
            B.remove out v;
            B.add out u;
            B.add out w
          end
          else B.add out v)
    t.journal;
  vertex_addition t.original out

(* ------------------------------------------------------------------ *)
(* Presolve combinator *)

let presolve_prefix = "kernel+"

let is_presolved (s : Approx.solver) =
  String.starts_with ~prefix:presolve_prefix s.Approx.name
  || String.equal s.Approx.name "portfolio"

let presolve (base : Approx.solver) =
  { Approx.name = presolve_prefix ^ base.Approx.name;
    solve =
      (fun rng g ->
        let r = reduce g in
        let ks = base.Approx.solve rng r.kernel in
        Independent_set.verify_exn r.kernel ks;
        lift r ks) }

type choice = [ `None | `Kernel ]

let apply choice solver =
  match choice with
  | `None -> solver
  | `Kernel -> if is_presolved solver then solver else presolve solver
