(** The SLOCAL model of Ghaffari, Kuhn and Maus (STOC 2017), as a
    simulator.

    In an SLOCAL algorithm with locality [r] the nodes are processed in an
    {e arbitrary} (adversarial) order.  When node [v] is processed it sees
    the current state of all nodes in its [r]-hop neighborhood — including
    the topology of that neighborhood — and computes its own final output
    as an arbitrary function of this view.  It may additionally store
    information that later-processed nodes can read as part of [v]'s
    state.  P-SLOCAL is the class of problems solvable this way with
    polylogarithmic locality.

    The simulator {e enforces} locality: an algorithm's [process] function
    receives only the induced ball of radius [r] around the node, so an
    implementation physically cannot read state outside its license.  The
    processing order is a parameter; the correctness property of an SLOCAL
    algorithm ("for every order the output is valid") is exercised by the
    property-based tests, which run randomized orders. *)

type 'state node_view = {
  center : int;                  (** position of the processed node in [graph] *)
  graph : Ps_graph.Graph.t;      (** induced subgraph on the r-ball *)
  ids : int array;               (** ball position → global identifier *)
  states : 'state option array;  (** ball position → state ([None] = not yet processed) *)
  rng : Ps_util.Rng.t;           (** private randomness (most SLOCAL algorithms are deterministic) *)
}

module type ALGORITHM = sig
  type state
  (** What a processed node stores; readable by later nodes within
      distance [locality]. *)

  type output

  val name : string

  val locality : int
  (** The radius [r] of the ball exposed to [process]. *)

  val process : state node_view -> state
  (** Compute the node's state (including, implicitly, its output). *)

  val output : state -> output
  (** Extract the final output from a processed node's state. *)
end

type stats = {
  locality : int;
  processed : int;
  max_ball_vertices : int;
      (** size of the largest view handed to [process] — the "volume" the
          locality radius translates to on this topology *)
}

module Run (A : ALGORITHM) : sig
  val run :
    ?order:int array ->
    ?ids:int array ->
    ?seed:int ->
    Ps_graph.Graph.t ->
    A.output array * stats
  (** Process every node once, in [order] (default: increasing vertex
      index; must be a permutation).  [ids] assigns identifiers (default:
      vertex indices).  Outputs are indexed by vertex. *)

  val run_random_order :
    rng:Ps_util.Rng.t ->
    ?ids:int array ->
    Ps_graph.Graph.t ->
    A.output array * stats
  (** Convenience: a uniformly random processing order drawn from [rng]. *)
end
