(** Randomized low-diameter decomposition in the style of Miller, Peng
    and Xu (SPAA 2013) — the randomized counterpart of {!Decomposition}'s
    deterministic ball carving, and the modern starting point of the
    decomposition literature the paper's completeness program feeds.

    Every vertex draws an exponential shift [δ_v ~ Exp(β)]; vertex [u]
    joins the cluster of the center [c] minimizing [d(c, u) − δ_c]
    (shifted-distance Dijkstra with unit edges).  With probability
    [1 − 1/poly n] every cluster has radius [O(log n / β)], and each edge
    is cut (endpoints in different clusters) with probability [O(β)] —
    so [β] trades cluster size against cut fraction.

    MPX yields a {e partition} without a cluster coloring; for the
    derandomization pipeline {!to_decomposition} colors the quotient
    graph greedily, producing a {!Decomposition.t} whose structural
    invariants hold (partition / connectivity / radius bookkeeping /
    legal colors) while the ball-carving-specific [log n] bounds need
    not. *)

type t = {
  cluster_of : int array;   (** vertex → cluster id *)
  center_of : int array;    (** cluster id → the vertex whose shift won *)
  radius_of : int array;    (** observed in-cluster eccentricity bound *)
  n_clusters : int;
  beta : float;
}

val decompose : Ps_util.Rng.t -> beta:float -> Ps_graph.Graph.t -> t
(** Requires [beta > 0]. *)

val cut_edges : Ps_graph.Graph.t -> t -> int
(** Number of edges with endpoints in different clusters; expectation
    ≤ [beta · m] up to constants. *)

val max_radius : t -> int

val is_valid : Ps_graph.Graph.t -> t -> bool
(** Partition into connected clusters, each within [radius_of] of its
    center (measured inside the cluster). *)

val to_decomposition : Ps_graph.Graph.t -> t -> Decomposition.t
(** Greedy-color the quotient graph so adjacent clusters get distinct
    colors — a structurally valid {!Decomposition.t} (its
    [ceil log2 n]-specific bound fields are not guaranteed). *)
