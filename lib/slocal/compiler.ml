module G = Ps_graph.Graph

type 'a result = {
  outputs : 'a array;
  simulated_rounds : int;
  order : int array;
  decomposition : Decomposition.t;
}

let sweep_order (d : Decomposition.t) =
  let n = Array.length d.cluster_of in
  let keyed =
    Array.init n (fun v ->
        let c = d.cluster_of.(v) in
        (d.color_of.(c), c, v))
  in
  let cmp (c1, k1, v1) (c2, k2, v2) =
    match Int.compare c1 c2 with
    | 0 -> ( match Int.compare k1 k2 with 0 -> Int.compare v1 v2 | r -> r)
    | r -> r
  in
  Array.sort cmp keyed;
  Array.map (fun (_, _, v) -> v) keyed

let simulated_rounds (d : Decomposition.t) ~locality =
  d.n_colors * 2 * ((d.max_radius * max 1 locality) + locality + 1)

module Make (A : Slocal.ALGORITHM) = struct
  module Runner = Slocal.Run (A)

  let run ?decomposition ?seed g =
    let decomposition =
      match decomposition with
      | Some d -> d
      | None ->
          (* Decompose G^r so same-colored clusters are > r apart in G
             and radius-r views of parallel clusters cannot overlap. *)
          let base =
            if A.locality <= 1 then g
            else Ps_graph.Traverse.power g A.locality
          in
          Decomposition.ball_carving base
    in
    let order = sweep_order decomposition in
    let outputs, _ = Runner.run ~order ?seed g in
    { outputs;
      simulated_rounds = simulated_rounds decomposition ~locality:A.locality;
      order;
      decomposition }
end
