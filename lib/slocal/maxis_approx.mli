(** MaxIS approximation {e inside} SLOCAL — the containment half of
    Theorem 1.1.

    The paper cites GKM17 Theorem 7.1 for "polylog MaxIS approximation is
    in P-SLOCAL"; this module is that algorithm, executable: compute a
    [(log n, log n)] network decomposition (itself SLOCAL with locality
    O(log n)), solve every cluster of every color class optimally in
    isolation (free in SLOCAL: a cluster plus its radius-[d] ball is one
    locality-[O(d)] view, and SLOCAL nodes may compute arbitrarily), and
    keep the best color class.

    Ratio: clusters of one color are pairwise non-adjacent, so each color
    class's union is independent; a maximum independent set OPT satisfies
    [Σ_j |OPT ∩ (color j)| = α], hence the best class holds at least
    [α / c] vertices, and per-cluster optimality only helps.  With
    [c = O(log n)] colors this is an O(log n)-approximation — comfortably
    polylogarithmic.

    In simulation the per-cluster "arbitrary computation" is exact branch
    and bound with a node budget; oversized clusters fall back to greedy
    min-degree, and the certificate records whether the [α/c] guarantee
    is intact ([per_cluster_exact]). *)

type result = {
  set : Ps_maxis.Independent_set.t;     (** maximal independent set *)
  ratio_bound : int;
      (** certified λ: the decomposition's color count (valid when
          [per_cluster_exact]) *)
  per_cluster_exact : bool;
      (** every cluster solved optimally (no budget fallback) *)
  locality : int;
      (** SLOCAL locality charged: the decomposition's max radius + 1 *)
  decomposition : Decomposition.t;
}

val run :
  ?exact_budget:int ->
  ?decomposition:Decomposition.t ->
  Ps_graph.Graph.t ->
  result
(** [exact_budget] (default 200_000 search nodes per cluster) caps the
    per-cluster exact solver.  The returned set is always independent and
    maximal; only the certified ratio depends on the budget. *)
