(** Locality-1 SLOCAL (Δ+1)-vertex-coloring.

    Processed nodes pick the smallest color unused by their already-
    processed neighbors; a node of degree [d] sees at most [d] occupied
    colors, so colors stay in [0 .. Δ].  Like greedy MIS, this shows both
    classic symmetry-breaking problems sit at the very bottom of the
    SLOCAL hierarchy, while their deterministic LOCAL complexity is open. *)

module Algo : Slocal.ALGORITHM with type output = int
(** The algorithm itself, for the SLOCAL→LOCAL {!Compiler}. *)

val run :
  ?order:int array ->
  ?seed:int ->
  Ps_graph.Graph.t ->
  int array * Slocal.stats
(** A proper coloring with colors in [0 .. Δ], for every order. *)

val run_random_order :
  rng:Ps_util.Rng.t -> Ps_graph.Graph.t -> int array * Slocal.stats
