module G = Ps_graph.Graph
module B = Ps_util.Bitset
module Is = Ps_maxis.Independent_set

type result = {
  set : Is.t;
  ratio_bound : int;
  per_cluster_exact : bool;
  locality : int;
  decomposition : Decomposition.t;
}

let run ?(exact_budget = 200_000) ?decomposition g =
  let d =
    match decomposition with
    | Some d -> d
    | None -> Decomposition.ball_carving g
  in
  let n = G.n_vertices g in
  let members = Array.make d.Decomposition.n_clusters [] in
  for v = n - 1 downto 0 do
    let c = d.Decomposition.cluster_of.(v) in
    members.(c) <- v :: members.(c)
  done;
  let all_exact = ref true in
  (* Per cluster: a maximum IS of the induced subgraph, budgeted. *)
  let cluster_solution c =
    let sub, back = G.induced_subgraph g members.(c) in
    let local =
      match Ps_maxis.Exact.maximum_within ~budget:exact_budget sub with
      | Some opt -> opt
      | None ->
          all_exact := false;
          Ps_maxis.Greedy.min_degree sub
    in
    List.map (fun i -> back.(i)) (Is.to_list local)
  in
  let best = ref (B.create n) in
  for color = 0 to d.Decomposition.n_colors - 1 do
    let class_set = B.create n in
    for c = 0 to d.Decomposition.n_clusters - 1 do
      if d.Decomposition.color_of.(c) = color then
        List.iter (B.add class_set) (cluster_solution c)
    done;
    if B.cardinal class_set > B.cardinal !best then best := class_set
  done;
  Is.verify_exn g !best;
  (* Extending to maximal can only grow the set; the α/c bound stands. *)
  let set = Is.make_maximal g !best in
  { set;
    ratio_bound = max 1 d.Decomposition.n_colors;
    per_cluster_exact = !all_exact;
    locality = d.Decomposition.max_radius + 1;
    decomposition = d }
