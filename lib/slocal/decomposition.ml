module G = Ps_graph.Graph
module Tm = Ps_util.Telemetry

type t = {
  cluster_of : int array;
  color_of : int array;
  center_of : int array;
  radius_of : int array;
  n_clusters : int;
  n_colors : int;
  max_radius : int;
}

(* Grow a ball around [v] inside the vertices marked [active] until one
   more hop would not double it; return (ball, ring, radius). *)
let carve_ball g active v =
  let ball = ref [ v ] and ball_size = ref 1 in
  let in_ball = Array.make (G.n_vertices g) false in
  in_ball.(v) <- true;
  let frontier = ref [ v ] in
  let radius = ref 0 in
  let next_ring () =
    List.concat_map
      (fun u ->
        G.fold_neighbors g u
          (fun acc w ->
            if active.(w) && not in_ball.(w) then begin
              in_ball.(w) <- true;
              w :: acc
            end
            else acc)
          [])
      !frontier
  in
  let ring = ref (next_ring ()) in
  while List.length !ring > !ball_size do
    (* Ball still more than doubles: absorb the ring and grow again. *)
    ball := List.rev_append !ring !ball;
    ball_size := !ball_size + List.length !ring;
    frontier := !ring;
    incr radius;
    ring := next_ring ()
  done;
  (!ball, !ring, !radius)

let ball_carving ?order g =
  Tm.with_span "decomposition.ball_carving" @@ fun () ->
  let n = G.n_vertices g in
  Tm.set_int "n" n;
  let order =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then
          invalid_arg "Decomposition.ball_carving: order length mismatch";
        o
  in
  let cluster_of = Array.make n (-1) in
  let colors = ref [] and centers = ref [] and radii = ref [] in
  let n_clusters = ref 0 in
  let remaining = Array.make n true in
  let remaining_count = ref n in
  let color = ref 0 in
  while !remaining_count > 0 do
    (* One color phase: carve from a private copy so deferred rings are
       inactive for this phase but return in the next one. *)
    let active = Array.copy remaining in
    Array.iter
      (fun v ->
        if active.(v) then begin
          let ball, ring, radius = carve_ball g active v in
          let id = !n_clusters in
          incr n_clusters;
          colors := !color :: !colors;
          centers := v :: !centers;
          radii := radius :: !radii;
          List.iter
            (fun u ->
              cluster_of.(u) <- id;
              active.(u) <- false;
              remaining.(u) <- false;
              decr remaining_count)
            ball;
          List.iter (fun u -> active.(u) <- false) ring
        end)
      order;
    incr color
  done;
  let color_of = Array.of_list (List.rev !colors) in
  let center_of = Array.of_list (List.rev !centers) in
  let radius_of = Array.of_list (List.rev !radii) in
  if Tm.enabled () then begin
    Tm.set_int "clusters" !n_clusters;
    Tm.set_int "colors" !color;
    Tm.set_int "max_radius" (Array.fold_left max 0 radius_of);
    Tm.count "decomposition.clusters" !n_clusters
  end;
  { cluster_of;
    color_of;
    center_of;
    radius_of;
    n_clusters = !n_clusters;
    n_colors = !color;
    max_radius = Array.fold_left max 0 radius_of }

type check = {
  is_partition : bool;
  clusters_connected : bool;
  radius_ok : bool;
  colors_legal : bool;
  radius_bound : bool;
  colors_bound : bool;
}

let ceil_log2 n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (2 * p) in
  if n <= 1 then 0 else go 0 1

let verify g t =
  let n = G.n_vertices g in
  let is_partition =
    Array.length t.cluster_of = n
    && Array.for_all (fun c -> c >= 0 && c < t.n_clusters) t.cluster_of
  in
  let members = Array.make t.n_clusters [] in
  if is_partition then
    Array.iteri (fun v c -> members.(c) <- v :: members.(c)) t.cluster_of;
  let connected = ref is_partition and radius_ok = ref is_partition in
  if is_partition then
    for c = 0 to t.n_clusters - 1 do
      let sub, back = G.induced_subgraph g members.(c) in
      if not (Ps_graph.Traverse.is_connected sub) then connected := false;
      let center_pos = ref (-1) in
      Array.iteri (fun i v -> if v = t.center_of.(c) then center_pos := i) back;
      if !center_pos < 0 then radius_ok := false
      else begin
        let ecc = Ps_graph.Traverse.eccentricity sub !center_pos in
        if ecc > t.radius_of.(c) then radius_ok := false
      end
    done;
  let colors_legal = ref is_partition in
  if is_partition then
    G.iter_edges g (fun u v ->
        let cu = t.cluster_of.(u) and cv = t.cluster_of.(v) in
        if cu <> cv && t.color_of.(cu) = t.color_of.(cv) then
          colors_legal := false);
  { is_partition;
    clusters_connected = !connected;
    radius_ok = !radius_ok;
    colors_legal = !colors_legal;
    radius_bound = t.max_radius <= ceil_log2 (max n 1);
    colors_bound = t.n_colors <= ceil_log2 (max n 1) + 1 }

let check_all c =
  c.is_partition && c.clusters_connected && c.radius_ok && c.colors_legal
  && c.radius_bound && c.colors_bound

let pp_check ppf c =
  Format.fprintf ppf
    "partition=%b connected=%b radius=%b colors=%b radius_bound=%b \
     colors_bound=%b"
    c.is_partition c.clusters_connected c.radius_ok c.colors_legal
    c.radius_bound c.colors_bound
