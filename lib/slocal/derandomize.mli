(** Deterministic LOCAL algorithms from a network decomposition.

    The standard derandomization recipe (and the reason P-SLOCAL-complete
    problems matter): given a (d, c)-network decomposition, any greedy
    SLOCAL-style problem can be solved deterministically in O(c·d) LOCAL
    rounds by sweeping the cluster colors in order — same-colored clusters
    are non-adjacent, so all clusters of one color decide simultaneously,
    each one gathering its radius-d ball plus the decisions of earlier
    colors.  If MaxIS approximation (P-SLOCAL-complete, this paper) had an
    efficient deterministic LOCAL algorithm, decompositions would too, and
    via this module so would MIS and (Δ+1)-coloring — that chain is the
    paper's punchline.

    [simulated_rounds] charges each color sweep [2·(d+1)] rounds: gather
    the cluster ball and the neighboring decisions, decide centrally
    inside the cluster, report back. *)

type 'a result = {
  outputs : 'a array;
  simulated_rounds : int;
  decomposition : Decomposition.t;
}

val mis : ?decomposition:Decomposition.t -> Ps_graph.Graph.t -> bool result
(** Deterministic maximal independent set: sweep colors; inside each
    cluster run sequential greedy MIS respecting decided neighbors. *)

val coloring : ?decomposition:Decomposition.t -> Ps_graph.Graph.t -> int result
(** Deterministic (Δ+1)-coloring by the same sweep. *)
