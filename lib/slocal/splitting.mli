(** Weak 2-splitting — the remaining problem on the paper's list of
    P-SLOCAL-complete problems ("(weak) local splittings", GKM17).

    A red/blue coloring of the vertices is a {e weak splitting} with
    threshold [d0] when every vertex of degree ≥ [d0] sees both colors in
    its neighborhood.  A uniformly random coloring fails at a given
    high-degree vertex with probability [2^(1-deg)], so for
    [d0 > log2 n + 1] it succeeds with positive probability — and the
    {e method of conditional expectations} turns that into a
    deterministic sequential algorithm, which is exactly an SLOCAL
    algorithm with locality 2: when vertex [v] is processed it inspects,
    for each neighbor [u], how many of [u]'s neighbors are already
    colored each way, and picks the color that does not increase the
    pessimistic failure estimator

    [Φ = Σ_{deg(u) ≥ d0} ( P(N(u) all red) + P(N(u) all blue) )].

    [Φ] never increases along the process, and a final [Φ < 1] means no
    failure — the archetype of the derandomization-by-local-computation
    theme that makes P-SLOCAL-completeness interesting (GHK18). *)

val monochromatic_failures : Ps_graph.Graph.t -> threshold:int -> bool array -> int list
(** Vertices of degree ≥ [threshold] whose neighborhood is monochromatic
    under the coloring ([true] = red), sorted. *)

val is_weak_splitting : Ps_graph.Graph.t -> threshold:int -> bool array -> bool

val randomized : Ps_util.Rng.t -> Ps_graph.Graph.t -> bool array
(** Uniform random coloring — the 0-round LOCAL algorithm. *)

val initial_potential : Ps_graph.Graph.t -> threshold:int -> float
(** [Σ_{deg(u) ≥ d0} 2^(1-deg u)]; [< 1.0] certifies that
    {!deterministic} produces a perfect weak splitting. *)

val deterministic :
  ?order:int array -> Ps_graph.Graph.t -> threshold:int -> bool array
(** Conditional-expectations coloring in the given processing order
    (default: increasing index).  Never worse than the potential bound:
    if [initial_potential < 1] the result has no failures; in general
    the number of failures is at most the initial potential. *)
