(** Adversarial processing-order search.

    SLOCAL algorithms must be correct for {e every} processing order, but
    their solution {e quality} can swing wildly with the order (greedy
    coloring on a crown graph: 2 colors or n, adversary's choice).  This
    module searches for bad orders by random restarts plus hill-climbing
    over adjacent transpositions — a stress tool for quantifying how much
    an SLOCAL algorithm's quality depends on the adversary, used by the
    experiment harness and handy when developing new algorithms. *)

type 'a search_result = {
  best_order : int array;
  best_score : 'a;
  evaluations : int;
}

val search :
  rng:Ps_util.Rng.t ->
  ?restarts:int ->
  ?steps:int ->
  n:int ->
  score:(int array -> 'a) ->
  compare:('a -> 'a -> int) ->
  unit ->
  'a search_result
(** [search ~rng ~n ~score ~compare ()] maximizes [score] (w.r.t.
    [compare]) over permutations of [0..n-1]: [restarts] (default 5)
    random starting orders, each improved by [steps] (default 200)
    proposed random swaps, keeping a swap when the score does not
    decrease. *)

val worst_coloring_order :
  rng:Ps_util.Rng.t ->
  ?restarts:int ->
  ?steps:int ->
  Ps_graph.Graph.t ->
  int array * int
(** Convenience: search for the order maximizing the number of colors
    greedy SLOCAL coloring uses; returns (order, colors). *)

val worst_mis_order :
  rng:Ps_util.Rng.t ->
  ?restarts:int ->
  ?steps:int ->
  Ps_graph.Graph.t ->
  int array * int
(** Order {e minimizing} the greedy MIS size — how small can the
    adversary force the "maximal" independent set? *)
