(** (d, c)-network decomposition by sequential ball carving.

    A (d, c)-decomposition partitions the vertices into clusters of
    (strong) radius at most [d], and assigns each cluster one of [c]
    colors so that adjacent clusters get distinct colors.  Computing a
    [(poly log n, poly log n)]-decomposition is itself P-SLOCAL-complete
    (GKM17) and is {e the} canonical tool for derandomizing LOCAL
    algorithms — the role the paper's MaxIS-approximation result plugs
    into.

    The construction is the classic carving argument, an SLOCAL algorithm
    with locality O(log n): repeatedly grow a ball around an unclustered
    vertex until it stops doubling (at most [log2 n] growth steps), carve
    the ball as a cluster of the current color, and defer its boundary
    ring to later colors.  Per color the carved vertices outnumber the
    deferred ones, so [ceil(log2 n) + 1] colors suffice. *)

type t = {
  cluster_of : int array;   (** vertex → cluster id, in [0 .. n_clusters-1] *)
  color_of : int array;     (** cluster id → color *)
  center_of : int array;    (** cluster id → the vertex the ball grew from *)
  radius_of : int array;    (** cluster id → carving radius *)
  n_clusters : int;
  n_colors : int;
  max_radius : int;
}

val ball_carving : ?order:int array -> Ps_graph.Graph.t -> t
(** [order] fixes which unclustered vertex is carved next (default:
    smallest index first); any order yields a valid decomposition with the
    same worst-case guarantees. *)

type check = {
  is_partition : bool;
  clusters_connected : bool;  (** each cluster induces a connected graph *)
  radius_ok : bool;           (** in-cluster distance center→member ≤ radius_of *)
  colors_legal : bool;        (** adjacent clusters have distinct colors *)
  radius_bound : bool;        (** max_radius <= ceil(log2 n) *)
  colors_bound : bool;        (** n_colors <= ceil(log2 n) + 1 *)
}

val verify : Ps_graph.Graph.t -> t -> check
val check_all : check -> bool
val pp_check : Format.formatter -> check -> unit
