module Algo = struct
  type state = int
  type output = int

  let name = "slocal-greedy-coloring"
  let locality = 1

  let process (view : int Slocal.node_view) =
    let degree = Ps_graph.Graph.degree view.graph view.center in
    let occupied = Array.make (degree + 1) false in
    Ps_graph.Graph.iter_neighbors view.graph view.center (fun u ->
        match view.states.(u) with
        | Some c when c <= degree -> occupied.(c) <- true
        | Some _ | None -> ());
    let rec first c = if occupied.(c) then first (c + 1) else c in
    first 0

  let output s = s
end

module Runner = Slocal.Run (Algo)

let run ?order ?seed g = Runner.run ?order ?seed g

let run_random_order ~rng g = Runner.run_random_order ~rng g
