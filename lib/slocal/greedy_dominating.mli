(** Locality-1 SLOCAL dominating set.

    Processed nodes join the dominating set exactly when nothing in
    their closed neighborhood has joined yet.  For every processing
    order the result dominates: a node is either already dominated when
    processed or joins itself.  The output is simultaneously independent
    (two adjacent joiners cannot both see an empty neighborhood), i.e. it
    is a {e maximal independent set} viewed as a dominating set — the
    structural reason MIS, domination and coloring keep meeting in the
    P-SLOCAL-complete club. *)

module Algo : Slocal.ALGORITHM with type output = bool
(** The algorithm itself, for the SLOCAL→LOCAL {!Compiler}. *)

val run :
  ?order:int array ->
  ?seed:int ->
  Ps_graph.Graph.t ->
  bool array * Slocal.stats

val run_random_order :
  rng:Ps_util.Rng.t -> Ps_graph.Graph.t -> bool array * Slocal.stats
