module Rng = Ps_util.Rng
module Tm = Ps_util.Telemetry

type 'a search_result = {
  best_order : int array;
  best_score : 'a;
  evaluations : int;
}

let search ~rng ?(restarts = 5) ?(steps = 200) ~n ~score ~compare () =
  if restarts < 1 || steps < 0 then invalid_arg "Order_search.search";
  Tm.with_span "order_search" @@ fun () ->
  Tm.set_int "n" n;
  Tm.set_int "restarts" restarts;
  Tm.set_int "steps" steps;
  let evaluations = ref 0 in
  let eval order =
    incr evaluations;
    score order
  in
  let best_order = ref (Array.init n (fun i -> i)) in
  let best_score = ref (eval !best_order) in
  for _ = 1 to restarts do
    let order = Rng.permutation rng n in
    let current = ref (eval order) in
    for _ = 1 to steps do
      if n >= 2 then begin
        let i = Rng.int rng n and j = Rng.int rng n in
        let tmp = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- tmp;
        let candidate = eval order in
        if compare candidate !current >= 0 then current := candidate
        else begin
          (* revert *)
          let tmp = order.(i) in
          order.(i) <- order.(j);
          order.(j) <- tmp
        end
      end
    done;
    if compare !current !best_score > 0 then begin
      best_order := Array.copy order;
      best_score := !current
    end
  done;
  Tm.set_int "evaluations" !evaluations;
  Tm.count "order_search.restarts" restarts;
  Tm.count "order_search.evaluations" !evaluations;
  { best_order = !best_order;
    best_score = !best_score;
    evaluations = !evaluations }

let worst_coloring_order ~rng ?restarts ?steps g =
  let n = Ps_graph.Graph.n_vertices g in
  let score order =
    let colors, _ = Greedy_coloring.run ~order g in
    Ps_graph.Coloring.num_colors colors
  in
  let r = search ~rng ?restarts ?steps ~n ~score ~compare:Int.compare () in
  (r.best_order, r.best_score)

let worst_mis_order ~rng ?restarts ?steps g =
  let n = Ps_graph.Graph.n_vertices g in
  let score order =
    let flags, _ = Greedy_mis.run ~order g in
    (* negate: we maximize, adversary minimizes the MIS *)
    -Array.fold_left (fun a b -> if b then a + 1 else a) 0 flags
  in
  let r = search ~rng ?restarts ?steps ~n ~score ~compare:Int.compare () in
  (r.best_order, -r.best_score)
