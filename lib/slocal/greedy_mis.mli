(** The locality-1 SLOCAL algorithm for maximal independent set — the
    paper's opening example of SLOCAL's power.

    "The maximal independent set problem admits an SLOCAL algorithm with
    locality r = 1 by iterating through the nodes in an arbitrary order
    and joining the independent set if none of the already processed
    neighbors is already contained in the set."  Contrast with the best
    known {e deterministic LOCAL} complexity, which is exponentially worse
    — this gap is the motivation for the whole P-SLOCAL program. *)

module Algo : Slocal.ALGORITHM with type output = bool
(** The algorithm itself — exposed so the generic SLOCAL→LOCAL
    {!Compiler} can consume it. *)

val run :
  ?order:int array ->
  ?seed:int ->
  Ps_graph.Graph.t ->
  bool array * Slocal.stats
(** Indicator vector of a maximal independent set; valid for {e every}
    processing order. *)

val run_random_order :
  rng:Ps_util.Rng.t -> Ps_graph.Graph.t -> bool array * Slocal.stats
