module G = Ps_graph.Graph

type 'a result = {
  outputs : 'a array;
  simulated_rounds : int;
  decomposition : Decomposition.t;
}

(* Clusters of one color are processed "in parallel"; inside a cluster the
   decision is an arbitrary sequential computation over the cluster plus
   its already-decided boundary — all within a radius-(d+1) ball, hence
   simulable in 2(d+1) LOCAL rounds per color. *)
let sweep g decomposition ~decide_vertex =
  let n = G.n_vertices g in
  let d = decomposition.Decomposition.cluster_of in
  let members = Array.make decomposition.Decomposition.n_clusters [] in
  for v = n - 1 downto 0 do
    members.(d.(v)) <- v :: members.(d.(v))
  done;
  for color = 0 to decomposition.Decomposition.n_colors - 1 do
    for c = 0 to decomposition.Decomposition.n_clusters - 1 do
      if decomposition.Decomposition.color_of.(c) = color then
        List.iter decide_vertex members.(c)
    done
  done;
  decomposition.Decomposition.n_colors
  * (2 * (decomposition.Decomposition.max_radius + 1 + 1))

let get_decomposition ?decomposition g =
  match decomposition with
  | Some d -> d
  | None -> Decomposition.ball_carving g

let mis ?decomposition g =
  let decomposition = get_decomposition ?decomposition g in
  let n = G.n_vertices g in
  let status = Array.make n None in
  let decide_vertex v =
    let blocked =
      G.exists_neighbor g v (fun u -> Option.value ~default:false status.(u))
    in
    status.(v) <- Some (not blocked)
  in
  let simulated_rounds = sweep g decomposition ~decide_vertex in
  let outputs =
    Array.map (function Some b -> b | None -> assert false) status
  in
  { outputs; simulated_rounds; decomposition }

let coloring ?decomposition g =
  let decomposition = get_decomposition ?decomposition g in
  let n = G.n_vertices g in
  let colors = Array.make n Ps_graph.Coloring.uncolored in
  let decide_vertex v =
    let occupied = Array.make (G.degree g v + 1) false in
    G.iter_neighbors g v (fun u ->
        let c = colors.(u) in
        if c <> Ps_graph.Coloring.uncolored && c <= G.degree g v then
          occupied.(c) <- true);
    let rec first c = if occupied.(c) then first (c + 1) else c in
    colors.(v) <- first 0
  in
  let simulated_rounds = sweep g decomposition ~decide_vertex in
  { outputs = colors; simulated_rounds; decomposition }
