module G = Ps_graph.Graph

module Algo = struct
  type state =
    | Matched_with of int (* the id of my partner (claimed or honored) *)
    | Single

  type output = state

  let name = "slocal-greedy-matching"
  let locality = 2

  let process (view : state Slocal.node_view) =
    let my_id = view.ids.(view.center) in
    (* 1. honor the smallest earlier claim on me *)
    let claimer = ref None in
    G.iter_neighbors view.graph view.center (fun u ->
        match view.states.(u) with
        | Some (Matched_with id) when id = my_id ->
            let uid = view.ids.(u) in
            if (match !claimer with None -> true | Some c -> uid < c) then
              claimer := Some uid
        | Some (Matched_with _) | Some Single | None -> ());
    match !claimer with
    | Some uid -> Matched_with uid
    | None ->
        (* 2. claim the smallest free neighbor: unprocessed, and not
           already claimed by one of its own processed neighbors *)
        let candidate = ref None in
        G.iter_neighbors view.graph view.center (fun u ->
            if Option.is_none view.states.(u) then begin
              let u_id = view.ids.(u) in
              let claimed =
                G.exists_neighbor view.graph u (fun w ->
                    w <> view.center
                    &&
                    match view.states.(w) with
                    | Some (Matched_with id) -> id = u_id
                    | Some Single | None -> false)
              in
              if not claimed then
                if (match !candidate with None -> true | Some c -> u_id < c) then
                  candidate := Some u_id
            end);
        (match !candidate with
        | Some uid -> Matched_with uid
        | None -> Single)

  let output s = s
end

module Runner = Slocal.Run (Algo)

let to_partner_array outputs =
  Array.map
    (function
      | Algo.Matched_with id -> id
      | Algo.Single -> Ps_graph.Matching.unmatched)
    outputs

let run ?order ?seed g =
  let outputs, stats = Runner.run ?order ?seed g in
  (to_partner_array outputs, stats)

let run_random_order ~rng g =
  let outputs, stats = Runner.run_random_order ~rng g in
  (to_partner_array outputs, stats)
