module G = Ps_graph.Graph

let monochromatic_failures g ~threshold colors =
  let failures = ref [] in
  for u = G.n_vertices g - 1 downto 0 do
    if G.degree g u >= max 1 threshold then begin
      let saw_red = ref false and saw_blue = ref false in
      G.iter_neighbors g u (fun w ->
          if colors.(w) then saw_red := true else saw_blue := true);
      if not (!saw_red && !saw_blue) then failures := u :: !failures
    end
  done;
  !failures

let is_weak_splitting g ~threshold colors =
  match monochromatic_failures g ~threshold colors with
  | [] -> true
  | _ :: _ -> false

let randomized rng g =
  Array.init (G.n_vertices g) (fun _ -> Ps_util.Rng.bool rng)

let initial_potential g ~threshold =
  let acc = ref 0.0 in
  for u = 0 to G.n_vertices g - 1 do
    let d = G.degree g u in
    if d >= max 1 threshold then
      acc := !acc +. (2.0 *. (2.0 ** float_of_int (-d)))
  done;
  !acc

(* Conditional expectations.  Per constraint vertex u we track how many
   neighbors are red/blue and how many are unassigned; the two failure
   terms are then powers of two (exact in floating point down to 2^-1074,
   far below any graph this runs on). *)
let deterministic ?order g ~threshold =
  let n = G.n_vertices g in
  let order =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then
          invalid_arg "Splitting.deterministic: order length mismatch";
        o
  in
  let threshold = max 1 threshold in
  let red = Array.make n 0 and blue = Array.make n 0 in
  let unassigned = Array.init n (fun u -> G.degree g u) in
  let colors = Array.make n false in
  (* P(all of N(u) ends monochromatic in one color | partial coloring):
     zero once an opposite-color neighbor exists, else every unassigned
     slot must fall the right way. *)
  let term ~other_count ~slots =
    if other_count > 0 then 0.0 else 2.0 ** float_of_int (-slots)
  in
  let potential_delta v color =
    (* Change of Φ restricted to constraints u ∈ N(v) when v takes
       [color], versus leaving v unassigned (the absolute base cancels
       when comparing the two colors, but computing both sides keeps the
       code symmetric and obviously monotone). *)
    G.fold_neighbors g v
      (fun acc u ->
        if G.degree g u < threshold then acc
        else begin
          let slots = unassigned.(u) - 1 in
          let red_after, blue_after =
            if color then (red.(u) + 1, blue.(u)) else (red.(u), blue.(u) + 1)
          in
          let all_red = term ~other_count:blue_after ~slots in
          let all_blue = term ~other_count:red_after ~slots in
          acc +. all_red +. all_blue
        end)
      0.0
  in
  Array.iter
    (fun v ->
      let choose_red = potential_delta v true <= potential_delta v false in
      colors.(v) <- choose_red;
      G.iter_neighbors g v (fun u ->
          unassigned.(u) <- unassigned.(u) - 1;
          if choose_red then red.(u) <- red.(u) + 1
          else blue.(u) <- blue.(u) + 1))
    order;
  colors
