(** The generic SLOCAL → deterministic-LOCAL compiler (the engine behind
    GKM17, and the reason P-SLOCAL-completeness has teeth).

    Given {e any} SLOCAL algorithm [A] with locality [r], decompose the
    power graph [G^r] by ball carving and sweep its cluster colors
    [0 .. c-1]: all clusters of one color execute "in parallel", each
    processing its own vertices sequentially.  Same-colored clusters are
    non-adjacent in [G^r], i.e. at distance ≥ r+1 in [G], so their
    radius-[r] views never overlap — the parallel execution is
    order-independent within a color and the sweep realizes a legal
    SLOCAL processing order.  In the LOCAL model each cluster's sweep is
    simulated by its leader gathering the cluster (radius ≤ [d·r] in [G])
    plus an [r]-fringe:

    [rounds = c · 2·(d·r + r + 1)].

    Hence: polylog decompositions + any polylog-locality SLOCAL
    algorithm = polylog deterministic LOCAL algorithm — which is why a
    deterministic LOCAL algorithm for any P-SLOCAL-complete problem
    (e.g. this paper's MaxIS approximation) would derandomize the whole
    class.  The execution here really runs through the locality-
    enforcing {!Slocal} simulator with the sweep order, so the output
    provably equals a legal SLOCAL run.  {!Derandomize} is the
    hand-written special case for MIS/coloring; this one takes any
    [Slocal.ALGORITHM]. *)

type 'a result = {
  outputs : 'a array;
  simulated_rounds : int;  (** [c · 2·(d·r + r + 1)] *)
  order : int array;       (** the color-ordered sweep actually used *)
  decomposition : Decomposition.t;  (** decomposition of [G^r] *)
}

module Make (A : Slocal.ALGORITHM) : sig
  val run :
    ?decomposition:Decomposition.t ->
    ?seed:int ->
    Ps_graph.Graph.t ->
    A.output result
  (** [decomposition], when supplied, must be a decomposition of
      [Ps_graph.Traverse.power g A.locality] (for [locality <= 1], of
      [g] itself); by default it is computed here. *)
end

val sweep_order : Decomposition.t -> int array
(** Vertices sorted by (cluster color, cluster id, vertex index) — the
    order the compiled execution processes them in. *)

val simulated_rounds : Decomposition.t -> locality:int -> int
(** The round bound charged: [c · 2·(d·r + r + 1)] with [r = locality]. *)
