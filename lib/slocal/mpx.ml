module G = Ps_graph.Graph
module Rng = Ps_util.Rng

type t = {
  cluster_of : int array;
  center_of : int array;
  radius_of : int array;
  n_clusters : int;
  beta : float;
}

module Frontier = Set.Make (struct
  type t = float * int (* shifted arrival time, vertex *)

  let compare (t1, v1) (t2, v2) =
    match Float.compare t1 t2 with 0 -> Int.compare v1 v2 | c -> c
end)

(* Shifted-distance Dijkstra: every vertex is a potential center starting
   at time -δ_v; a vertex is claimed by the first arrival.  Unit edge
   lengths, so arrival times are (integer - δ_center). *)
let decompose rng ~beta g =
  if beta <= 0.0 then invalid_arg "Mpx.decompose: beta must be positive";
  let n = G.n_vertices g in
  let delta =
    Array.init n (fun _ ->
        (* exponential with rate beta by inversion *)
        let u = Rng.float rng 1.0 in
        let u = if u <= 0.0 then epsilon_float else u in
        -.log u /. beta)
  in
  let owner = Array.make n (-1) in
  let arrival = Array.make n infinity in
  let frontier = ref Frontier.empty in
  for v = 0 to n - 1 do
    let t0 = -.delta.(v) in
    arrival.(v) <- t0;
    frontier := Frontier.add (t0, v) !frontier
  done;
  let origin = Array.init n (fun v -> v) in
  (* origin.(v) = center whose wave reaches v first (tentatively) *)
  while not (Frontier.is_empty !frontier) do
    let ((time, v) as entry) = Frontier.min_elt !frontier in
    frontier := Frontier.remove entry !frontier;
    if owner.(v) = -1 && time <= arrival.(v) then begin
      owner.(v) <- origin.(v);
      G.iter_neighbors g v (fun u ->
          if owner.(u) = -1 && time +. 1.0 < arrival.(u) then begin
            frontier := Frontier.remove (arrival.(u), u) !frontier;
            arrival.(u) <- time +. 1.0;
            origin.(u) <- origin.(v);
            frontier := Frontier.add (time +. 1.0, u) !frontier
          end)
    end
  done;
  (* densify cluster ids to 0..c-1 in order of center index *)
  let id_of_center = Hashtbl.create 16 in
  let centers = ref [] in
  for v = 0 to n - 1 do
    let c = owner.(v) in
    if not (Hashtbl.mem id_of_center c) then begin
      Hashtbl.add id_of_center c (Hashtbl.length id_of_center);
      centers := c :: !centers
    end
  done;
  let center_of = Array.of_list (List.rev !centers) in
  let cluster_of = Array.map (Hashtbl.find id_of_center) owner in
  let n_clusters = Array.length center_of in
  (* observed radius: eccentricity of the center within its cluster *)
  let members = Array.make n_clusters [] in
  for v = n - 1 downto 0 do
    members.(cluster_of.(v)) <- v :: members.(cluster_of.(v))
  done;
  let radius_of =
    Array.mapi
      (fun c center ->
        let sub, back = G.induced_subgraph g members.(c) in
        let pos = ref (-1) in
        Array.iteri (fun i v -> if v = center then pos := i) back;
        Ps_graph.Traverse.eccentricity sub !pos)
      center_of
  in
  { cluster_of; center_of; radius_of; n_clusters; beta }

let cut_edges g t =
  let cut = ref 0 in
  G.iter_edges g (fun u v ->
      if t.cluster_of.(u) <> t.cluster_of.(v) then incr cut);
  !cut

let max_radius t = Array.fold_left max 0 t.radius_of

let is_valid g t =
  let n = G.n_vertices g in
  Array.length t.cluster_of = n
  && Array.for_all (fun c -> c >= 0 && c < t.n_clusters) t.cluster_of
  &&
  let members = Array.make t.n_clusters [] in
  Array.iteri (fun v c -> members.(c) <- v :: members.(c)) t.cluster_of;
  let ok = ref true in
  Array.iteri
    (fun c center ->
      let sub, back = G.induced_subgraph g members.(c) in
      if not (Ps_graph.Traverse.is_connected sub) then ok := false;
      let pos = ref (-1) in
      Array.iteri (fun i v -> if v = center then pos := i) back;
      if !pos < 0 then ok := false
      else if Ps_graph.Traverse.eccentricity sub !pos > t.radius_of.(c) then
        ok := false)
    t.center_of;
  !ok

let to_decomposition g t =
  let quotient = G.contract g t.cluster_of in
  let coloring = Ps_graph.Coloring.greedy quotient in
  { Decomposition.cluster_of = Array.copy t.cluster_of;
    color_of = coloring;
    center_of = Array.copy t.center_of;
    radius_of = Array.copy t.radius_of;
    n_clusters = t.n_clusters;
    n_colors = Ps_graph.Coloring.num_colors coloring;
    max_radius = max_radius t }
