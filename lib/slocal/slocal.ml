module G = Ps_graph.Graph
module Rng = Ps_util.Rng
module Tm = Ps_util.Telemetry

type 'state node_view = {
  center : int;
  graph : G.t;
  ids : int array;
  states : 'state option array;
  rng : Rng.t;
}

module type ALGORITHM = sig
  type state
  type output

  val name : string
  val locality : int
  val process : state node_view -> state
  val output : state -> output
end

type stats = {
  locality : int;
  processed : int;
  max_ball_vertices : int;
}

let check_permutation n order =
  if Array.length order <> n then
    invalid_arg "Slocal.run: order length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg "Slocal.run: order is not a permutation";
      seen.(v) <- true)
    order

module Run (A : ALGORITHM) = struct
  let run ?order ?ids ?(seed = 0) g =
    Tm.with_span "slocal.run" @@ fun () ->
    Tm.set_str "algorithm" A.name;
    Tm.set_int "locality" A.locality;
    let n = G.n_vertices g in
    Tm.set_int "n" n;
    let order =
      match order with
      | None -> Array.init n (fun i -> i)
      | Some o ->
          check_permutation n o;
          o
    in
    let ids =
      match ids with
      | None -> Array.init n (fun i -> i)
      | Some ids ->
          if Array.length ids <> n then
            invalid_arg "Slocal.run: ids length mismatch";
          ids
    in
    let master = Rng.create seed in
    let states : A.state option array = Array.make n None in
    let max_ball = ref 0 in
    Array.iter
      (fun v ->
        let ball_graph, back =
          Ps_graph.Traverse.ball_subgraph g v A.locality
        in
        max_ball := max !max_ball (G.n_vertices ball_graph);
        if Tm.enabled () then begin
          Tm.incr "slocal.processed";
          Tm.count "slocal.ball_vertices" (G.n_vertices ball_graph);
          Tm.gauge_max "slocal.max_ball_vertices"
            (float_of_int (G.n_vertices ball_graph))
        end;
        let center = ref (-1) in
        Array.iteri (fun i u -> if u = v then center := i) back;
        let view =
          { center = !center;
            graph = ball_graph;
            ids = Array.map (fun u -> ids.(u)) back;
            states = Array.map (fun u -> states.(u)) back;
            rng = Rng.split_at master v }
        in
        states.(v) <- Some (A.process view))
      order;
    let outputs =
      Array.map
        (function
          | Some s -> A.output s
          | None -> assert false)
        states
    in
    Tm.set_int "processed" n;
    Tm.set_int "max_ball_vertices" !max_ball;
    (outputs,
     { locality = A.locality; processed = n; max_ball_vertices = !max_ball })

  let run_random_order ~rng ?ids g =
    run ~order:(Rng.permutation rng (G.n_vertices g)) ?ids g
end
