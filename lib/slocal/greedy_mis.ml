module Algo = struct
  type state = bool
  type output = bool

  let name = "slocal-greedy-mis"
  let locality = 1

  let process (view : state Slocal.node_view) =
    not
      (Ps_graph.Graph.exists_neighbor view.graph view.center (fun u ->
           Option.value ~default:false view.states.(u)))

  let output s = s
end

module Runner = Slocal.Run (Algo)

let run ?order ?seed g = Runner.run ?order ?seed g

let run_random_order ~rng g = Runner.run_random_order ~rng g
