(** Locality-2 SLOCAL maximal matching.

    A processed node first honors an existing claim (an earlier-processed
    neighbor that recorded it as partner); otherwise it claims the
    smallest neighbor that is still unprocessed and unclaimed.  Checking
    "unclaimed" needs the states of the neighbor's neighbors, hence
    locality 2 — one more than MIS/coloring need, which is the textbook
    placement of matching in the SLOCAL hierarchy (edges, not vertices,
    are the unit of conflict).

    For every processing order the result is a maximal matching: a claim
    is always eventually reciprocated (the claimed node sees it when
    processed), and an edge with two unmatched endpoints would have been
    claimed by whichever endpoint was processed first. *)

module Algo : sig
  type state =
    | Matched_with of int  (** id of the claimed / honored partner *)
    | Single

  type output = state

  val name : string
  val locality : int
  val process : state Slocal.node_view -> state
  val output : state -> output
end
(** The algorithm itself (satisfies [Slocal.ALGORITHM]), for the generic
    SLOCAL→LOCAL {!Compiler}. *)

val run :
  ?order:int array ->
  ?seed:int ->
  Ps_graph.Graph.t ->
  int array * Slocal.stats
(** Partner array in the {!Ps_graph.Matching} representation. *)

val run_random_order :
  rng:Ps_util.Rng.t -> Ps_graph.Graph.t -> int array * Slocal.stats
