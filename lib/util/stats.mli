(** Descriptive statistics for experiment tables.

    All functions take a non-empty [float array] unless stated otherwise;
    empty input raises [Invalid_argument]. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;   (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;      (** 90th percentile, linear interpolation *)
}

val mean : float array -> float
val stddev : float array -> float
val min_max : float array -> float * float
val percentile : float array -> float -> float
(** [percentile a q] for [q] in [0,100], linear interpolation between order
    statistics. Does not mutate its argument. *)

val median : float array -> float

val percentile_nearest : float array -> float -> float
(** [percentile_nearest sorted q] for [q] in [0,1]: nearest-rank
    percentile of an array *already sorted ascending* (e.g. with
    [Array.sort Float.compare]).  Unlike [percentile] it does not
    interpolate and it returns [0.0] on an empty array — the behaviour
    latency reporters want for "no samples yet".  NaN entries sort
    below every number under [Float.compare], so they can only surface
    at low quantiles; callers feeding measured durations never produce
    them.  Does not mutate or copy its argument; [q] outside [0,1]
    raises [Invalid_argument]. *)

val summarize : float array -> summary
val of_ints : int array -> float array

val geometric_mean : float array -> float
(** Requires all entries positive. *)

val pp_summary : Format.formatter -> summary -> unit

val linear_regression : (float * float) array -> float * float * float
(** Least-squares fit [y = slope·x + intercept] over [(x, y)] points;
    returns [(slope, intercept, r²)].  Needs ≥ 2 points with at least two
    distinct x values ([Invalid_argument] otherwise); an exactly constant
    y yields [r² = 1]. *)

val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram ~bins a] buckets values into equal-width bins over
    [min,max]; returns [(lo, hi, count)] per bin. One bin collapses
    degenerate ranges. Default 10 bins. *)
