(** Disjoint-set forest with union by rank and path compression.

    Near-O(1) amortized [find]/[union]; used for connected components and
    for cluster merging in network decomposition. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [true] iff they were distinct. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets. *)

val size_of : t -> int -> int
(** Size of the set containing the element. *)

val components : t -> int list array
(** [components t] groups elements by representative; the array is indexed
    by a dense component id in [0 .. count-1], each list sorted
    increasingly. *)
