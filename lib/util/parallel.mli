(** Fork-join data parallelism over OCaml 5 domains.

    Designed for deterministic bulk work split into disjoint contiguous
    index ranges — each worker writes its own slice of a pre-sized array,
    so results are bit-identical for every domain count.  There is no
    pool: every call spawns [domains - 1] fresh domains and joins them
    before returning, which is the right trade-off for the coarse-grained
    passes used here (a spawn costs microseconds). *)

val available : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    the [domains] arguments below. *)

val auto_units_per_domain : int
(** The calibration constant behind every [?domains:0] auto heuristic in
    the repository: one extra domain is justified per this many units of
    bulk work (a conflict-graph triple, a CSR row).  Measured against
    the sharded-cursor scheduler: a Domain.spawn/join round trip costs a
    few hundred microseconds, a unit costs on the order of a
    microsecond, and the constant keeps spawn/join under ~10% of a
    marginal domain's work. *)

val effective_domains : requested:int -> units:int -> slices:int -> int
(** Resolve a caller's [?domains] request into the count actually used,
    with one clamping rule for the whole repository: [requested = 0]
    picks [units / auto_units_per_domain] domains (at least 1, at most
    {!available}); any explicit request is honored as given.  Either way
    the result is clamped to [\[1, max slices 1\]] — [slices] is the
    number of schedulable work items, so no spawned domain can be left
    without a slice. *)

(** Per-domain sharded cursors with work stealing — the dynamic
    scheduler for data-parallel loops whose iterations vary wildly in
    cost (CSR rows, conflict-graph slots).  The index range is split
    into one contiguous shard per domain, each drained through its own
    atomic cursor; a domain whose shard is exhausted steals chunks from
    the other shards' cursors.  Unlike the single shared cursor this
    replaces, chunk claims are uncontended (no cross-core cache-line
    bouncing) until the tail of the range.  Any (domain, chunk)
    assignment yields the same results for disjoint-write loops, so
    schedules remain bit-reproducibility-safe. *)
module Sharded_cursor : sig
  type t

  val create : domains:int -> ?chunk:int -> lo:int -> hi:int -> unit -> t
  (** Split [\[lo, hi)] into [domains] balanced shards.  [chunk] is the
      claim granularity (default: [max 32 ((hi-lo)/(domains*16))]).
      Raises [Invalid_argument] if [domains < 1], [chunk < 1] or
      [hi < lo]. *)

  val next : t -> int -> (int * int) option
  (** [next t d] claims the next chunk for domain [d] as a [(lo, hi)]
      half-open range — from [d]'s own shard while it lasts, then by
      stealing — or [None] when every shard is drained. *)

  val drain : t -> int -> (int -> unit) -> unit
  (** [drain t d work] runs [work i] for every index of every chunk
      domain [d] claims, until {!next} returns [None]. *)
end

val fork_join : domains:int -> (int -> unit) -> unit
(** [fork_join ~domains f] runs [f 0 .. f (domains-1)], with [f 0] on the
    calling domain and the rest on freshly spawned domains, and returns
    once all have finished.  [domains <= 1] degrades to plain [f 0] with
    no spawning.

    {b Failure semantics.}  A raising worker never deadlocks or leaks the
    others: every spawned domain is joined unconditionally before the
    call returns.  If one or more [f d] raise, the exception of the
    lowest-indexed failing worker (the caller's own chunk 0 first) is
    re-raised with its original backtrace after all domains have been
    joined; the remaining exceptions are dropped. *)

val fork_join_staged :
  domains:int ->
  stage1:(int -> unit) ->
  mid:(unit -> unit) ->
  stage2:(int -> unit) ->
  unit
(** Two data-parallel stages separated by a sequential step, on a {e
    single} set of spawned domains: every domain runs [stage1 d], all
    meet at a barrier, domain 0 alone runs [mid ()], and after a second
    barrier every domain runs [stage2 d].  Functionally equivalent to
    two consecutive {!fork_join} calls with [mid] between them, but pays
    the domain spawn/join cost once instead of twice — this is what
    makes parallel two-pass CSR construction worthwhile at moderate
    sizes, where a second round of spawns used to eat the entire win.
    [domains <= 1] degrades to [stage1 0; mid (); stage2 0] with no
    spawning and no synchronization.

    {b Failure semantics.}  As {!fork_join}: every domain is joined
    before the call returns and the lowest-indexed failure is re-raised
    with its backtrace.  A raising stage never strands a sibling at a
    barrier — the first failure aborts the remaining stages (including
    [mid]) on every domain, while all domains still arrive at both
    barriers. *)

val range : pieces:int -> lo:int -> hi:int -> int -> int * int
(** [range ~pieces ~lo ~hi i] is the [i]-th of [pieces] balanced
    contiguous subranges of [\[lo, hi)], as a [(start, stop)] pair with
    [stop] exclusive.  The subranges partition [\[lo, hi)] and differ in
    length by at most one. *)

val parallel_for : domains:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~domains ~lo ~hi f] calls [f i] for every
    [lo <= i < hi], split across up to [domains] domains in contiguous
    chunks ([range] above).  The effective domain count is clamped to the
    iteration count; [domains <= 1] runs sequentially in order. *)
