(** Fork-join data parallelism over OCaml 5 domains.

    Designed for deterministic bulk work split into disjoint contiguous
    index ranges — each worker writes its own slice of a pre-sized array,
    so results are bit-identical for every domain count.  There is no
    pool: every call spawns [domains - 1] fresh domains and joins them
    before returning, which is the right trade-off for the coarse-grained
    passes used here (a spawn costs microseconds). *)

val available : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    the [domains] arguments below. *)

val fork_join : domains:int -> (int -> unit) -> unit
(** [fork_join ~domains f] runs [f 0 .. f (domains-1)], with [f 0] on the
    calling domain and the rest on freshly spawned domains, and returns
    once all have finished.  [domains <= 1] degrades to plain [f 0] with
    no spawning.

    {b Failure semantics.}  A raising worker never deadlocks or leaks the
    others: every spawned domain is joined unconditionally before the
    call returns.  If one or more [f d] raise, the exception of the
    lowest-indexed failing worker (the caller's own chunk 0 first) is
    re-raised with its original backtrace after all domains have been
    joined; the remaining exceptions are dropped. *)

val range : pieces:int -> lo:int -> hi:int -> int -> int * int
(** [range ~pieces ~lo ~hi i] is the [i]-th of [pieces] balanced
    contiguous subranges of [\[lo, hi)], as a [(start, stop)] pair with
    [stop] exclusive.  The subranges partition [\[lo, hi)] and differ in
    length by at most one. *)

val parallel_for : domains:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~domains ~lo ~hi f] calls [f i] for every
    [lo <= i < hi], split across up to [domains] domains in contiguous
    chunks ([range] above).  The effective domain count is clamped to the
    iteration count; [domains <= 1] runs sequentially in order. *)
