(** FNV-1a 64-bit streaming hash with an avalanche finalizer.

    Feed data into a [state] with the combinators below, then call
    [finish] to obtain the final 64-bit digest.  All inputs are hashed
    byte-by-byte in a fixed little-endian order, so digests are stable
    across architectures and OCaml versions — safe to persist in cache
    files and compare across processes. *)

type state = int64
(** Intermediate hash state.  Not a digest: always pass through
    [finish] before storing or comparing. *)

val init : state
(** The FNV-1a 64-bit offset basis. *)

val int : state -> int -> state
(** Hash a native [int] as the 8 little-endian bytes of its two's
    complement representation. *)

val int64 : state -> int64 -> state
(** Hash an [int64] as 8 little-endian bytes. *)

val string : state -> string -> state
(** Hash every byte of the string (no length prefix — append a
    terminator or hash the length separately when concatenation
    ambiguity matters). *)

val finish : state -> int64
(** SplitMix64-style avalanche of the raw FNV state; improves low-bit
    diffusion so the digest can be truncated or bucketed safely. *)

val to_hex : int64 -> string
(** 16-digit lowercase hex rendering of a digest (zero padded). *)

val string_hash : string -> int64
(** [string_hash s] = [finish (string init s)]. *)
