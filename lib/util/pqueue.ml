type t = {
  heap : int array;          (* heap of keys *)
  prio : int array;          (* prio.(key) *)
  pos : int array;           (* pos.(key) = index in heap, or -1 *)
  capacity : int;            (* keys live in [0, capacity) *)
  mutable size : int;
}

let create n =
  if n < 0 then invalid_arg "Pqueue.create: negative capacity";
  { heap = Array.make (max n 1) 0;
    prio = Array.make (max n 1) 0;
    pos = Array.make (max n 1) (-1);
    capacity = n;
    size = 0 }

let is_empty t = t.size = 0
let cardinal t = t.size
let capacity t = t.capacity

(* Explicit check so a stray key fails with the key and the capacity in
   the message instead of escaping as a bare array-bounds error. *)
let check_key t key =
  if key < 0 || key >= t.capacity then
    invalid_arg
      (Printf.sprintf "Pqueue: key %d out of range [0, %d)" key t.capacity)

let mem t key =
  check_key t key;
  t.pos.(key) >= 0

(* Order by (priority, key) so pops are deterministic. *)
let less t a b =
  let pa = t.prio.(a) and pb = t.prio.(b) in
  pa < pb || (pa = pb && a < b)

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.pos.(b) <- i;
  t.pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && less t t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t key prio =
  if mem t key then invalid_arg "Pqueue.insert: key already present";
  t.heap.(t.size) <- key;
  t.pos.(key) <- t.size;
  t.prio.(key) <- prio;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let priority t key =
  if not (mem t key) then raise Not_found;
  t.prio.(key)

let update t key prio =
  if not (mem t key) then raise Not_found;
  let old = t.prio.(key) in
  t.prio.(key) <- prio;
  let i = t.pos.(key) in
  if prio < old then sift_up t i else sift_down t i

let remove_at t i =
  let key = t.heap.(i) in
  t.size <- t.size - 1;
  t.pos.(key) <- -1;
  if i < t.size then begin
    let last = t.heap.(t.size) in
    t.heap.(i) <- last;
    t.pos.(last) <- i;
    sift_up t i;
    sift_down t t.pos.(last)
  end

let remove t key =
  if not (mem t key) then raise Not_found;
  remove_at t t.pos.(key)

let peek_min t =
  if t.size = 0 then raise Not_found;
  let key = t.heap.(0) in
  (key, t.prio.(key))

let pop_min t =
  let ((key, _) as result) = peek_min t in
  remove_at t t.pos.(key);
  result
