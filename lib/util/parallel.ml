(* Minimal fork-join helpers over OCaml 5 domains.

   The repository's parallel code paths (the conflict-graph CSR builder)
   only need deterministic data-parallel loops over disjoint index
   ranges, so this module stays deliberately small: no pools, no work
   stealing.  Spawning a domain costs microseconds; callers should only
   ask for [domains > 1] on inputs large enough to amortize that. *)

let available () = Domain.recommended_domain_count ()

(* Each body runs under its own exception trap so a raising worker can
   never leave a sibling unjoined: the spawn closures cannot throw out of
   [Domain.spawn]'s thunk, every domain is joined unconditionally, and
   the first failure (by worker index, caller's chunk 0 first) is
   re-raised with its original backtrace once all domains are back. *)
let fork_join ~domains f =
  if domains <= 1 then f 0
  else begin
    let protect d () =
      match f d with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let workers =
      Array.init (domains - 1) (fun i -> Domain.spawn (protect (i + 1)))
    in
    let failures = Array.make domains None in
    failures.(0) <- protect 0 ();
    Array.iteri (fun i d -> failures.(i + 1) <- Domain.join d) workers;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

let range ~pieces ~lo ~hi i =
  if pieces <= 0 then invalid_arg "Parallel.range: pieces must be positive";
  if i < 0 || i >= pieces then invalid_arg "Parallel.range: piece out of range";
  let len = hi - lo in
  if len <= 0 then (lo, lo)
  else begin
    let base = len / pieces and extra = len mod pieces in
    let s = lo + (i * base) + min i extra in
    let e = s + base + if i < extra then 1 else 0 in
    (s, e)
  end

let parallel_for ~domains ~lo ~hi f =
  if hi > lo then begin
    let domains = max 1 (min domains (hi - lo)) in
    fork_join ~domains (fun d ->
        let s, e = range ~pieces:domains ~lo ~hi d in
        for i = s to e - 1 do
          f i
        done)
  end
