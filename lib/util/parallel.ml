(* Minimal fork-join helpers over OCaml 5 domains.

   The repository's parallel code paths (the conflict-graph CSR builder)
   only need deterministic data-parallel loops over disjoint index
   ranges, so this module stays deliberately small: no pools, no work
   stealing.  Spawning a domain costs microseconds; callers should only
   ask for [domains > 1] on inputs large enough to amortize that. *)

let available () = Domain.recommended_domain_count ()

(* Each body runs under its own exception trap so a raising worker can
   never leave a sibling unjoined: the spawn closures cannot throw out of
   [Domain.spawn]'s thunk, every domain is joined unconditionally, and
   the first failure (by worker index, caller's chunk 0 first) is
   re-raised with its original backtrace once all domains are back. *)
let fork_join ~domains f =
  if domains <= 1 then f 0
  else begin
    let protect d () =
      match f d with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let workers =
      Array.init (domains - 1) (fun i -> Domain.spawn (protect (i + 1)))
    in
    let failures = Array.make domains None in
    failures.(0) <- protect 0 ();
    Array.iteri (fun i d -> failures.(i + 1) <- Domain.join d) workers;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

(* Reusable cyclic barrier: generation counting makes consecutive waits
   on the same barrier safe (a fast domain re-entering the barrier
   cannot race a slow one still leaving the previous generation). *)
type barrier = {
  mutex : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable generation : int;
}

let barrier_create parties =
  { mutex = Mutex.create ();
    cond = Condition.create ();
    parties;
    arrived = 0;
    generation = 0 }

let barrier_wait b =
  Mutex.lock b.mutex;
  let gen = b.generation in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.generation <- gen + 1;
    Condition.broadcast b.cond
  end
  else
    while b.generation = gen do
      Condition.wait b.cond b.mutex
    done;
  Mutex.unlock b.mutex

let fork_join_staged ~domains ~stage1 ~mid ~stage2 =
  if domains <= 1 then begin
    stage1 0;
    mid ();
    stage2 0
  end
  else begin
    let b = barrier_create domains in
    (* Any failure flips [abort]; later stages are skipped everywhere but
       every domain still arrives at both barriers, so a raising stage can
       never strand a sibling in [barrier_wait]. *)
    let abort = Atomic.make false in
    let run d () =
      let failure = ref None in
      let guard f =
        if not (Atomic.get abort) then
          match f () with
          | () -> ()
          | exception e ->
              Atomic.set abort true;
              if Option.is_none !failure then
                failure := Some (e, Printexc.get_raw_backtrace ())
      in
      guard (fun () -> stage1 d);
      barrier_wait b;
      if d = 0 then guard mid;
      barrier_wait b;
      guard (fun () -> stage2 d);
      !failure
    in
    let workers =
      Array.init (domains - 1) (fun i -> Domain.spawn (run (i + 1)))
    in
    let failures = Array.make domains None in
    failures.(0) <- run 0 ();
    Array.iteri (fun i d -> failures.(i + 1) <- Domain.join d) workers;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

let range ~pieces ~lo ~hi i =
  if pieces <= 0 then invalid_arg "Parallel.range: pieces must be positive";
  if i < 0 || i >= pieces then invalid_arg "Parallel.range: piece out of range";
  let len = hi - lo in
  if len <= 0 then (lo, lo)
  else begin
    let base = len / pieces and extra = len mod pieces in
    let s = lo + (i * base) + min i extra in
    let e = s + base + if i < extra then 1 else 0 in
    (s, e)
  end

let parallel_for ~domains ~lo ~hi f =
  if hi > lo then begin
    let domains = max 1 (min domains (hi - lo)) in
    fork_join ~domains (fun d ->
        let s, e = range ~pieces:domains ~lo ~hi d in
        for i = s to e - 1 do
          f i
        done)
  end
