(* Minimal fork-join helpers over OCaml 5 domains.

   The repository's parallel code paths (the conflict-graph CSR builder)
   only need deterministic data-parallel loops over disjoint index
   ranges, so this module stays deliberately small: no pools, no work
   stealing.  Spawning a domain costs microseconds; callers should only
   ask for [domains > 1] on inputs large enough to amortize that. *)

let available () = Domain.recommended_domain_count ()

let fork_join ~domains f =
  if domains <= 1 then f 0
  else begin
    let workers =
      Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> f (i + 1)))
    in
    let first = ref (try f 0; None with e -> Some e) in
    Array.iter
      (fun d ->
        try Domain.join d
        with e -> if Option.is_none !first then first := Some e)
      workers;
    match !first with Some e -> raise e | None -> ()
  end

let range ~pieces ~lo ~hi i =
  if pieces <= 0 then invalid_arg "Parallel.range: pieces must be positive";
  if i < 0 || i >= pieces then invalid_arg "Parallel.range: piece out of range";
  let len = hi - lo in
  if len <= 0 then (lo, lo)
  else begin
    let base = len / pieces and extra = len mod pieces in
    let s = lo + (i * base) + min i extra in
    let e = s + base + if i < extra then 1 else 0 in
    (s, e)
  end

let parallel_for ~domains ~lo ~hi f =
  if hi > lo then begin
    let domains = max 1 (min domains (hi - lo)) in
    fork_join ~domains (fun d ->
        let s, e = range ~pieces:domains ~lo ~hi d in
        for i = s to e - 1 do
          f i
        done)
  end
