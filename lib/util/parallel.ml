(* Minimal fork-join helpers over OCaml 5 domains.

   The repository's parallel code paths (the conflict-graph CSR builder)
   only need deterministic data-parallel loops over disjoint index
   ranges, so this module stays deliberately small: no pools, no work
   stealing.  Spawning a domain costs microseconds; callers should only
   ask for [domains > 1] on inputs large enough to amortize that. *)

let available () = Domain.recommended_domain_count ()

(* One knob for every ?domains:0 auto heuristic in the repository: a
   Domain.spawn/join round trip costs a few hundred microseconds while a
   unit of bulk work (one conflict-graph triple, one CSR row) costs on
   the order of a microsecond, so an extra domain only pays for itself
   once it gets several thousand units.  With the sharded-cursor
   scheduler below the per-chunk cost is a single uncontended
   fetch-and-add (the old single shared cursor made every chunk claim a
   cross-core cache-line bounce), so the break-even moved down from the
   8192 units the PR-5 build was calibrated at; 6144 keeps spawn/join
   under ~10% of a marginal domain's work on the micro-bench box. *)
let auto_units_per_domain = 6144

let effective_domains ~requested ~units ~slices =
  let clamp d = max 1 (min d (max slices 1)) in
  if requested = 0 then
    clamp (min (available ()) (max 1 (units / auto_units_per_domain)))
  else clamp requested

(* Per-domain sharded cursors with work stealing.

   The staged CSR builds used to drain one global atomic cursor: every
   chunk claim by every domain was a fetch-and-add on the same cache
   line, which serializes at high domain counts.  Here the index range
   is split into [domains] contiguous shards, each with its own atomic
   cursor; a domain drains its own shard privately and only touches
   other shards once its own is empty, stealing chunks from the victims'
   cursors with the same fetch-and-add it would use locally.  Claims are
   therefore uncontended until the tail of the range, and the total
   overshoot is bounded by one chunk per (domain, shard) pair.

   The atomics are allocated with padding blocks between them so
   same-generation minor-heap neighbors do not share a cache line (best
   effort: the GC may re-pack them later, by which point the hot phase
   is over). *)
module Sharded_cursor = struct
  type t = {
    cursors : int Atomic.t array; (* shard d claims from cursors.(d) *)
    his : int array;              (* shard d owns [lo_d, his.(d)) *)
    chunk : int;
    domains : int;
  }

  let create ~domains ?chunk ~lo ~hi () =
    if domains < 1 then invalid_arg "Sharded_cursor.create: domains < 1";
    if hi < lo then invalid_arg "Sharded_cursor.create: hi < lo";
    let chunk =
      match chunk with
      | Some c ->
          if c < 1 then invalid_arg "Sharded_cursor.create: chunk < 1";
          c
      | None -> max 32 ((hi - lo) / (domains * 16))
    in
    let his = Array.make domains lo in
    let cursors =
      Array.init domains (fun d ->
          let len = hi - lo in
          let base = len / domains and extra = len mod domains in
          let s = lo + (d * base) + min d extra in
          let e = s + base + if d < extra then 1 else 0 in
          his.(d) <- e;
          let c = Atomic.make s in
          (* Cache-line padding between consecutively allocated atomics. *)
          ignore (Sys.opaque_identity (Array.make 8 0));
          c)
    in
    { cursors; his; chunk; domains }

  let pop t shard =
    let pos = Atomic.fetch_and_add t.cursors.(shard) t.chunk in
    let hi = t.his.(shard) in
    if pos >= hi then None else Some (pos, min hi (pos + t.chunk))

  let next t d =
    if d < 0 || d >= t.domains then invalid_arg "Sharded_cursor.next: domain";
    match pop t d with
    | Some _ as r -> r
    | None ->
        (* Own shard drained: steal, scanning victims round-robin from
           the right neighbor so thieves spread out. *)
        let rec steal i =
          if i = t.domains then None
          else
            match pop t ((d + i) mod t.domains) with
            | Some _ as r -> r
            | None -> steal (i + 1)
        in
        steal 1

  let drain t d work =
    let continue = ref true in
    while !continue do
      match next t d with
      | None -> continue := false
      | Some (lo, hi) ->
          for i = lo to hi - 1 do
            work i
          done
    done
end

(* Each body runs under its own exception trap so a raising worker can
   never leave a sibling unjoined: the spawn closures cannot throw out of
   [Domain.spawn]'s thunk, every domain is joined unconditionally, and
   the first failure (by worker index, caller's chunk 0 first) is
   re-raised with its original backtrace once all domains are back. *)
let fork_join ~domains f =
  if domains <= 1 then f 0
  else begin
    let protect d () =
      match f d with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let workers =
      Array.init (domains - 1) (fun i -> Domain.spawn (protect (i + 1)))
    in
    let failures = Array.make domains None in
    failures.(0) <- protect 0 ();
    Array.iteri (fun i d -> failures.(i + 1) <- Domain.join d) workers;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

(* Reusable cyclic barrier: generation counting makes consecutive waits
   on the same barrier safe (a fast domain re-entering the barrier
   cannot race a slow one still leaving the previous generation). *)
type barrier = {
  mutex : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable generation : int;
}

let barrier_create parties =
  { mutex = Mutex.create ();
    cond = Condition.create ();
    parties;
    arrived = 0;
    generation = 0 }

let barrier_wait b =
  Mutex.lock b.mutex;
  let gen = b.generation in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.generation <- gen + 1;
    Condition.broadcast b.cond
  end
  else
    while b.generation = gen do
      Condition.wait b.cond b.mutex
    done;
  Mutex.unlock b.mutex

let fork_join_staged ~domains ~stage1 ~mid ~stage2 =
  if domains <= 1 then begin
    stage1 0;
    mid ();
    stage2 0
  end
  else begin
    let b = barrier_create domains in
    (* Any failure flips [abort]; later stages are skipped everywhere but
       every domain still arrives at both barriers, so a raising stage can
       never strand a sibling in [barrier_wait]. *)
    let abort = Atomic.make false in
    let run d () =
      let failure = ref None in
      let guard f =
        if not (Atomic.get abort) then
          match f () with
          | () -> ()
          | exception e ->
              Atomic.set abort true;
              if Option.is_none !failure then
                failure := Some (e, Printexc.get_raw_backtrace ())
      in
      guard (fun () -> stage1 d);
      barrier_wait b;
      if d = 0 then guard mid;
      barrier_wait b;
      guard (fun () -> stage2 d);
      !failure
    in
    let workers =
      Array.init (domains - 1) (fun i -> Domain.spawn (run (i + 1)))
    in
    let failures = Array.make domains None in
    failures.(0) <- run 0 ();
    Array.iteri (fun i d -> failures.(i + 1) <- Domain.join d) workers;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

let range ~pieces ~lo ~hi i =
  if pieces <= 0 then invalid_arg "Parallel.range: pieces must be positive";
  if i < 0 || i >= pieces then invalid_arg "Parallel.range: piece out of range";
  let len = hi - lo in
  if len <= 0 then (lo, lo)
  else begin
    let base = len / pieces and extra = len mod pieces in
    let s = lo + (i * base) + min i extra in
    let e = s + base + if i < extra then 1 else 0 in
    (s, e)
  end

let parallel_for ~domains ~lo ~hi f =
  if hi > lo then begin
    let domains = max 1 (min domains (hi - lo)) in
    fork_join ~domains (fun d ->
        let s, e = range ~pieces:domains ~lo ~hi d in
        for i = s to e - 1 do
          f i
        done)
  end
