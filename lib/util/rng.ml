type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Finalizer from SplitMix64: xor-shift multiply mixing of the Weyl state. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

let split_at t i =
  (* Derive child [i] from the current state without consuming it: mix the
     state with a second independent Weyl sequence indexed by [i]. *)
  let salt = Int64.mul (Int64.of_int (i + 1)) 0xD1B54A32D192ED03L in
  { state = mix64 (Int64.logxor t.state salt) }

let streams t n =
  if n < 0 then invalid_arg "Rng.streams: n must be non-negative";
  Array.init n (split_at t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r *. 0x1p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u = 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if 3 * k >= n then Array.sub (permutation t n) 0 k
  else begin
    (* Sparse case: hash-set based rejection keeps this O(k) in expectation. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))
