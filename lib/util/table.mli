(** ASCII table rendering for experiment output.

    The benchmark harness prints one table per experiment; this module
    keeps the formatting in one place so every table lines up the same
    way. Cells are strings; columns are sized to their widest cell. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table. [aligns] defaults to [Right] for every
    column; its length, when given, must match [headers]. *)

val add_row : t -> string list -> unit
(** Row length must match the header length. *)

val add_rule : t -> unit
(** Insert a horizontal separator between row groups. *)

val render : t -> string
(** Multi-line string, no trailing newline. *)

val print : ?title:string -> t -> unit
(** Render to stdout with an optional underlined title. *)

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> string
(** Fixed 3-decimal format used for approximation ratios. *)

val cell_bool : bool -> string
(** ["yes"] / ["no"]. *)
