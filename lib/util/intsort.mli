(** Monomorphic in-place sorting of int-array ranges.

    The CSR builders ({!Ps_graph.Graph} streaming constructors, the
    conflict-graph fill pass) sort millions of short adjacency rows; a
    closure-free quicksort over an explicit range avoids both the
    comparator calls and the [Array.sub] copies that [Array.sort] would
    cost per row. *)

val sort_range : int array -> int -> int -> unit
(** [sort_range a lo hi] sorts [a.(lo .. hi-1)] ascending, in place.
    Empty and single-element ranges are no-ops. *)

val sort : int array -> unit
(** Whole-array convenience wrapper over {!sort_range}. *)

val dedup_sorted_range : int array -> int -> int -> int
(** [dedup_sorted_range a lo hi] collapses equal adjacent elements of the
    {e sorted} range [a.(lo .. hi-1)] towards [lo] and returns the new
    exclusive end; entries at and beyond it are unspecified. *)
