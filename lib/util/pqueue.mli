(** Mutable min-priority queue over integer keys with integer priorities,
    supporting {e decrease-key} and {e increase-key} — the operations the
    min-degree greedy MaxIS heuristic needs as vertices lose neighbors.

    Implemented as a binary heap with a position index, so all operations
    are O(log n) and membership is O(1). Keys are drawn from a dense
    universe [0 .. capacity-1].

    {b Fixed capacity.} The capacity chosen at {!create} time is final:
    the backing arrays never grow, and every operation that takes a key
    raises [Invalid_argument] — naming the offending key and the
    capacity — when the key is outside [0 .. capacity-1]. Size the queue
    for the full key universe up front. *)

type t

val create : int -> t
(** [create n] is an empty queue for keys in [0..n-1]. The capacity [n]
    is fixed for the lifetime of the queue. Raises [Invalid_argument] if
    [n < 0]. *)

val is_empty : t -> bool
val cardinal : t -> int

val capacity : t -> int
(** The fixed key-universe size chosen at {!create} time. *)

val mem : t -> int -> bool
(** [mem q key] is whether [key] is currently in the queue. Raises
    [Invalid_argument] if [key] is outside [0 .. capacity-1]. *)

val insert : t -> int -> int -> unit
(** [insert q key prio]; raises [Invalid_argument] if [key] is present. *)

val priority : t -> int -> int
(** Current priority of a present key; raises [Not_found] otherwise. *)

val update : t -> int -> int -> unit
(** [update q key prio] changes the priority of a present key (either
    direction). *)

val remove : t -> int -> unit
(** Remove a present key. *)

val pop_min : t -> int * int
(** Remove and return [(key, priority)] with minimal priority, ties broken
    by smaller key. Raises [Not_found] when empty. *)

val peek_min : t -> int * int
