(** Mutable min-priority queue over integer keys with integer priorities,
    supporting {e decrease-key} and {e increase-key} — the operations the
    min-degree greedy MaxIS heuristic needs as vertices lose neighbors.

    Implemented as a binary heap with a position index, so all operations
    are O(log n) and membership is O(1). Keys are drawn from a dense
    universe [0 .. capacity-1]. *)

type t

val create : int -> t
(** [create n] is an empty queue for keys in [0..n-1]. *)

val is_empty : t -> bool
val cardinal : t -> int

val mem : t -> int -> bool

val insert : t -> int -> int -> unit
(** [insert q key prio]; raises [Invalid_argument] if [key] is present. *)

val priority : t -> int -> int
(** Current priority of a present key; raises [Not_found] otherwise. *)

val update : t -> int -> int -> unit
(** [update q key prio] changes the priority of a present key (either
    direction). *)

val remove : t -> int -> unit
(** Remove a present key. *)

val pop_min : t -> int * int
(** Remove and return [(key, priority)] with minimal priority, ties broken
    by smaller key. Raises [Not_found] when empty. *)

val peek_min : t -> int * int
