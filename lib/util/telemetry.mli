(** Telemetry: hierarchical spans, named counters and gauges, with a
    genuinely free disabled path.

    Every quantitative claim of the paper is a per-phase quantity of the
    reduction pipeline (edge counts, independent-set sizes, effective λ,
    rounds × messages in the simulators).  This module makes those
    quantities observable on any run: the simulators and the reduction
    drivers record {e spans} (named, timed, hierarchical, carrying typed
    fields) plus global {e counters} and {e gauges}, and two exporters
    turn a recording into a human-readable tree or JSON lines.

    {b Gating.}  Recording is off unless the [PSLOCAL_TRACE] environment
    variable is set (to anything but [""] or ["0"]) or {!set_enabled}
    [true] was called.  When disabled, every entry point is a single
    mutable-bool test — no allocation, no clock read, no hashtable
    lookup — so instrumented hot paths (the conflict-graph builder, the
    LOCAL message loop) cost nothing in production builds.

    {b Concurrency.}  The recorder is domain-safe: the open-span stack is
    domain-local (each domain nests its own spans; a worker's root spans
    are published to the shared trace on completion), while counters,
    gauges and the completed-root list sit behind a mutex that is only
    touched when recording is on.  Short-lived fork-join sections
    ({!Parallel.fork_join}) should still be instrumented around, not
    inside, the parallel loop — per-element spans would swamp the trace —
    but long-lived worker pools (the solve server) may record freely:
    {!with_span} inside a job lands the span in the global trace, and
    externally timed work can be committed with {!now_ns} +
    {!add_completed_span}. *)

(** Typed field values attached to spans. *)
type value = Int of int | Float of float | Bool of bool | Str of string

(** A completed or in-flight span.  [stop_ns = start_ns] while open;
    [fields] and [children] are in insertion order. *)
type span = {
  span_name : string;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable fields : (string * value) list;
  mutable children : span list;
}

val enabled : unit -> bool
(** Current gate state (initially: whether [PSLOCAL_TRACE] is set). *)

val set_enabled : bool -> unit
(** Flip the gate programmatically (e.g. the CLI's [--trace]).  Turning
    recording on does not clear previous data; see {!reset}. *)

val reset : unit -> unit
(** Drop all recorded spans, counters and gauges.  Open spans are
    discarded — call it only between top-level operations. *)

(** {1 Recording} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a fresh span: timed with the
    monotonic clock, child of the innermost open span (or a root).  The
    span is closed even if [f] raises.  Disabled: exactly [f ()]. *)

val now_ns : unit -> int64
(** The recorder's monotonic clock, for callers assembling their own
    spans (see {!add_completed_span}).  Always live, even disabled. *)

val add_completed_span :
  name:string ->
  start_ns:int64 ->
  stop_ns:int64 ->
  (string * value) list ->
  unit
(** [add_completed_span ~name ~start_ns ~stop_ns fields] installs an
    externally timed, already-finished span as a new root (it never
    attaches to the currently open span).  Fields are taken in insertion
    order, as if written by consecutive [set_*] calls.  This is the entry
    point for work whose lifetime does not fit a {!with_span} scope —
    e.g. a served job timed from enqueue (on the IO thread) to response
    (on a worker domain).  Safe from any domain.  Disabled: no-op. *)

val set_int : string -> int -> unit
(** Attach a field to the innermost open span (no-op outside any span;
    a later write to the same key shadows the earlier one on export). *)

val set_float : string -> float -> unit
val set_bool : string -> bool -> unit
val set_str : string -> string -> unit

val count : string -> int -> unit
(** [count name n] adds [n] to the named global counter (created at 0). *)

val incr : string -> unit
(** [incr name] is [count name 1]. *)

val gauge : string -> float -> unit
(** [gauge name v] sets the named gauge (last write wins). *)

val gauge_max : string -> float -> unit
(** [gauge_max name v] raises the named gauge to at least [v]. *)

(** {1 Inspection} *)

val counter_value : string -> int
(** Current value of a counter, [0] if never touched. *)

val gauge_value : string -> float option

val root_spans : unit -> span list
(** Completed top-level spans, oldest first. *)

val find_spans : string -> span list
(** All completed spans with the given name, in depth-first recording
    order (parents before children, siblings oldest first). *)

val field : span -> string -> value option
(** Latest value written for a field key, if any. *)

val duration_ns : span -> int64

(** {1 Export} *)

val pp_tree : Format.formatter -> unit -> unit
(** Human-readable tree: one line per span with duration and fields,
    indented by depth, followed by counters and gauges. *)

val to_json_lines : unit -> string
(** One JSON object per line: spans (depth-first; [{"type":"span",
    "name":..,"path":..,"start_ns":..,"dur_ns":..,"fields":{..}}]) then
    counters and gauges ([{"type":"counter"|"gauge","name":..,
    "value":..}]).  The output parses line-by-line with any JSON
    parser. *)

val write_file : string -> unit
(** Write {!to_json_lines} to a file. *)
