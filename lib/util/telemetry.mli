(** Telemetry: hierarchical spans, named counters and gauges, with a
    genuinely free disabled path.

    Every quantitative claim of the paper is a per-phase quantity of the
    reduction pipeline (edge counts, independent-set sizes, effective λ,
    rounds × messages in the simulators).  This module makes those
    quantities observable on any run: the simulators and the reduction
    drivers record {e spans} (named, timed, hierarchical, carrying typed
    fields) plus global {e counters} and {e gauges}, and two exporters
    turn a recording into a human-readable tree or JSON lines.

    {b Gating.}  Recording is off unless the [PSLOCAL_TRACE] environment
    variable is set (to anything but [""] or ["0"]) or {!set_enabled}
    [true] was called.  When disabled, every entry point is a single
    mutable-bool test — no allocation, no clock read, no hashtable
    lookup — so instrumented hot paths (the conflict-graph builder, the
    LOCAL message loop) cost nothing in production builds.

    {b Concurrency.}  The recorder is deliberately not domain-safe:
    instrument around parallel sections ({!Parallel.fork_join}), never
    inside worker bodies. *)

(** Typed field values attached to spans. *)
type value = Int of int | Float of float | Bool of bool | Str of string

(** A completed or in-flight span.  [stop_ns = start_ns] while open;
    [fields] and [children] are in insertion order. *)
type span = {
  span_name : string;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable fields : (string * value) list;
  mutable children : span list;
}

val enabled : unit -> bool
(** Current gate state (initially: whether [PSLOCAL_TRACE] is set). *)

val set_enabled : bool -> unit
(** Flip the gate programmatically (e.g. the CLI's [--trace]).  Turning
    recording on does not clear previous data; see {!reset}. *)

val reset : unit -> unit
(** Drop all recorded spans, counters and gauges.  Open spans are
    discarded — call it only between top-level operations. *)

(** {1 Recording} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a fresh span: timed with the
    monotonic clock, child of the innermost open span (or a root).  The
    span is closed even if [f] raises.  Disabled: exactly [f ()]. *)

val set_int : string -> int -> unit
(** Attach a field to the innermost open span (no-op outside any span;
    a later write to the same key shadows the earlier one on export). *)

val set_float : string -> float -> unit
val set_bool : string -> bool -> unit
val set_str : string -> string -> unit

val count : string -> int -> unit
(** [count name n] adds [n] to the named global counter (created at 0). *)

val incr : string -> unit
(** [incr name] is [count name 1]. *)

val gauge : string -> float -> unit
(** [gauge name v] sets the named gauge (last write wins). *)

val gauge_max : string -> float -> unit
(** [gauge_max name v] raises the named gauge to at least [v]. *)

(** {1 Inspection} *)

val counter_value : string -> int
(** Current value of a counter, [0] if never touched. *)

val gauge_value : string -> float option

val root_spans : unit -> span list
(** Completed top-level spans, oldest first. *)

val find_spans : string -> span list
(** All completed spans with the given name, in depth-first recording
    order (parents before children, siblings oldest first). *)

val field : span -> string -> value option
(** Latest value written for a field key, if any. *)

val duration_ns : span -> int64

(** {1 Export} *)

val pp_tree : Format.formatter -> unit -> unit
(** Human-readable tree: one line per span with duration and fields,
    indented by depth, followed by counters and gauges. *)

val to_json_lines : unit -> string
(** One JSON object per line: spans (depth-first; [{"type":"span",
    "name":..,"path":..,"start_ns":..,"dur_ns":..,"fields":{..}}]) then
    counters and gauges ([{"type":"counter"|"gauge","name":..,
    "value":..}]).  The output parses line-by-line with any JSON
    parser. *)

val write_file : string -> unit
(** Write {!to_json_lines} to a file. *)
