(* Fowler–Noll–Vo 1a, 64-bit.  Byte-oriented streaming hash used for
   content-addressing graphs and cache entries.  The raw FNV state has
   weak diffusion in the low bits, so [finish] runs a SplitMix64-style
   avalanche before the value is used as a key or truncated. *)

type state = int64

let prime = 0x100000001b3L
let init : state = 0xcbf29ce484222325L

let byte (h : state) (b : int) : state =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

(* Native ints are hashed as their 8 little-endian bytes of the two's
   complement representation, so the same logical value hashes
   identically whether it arrived via an [int array] or an int32
   store widened with [Int32.to_int]. *)
let int (h : state) (v : int) : state =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h ((v lsr (i * 8)) land 0xff)
  done;
  !h

let int64 (h : state) (v : int64) : state =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xff)
  done;
  !h

let string (h : state) (s : string) : state =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let finish (h : state) : int64 =
  let z = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let to_hex (v : int64) = Printf.sprintf "%016Lx" v

let string_hash (s : string) : int64 = finish (string init s)
