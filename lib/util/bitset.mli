(** Fixed-capacity bitsets over the universe [0 .. capacity-1].

    Used throughout for independent sets, visited marks and neighborhood
    masks: membership tests and set algebra over dense integer universes
    are the inner loop of every graph algorithm in this repository. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0..n-1]. *)

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val cardinal : t -> int
(** Population count; O(capacity/64). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove every element. *)

val fill : t -> unit
(** Add every element of the universe. Word-wise (O(capacity/62)); never
    sets stray bits above the capacity, so [equal]/[subset]/[cardinal]
    stay exact on filled sets. *)

val copy : t -> t

val equal : t -> t -> bool
(** Equality as sets; capacities must match. *)

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. *)

val inter_into : t -> t -> unit
(** [dst := dst ∩ src]. *)

val diff_into : t -> t -> unit
(** [dst := dst \ src]. *)

val disjoint : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff [a ⊆ b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n elts] builds a set over [0..n-1]. *)

val choose_opt : t -> int option
(** Smallest member, if any. *)

val pp : Format.formatter -> t -> unit
