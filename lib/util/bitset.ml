type t = { words : int array; capacity : int }

(* 62 usable bits per OCaml int keeps everything unboxed. *)
let bits_per_word = 62

(* A full word: bits 0..61 set. [1 lsl 62] overflows into the sign bit,
   so build the mask by complement instead. *)
let full_word = lnot (lnot 0 lsl bits_per_word)

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  (* Exactly ceil(capacity/62) words: an extra word here used to waste
     space on every set and slow down all the word-wise operations. *)
  { words = Array.make ((capacity + bits_per_word - 1) / bits_per_word) 0;
    capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Word-wise fill: every word fully set, then mask the final word down to
   the capacity so no stray bits sit above it — [equal], [subset] and
   [cardinal] compare words directly and would see phantom elements. *)
let fill t =
  let n = Array.length t.words in
  Array.fill t.words 0 n full_word;
  let r = t.capacity mod bits_per_word in
  if r <> 0 then t.words.(n - 1) <- full_word lsr (bits_per_word - r)

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let same_universe a b =
  if a.capacity <> b.capacity then
    invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_universe a b;
  Array.for_all2 (fun x y -> x = y) a.words b.words

let union_into dst src =
  same_universe dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into dst src =
  same_universe dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let diff_into dst src =
  same_universe dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let disjoint a b =
  same_universe a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let subset a b =
  same_universe a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n elts =
  let t = create n in
  List.iter (add t) elts;
  t

let choose_opt t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (to_list t)
