type value = Int of int | Float of float | Bool of bool | Str of string

type span = {
  span_name : string;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable fields : (string * value) list; (* newest first; reversed on export *)
  mutable children : span list;           (* newest first; reversed on export *)
}

(* The whole recorder hides behind this one flag: every public entry
   point tests it first and returns before touching the clock, the
   hashtables or the allocator.  [PSLOCAL_TRACE] seeds it at startup. *)
(* intentionally global: reads are a single flag load and writes happen
   only at startup/configure time.  pslint: allow global-state *)
let enabled_flag =
  ref
    (match Sys.getenv_opt "PSLOCAL_TRACE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Domain safety: the open-span stack is domain-local (nesting is a
   per-domain notion — a worker's spans must not adopt another domain's
   parent), while the completed roots, counters and gauges are shared and
   guarded by [lock].  The mutex is touched only when recording is on,
   and only at root completion / counter writes — the per-field hot path
   stays lock-free on domain-local state. *)
let lock = Mutex.create ()

(* [@pslint.blocking_ok]: counter/gauge/span bookkeeping only — every
   section under [lock] is a few hashtable or list operations, and the
   disabled path never reaches here at all. *)
let[@pslint.blocking_ok] locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* pslint: allow global-state — guarded by [lock] above *)
let roots : span list ref = ref [] (* completed top-level spans, newest first *)

let stack_key : span list ref Domain.DLS.key =
  (* open spans of the current domain, innermost first *)
  Domain.DLS.new_key (fun () -> ref [])

(* pslint: allow global-state — guarded by [lock] above *)
let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32

(* pslint: allow global-state — guarded by [lock] above *)
let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 32

let reset () =
  locked (fun () ->
      roots := [];
      Hashtbl.reset counters;
      Hashtbl.reset gauges);
  Domain.DLS.get stack_key := []

let now () = Monotonic_clock.now ()
let now_ns = now

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let sp =
      { span_name = name;
        start_ns = now ();
        stop_ns = 0L;
        fields = [];
        children = [] }
    in
    stack := sp :: !stack;
    let finish () =
      sp.stop_ns <- now ();
      (match !stack with
      | top :: rest when top == sp -> stack := rest
      | _ -> () (* a nested reset discarded us; nothing to unwind *));
      match !stack with
      | parent :: _ -> parent.children <- sp :: parent.children
      | [] -> locked (fun () -> roots := sp :: !roots)
    in
    Fun.protect ~finally:finish f
  end

(* Fields are stored newest-first (see the type above); reversing the
   caller's insertion-ordered list keeps export order identical to what
   the equivalent set_* sequence would have produced. *)
let add_completed_span ~name ~start_ns ~stop_ns fields =
  if !enabled_flag then begin
    let sp =
      { span_name = name;
        start_ns;
        stop_ns;
        fields = List.rev fields;
        children = [] }
    in
    locked (fun () -> roots := sp :: !roots)
  end

let set key v =
  if !enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | sp :: _ -> sp.fields <- (key, v) :: sp.fields
    | [] -> ()

let set_int key v = set key (Int v)
let set_float key v = set key (Float v)
let set_bool key v = set key (Bool v)
let set_str key v = set key (Str v)

let counter_ref name =
  match Hashtbl.find_opt counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add counters name r;
      r

let count name n =
  if !enabled_flag then
    locked (fun () ->
        let r = counter_ref name in
        r := !r + n)

let incr name = count name 1

let gauge_ref name =
  match Hashtbl.find_opt gauges name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.add gauges name r;
      r

let gauge name v =
  if !enabled_flag then locked (fun () -> gauge_ref name := v)

let gauge_max name v =
  if !enabled_flag then
    locked (fun () ->
        let r = gauge_ref name in
        if v > !r then r := v)

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with Some r -> !r | None -> 0)

let gauge_value name =
  locked (fun () -> Option.map ( ! ) (Hashtbl.find_opt gauges name))

let root_spans () = List.rev (locked (fun () -> !roots))

let find_spans name =
  let acc = ref [] in
  let rec go sp =
    if sp.span_name = name then acc := sp :: !acc;
    List.iter go (List.rev sp.children)
  in
  List.iter go (root_spans ());
  List.rev !acc

let field sp key = List.assoc_opt key sp.fields
let duration_ns sp = Int64.sub sp.stop_ns sp.start_ns

(* ------------------------------------------------------------------ *)
(* Exporters *)

(* Later writes to a field key shadow earlier ones: keep the first
   occurrence of each key in the newest-first list. *)
let export_fields sp =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (k, _) ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    sp.fields
  |> List.rev

let sorted_bindings tbl =
  locked (fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b
  | Str s -> Format.fprintf ppf "%S" s

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns >= 1e9 then Format.fprintf ppf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf ppf "%.3f ms" (ns /. 1e6)
  else Format.fprintf ppf "%.1f us" (ns /. 1e3)

let pp_tree ppf () =
  let rec pp_span depth sp =
    Format.fprintf ppf "%s%-*s %a" (String.make (2 * depth) ' ')
      (max 1 (32 - (2 * depth)))
      sp.span_name pp_duration (duration_ns sp);
    List.iter
      (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v)
      (export_fields sp);
    Format.pp_print_newline ppf ();
    List.iter (pp_span (depth + 1)) (List.rev sp.children)
  in
  List.iter (pp_span 0) (root_spans ());
  (match sorted_bindings counters with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "counters:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "  %-30s %d@." k v) cs);
  match sorted_bindings gauges with
  | [] -> ()
  | gs ->
      Format.fprintf ppf "gauges:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "  %-30s %g@." k v) gs

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers must be finite; infinities show up in lambda fields of
   empty phases, so map them to strings rather than emit invalid JSON. *)
let json_of_value = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.17g" f
      else Printf.sprintf "\"%s\"" (Float.to_string f)
  | Bool b -> string_of_bool b
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let to_json_lines () =
  let buf = Buffer.create 4096 in
  let rec emit path sp =
    let path =
      if path = "" then sp.span_name else path ^ "/" ^ sp.span_name
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"type\":\"span\",\"name\":\"%s\",\"path\":\"%s\",\"start_ns\":%Ld,\"dur_ns\":%Ld,\"fields\":{"
         (json_escape sp.span_name) (json_escape path) sp.start_ns
         (duration_ns sp));
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_value v)))
      (export_fields sp);
    Buffer.add_string buf "}}\n";
    List.iter (emit path) (List.rev sp.children)
  in
  List.iter (emit "") (root_spans ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n"
           (json_escape k) v))
    (sorted_bindings counters);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}\n"
           (json_escape k)
           (json_of_value (Float v))))
    (sorted_bindings gauges);
  Buffer.contents buf

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json_lines ()))
