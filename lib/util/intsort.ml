(* In-place quicksort on an int-array range — no closure compare, no
   Array.sub.  Median-of-three pivot, insertion sort below 16.  Shared by
   the conflict-graph CSR builder and the streaming graph constructors,
   whose per-row sorts are hot enough that the closure call and bounds
   gymnastics of [Array.sort] show up in profiles. *)

let rec sort_range a lo hi =
  let len = hi - lo in
  if len <= 16 then
    for i = lo + 1 to hi - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  else begin
    let p1 = a.(lo) and p2 = a.(lo + (len / 2)) and p3 = a.(hi - 1) in
    let pivot =
      if p1 < p2 then
        if p2 < p3 then p2 else if p1 < p3 then p3 else p1
      else if p1 < p3 then p1
      else if p2 < p3 then p3
      else p2
    in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while a.(!i) < pivot do incr i done;
      while a.(!j) > pivot do decr j done;
      if !i <= !j then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    sort_range a lo (!j + 1);
    sort_range a !i hi
  end

let sort a = sort_range a 0 (Array.length a)

(* Deduplicate a sorted range in place; returns the new exclusive end. *)
let dedup_sorted_range a lo hi =
  if hi <= lo then lo
  else begin
    let w = ref (lo + 1) in
    for i = lo + 1 to hi - 1 do
      if a.(i) <> a.(!w - 1) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    !w
  end
