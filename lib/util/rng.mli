(** Deterministic, splittable pseudo-random number generator.

    The whole repository routes randomness through this module so every
    experiment, test and benchmark is reproducible from a single integer
    seed.  The core generator is SplitMix64 (Steele, Lea & Flood, OOPSLA
    2014): a 64-bit state advanced by a Weyl sequence and finalized with a
    variant of the MurmurHash3 mixer.  It is fast, passes BigCrush when
    used as here, and — crucially for simulating distributed algorithms —
    supports {e splitting}: deriving independent child generators, e.g. one
    per node of a network, without sharing mutable state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal
    seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future. *)

val split : t -> t
(** [split t] advances [t] and returns a child generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val split_at : t -> int -> t
(** [split_at t i] derives the [i]-th child deterministically {e without}
    advancing [t]; used to give node [i] of a network its own stream. *)

val streams : t -> int -> t array
(** [streams t n] is [n] fresh generators, the [i]-th equal to
    [split_at t i], derived without advancing [t].

    {b Per-domain contract.}  This is the constructor for giving each
    worker of a domain pool its own randomness: the children are
    deterministic functions of [t]'s current state and the index alone
    (same parent state ⇒ same array, independent of domain scheduling),
    their streams are statistically independent of each other and of
    [t]'s own subsequent output (distinct indices select distinct points
    of a second Weyl sequence, then pass through the full SplitMix64
    finalizer — no two children, and no child/parent pair, share state
    trajectories), and each child is a private, unshared [t]: handing
    child [i] to domain [i] requires no locking.  [t] itself must not be
    used concurrently with the derivation, so derive the array before
    spawning. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive.
    Uses rejection sampling, so the result is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] counts Bernoulli([p]) failures before the first
    success; [p] must be in (0, 1]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct values from
    [0..n-1], in random order.  Requires [0 <= k <= n]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
