(* pslint: allow-file no-print — [print] is the CLI's console renderer;
   everything else in this module returns strings. *)

type align = Left | Right

type line = Row of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable lines : line list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | None -> List.map (fun _ -> Right) headers
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns length mismatch";
        a
  in
  { headers; aligns; lines = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: row length mismatch";
  t.lines <- Row row :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let render t =
  let rows =
    List.filter_map (function Row r -> Some r | Rule -> None)
      (List.rev t.lines)
  in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length t.headers)
      rows
  in
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let render_cells row =
    let cells =
      List.map2 (fun (a, w) c -> pad a w c)
        (List.combine t.aligns widths)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let body =
    List.map
      (function Row r -> render_cells r | Rule -> rule)
      (List.rev t.lines)
  in
  String.concat "\n" (rule :: render_cells t.headers :: rule :: body @ [ rule ])

let print ?title t =
  (match title with
  | Some s ->
      print_newline ();
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_endline (render t)

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_ratio x = Printf.sprintf "%.3f" x

let cell_bool b = if b then "yes" else "no"
