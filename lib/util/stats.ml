type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let nonempty a =
  if Array.length a = 0 then invalid_arg "Stats: empty array"

let mean a =
  nonempty a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  nonempty a;
  let n = Array.length a in
  if n = 1 then 0.0
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))
  end

let min_max a =
  nonempty a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let percentile a q =
  nonempty a;
  if q < 0.0 || q > 100.0 then invalid_arg "Stats.percentile";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = q /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median a = percentile a 50.0

let percentile_nearest sorted q =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile_nearest";
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))

let summarize a =
  let lo, hi = min_max a in
  { count = Array.length a;
    mean = mean a;
    stddev = stddev a;
    min = lo;
    max = hi;
    median = median a;
    p90 = percentile a 90.0 }

let of_ints a = Array.map float_of_int a

let geometric_mean a =
  nonempty a;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive entry"
        else acc +. log x)
      0.0 a
  in
  exp (sum_logs /. float_of_int (Array.length a))

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f p90=%.3f max=%.3f" s.count
    s.mean s.stddev s.min s.median s.p90 s.max

let linear_regression points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let xs = Array.map fst points and ys = Array.map snd points in
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sxx := !sxx +. ((x -. mx) *. (x -. mx));
      sxy := !sxy +. ((x -. mx) *. (y -. my));
      syy := !syy +. ((y -. my) *. (y -. my)))
    points;
  if !sxx = 0.0 then
    invalid_arg "Stats.linear_regression: all x values equal";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy)
  in
  (slope, intercept, r2)

let histogram ?(bins = 10) a =
  nonempty a;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max a in
  if lo = hi then [| (lo, hi, Array.length a) |]
  else begin
    let width = (hi -. lo) /. float_of_int bins in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1)
      a;
    Array.mapi
      (fun i c ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
      counts
  end
