(* Content-addressed solved-instance cache.

   Two tiers share one byte-budgeted LRU discipline:

   - the *result* tier maps a fully qualified request key —
     (engine-version, request kind, content hash, requested k, solver,
     seed) — to a finished answer: a whole [Pipeline.result] for
     solves, an opaque rendered payload plus the input graph for
     mis/decompose requests;
   - the *warm* tier maps (engine-version, hypergraph hash, resolved k)
     to an immutable phase-0 [G_k] CSR snapshot
     ([Conflict_graph.Incremental.snapshot]), so a near-duplicate
     request (same instance, different solver or seed) skips the
     conflict-graph enumeration even when its result key misses.

   Trust story: a 64-bit hash is not an identity proof and a cache is a
   mutation target, so (1) every hit compares the stored instance
   against the request with full structural equality before anything is
   served, and (2) hits are re-certified with the deep [Ps_check] audit
   at a configurable sampling rate — a failed audit drops the entry,
   bumps [poisoned], and falls through to a fresh solve.  Only results
   whose certificate passed are ever stored.

   Costs charged to the budget are the marshalled size of each entry
   (exact for what the optional disk tier writes, a faithful proxy for
   heap footprint); warm snapshots are charged their array bytes. *)

module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Pl = Ps_core.Pipeline
module Rd = Ps_core.Reduction
module Cf = Ps_core.Certify
module Cg = Ps_core.Conflict_graph
module Fnv = Ps_util.Fnv
module Rng = Ps_util.Rng

(* Bump whenever a change alters what any solver/engine computes for a
   given (instance, solver, seed, k) — stale persisted entries from
   older versions then never match a key again. *)
let engine_version = "2"

type kind = Solve | Mis | Decompose

let kind_tag = function
  | Solve -> "solve"
  | Mis -> "mis"
  | Decompose -> "decompose"

let hypergraph_hash h =
  let s = ref (Fnv.int Fnv.init (H.n_vertices h)) in
  let m = H.n_edges h in
  s := Fnv.int !s m;
  for e = 0 to m - 1 do
    s := Fnv.int !s (H.edge_size h e);
    H.iter_edge h e (fun v -> s := Fnv.int !s v)
  done;
  Fnv.finish !s

let key_string ~kind ~hash ~k ~solver ~seed =
  Printf.sprintf "v%s:%s:%s:k%s:%s:s%d" engine_version (kind_tag kind)
    (Fnv.to_hex hash)
    (match k with Some k -> string_of_int k | None -> "auto")
    solver seed

type entry =
  | Solve_result of Pl.result
  | Graph_result of { graph : G.t; payload : string }

type warm = { w_h : H.t; w_snap : Cg.Incremental.snapshot }

type config = {
  budget_bytes : int;
  warm_budget_bytes : int;
  audit_rate : float;
  audit_seed : int;
  dir : string option;
}

let default_config =
  { budget_bytes = 64 * 1024 * 1024;
    warm_budget_bytes = 32 * 1024 * 1024;
    audit_rate = 0.05;
    audit_seed = 0;
    dir = None }

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;
  bytes : int;
  budget : int;
  audits : int;
  poisoned : int;
  warm_hits : int;
  warm_entries : int;
  warm_bytes : int;
  disk_hits : int;
}

type t = {
  cfg : config;
  lru : entry Lru.t;
  warm : warm Lru.t;
  rng : Rng.t; (* audit sampling; guarded by mu *)
  mu : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable audits : int;
  mutable poisoned : int;
  mutable warm_hits : int;
  mutable disk_hits : int;
}

let create ?(config = default_config) () =
  if config.audit_rate < 0.0 || config.audit_rate > 1.0 then
    invalid_arg "Cache.create: audit_rate outside [0,1]";
  { cfg = config;
    lru = Lru.create ~budget:config.budget_bytes;
    warm = Lru.create ~budget:config.warm_budget_bytes;
    rng = Rng.create config.audit_seed;
    mu = Mutex.create ();
    hits = 0;
    misses = 0;
    stores = 0;
    audits = 0;
    poisoned = 0;
    warm_hits = 0;
    disk_hits = 0 }

let config t = t.cfg

(* [@pslint.blocking_ok]: the in-memory critical sections under [t.mu]
   are bounded (LRU bookkeeping, counter updates); the one long
   operation behind it, the disk read, is kept off the nonblocking
   submit path by the memory-only [_mem] lookup flavours. *)
let[@pslint.blocking_ok] locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stats t =
  locked t @@ fun () ->
  { hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    evictions = Lru.evictions t.lru + Lru.evictions t.warm;
    entries = Lru.length t.lru;
    bytes = Lru.bytes t.lru;
    budget = t.cfg.budget_bytes;
    audits = t.audits;
    poisoned = t.poisoned;
    warm_hits = t.warm_hits;
    warm_entries = Lru.length t.warm;
    warm_bytes = Lru.bytes t.warm;
    disk_hits = t.disk_hits }

let clear t =
  locked t @@ fun () ->
  Lru.clear t.lru;
  Lru.clear t.warm

(* ------------------------------------------------------------------ *)
(* Optional persistent tier.  One file per entry under [cfg.dir], named
   by the hash of the key; layout is

     "PSC1" ^ fnv64_hex(key ^ "\n" ^ blob) ^ "\n" ^ key ^ "\n" ^ blob

   where [blob] is the marshalled entry.  The checksum guards the
   unmarshal against torn/corrupted files (not against an adversary
   with filesystem write access — the sampled semantic audit is the
   defense that matters there); the embedded key guards against
   filename-hash collisions.  All failures are soft: a bad file is
   deleted and treated as a miss, write errors are ignored. *)

let disk_magic = "PSC1"

let disk_path dir key =
  Filename.concat dir (Fnv.to_hex (Fnv.string_hash key) ^ ".psc")

let disk_checksum key blob = Fnv.to_hex (Fnv.string_hash (key ^ "\n" ^ blob))

let disk_write ~dir ~key blob =
  try
    if not (Sys.file_exists dir) then
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = disk_path dir key in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    (try
       output_string oc disk_magic;
       output_string oc (disk_checksum key blob);
       output_char oc '\n';
       output_string oc key;
       output_char oc '\n';
       output_string oc blob;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()

(* Split a raw file into (checksum, key, blob); None when malformed. *)
let disk_parse buf =
  let mlen = String.length disk_magic in
  let hlen = mlen + 16 in
  if
    String.length buf < hlen + 2
    || not (String.equal (String.sub buf 0 mlen) disk_magic)
    || buf.[hlen] <> '\n'
  then None
  else
    match String.index_from_opt buf (hlen + 1) '\n' with
    | None -> None
    | Some nl ->
        let sum = String.sub buf mlen 16 in
        let key = String.sub buf (hlen + 1) (nl - hlen - 1) in
        let blob =
          String.sub buf (nl + 1) (String.length buf - nl - 1)
        in
        Some (sum, key, blob)

let disk_read_raw path =
  try
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    Some (really_input_string ic (in_channel_length ic))
  with Sys_error _ | End_of_file -> None

let disk_read ~dir ~key =
  let path = disk_path dir key in
  if not (Sys.file_exists path) then None
  else
    let drop () = (try Sys.remove path with Sys_error _ -> ()) in
    match disk_read_raw path with
    | None -> None
    | Some buf -> (
        match disk_parse buf with
        | Some (sum, k, blob)
          when String.equal k key
               && String.equal sum (disk_checksum k blob) -> (
            match (Marshal.from_string blob 0 : entry) with
            | e -> Some (e, String.length blob)
            | exception Failure _ ->
                drop ();
                None)
        | Some (_, k, _) when not (String.equal k key) ->
            (* Filename-hash collision with a different key: leave the
               other key's entry alone, just miss. *)
            None
        | _ ->
            drop ();
            None)

(* ------------------------------------------------------------------ *)
(* Result tier *)

let encode_entry (e : entry) = Marshal.to_string e []

(* Both under [t.mu].  [find_entry_memory] never leaves the in-memory
   tier, so the [_mem] lookup flavours built on it are statically free
   of blocking calls — which is exactly what the effect analyzer checks
   on the submit path.  [find_entry_locked] falls back to the
   persistent tier; the disk stall it can take under the cache mutex is
   why the engine's sole submitter (the shard's batch dispatcher) uses
   the [_mem] flavours and re-consults disk-and-all from a worker. *)
let find_entry_memory t key = Lru.find t.lru key

let find_entry_locked t key =
  match find_entry_memory t key with
  | Some e -> Some e
  | None -> (
      match t.cfg.dir with
      | None -> None
      | Some dir -> (
          match disk_read ~dir ~key with
          | None -> None
          | Some (e, blen) ->
              t.disk_hits <- t.disk_hits + 1;
              Lru.put t.lru key e ~cost:(blen + String.length key + 64);
              Some e))

let store_entry t key e =
  let blob = encode_entry e in
  let cost = String.length blob + String.length key + 64 in
  locked t (fun () ->
      t.stores <- t.stores + 1;
      Lru.put t.lru key e ~cost);
  match t.cfg.dir with
  | None -> ()
  | Some dir -> disk_write ~dir ~key blob

let drop_poisoned t key =
  locked t @@ fun () ->
  ignore (Lru.remove t.lru key : bool);
  (match t.cfg.dir with
  | None -> ()
  | Some dir -> (
      try Sys.remove (disk_path dir key) with Sys_error _ -> ()));
  t.poisoned <- t.poisoned + 1

let solve_key ~k ~solver_name ~seed h =
  key_string ~kind:Solve ~hash:(hypergraph_hash h) ~k ~solver:solver_name
    ~seed

(* Under [t.mu]: shared hit logic over an already-fetched entry, so the
   disk-backed and memory-only lookups stay one code path. *)
let solve_probe_locked t h entry =
  match entry with
  | Some (Solve_result r) when H.equal r.Pl.reduction.Rd.hypergraph h ->
      let audit = Rng.bernoulli t.rng t.cfg.audit_rate in
      if audit then t.audits <- t.audits + 1;
      Some (r, audit)
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let solve_serve t key found =
  match found with
  | None -> None
  | Some (r, audit) ->
      (* The deep audit re-derives every certificate claim from the
         stored run itself; run it outside the lock — it can cost a
         solve-sized fraction on big instances. *)
      let poisoned =
        audit
        && (match Cf.diagnostics r.Pl.reduction with
           | [] -> false
           | _ :: _ -> true)
      in
      if poisoned then begin
        drop_poisoned t key;
        None
      end
      else begin
        locked t (fun () -> t.hits <- t.hits + 1);
        Some r
      end

let find_solve t ~k ~solver_name ~seed h =
  let key = solve_key ~k ~solver_name ~seed h in
  let found =
    locked t @@ fun () -> solve_probe_locked t h (find_entry_locked t key)
  in
  solve_serve t key found

let find_solve_mem t ~k ~solver_name ~seed h =
  let key = solve_key ~k ~solver_name ~seed h in
  let found =
    locked t @@ fun () -> solve_probe_locked t h (find_entry_memory t key)
  in
  solve_serve t key found

let store_solve t ~k ~solver_name ~seed (r : Pl.result) =
  if r.Pl.certificate.Cf.all_ok then
    store_entry t
      (solve_key ~k ~solver_name ~seed r.Pl.reduction.Rd.hypergraph)
      (Solve_result r)

(* ------------------------------------------------------------------ *)
(* Warm tier *)

let warm_key ~hash ~k =
  Printf.sprintf "w%s:%s:k%d" engine_version (Fnv.to_hex hash) k

let find_warm t ~hash ~k h =
  locked t @@ fun () ->
  match Lru.find t.warm (warm_key ~hash ~k) with
  | Some w when H.equal w.w_h h ->
      t.warm_hits <- t.warm_hits + 1;
      Some w.w_snap
  | Some _ | None -> None

let store_warm t ~hash ~k h snap =
  let cost = Cg.Incremental.snapshot_bytes snap + 64 in
  locked t @@ fun () ->
  Lru.put t.warm (warm_key ~hash ~k) { w_h = h; w_snap = snap } ~cost

(* ------------------------------------------------------------------ *)
(* Cached solve orchestration *)

let solve t ?(cancel = fun () -> false) ?presolve ~k ~solver ~solver_name
    ~seed h =
  match find_solve t ~k ~solver_name ~seed h with
  | Some r -> r
  | None ->
      let kk =
        Pl.choose_k
          (match k with Some v -> Pl.Fixed v | None -> Pl.From_conservative)
          h
      in
      let hash = hypergraph_hash h in
      let warm = find_warm t ~hash ~k:kk h in
      let on_phase0 =
        match warm with
        | Some _ -> None
        | None -> Some (fun snap -> store_warm t ~hash ~k:kk h snap)
      in
      let result =
        Pl.solve_unchecked ~cancel ~seed ?warm ?on_phase0 ?presolve
          ~k:(Pl.Fixed kk) ~solver h
      in
      store_solve t ~k ~solver_name ~seed result;
      result

(* ------------------------------------------------------------------ *)
(* Opaque (graph-request) tier *)

let graph_key ~kind ~solver_name ~seed g =
  key_string ~kind ~hash:(G.content_hash g) ~k:None ~solver:solver_name ~seed

(* Under [t.mu]; same sharing shape as {!solve_probe_locked}. *)
let graph_probe_locked t g entry =
  match entry with
  | Some (Graph_result { graph; payload }) when G.equal graph g ->
      t.hits <- t.hits + 1;
      Some payload
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let find_graph_result t ~kind ~solver_name ~seed g =
  let key = graph_key ~kind ~solver_name ~seed g in
  locked t @@ fun () -> graph_probe_locked t g (find_entry_locked t key)

let find_graph_result_mem t ~kind ~solver_name ~seed g =
  let key = graph_key ~kind ~solver_name ~seed g in
  locked t @@ fun () -> graph_probe_locked t g (find_entry_memory t key)

let store_graph_result t ~kind ~solver_name ~seed g payload =
  store_entry t
    (graph_key ~kind ~solver_name ~seed g)
    (Graph_result { graph = g; payload })

(* ------------------------------------------------------------------ *)
(* Directory inspection for `pslocal cache` *)

let dir_files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".psc")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

let dir_stats dir =
  List.fold_left
    (fun (n, b) path ->
      match disk_read_raw path with
      | Some buf -> (n + 1, b + String.length buf)
      | None -> (n, b))
    (0, 0) (dir_files dir)

let dir_list dir =
  List.filter_map
    (fun path ->
      match disk_read_raw path with
      | None -> None
      | Some buf -> (
          match disk_parse buf with
          | Some (_, key, blob) -> Some (key, String.length blob)
          | None -> Some ("(corrupt) " ^ Filename.basename path, 0)))
    (dir_files dir)

let dir_clear dir =
  List.fold_left
    (fun n path ->
      match Sys.remove path with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 (dir_files dir)
