(** Content-addressed solved-instance cache with a warm-start tier.

    Results are keyed by [(engine-version, request kind, content hash,
    requested k, solver name, seed)] — everything that determines the
    answer bit-for-bit, so a hit can be served verbatim in place of a
    fresh solve.  Two safety nets make the cache trustworthy rather
    than merely fast: every hit first compares the stored instance
    against the request with full structural equality (a 64-bit hash is
    not an identity proof), and solve hits are re-certified by the deep
    {!Ps_check} audit at a sampled rate — a failing audit drops the
    entry, bumps {!stats.poisoned}, and the caller falls through to a
    fresh solve.  Only results whose certificate passed are stored.

    The warm tier goes beyond memoization: a request over a known
    hypergraph at a known resolved [k] but a {e different} solver or
    seed reuses the cached phase-0 [G_k] CSR
    ({!Ps_core.Conflict_graph.Incremental.snapshot}), replacing the
    conflict-graph enumeration with array copies while producing
    bit-identical output.

    All operations are thread-safe (one internal mutex); deep audits
    run outside the lock. *)

val engine_version : string
(** Part of every key.  Bump whenever a change alters what a solver or
    the reduction computes for a given (instance, solver, seed, k) —
    persisted entries from older versions then never match again. *)

type kind = Solve | Mis | Decompose
(** Request families sharing the key space.  [Solve] covers both the
    [reduce] and [certify] server methods — they render the same
    {!Ps_core.Pipeline.result}. *)

type config = {
  budget_bytes : int;       (** result-tier byte budget *)
  warm_budget_bytes : int;  (** warm-tier (CSR snapshot) byte budget *)
  audit_rate : float;       (** probability in [0,1] that a solve hit is
                                deep-audited before being served *)
  audit_seed : int;         (** seed of the audit-sampling RNG *)
  dir : string option;      (** optional persistent tier: one
                                checksummed file per result entry *)
}

val default_config : config
(** 64 MiB results, 32 MiB warm snapshots, 5% audit rate, no disk. *)

type stats = {
  hits : int;          (** result-tier hits actually served *)
  misses : int;        (** result-tier misses (incl. failed equality) *)
  stores : int;
  evictions : int;     (** budget evictions, both tiers *)
  entries : int;       (** live result entries *)
  bytes : int;         (** result-tier bytes *)
  budget : int;
  audits : int;        (** sampled deep audits run *)
  poisoned : int;      (** entries dropped by a failing audit *)
  warm_hits : int;
  warm_entries : int;
  warm_bytes : int;
  disk_hits : int;     (** memory misses satisfied by the disk tier *)
}

type t

val create : ?config:config -> unit -> t
(** [Invalid_argument] if [audit_rate] is outside [0,1]. *)

val config : t -> config
val stats : t -> stats

val clear : t -> unit
(** Drop both in-memory tiers (the disk tier is untouched — see
    {!dir_clear}). *)

val hypergraph_hash : Ps_hypergraph.Hypergraph.t -> int64
(** Canonical content hash of a hypergraph (vertex count, then each
    edge's size and members in index order), same FNV-1a/avalanche
    construction as {!Ps_graph.Graph.content_hash}. *)

(** {2 Solve results} *)

val solve :
  t ->
  ?cancel:(unit -> bool) ->
  ?presolve:Ps_maxis.Kernel.choice ->
  k:int option ->
  solver:Ps_maxis.Approx.solver ->
  solver_name:string ->
  seed:int ->
  Ps_hypergraph.Hypergraph.t ->
  Ps_core.Pipeline.result
(** The cached counterpart of {!Ps_core.Pipeline.solve_unchecked}
    ([k = None] means [From_conservative], [Some v] means [Fixed v]):
    serve a verified hit when possible, otherwise solve — warm-starting
    from the snapshot tier when (hash, resolved k) is known — then
    store the result (and the phase-0 snapshot) for the next request.
    Bit-identical to the uncached call on every path.  [presolve] is
    forwarded to the pipeline; [solver_name] must be the {e effective}
    name ({!Ps_maxis.Kernel.apply} result) so kernel-on and kernel-off
    entries never collide under one key. *)

val find_solve :
  t ->
  k:int option ->
  solver_name:string ->
  seed:int ->
  Ps_hypergraph.Hypergraph.t ->
  Ps_core.Pipeline.result option
(** Lookup only (no solving): [Some] iff a stored result exists for
    this exact request, the stored hypergraph equals the argument, and
    the sampled audit (if drawn) passes.  Consults the in-memory tier
    and then the persistent tier, so it may read the disk. *)

val find_solve_mem :
  t ->
  k:int option ->
  solver_name:string ->
  seed:int ->
  Ps_hypergraph.Hypergraph.t ->
  Ps_core.Pipeline.result option
(** {!find_solve} restricted to the in-memory tier — a statically
    non-blocking lookup for callers on paths that must not stall, like
    the engine's submit prefix; a memory miss there is re-consulted
    disk-and-all from a worker. *)

val store_solve :
  t ->
  k:int option ->
  solver_name:string ->
  seed:int ->
  Ps_core.Pipeline.result ->
  unit
(** Store a finished solve under the key derived from its embedded
    hypergraph and the given request parameters.  Results whose
    certificate failed are ignored.  The semantic content is {e not}
    re-checked here — that is what the sampled audit on the read side
    is for (and what the poisoned-cache tests exploit). *)

(** {2 Opaque graph-request results (mis / decompose)} *)

val find_graph_result :
  t ->
  kind:kind ->
  solver_name:string ->
  seed:int ->
  Ps_graph.Graph.t ->
  string option
(** Serve the stored rendered payload iff the stored input graph equals
    the argument ({!Ps_graph.Graph.content_hash} keyed,
    {!Ps_graph.Graph.equal} verified).  Opaque payloads carry no
    certificate, so they are never audit-sampled — documented
    limitation of this tier.  May read the disk, as {!find_solve}. *)

val find_graph_result_mem :
  t ->
  kind:kind ->
  solver_name:string ->
  seed:int ->
  Ps_graph.Graph.t ->
  string option
(** {!find_graph_result} restricted to the in-memory tier, as
    {!find_solve_mem}. *)

val store_graph_result :
  t ->
  kind:kind ->
  solver_name:string ->
  seed:int ->
  Ps_graph.Graph.t ->
  string ->
  unit

(** {2 Persistent-tier inspection ([pslocal cache])} *)

val dir_stats : string -> int * int
(** [(entries, total file bytes)] of a cache directory (0, 0 when it
    does not exist). *)

val dir_list : string -> (string * int) list
(** [(key, payload bytes)] per entry file, corrupt files flagged. *)

val dir_clear : string -> int
(** Delete every entry file; returns how many were removed. *)
