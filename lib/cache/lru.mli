(** String-keyed LRU with a byte budget.

    Every entry carries a caller-supplied non-negative cost; the sum of
    costs never exceeds the budget after a {!put} or {!set_budget}
    returns — entries are evicted least-recently-used first until it
    fits (an entry whose own cost exceeds the whole budget is evicted
    immediately, leaving the map without it).  {!find} counts as a use
    and promotes; {!peek} does not.

    Not thread-safe — the owning cache serializes access. *)

type 'v t

val create : budget:int -> 'v t
(** Fresh empty map.  [Invalid_argument] on a negative budget. *)

val find : 'v t -> string -> 'v option
(** Lookup and promote to most-recently-used. *)

val peek : 'v t -> string -> 'v option
(** Lookup without touching recency order. *)

val put : 'v t -> string -> 'v -> cost:int -> unit
(** Insert or replace (replacement also promotes and re-charges the new
    cost), then evict until within budget.  [Invalid_argument] on a
    negative cost. *)

val remove : 'v t -> string -> bool
(** Drop an entry; [true] if it was present.  Not counted as an
    eviction. *)

val length : 'v t -> int
val bytes : 'v t -> int
(** Sum of live entry costs. *)

val budget : 'v t -> int

val evictions : 'v t -> int
(** Budget-pressure evictions since creation ({!remove} and {!clear}
    excluded). *)

val set_budget : 'v t -> int -> unit
(** Change the budget, evicting down if shrunk. *)

val clear : 'v t -> unit
(** Drop everything (counters keep their values; not evictions). *)

val to_list : 'v t -> (string * int) list
(** [(key, cost)] pairs, most-recently-used first — for inspection and
    the model-based tests. *)
