(* Byte-budget LRU: hash table for O(1) key lookup, intrusive doubly
   linked list for recency order.  Costs are caller-supplied (the cache
   layer charges the marshalled size of each entry), and [put] evicts
   from the least-recent end until the running total fits the budget —
   including, degenerately, the entry just inserted when it alone
   exceeds the budget.  Not thread-safe: the owning cache serializes
   access under its own mutex. *)

type 'v node = {
  nkey : string;
  mutable nvalue : 'v;
  mutable ncost : int;
  mutable prev : 'v node option; (* toward most-recent *)
  mutable next : 'v node option; (* toward least-recent *)
}

type 'v t = {
  tbl : (string, 'v node) Hashtbl.t;
  mutable front : 'v node option; (* most recently used *)
  mutable back : 'v node option;  (* least recently used *)
  mutable budget : int;
  mutable bytes : int;
  mutable evictions : int;
}

let create ~budget =
  if budget < 0 then invalid_arg "Lru.create: negative budget";
  { tbl = Hashtbl.create 64;
    front = None;
    back = None;
    budget;
    bytes = 0;
    evictions = 0 }

let length t = Hashtbl.length t.tbl
let bytes t = t.bytes
let budget t = t.budget
let evictions t = t.evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

let evict_lru t =
  match t.back with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.nkey;
      t.bytes <- t.bytes - n.ncost;
      t.evictions <- t.evictions + 1

let enforce_budget t =
  while t.bytes > t.budget && Option.is_some t.back do
    evict_lru t
  done

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.nvalue

let peek t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n -> Some n.nvalue

let put t key value ~cost =
  if cost < 0 then invalid_arg "Lru.put: negative cost";
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.bytes <- t.bytes - n.ncost + cost;
      n.nvalue <- value;
      n.ncost <- cost;
      unlink t n;
      push_front t n
  | None ->
      let n =
        { nkey = key; nvalue = value; ncost = cost; prev = None; next = None }
      in
      Hashtbl.add t.tbl key n;
      t.bytes <- t.bytes + cost;
      push_front t n);
  enforce_budget t

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> false
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl key;
      t.bytes <- t.bytes - n.ncost;
      true

let set_budget t budget =
  if budget < 0 then invalid_arg "Lru.set_budget: negative budget";
  t.budget <- budget;
  enforce_budget t

let clear t =
  Hashtbl.reset t.tbl;
  t.front <- None;
  t.back <- None;
  t.bytes <- 0

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.nkey, n.ncost) :: acc) n.next
  in
  walk [] t.front
