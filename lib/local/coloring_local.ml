module Rng = Ps_util.Rng
module IntSet = Set.Make (Int)

module Algo = struct
  type phase =
    | Proposing of int        (* the color just proposed *)
    | Resolving of int option (* [Some c] if the proposal for [c] survived *)

  type state = { taken : IntSet.t; phase : phase }

  type message =
    | Propose of int * int (* color, sender id *)
    | Fix of int           (* final color announcement *)
    | Pass

  type output = int

  let name = "trial-coloring"

  let propose (ctx : Network.node_ctx) taken =
    (* Palette {0..deg} always has a free color: at most deg are taken. *)
    let free =
      List.filter
        (fun c -> not (IntSet.mem c taken))
        (List.init (ctx.degree + 1) (fun c -> c))
    in
    let color = List.nth free (Rng.int ctx.rng (List.length free)) in
    Network.Continue
      ({ taken; phase = Proposing color }, Propose (color, ctx.id))

  let init ctx = propose ctx IntSet.empty

  let step (ctx : Network.node_ctx) state inbox =
    match state.phase with
    | Proposing my_color ->
        let survives =
          Array.for_all
            (function
              | Some (Propose (c, id)) -> c <> my_color || ctx.id < id
              | None -> true
              | Some (Fix _ | Pass) ->
                  (* Phases run in lockstep: announcements cannot arrive in
                     a proposal round. *)
                  assert false)
            inbox
        in
        let verdict = if survives then Some my_color else None in
        Network.Continue
          ( { state with phase = Resolving verdict },
            match verdict with Some c -> Fix c | None -> Pass )
    | Resolving (Some color) ->
        (* The Fix announcement was delivered this round; done. *)
        ignore inbox;
        Network.Halt color
    | Resolving None ->
        let taken =
          Array.fold_left
            (fun acc msg ->
              match msg with
              | Some (Fix c) -> IntSet.add c acc
              | Some Pass | None -> acc
              | Some (Propose _) -> assert false)
            state.taken inbox
        in
        propose ctx taken
end

module Runner = Network.Run (Algo)

let run ?max_rounds ?seed g = Runner.run ?max_rounds ?seed g

let trials (stats : Network.stats) = stats.rounds / 2
