(** Randomized maximal matching in the LOCAL simulator.

    The proposal scheme in the spirit of Israeli–Itai: per iteration every
    still-active node flips a coin; proposers send a proposal to one
    random active neighbor, listeners accept the smallest-id proposal
    aimed at them, and accepted pairs retire.  A node retires unmatched
    when every neighbor has retired, so the result is always a maximal
    matching.  Each iteration costs three rounds plus one hello round;
    the iteration count is O(log n) with high probability.

    Output per node: [Some partner_id] or [None] (unmatched). *)

val run :
  ?max_rounds:int ->
  ?seed:int ->
  Ps_graph.Graph.t ->
  int option array * Network.stats

val to_partner_array : int option array -> int array
(** Convert to the {!Ps_graph.Matching} representation, assuming ids are
    vertex indices (the default). *)

val iterations : Network.stats -> int
(** Matching iterations ≈ (rounds - 1) / 3. *)
