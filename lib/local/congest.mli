(** The CONGEST model: LOCAL with O(log n)-bit messages.

    The LOCAL model's unbounded messages are what let a node collect its
    whole r-ball (see {!Gather}); CONGEST caps every message at
    [O(log n)] bits, which is the honest cost model for algorithms that
    only ship identifiers and counters.  This module runs algorithms
    whose messages carry an explicit bit size and reports the bandwidth
    actually used, so experiments can separate the algorithms that
    genuinely fit CONGEST (Luby-style: one id + one value per round;
    BFS/leader election below) from the LOCAL-only ones (view gathering).

    Two classic CONGEST primitives are included:

    {ul
    {- {!bfs_tree} — synchronous BFS wave from a root: [ecc(root)]
       rounds, every message a single identifier;}
    {- {!leader_elect} — min-identifier flooding, every message a single
       identifier.  The winner doubles as the root for {!bfs_tree}, the
       standard bootstrap of distributed computations.}} *)

module type SIZED_ALGORITHM = sig
  include Network.ALGORITHM

  val message_bits : message -> int
  (** Size of one message on the wire. *)
end

type congest_stats = {
  network : Network.stats;
  max_message_bits : int;   (** widest message observed *)
  total_bits : int;         (** Σ bits over all delivered messages *)
}

val bandwidth_ok : n:int -> congest_stats -> bool
(** Does the run fit CONGEST, i.e. [max_message_bits <= 8·ceil(log2 n)]?
    (The constant 8 is the usual "O(log n) means a few words" slack.) *)

module Run (A : SIZED_ALGORITHM) : sig
  val run :
    ?max_rounds:int ->
    ?ids:int array ->
    ?seed:int ->
    Ps_graph.Graph.t ->
    A.output array * congest_stats
end

(** {1 Built-in CONGEST algorithms} *)

type bfs_result = {
  parent : int array;   (** parent vertex, [-1] for the root / unreached *)
  distance : int array; (** hop distance from the root, [-1] unreached *)
}

val bfs_tree :
  ?max_rounds:int -> root:int -> Ps_graph.Graph.t ->
  bfs_result * congest_stats
(** Synchronous BFS wave.  Rounds = eccentricity of the root + O(1);
    every message is one identifier. *)

val aggregate :
  ?value:(int -> int) ->
  root:int ->
  Ps_graph.Graph.t ->
  int array * congest_stats
(** Global aggregation by BFS-tree convergecast: every node in the
    root's component learns [Σ value(id)] over that component ([value]
    defaults to [fun _ -> 1], i.e. counting; each node evaluates it only
    on its {e own} identifier).  Three fixed-schedule sweeps — wave down,
    sums up, total down — each padded to [n] rounds so nodes need no
    termination detection: rounds = Θ(n), messages O(log n + value
    width) bits.  Nodes outside the root's component output 0. *)

val leader_elect : Ps_graph.Graph.t -> int array * congest_stats
(** Min-id flooding on a {e connected} graph: every node outputs the
    minimum identifier (= vertex index by default).  Runs for exactly
    [n] rounds — the safe bound every node can compute locally without a
    termination-detection subprotocol (the flood itself stabilizes after
    [diameter] rounds).  Raises [Invalid_argument] on disconnected input
    (detected up front; the flooding itself would simply never agree). *)
