(** Deterministic LOCAL coloring and the coloring→MIS reduction.

    The paper's opening gap: MIS and (Δ+1)-coloring have O(log n)-round
    {e randomized} LOCAL algorithms but "exponentially slower
    deterministic algorithms" [AGLP89].  This module holds the honest
    deterministic workhorses so experiments can chart the gap:

    {ul
    {- {!local_maxima_coloring} — the identifier-peeling algorithm: each
       round, every undecided node whose id beats all undecided neighbors
       picks the smallest color free among decided neighbors.  Always
       proper with ≤ Δ+1 colors; round complexity is the "greedy
       dependency depth" of the id order — up to n on adversarial ids
       (e.g. a path with increasing ids), O(log n) in expectation on
       random ids for bounded-degree graphs;}
    {- {!mis_from_coloring} — the classic reduction: given a proper
       c-coloring, sweep color classes; class i joins simultaneously in
       round i when unblocked.  A deterministic MIS in exactly c rounds,
       which is why coloring and MIS are complexity-theoretic twins.}} *)

val local_maxima_coloring :
  ?max_rounds:int -> ?ids:int array -> Ps_graph.Graph.t ->
  int array * Network.stats
(** Deterministic (Δ+1)-coloring; [ids] defaults to vertex indices. *)

val mis_from_coloring :
  Ps_graph.Graph.t -> int array -> bool array * int
(** [mis_from_coloring g coloring] returns a maximal independent set and
    the number of (simulated) LOCAL rounds = number of color classes
    swept.  Raises [Invalid_argument] if the coloring is not proper. *)
