(** Luby's randomized maximal independent set algorithm (Luby 1986) in the
    LOCAL simulator.

    Each iteration costs two communication rounds: undecided nodes draw a
    random value and broadcast it; local minima (strict, ties broken by
    identifier) join the MIS and announce; their neighbors drop out.  With
    high probability the algorithm finishes in O(log n) iterations — the
    "fast randomized algorithm" whose deterministic counterpart is the
    open problem motivating the paper. *)

val run :
  ?max_rounds:int ->
  ?seed:int ->
  Ps_graph.Graph.t ->
  bool array * Network.stats
(** [run g] returns the indicator vector of a maximal independent set
    (indexed by vertex) and the round/message statistics.  The result is
    always independent and maximal; only the round count is random. *)

val iterations : Network.stats -> int
(** Luby iterations = rounds / 2. *)

val run_oracle :
  ?max_rounds:int ->
  ?seed:int ->
  n:int ->
  neighbors:(int -> int array) ->
  unit ->
  bool array * Network.stats
(** Luby on an implicit graph (adjacency oracle) — used to run MIS on the
    conflict graph [G_k] {e as simulated in the LOCAL model} without
    materializing it.  Identical output to {!run} on the materialized
    graph for equal seed. *)
