(** Synchronous LOCAL-model simulator.

    The LOCAL model (Linial 1992): the network is a graph [G]; computation
    proceeds in synchronous rounds; per round each node sends one
    unbounded-size message to each neighbor, receives its neighbors'
    messages, and updates its state.  Time complexity is the number of
    rounds.  Nodes carry unique O(log n)-bit identifiers and know [n].

    This simulator executes such algorithms faithfully:
    {ul
    {- one message per neighbor per round — algorithms here broadcast the
       same value on every port, which is what all the algorithms in this
       repository (and most in the literature) need; a node that wants
       port-specific behaviour can embed a routing table in the message
       since sizes are unbounded;}
    {- nodes communicate {e only} through messages: an algorithm sees its
       own {!node_ctx} and its inbox, never the graph;}
    {- per-node deterministic RNG streams ({!Ps_util.Rng.split_at}) make
       randomized algorithms reproducible;}
    {- round and message counts are reported so experiments can chart
       complexity.}}

    A node halts by returning [Halt]; halted nodes stay silent (their
    neighbors receive [None] on the corresponding port).  The run ends
    when every node has halted. *)

type node_ctx = {
  id : int;        (** unique identifier (not necessarily the vertex index) *)
  degree : int;    (** number of ports = neighbors *)
  n_nodes : int;   (** [n], global knowledge as in the standard model *)
  rng : Ps_util.Rng.t;  (** private randomness stream *)
}

type ('state, 'message, 'output) step_result =
  | Continue of 'state * 'message
      (** keep running; broadcast the message next round *)
  | Halt of 'output

module type ALGORITHM = sig
  type state
  type message
  type output

  val name : string

  val init : node_ctx -> (state, message, output) step_result
  (** Round-0 action: either an initial state plus first broadcast, or an
      immediate halt (0-round algorithms). *)

  val step : node_ctx -> state -> message option array -> (state, message, output) step_result
  (** One round: the inbox is indexed by port; port [p] is the edge to the
      [p]-th neighbor in increasing vertex order (the algorithm must not
      rely on that order — it is only guaranteed stable across rounds).
      [None] means the neighbor has halted. *)
end

type stats = {
  rounds : int;          (** rounds until the last node halted *)
  messages_sent : int;   (** total messages delivered *)
}

exception Round_limit_exceeded of int

module Run (A : ALGORITHM) : sig
  val run :
    ?max_rounds:int ->
    ?ids:int array ->
    ?seed:int ->
    ?on_deliver:(A.message -> unit) ->
    Ps_graph.Graph.t ->
    A.output array * stats
  (** Execute [A] on every node of the graph.  [ids] assigns identifiers
      (default: the vertex indices); they must be distinct.  [seed]
      (default 0) drives all node RNGs.  The output array is indexed by
      vertex.  Raises {!Round_limit_exceeded} after [max_rounds] (default
      [10_000]) rounds with unhalted nodes.  [on_deliver] is invoked once
      per delivered message — the hook {!Congest} uses for bandwidth
      accounting. *)
end

module Run_oracle (A : ALGORITHM) : sig
  val run :
    ?max_rounds:int ->
    ?ids:int array ->
    ?seed:int ->
    ?on_deliver:(A.message -> unit) ->
    n:int ->
    neighbors:(int -> int array) ->
    unit ->
    A.output array * stats
  (** Like {!Run.run} but on an {e implicit} graph given as an adjacency
      oracle — how one runs a LOCAL algorithm on a virtual graph (e.g. the
      paper's conflict graph [G_k]) simulated inside a host network.  The
      oracle is consulted once per node; it must describe a symmetric
      simple graph, and the caller is responsible for the host-round
      dilation accounting (each virtual round of [G_k] costs O(1) rounds
      of its host hypergraph because [G_k]-adjacency spans at most two
      primal hops).  Given equal [n], adjacency, [ids] and [seed], results
      are bit-identical with {!Run.run} on the materialized graph — the
      test suite checks this. *)
end
