module G = Ps_graph.Graph
module IntSet = Set.Make (Int)

module Algo = struct
  type state =
    | Competing of IntSet.t (* colors taken by decided neighbors *)
    | Announced of int      (* my color, broadcast this round; halt next *)

  type message =
    | Undecided of int (* my id *)
    | Fixed of int     (* my final color, announced once *)

  type output = int

  let name = "local-maxima-coloring"

  let init (ctx : Network.node_ctx) =
    Network.Continue (Competing IntSet.empty, Undecided ctx.id)

  let smallest_free taken =
    let rec go c = if IntSet.mem c taken then go (c + 1) else c in
    go 0

  let step (ctx : Network.node_ctx) state inbox =
    match state with
    | Announced color -> Network.Halt color
    | Competing taken ->
        let taken =
          Array.fold_left
            (fun acc msg ->
              match msg with
              | Some (Fixed c) -> IntSet.add c acc
              | Some (Undecided _) | None -> acc)
            taken inbox
        in
        let beaten =
          Array.exists
            (function Some (Undecided id) -> id > ctx.id | _ -> false)
            inbox
        in
        if beaten then Network.Continue (Competing taken, Undecided ctx.id)
        else begin
          (* Local maximum among undecided neighbors: decide and announce;
             adjacent nodes can never decide in the same round, and later
             deciders see this Fixed announcement before choosing. *)
          let color = smallest_free taken in
          Network.Continue (Announced color, Fixed color)
        end
end

module Runner = Network.Run (Algo)

let local_maxima_coloring ?max_rounds ?ids g =
  Runner.run ?max_rounds ?ids g

let mis_from_coloring g coloring =
  if not (Ps_graph.Coloring.is_proper g coloring) then
    invalid_arg "Color_reduction.mis_from_coloring: coloring not proper";
  let classes = Ps_graph.Coloring.color_classes coloring in
  let n = G.n_vertices g in
  let in_mis = Array.make n false in
  Array.iter
    (fun members ->
      (* One LOCAL round: the whole class decides simultaneously — legal
         because a color class is independent, so decisions cannot race. *)
      List.iter
        (fun v ->
          if not (G.exists_neighbor g v (fun u -> in_mis.(u))) then
            in_mis.(v) <- true)
        members)
    classes;
  (in_mis, Array.length classes)
