module Rng = Ps_util.Rng

module Algo = struct
  type info = {
    ids : int array;      (* port -> neighbor id *)
    alive : bool array;   (* port -> still active *)
  }

  type role =
    | Proposer of int (* target id *)
    | Listener

  type state =
    | Greeting
    | Chose_role of info * role
    | Negotiated of info * role * int option (* partner so far *)
    | Announced of info * int option

  type message =
    | Hello of int
    | Propose of int * int (* target id, sender id *)
    | Listening
    | Accept of int        (* accepted proposer's id *)
    | Matched
    | Pass

  type output = int option

  let name = "proposal-matching"

  let init (ctx : Network.node_ctx) =
    if ctx.degree = 0 then Network.Halt None
    else Network.Continue (Greeting, Hello ctx.id)

  let mark_dead info inbox =
    Array.iteri
      (fun p msg -> if Option.is_none msg then info.alive.(p) <- false)
      inbox

  let choose_role (ctx : Network.node_ctx) info =
    (* Any dead port at this point belongs to a retired neighbor. *)
    let alive_ids =
      Array.to_list
        (Array.mapi (fun p id -> if info.alive.(p) then Some id else None)
           info.ids)
      |> List.filter_map Fun.id
    in
    match alive_ids with
    | [] -> Network.Halt None
    | _ :: _ ->
        if Rng.bool ctx.rng then begin
          let target = List.nth alive_ids (Rng.int ctx.rng (List.length alive_ids)) in
          Network.Continue
            (Chose_role (info, Proposer target), Propose (target, ctx.id))
        end
        else Network.Continue (Chose_role (info, Listener), Listening)

  let step (ctx : Network.node_ctx) state inbox =
    match state with
    | Greeting ->
        let ids =
          Array.map
            (function
              | Some (Hello id) -> id
              | Some _ | None ->
                  (* round 1 delivers exactly the hellos *)
                  assert false)
            inbox
        in
        choose_role ctx { ids; alive = Array.make ctx.degree true }
    | Chose_role (info, role) -> (
        mark_dead info inbox;
        match role with
        | Proposer _ ->
            Network.Continue (Negotiated (info, role, None), Pass)
        | Listener ->
            (* accept the smallest-id proposer aiming at me *)
            let best = ref None in
            Array.iter
              (fun msg ->
                match msg with
                | Some (Propose (target, sender)) when target = ctx.id -> (
                    match !best with
                    | Some b when sender >= b -> ()
                    | Some _ | None -> best := Some sender)
                | Some (Propose _ | Listening) | None -> ()
                | Some (Hello _ | Accept _ | Matched | Pass) -> assert false)
              inbox;
            let reply =
              match !best with Some p -> Accept p | None -> Pass
            in
            Network.Continue (Negotiated (info, role, !best), reply))
    | Negotiated (info, role, partner) ->
        mark_dead info inbox;
        let partner =
          match role with
          | Listener -> partner
          | Proposer target ->
              let accepted = ref false in
              Array.iteri
                (fun p msg ->
                  match msg with
                  | Some (Accept proposer)
                    when proposer = ctx.id && info.ids.(p) = target ->
                      accepted := true
                  | Some (Accept _ | Pass) | None -> ()
                  | Some (Hello _ | Propose _ | Listening | Matched) ->
                      assert false)
                inbox;
              if !accepted then Some target else None
        in
        Network.Continue
          ( Announced (info, partner),
            match partner with Some _ -> Matched | None -> Pass )
    | Announced (info, partner) -> (
        match partner with
        | Some p -> Network.Halt (Some p)
        | None ->
            (* retire ports whose owner just announced a match *)
            Array.iteri
              (fun p msg ->
                match msg with
                | Some Matched | None -> info.alive.(p) <- false
                | Some Pass -> ()
                | Some (Hello _ | Propose _ | Listening | Accept _) ->
                    assert false)
              inbox;
            choose_role ctx info)
end

module Runner = Network.Run (Algo)

let run ?max_rounds ?seed g = Runner.run ?max_rounds ?seed g

let to_partner_array outputs =
  Array.map
    (function Some p -> p | None -> Ps_graph.Matching.unmatched)
    outputs

let iterations (stats : Network.stats) = (stats.rounds - 1) / 3
