(** r-hop view gathering.

    An [r]-round LOCAL algorithm is, information-theoretically, a function
    of each node's {e r-hop view}.  This module materializes views two
    ways: {!flood_views} runs an actual flooding algorithm in the
    {!Network} simulator ([r] rounds, as the model prescribes), while
    {!direct_views} computes the same object host-side in O(ball size) per
    node.  The test suite checks they agree; simulation code uses the
    direct form for speed.

    The view of radius [r] at [v] contains the identifiers of every node
    within distance [r] and every edge incident to a node within distance
    [r-1] — exactly the information [r] rounds of communication can
    deliver. *)

type view = {
  center : int;            (** id of the viewing node *)
  vertices : int list;     (** ids in the ball, sorted *)
  edges : (int * int) list;(** known edges as id pairs (lo, hi), sorted *)
}

val direct_views : ?ids:int array -> Ps_graph.Graph.t -> int -> view array
(** [direct_views g r]: views indexed by vertex. [ids] defaults to vertex
    indices. *)

val flood_views :
  ?ids:int array -> Ps_graph.Graph.t -> int -> view array * Network.stats
(** Same result computed by message passing; [stats.rounds = r] (plus one
    halting round) certifies the locality. *)

val view_graph : view -> Ps_graph.Graph.t * int array
(** Reify a view as a graph on its vertices plus the position→id map. *)
