module Rng = Ps_util.Rng

module Algo = struct
  type phase =
    | Drawing of int64   (* my current candidate value, just broadcast *)
    | Announcing of bool (* whether I claimed local-minimum this iteration *)

  type state = phase

  type message =
    | Candidate of int64 * int  (* value, sender id: total order for ties *)
    | Joined
    | Waiting

  type output = bool

  let name = "luby-mis"

  let draw (ctx : Network.node_ctx) =
    let v = Rng.bits64 ctx.rng in
    Network.Continue (Drawing v, Candidate (v, ctx.id))

  let init ctx = draw ctx

  let beats (v1, id1) (v2, id2) = v1 < v2 || (v1 = v2 && id1 < id2)

  let step (ctx : Network.node_ctx) state inbox =
    match state with
    | Drawing my_value ->
        (* Inbox holds candidates of still-undecided neighbors. *)
        let is_min =
          Array.for_all
            (function
              | Some (Candidate (v, id)) ->
                  beats (my_value, ctx.id) (v, id)
              | None -> true (* halted neighbor no longer competes *)
              | Some (Joined | Waiting) ->
                  (* Phases run in lockstep, so announcements can never
                     arrive in a drawing round. *)
                  assert false)
            inbox
        in
        Network.Continue
          (Announcing is_min, if is_min then Joined else Waiting)
    | Announcing joined ->
        if joined then Network.Halt true
        else begin
          let neighbor_joined =
            Array.exists (function Some Joined -> true | _ -> false) inbox
          in
          if neighbor_joined then Network.Halt false else draw ctx
        end
end

module Runner = Network.Run (Algo)
module Oracle_runner = Network.Run_oracle (Algo)

let run ?max_rounds ?seed g = Runner.run ?max_rounds ?seed g

let run_oracle ?max_rounds ?seed ~n ~neighbors () =
  Oracle_runner.run ?max_rounds ?seed ~n ~neighbors ()

let iterations (stats : Network.stats) = stats.rounds / 2
