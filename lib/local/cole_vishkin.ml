type trace = {
  colors : int array;
  cv_iterations : int;
  rounds : int;
}

let is_proper_cycle colors =
  let n = Array.length colors in
  n >= 3
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    if colors.(i) = colors.((i + 1) mod n) then ok := false
  done;
  !ok

let log_star x =
  let rec go acc x =
    if x <= 2 then acc
    else go (acc + 1) (int_of_float (Float.log2 (float_of_int x)))
  in
  go 0 x

(* One Cole-Vishkin step: my new color encodes the lowest bit position i
   where my color differs from my successor's, and my bit there. *)
let cv_step colors =
  let n = Array.length colors in
  Array.init n (fun v ->
      let mine = colors.(v) and succ = colors.((v + 1) mod n) in
      let diff = mine lxor succ in
      (* diff <> 0 because the coloring is proper along the cycle *)
      let i =
        let rec lowest i d = if d land 1 = 1 then i else lowest (i + 1) (d lsr 1) in
        lowest 0 diff
      in
      (2 * i) + ((mine lsr i) land 1))

(* Shift colors against the orientation, then recolor class [c] greedily
   into {0,1,2}.  Shifting preserves properness; after it the class-[c]
   nodes are independent, so they can all recolor simultaneously. *)
let eliminate_color colors c =
  let n = Array.length colors in
  let shifted = Array.init n (fun v -> colors.((v + 1) mod n)) in
  Array.init n (fun v ->
      if shifted.(v) <> c then shifted.(v)
      else begin
        let left = shifted.((v + n - 1) mod n)
        and right = shifted.((v + 1) mod n) in
        let rec free x = if x = left || x = right then free (x + 1) else x in
        free 0
      end)

let three_color ~ids =
  let n = Array.length ids in
  if n < 3 then invalid_arg "Cole_vishkin.three_color: need n >= 3";
  let seen = Hashtbl.create n in
  Array.iter
    (fun id ->
      if id < 0 || Hashtbl.mem seen id then
        invalid_arg "Cole_vishkin.three_color: ids must be distinct and >= 0";
      Hashtbl.add seen id ())
    ids;
  let colors = ref (Array.copy ids) in
  let iterations = ref 0 in
  while Array.exists (fun c -> c >= 6) !colors do
    colors := cv_step !colors;
    incr iterations
  done;
  List.iter (fun c -> colors := eliminate_color !colors c) [ 5; 4; 3 ];
  let result =
    { colors = !colors; cv_iterations = !iterations;
      rounds = !iterations + 3 }
  in
  assert (is_proper_cycle result.colors);
  assert (Array.for_all (fun c -> c >= 0 && c < 3) result.colors);
  result
