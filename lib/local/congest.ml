module G = Ps_graph.Graph

module type SIZED_ALGORITHM = sig
  include Network.ALGORITHM

  val message_bits : message -> int
end

type congest_stats = {
  network : Network.stats;
  max_message_bits : int;
  total_bits : int;
}

let ceil_log2 n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (2 * p) in
  if n <= 1 then 1 else go 0 1

let bandwidth_ok ~n stats = stats.max_message_bits <= 8 * ceil_log2 (max 2 n)

module Run (A : SIZED_ALGORITHM) = struct
  module R = Network.Run (A)

  let run ?max_rounds ?ids ?seed g =
    let max_bits = ref 0 and total = ref 0 in
    let on_deliver msg =
      let bits = A.message_bits msg in
      max_bits := max !max_bits bits;
      total := !total + bits
    in
    let outputs, network = R.run ?max_rounds ?ids ?seed ~on_deliver g in
    (outputs, { network; max_message_bits = !max_bits; total_bits = !total })
end

(* ------------------------------------------------------------------ *)
(* BFS wave *)

type bfs_result = {
  parent : int array;
  distance : int array;
}

module Bfs (P : sig
  val root_id : int
end) =
struct
  type state =
    | Announcing of int * int (* distance, parent id: token sent, halt next *)
    | Waiting of int          (* rounds waited so far *)

  type message =
    | Token of int (* sender id *)
    | Idle

  type output = int * int (* distance, parent id (-1 for root/unreached) *)

  let name = "congest-bfs"

  let message_bits = function
    | Token id -> 1 + ceil_log2 (max 2 (id + 1))
    | Idle -> 1

  let init (ctx : Network.node_ctx) =
    if ctx.id = P.root_id then
      Network.Continue (Announcing (0, -1), Token ctx.id)
    else Network.Continue (Waiting 0, Idle)

  let step (ctx : Network.node_ctx) state inbox =
    match state with
    | Announcing (distance, parent) -> Network.Halt (distance, parent)
    | Waiting rounds ->
        let parent = ref (-1) in
        Array.iter
          (fun msg ->
            match msg with
            | Some (Token sender) ->
                if !parent = -1 || sender < !parent then parent := sender
            | Some Idle | None -> ())
          inbox;
        if !parent >= 0 then
          (* first contact: the wave reaches distance r in round r *)
          Network.Continue (Announcing (rounds + 1, !parent), Token ctx.id)
        else if rounds + 1 >= ctx.n_nodes then
          (* unreachable from the root *)
          Network.Halt (-1, -1)
        else Network.Continue (Waiting (rounds + 1), Idle)
end

let bfs_tree ?max_rounds ~root g =
  if root < 0 || root >= G.n_vertices g then
    invalid_arg "Congest.bfs_tree: root out of range";
  let module B = Bfs (struct
    let root_id = root
  end) in
  let module R = Run (B) in
  let outputs, stats = R.run ?max_rounds g in
  let parent = Array.map snd outputs and distance = Array.map fst outputs in
  ({ parent; distance }, stats)

(* ------------------------------------------------------------------ *)
(* Tree aggregation: BFS wave, convergecast of sums, broadcast of the
   total.  Fixed n-round schedule per sweep, so no termination detection
   is needed: a node at BFS distance d sends its subtree sum in round
   2n - d (children, one level deeper, sent a round earlier), and the
   root's total flows back down by distance. *)

module Aggregate (P : sig
  val root_id : int
  val value : int -> int
end) =
struct
  type state = {
    round : int;
    distance : int;        (* -1 until reached *)
    parent : int;          (* -1 for root / unreached *)
    subtree : int;         (* my value + received children sums *)
    total : int;           (* final answer once known, else -1 *)
  }

  type message =
    | Token of int           (* BFS wave: sender id *)
    | Up of int * int        (* convergecast: parent id, subtree sum *)
    | Down of int            (* broadcast: the total *)
    | Quiet

  type output = int

  let name = "congest-aggregate"

  let message_bits = function
    | Token id -> 1 + ceil_log2 (max 2 (id + 1))
    | Up (id, sum) ->
        2 + ceil_log2 (max 2 (id + 1)) + ceil_log2 (max 2 (abs sum + 1))
    | Down total -> 1 + ceil_log2 (max 2 (abs total + 1))
    | Quiet -> 1

  let init (ctx : Network.node_ctx) =
    if ctx.id = P.root_id then
      Network.Continue
        ( { round = 0; distance = 0; parent = -1;
            subtree = P.value ctx.id; total = -1 },
          Token ctx.id )
    else
      Network.Continue
        ( { round = 0; distance = -1; parent = -1;
            subtree = P.value ctx.id; total = -1 },
          Quiet )

  let step (ctx : Network.node_ctx) state inbox =
    let n = ctx.n_nodes in
    let state = { state with round = state.round + 1 } in
    (* absorb incoming information *)
    let state =
      Array.fold_left
        (fun st msg ->
          match msg with
          | Some (Token sender) when st.distance < 0 ->
              { st with distance = st.round; parent = sender }
          | Some (Up (target, sum)) when target = ctx.id ->
              { st with subtree = st.subtree + sum }
          | Some (Down total) when st.total < 0 -> { st with total }
          | Some (Token _ | Up _ | Down _ | Quiet) | None -> st)
        state inbox
    in
    (* fixed schedule: BFS wave during rounds 1..n, convergecast at
       round 2n - distance, broadcast at round 2n + distance + 1 *)
    let reply =
      if state.distance >= 0 && state.round = state.distance then
        (* just discovered (or root at round 0... root sent at init) *)
        Token ctx.id
      else if state.distance > 0 && state.round = (2 * n) - state.distance
      then Up (state.parent, state.subtree)
      else if state.distance >= 0 && state.total >= 0
              && state.round = (2 * n) + state.distance + 1
      then Down state.total
      else Quiet
    in
    (* the root's total is its subtree sum once every Up arrived *)
    let state =
      if ctx.id = P.root_id && state.round = 2 * n then
        { state with total = state.subtree }
      else state
    in
    if state.round >= (3 * n) + 2 then
      Network.Halt (if state.total >= 0 then state.total else 0)
    else Network.Continue (state, reply)
end

let aggregate ?(value = fun _ -> 1) ~root g =
  if root < 0 || root >= G.n_vertices g then
    invalid_arg "Congest.aggregate: root out of range";
  let module A = Aggregate (struct
    let root_id = root
    let value = value
  end) in
  let module R = Run (A) in
  R.run ~max_rounds:((4 * G.n_vertices g) + 8) g

(* ------------------------------------------------------------------ *)
(* Leader election by min-id flooding *)

module Leader = struct
  type state = int * int (* current minimum, rounds elapsed *)
  type message = Min of int
  type output = int

  let name = "congest-leader"

  let message_bits (Min id) = ceil_log2 (max 2 (id + 1))

  let init (ctx : Network.node_ctx) =
    Network.Continue ((ctx.id, 0), Min ctx.id)

  let step (ctx : Network.node_ctx) (current, rounds) inbox =
    let current =
      Array.fold_left
        (fun acc msg ->
          match msg with Some (Min m) -> min acc m | None -> acc)
        current inbox
    in
    if rounds + 1 >= ctx.n_nodes then Network.Halt current
    else Network.Continue ((current, rounds + 1), Min current)
end

let leader_elect g =
  if not (Ps_graph.Traverse.is_connected g) then
    invalid_arg "Congest.leader_elect: graph must be connected";
  let module R = Run (Leader) in
  R.run ~max_rounds:(G.n_vertices g + 2) g
