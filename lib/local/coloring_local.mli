(** Randomized distributed (Δ+1)-vertex-coloring in the LOCAL simulator.

    The classic trial-based scheme: every uncolored node proposes a
    uniformly random color from its own palette [{0..deg(v)}] minus the
    colors already fixed in its neighborhood, and keeps the proposal if no
    undecided neighbor proposed the same color (identifier tie-break).
    Each trial costs two rounds and succeeds with constant probability, so
    the algorithm terminates in O(log n) rounds with high probability —
    the companion of Luby's MIS among the problems the paper discusses. *)

val run :
  ?max_rounds:int ->
  ?seed:int ->
  Ps_graph.Graph.t ->
  int array * Network.stats
(** [run g] returns a proper coloring (indexed by vertex) with colors in
    [0 .. Δ], plus the round statistics. *)

val trials : Network.stats -> int
(** Trials = rounds / 2. *)
