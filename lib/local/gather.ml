module G = Ps_graph.Graph

type view = {
  center : int;
  vertices : int list;
  edges : (int * int) list;
}

let norm_edge a b = (min a b, max a b)

let edge_compare (a, b) (c, d) =
  match Int.compare a c with 0 -> Int.compare b d | o -> o

let default_ids g = Array.init (G.n_vertices g) (fun i -> i)

let direct_views ?ids g r =
  if r < 0 then invalid_arg "Gather.direct_views: negative radius";
  let ids = match ids with Some a -> a | None -> default_ids g in
  Array.init (G.n_vertices g) (fun v ->
      let ball = Ps_graph.Traverse.ball g v r in
      let inner =
        if r = 0 then []
        else Ps_graph.Traverse.ball g v (r - 1)
      in
      let edges =
        List.concat_map
          (fun u ->
            G.fold_neighbors g u
              (fun acc w ->
                (* Keep each edge once: from its lower-indexed endpoint,
                   unless only the higher one is inner. *)
                if u < w || not (List.memq w inner) then
                  norm_edge ids.(u) ids.(w) :: acc
                else acc)
              [])
          inner
      in
      { center = ids.(v);
        vertices = List.sort Int.compare (List.map (fun u -> ids.(u)) ball);
        edges = List.sort_uniq edge_compare edges })

module Flood (R : sig
  val radius : int
end) =
struct
  type state = {
    my_id : int;
    known : (int * int) list;  (* sorted, distinct *)
    neighbor_ids : int list;
    rounds_done : int;
  }

  type message = { sender : int; edges : (int * int) list }
  type output = view

  let name = Printf.sprintf "flood-%d" R.radius

  let merge known more =
    List.sort_uniq edge_compare (List.rev_append more known)

  let to_view state =
    let vertices =
      List.concat
        [ [ state.my_id ];
          state.neighbor_ids;
          List.concat_map (fun (a, b) -> [ a; b ]) state.known ]
    in
    { center = state.my_id;
      vertices = List.sort_uniq Int.compare vertices;
      edges = state.known }

  let init (ctx : Network.node_ctx) =
    if R.radius = 0 then
      Network.Halt
        { center = ctx.id; vertices = [ ctx.id ]; edges = [] }
    else
      Network.Continue
        ( { my_id = ctx.id; known = []; neighbor_ids = []; rounds_done = 0 },
          { sender = ctx.id; edges = [] } )

  let step (_ctx : Network.node_ctx) state inbox =
    let state =
      Array.fold_left
        (fun st msg ->
          match msg with
          | None -> st
          | Some { sender; edges } ->
              { st with
                known = merge st.known (norm_edge st.my_id sender :: edges);
                neighbor_ids = sender :: st.neighbor_ids })
        state inbox
    in
    let state = { state with rounds_done = state.rounds_done + 1 } in
    if state.rounds_done >= R.radius then Network.Halt (to_view state)
    else
      Network.Continue (state, { sender = state.my_id; edges = state.known })
end

let flood_views ?ids g r =
  if r < 0 then invalid_arg "Gather.flood_views: negative radius";
  let module F = Flood (struct
    let radius = r
  end) in
  let module Runner = Network.Run (F) in
  Runner.run ?ids g

let view_graph view =
  let back = Array.of_list view.vertices in
  let pos = Hashtbl.create (Array.length back) in
  Array.iteri (fun i id -> Hashtbl.add pos id i) back;
  let edges =
    List.map
      (fun (a, b) -> (Hashtbl.find pos a, Hashtbl.find pos b))
      view.edges
  in
  (G.of_edges (Array.length back) edges, back)
