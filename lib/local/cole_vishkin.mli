(** Cole–Vishkin 3-coloring of oriented cycles in O(log* n) iterations —
    the celebrated deterministic symmetry-breaking speed limit.

    On a cycle whose nodes know their successor, colors (initially the
    unique identifiers) shrink doubly-exponentially: one iteration maps
    colors over [L] bits to colors in [{0 .. 2L-1}] by encoding the
    lowest bit position where a node's color differs from its
    successor's, plus that bit's value.  After O(log* n) iterations six
    colors remain; three shift-and-recolor steps finish at three.
    Linial's lower bound says Ω(log* n) is necessary, so this algorithm
    is tight — the benchmark of what deterministic LOCAL {e can} do,
    against which the open problems the paper studies are measured.

    The cycle is given by successor order: node [i]'s successor is
    [(i+1) mod n].  Identifiers must be distinct and nonnegative. *)

type trace = {
  colors : int array;      (** final proper coloring with colors in {0,1,2} *)
  cv_iterations : int;     (** bit-encoding iterations until < 6 colors *)
  rounds : int;            (** total LOCAL rounds: cv_iterations + 3
                               shift-and-recolor steps *)
}

val three_color : ids:int array -> trace
(** Requires [n >= 3] and distinct nonnegative ids.  The result always
    satisfies [colors.(i) <> colors.((i+1) mod n)]. *)

val is_proper_cycle : int array -> bool
(** Successor-adjacent entries differ (and length ≥ 3). *)

val log_star : int -> int
(** Iterated logarithm (base 2): the number of times [log2] must be
    applied to reach ≤ 2.  [log_star 65536 = 4]. *)
