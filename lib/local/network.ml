module G = Ps_graph.Graph
module Rng = Ps_util.Rng
module Tm = Ps_util.Telemetry

type node_ctx = {
  id : int;
  degree : int;
  n_nodes : int;
  rng : Rng.t;
}

type ('state, 'message, 'output) step_result =
  | Continue of 'state * 'message
  | Halt of 'output

module type ALGORITHM = sig
  type state
  type message
  type output

  val name : string
  val init : node_ctx -> (state, message, output) step_result

  val step :
    node_ctx -> state -> message option array ->
    (state, message, output) step_result
end

type stats = { rounds : int; messages_sent : int }

exception Round_limit_exceeded of int

module Run_oracle (A : ALGORITHM) = struct
  type node_status =
    | Running of A.state * A.message  (* message = current broadcast *)
    | Halted of A.output

  let run ?(max_rounds = 10_000) ?ids ?(seed = 0)
      ?(on_deliver = fun (_ : A.message) -> ()) ~n ~neighbors () =
    Tm.with_span "local.run" @@ fun () ->
    Tm.set_str "algorithm" A.name;
    Tm.set_int "n" n;
    let ids =
      match ids with
      | None -> Array.init n (fun i -> i)
      | Some ids ->
          if Array.length ids <> n then
            invalid_arg "Network.run: ids length mismatch";
          let seen = Hashtbl.create n in
          Array.iter
            (fun id ->
              if Hashtbl.mem seen id then
                invalid_arg "Network.run: duplicate id";
              Hashtbl.add seen id ())
            ids;
          ids
    in
    let master = Rng.create seed in
    (* Materialize each node's port list once so the oracle is consulted
       a single time per node and port order is stable across rounds. *)
    let ports = Array.init n neighbors in
    let ctx =
      Array.init n (fun v ->
          { id = ids.(v);
            degree = Array.length ports.(v);
            n_nodes = n;
            rng = Rng.split_at master v })
    in
    let status =
      Array.init n (fun v ->
          match A.init ctx.(v) with
          | Continue (s, m) -> Running (s, m)
          | Halt o -> Halted o)
    in
    let messages_sent = ref 0 in
    let all_halted () =
      Array.for_all (function Halted _ -> true | Running _ -> false) status
    in
    let rounds = ref 0 in
    while not (all_halted ()) do
      if !rounds >= max_rounds then raise (Round_limit_exceeded max_rounds);
      incr rounds;
      let sent_before_round = !messages_sent in
      (* Snapshot this round's broadcasts so delivery is synchronous. *)
      let outgoing =
        Array.map
          (function Running (_, m) -> Some m | Halted _ -> None)
          status
      in
      let next =
        Array.mapi
          (fun v st ->
            match st with
            | Halted _ -> st
            | Running (state, _) ->
                let inbox =
                  Array.map
                    (fun u ->
                      let m = outgoing.(u) in
                      (match m with
                      | Some msg ->
                          incr messages_sent;
                          on_deliver msg
                      | None -> ());
                      m)
                    ports.(v)
                in
                (match A.step ctx.(v) state inbox with
                | Continue (s, m) -> Running (s, m)
                | Halt o -> Halted o))
          status
      in
      Array.blit next 0 status 0 n;
      if Tm.enabled () then begin
        Tm.incr "local.rounds";
        Tm.count "local.messages" (!messages_sent - sent_before_round)
      end
    done;
    let outputs =
      Array.map
        (function
          | Halted o -> o
          | Running _ -> assert false)
        status
    in
    Tm.set_int "rounds" !rounds;
    Tm.set_int "messages_sent" !messages_sent;
    (outputs, { rounds = !rounds; messages_sent = !messages_sent })
end

module Run (A : ALGORITHM) = struct
  module O = Run_oracle (A)

  let run ?max_rounds ?ids ?seed ?on_deliver g =
    O.run ?max_rounds ?ids ?seed ?on_deliver ~n:(G.n_vertices g)
      ~neighbors:(fun v -> G.neighbors g v)
      ()
end
