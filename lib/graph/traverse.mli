(** Traversals and distance machinery.

    The r-ball functions are the geometric heart of both simulators: a
    LOCAL algorithm running [r] rounds is exactly a function of the r-ball,
    and an SLOCAL algorithm with locality [r] reads the r-ball around each
    processed vertex. *)

val bfs_distances : Graph.t -> int -> int array
(** [bfs_distances g src] gives hop distances from [src]; unreachable
    vertices get [-1]. *)

val bfs_multi : Graph.t -> int list -> int array
(** Distances from a set of sources (minimum over sources). *)

val ball : Graph.t -> int -> int -> int list
(** [ball g v r] lists vertices within hop distance [r] of [v] (including
    [v]), sorted increasingly. *)

val ball_subgraph : Graph.t -> int -> int -> Graph.t * int array
(** Induced subgraph on [ball g v r] plus the new→old vertex map — the
    "topological view" a node sees in the models. *)

val connected_components : Graph.t -> int list array
(** Vertex lists per component, each sorted; component order by smallest
    member. *)

val is_connected : Graph.t -> bool
(** True for the empty and one-vertex graph. *)

val eccentricity : Graph.t -> int -> int
(** Max distance from the vertex to any reachable vertex. *)

val diameter : Graph.t -> int
(** Exact diameter via n BFS runs; [-1] classifies a disconnected graph,
    0 covers n <= 1. *)

val dfs_preorder : Graph.t -> int -> int list
(** Preorder of the DFS tree from the source (its component only),
    children visited in increasing order. *)

val distance : Graph.t -> int -> int -> int
(** Hop distance, [-1] if disconnected. *)

val power : Graph.t -> int -> Graph.t
(** [power g k] is [G^k]: same vertices, edges between distinct vertices
    at hop distance ≤ [k].  [power g 1] equals [g]; [k = 0] is edgeless.
    Used to build network decompositions with extra separation (clusters
    non-adjacent in [G^k] are ≥ k+1 apart in [G]). *)
