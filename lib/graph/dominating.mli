(** Dominating sets.

    Dominating-set approximation is, with MaxIS approximation (this
    paper) and set cover, on the short list of P-SLOCAL-complete
    approximation problems [GHK18]; the repository carries it as a
    companion problem so experiments can compare "the complete problems"
    side by side.  A set [D] dominates [G] when every vertex is in [D] or
    adjacent to it. *)

val is_dominating : Graph.t -> Ps_util.Bitset.t -> bool

val verify_exn : Graph.t -> Ps_util.Bitset.t -> unit
(** Raises [Invalid_argument] naming an undominated vertex. *)

val greedy : Graph.t -> Ps_util.Bitset.t
(** The classic ln(Δ+1)-approximation: repeatedly take a vertex covering
    the most still-undominated vertices (ties to the smaller index). *)

val minimum_within : budget:int -> Graph.t -> Ps_util.Bitset.t option
(** Exact minimum dominating set by branching on the closed neighborhood
    of an uncovered vertex; [None] when [budget] search nodes are
    exhausted.  Exponential — for small instances. *)

val domination_number_within : budget:int -> Graph.t -> int option
