let to_edge_list g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Graph.n_vertices g) (Graph.n_edges g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let fail_line lineno msg =
  failwith (Printf.sprintf "Gio.of_edge_list: line %d: %s" lineno msg)

(* Tokenize on any whitespace, not just ' ': tab-separated and CRLF
   edge-list files are common in the wild and used to be rejected with
   "bad edge" (the '\r' or '\t' stuck to a token). *)
let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

let tokens line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space line.[!i] do Stdlib.incr i done;
    let start = !i in
    while !i < n && not (is_space line.[!i]) do Stdlib.incr i done;
    if !i > start then out := String.sub line start (!i - start) :: !out
  done;
  List.rev !out

let check_vertex lineno ~n v =
  if v < 0 || v >= n then
    fail_line lineno
      (Printf.sprintf "vertex id %d out of range [0, %d)" v n);
  v

(* First non-space position of [line], or -1 when blank. *)
let content_start line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_space line.[!i] do incr i done;
  if !i = n then -1 else !i

(* Allocation-free parse of a plain "u v" data line (decimal, optional
   leading minus).  Returns false on anything it does not recognize —
   exotic-but-valid forms ([0x1f], [1_000]) and genuinely malformed
   lines alike fall back to [edge_slow], which settles both. *)
let edge_fast line start out =
  let n = String.length line in
  let i = ref start in
  let ok = ref true in
  let int_tok () =
    while !i < n && is_space line.[!i] do incr i done;
    let neg = !i < n && line.[!i] = '-' in
    if neg then incr i;
    let v = ref 0 and digits = ref 0 in
    while
      !i < n
      &&
      let c = line.[!i] in
      c >= '0' && c <= '9'
    do
      v := (!v * 10) + (Char.code line.[!i] - Char.code '0');
      incr digits;
      incr i
    done;
    if !digits = 0 || (!i < n && not (is_space line.[!i])) then ok := false;
    if neg then - !v else !v
  in
  let a = int_tok () in
  let b = int_tok () in
  while !i < n && is_space line.[!i] do incr i done;
  if !i < n then ok := false;
  if !ok then begin
    out.(0) <- a;
    out.(1) <- b;
    true
  end
  else false

let edge_slow lineno line =
  match tokens line with
  | [ a; b ] -> (
      try (int_of_string a, int_of_string b)
      with Failure _ -> fail_line lineno "bad edge")
  | _ -> fail_line lineno "edge must be \"u v\""

(* Streaming parser core: pulls numbered raw lines from [next_line]
   (None at EOF), accumulates endpoints into growable scratch arrays,
   and finishes through [Graph.of_unnormalized_pairs] — no intermediate
   line list, token lists, or edge list, so peak memory is the two
   endpoint arrays plus the CSR being built.  Used by both the string
   front-end ({!of_edge_list}) and the channel front-end
   ({!read_file}). *)
let parse next_line =
  let rec header () =
    match next_line () with
    | None -> failwith "Gio.of_edge_list: empty input"
    | Some (lineno, line) -> (
        match content_start line with
        | -1 -> header ()
        | s when line.[s] = '#' -> header ()
        | _ -> (lineno, line))
  in
  let lineno, hline = header () in
  let n, m =
    match tokens hline with
    | [ a; b ] -> (
        try (int_of_string a, int_of_string b)
        with Failure _ -> fail_line lineno "bad header")
    | _ -> fail_line lineno "header must be \"n m\""
  in
  if n < 0 then fail_line lineno "vertex count must be nonnegative";
  if m < 0 then fail_line lineno "edge count must be nonnegative";
  let us = ref (Array.make (max m 16) 0) in
  let vs = ref (Array.make (max m 16) 0) in
  let len = ref 0 in
  let push u v =
    if !len = Array.length !us then begin
      let grow a =
        let b = Array.make (2 * Array.length a) 0 in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      us := grow !us;
      vs := grow !vs
    end;
    !us.(!len) <- u;
    !vs.(!len) <- v;
    incr len
  in
  let pair = [| 0; 0 |] in
  let rec edges () =
    match next_line () with
    | None -> ()
    | Some (lineno, line) ->
        (match content_start line with
        | -1 -> ()
        | s when line.[s] = '#' -> ()
        | s ->
            let u, v =
              if edge_fast line s pair then (pair.(0), pair.(1))
              else edge_slow lineno line
            in
            push (check_vertex lineno ~n u) (check_vertex lineno ~n v));
        edges ()
  in
  edges ();
  if !len <> m then
    failwith
      (Printf.sprintf "Gio.of_edge_list: header promises %d edges, found %d" m
         !len);
  Graph.of_unnormalized_pairs n ~u:!us ~v:!vs ~len:!len

let of_edge_list text =
  let pos = ref 0 and lineno = ref 0 in
  let total = String.length text in
  let next_line () =
    if !pos > total then None
    else begin
      let stop =
        match String.index_from_opt text !pos '\n' with
        | Some j -> j
        | None -> total
      in
      let line = String.sub text !pos (stop - !pos) in
      pos := stop + 1;
      incr lineno;
      (* A trailing newline yields one final empty segment; treat it as
         EOF rather than a blank line so line accounting matches
         [String.split_on_char]. *)
      if stop = total && String.length line = 0 then None
      else Some (!lineno, line)
    end
  in
  parse next_line

let to_dot ?(name = "g") ?labels g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  (match labels with
  | None -> ()
  | Some label ->
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "  %d [label=\"%s\"];\n" v (label v)))
        (Graph.vertices g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Buffered edge sink: formats into a Buffer and flushes it to the
   channel whenever it passes 64 KiB, so writers stream in O(1) memory
   instead of materializing the whole file ([to_edge_list] on a
   10^8-edge graph would be a multi-gigabyte string). *)
let with_edge_sink oc ~n ~m emit =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int m);
  Buffer.add_char buf '\n';
  let add u v =
    Buffer.add_string buf (string_of_int u);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int v);
    Buffer.add_char buf '\n';
    if Buffer.length buf >= 65536 then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  in
  emit add;
  Buffer.output_buffer oc buf

let write_edges_file filename ~n ~m emit =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> with_edge_sink oc ~n ~m emit)

let write_file filename g =
  write_edges_file filename ~n:(Graph.n_vertices g) ~m:(Graph.n_edges g)
    (fun add -> Graph.iter_edges g add)

let read_file filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let next_line () =
        match In_channel.input_line ic with
        | None -> None
        | Some line ->
            incr lineno;
            Some (!lineno, line)
      in
      parse next_line)
