let to_edge_list g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Graph.n_vertices g) (Graph.n_edges g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let fail_line lineno msg =
  failwith (Printf.sprintf "Gio.of_edge_list: line %d: %s" lineno msg)

let of_edge_list text =
  let lines = String.split_on_char '\n' text in
  let parsed =
    List.mapi (fun i line -> (i + 1, String.trim line)) lines
    |> List.filter (fun (_, line) -> line <> "" && line.[0] <> '#')
  in
  match parsed with
  | [] -> failwith "Gio.of_edge_list: empty input"
  | (lineno, header) :: rest ->
      let n, m =
        match String.split_on_char ' ' header |> List.filter (( <> ) "") with
        | [ a; b ] -> (
            try (int_of_string a, int_of_string b)
            with Failure _ -> fail_line lineno "bad header")
        | _ -> fail_line lineno "header must be \"n m\""
      in
      let edges =
        List.map
          (fun (lineno, line) ->
            match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ a; b ] -> (
                try (int_of_string a, int_of_string b)
                with Failure _ -> fail_line lineno "bad edge")
            | _ -> fail_line lineno "edge must be \"u v\"")
          rest
      in
      if List.length edges <> m then
        failwith
          (Printf.sprintf
             "Gio.of_edge_list: header promises %d edges, found %d" m
             (List.length edges));
      Graph.of_edges n edges

let to_dot ?(name = "g") ?labels g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  (match labels with
  | None -> ()
  | Some label ->
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "  %d [label=\"%s\"];\n" v (label v)))
        (Graph.vertices g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file filename g =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list g))

let read_file filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_edge_list (In_channel.input_all ic))
