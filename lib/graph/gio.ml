let to_edge_list g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Graph.n_vertices g) (Graph.n_edges g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let fail_line lineno msg =
  failwith (Printf.sprintf "Gio.of_edge_list: line %d: %s" lineno msg)

(* Tokenize on any whitespace, not just ' ': tab-separated and CRLF
   edge-list files are common in the wild and used to be rejected with
   "bad edge" (the '\r' or '\t' stuck to a token). *)
let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

let tokens line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space line.[!i] do Stdlib.incr i done;
    let start = !i in
    while !i < n && not (is_space line.[!i]) do Stdlib.incr i done;
    if !i > start then out := String.sub line start (!i - start) :: !out
  done;
  List.rev !out

let check_vertex lineno ~n v =
  if v < 0 || v >= n then
    fail_line lineno
      (Printf.sprintf "vertex id %d out of range [0, %d)" v n);
  v

let of_edge_list text =
  let lines = String.split_on_char '\n' text in
  let parsed =
    List.mapi (fun i line -> (i + 1, String.trim line)) lines
    |> List.filter (fun (_, line) -> String.length line > 0 && line.[0] <> '#')
  in
  match parsed with
  | [] -> failwith "Gio.of_edge_list: empty input"
  | (lineno, header) :: rest ->
      let n, m =
        match tokens header with
        | [ a; b ] -> (
            try (int_of_string a, int_of_string b)
            with Failure _ -> fail_line lineno "bad header")
        | _ -> fail_line lineno "header must be \"n m\""
      in
      if n < 0 then fail_line lineno "vertex count must be nonnegative";
      if m < 0 then fail_line lineno "edge count must be nonnegative";
      let edges =
        List.map
          (fun (lineno, line) ->
            match tokens line with
            | [ a; b ] ->
                let u, v =
                  try (int_of_string a, int_of_string b)
                  with Failure _ -> fail_line lineno "bad edge"
                in
                (check_vertex lineno ~n u, check_vertex lineno ~n v)
            | _ -> fail_line lineno "edge must be \"u v\"")
          rest
      in
      if List.length edges <> m then
        failwith
          (Printf.sprintf
             "Gio.of_edge_list: header promises %d edges, found %d" m
             (List.length edges));
      Graph.of_edges n edges

let to_dot ?(name = "g") ?labels g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  (match labels with
  | None -> ()
  | Some label ->
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "  %d [label=\"%s\"];\n" v (label v)))
        (Graph.vertices g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file filename g =
  let oc = open_out filename in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list g))

let read_file filename =
  let ic = open_in filename in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_edge_list (In_channel.input_all ic))
