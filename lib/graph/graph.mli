(** Immutable simple undirected graphs in compressed sparse row form.

    Vertices are the integers [0 .. n_vertices-1].  Self-loops and parallel
    edges are rejected/collapsed at construction, so every graph value in
    the repository is a simple graph — the setting of both the LOCAL model
    and the conflict-graph construction.  Adjacency rows are sorted, which
    makes [has_edge] logarithmic and neighbor iteration cache-friendly. *)

type t

(** {1 Construction} *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on vertices [0..n-1].  Endpoints out
    of range or self-loops raise [Invalid_argument]; duplicate edges (in
    either orientation) are collapsed. *)

val of_edge_array : int -> (int * int) array -> t
(** Array variant of {!of_edges}. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

(** {1 Size} *)

val n_vertices : t -> int
val n_edges : t -> int

(** {1 Queries} *)

val degree : t -> int -> int
val max_degree : t -> int
val avg_degree : t -> float
val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> int array
(** Fresh sorted array of neighbors. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val exists_neighbor : t -> int -> (int -> bool) -> bool

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge visited once, with [u < v]. *)

val edges : t -> (int * int) list
(** All edges, each once with [u < v], lexicographic order. *)

val vertices : t -> int list

(** {1 Derived graphs} *)

val induced_subgraph : t -> int list -> t * int array
(** [induced_subgraph g vs] is the subgraph induced by the distinct
    vertices [vs], together with the map from new indices to original
    vertex ids (position [i] of the array holds the original id of new
    vertex [i]). *)

val complement : t -> t
(** Complement graph; quadratic, intended for small instances. *)

val union : t -> t -> t
(** Edge-union of two graphs over the same vertex set. *)

val contract : t -> int array -> t
(** [contract g labels] is the quotient graph: vertex [c] of the result
    stands for the class [labels = c]; classes are adjacent iff some
    original edge joins them (self-loops dropped, parallel edges
    collapsed).  [labels] must map onto [0 .. max_label] with every
    label in range inhabited implicitly (uninhabited labels yield
    isolated vertices). *)

val is_subgraph : t -> t -> bool
(** [is_subgraph g h]: same vertex count and every edge of [g] in [h]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Summary line: vertex/edge counts and degree range. *)
