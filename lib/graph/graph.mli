(** Immutable simple undirected graphs in compressed sparse row form.

    Vertices are the integers [0 .. n_vertices-1].  Self-loops and parallel
    edges are rejected/collapsed at construction, so every graph value in
    the repository is a simple graph — the setting of both the LOCAL model
    and the conflict-graph construction.  Adjacency rows are sorted, which
    makes [has_edge] logarithmic and neighbor iteration cache-friendly. *)

type t

(** {1 Construction} *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on vertices [0..n-1].  Endpoints out
    of range or self-loops raise [Invalid_argument]; duplicate edges (in
    either orientation) are collapsed. *)

val of_edge_array : int -> (int * int) array -> t
(** Array variant of {!of_edges}. *)

val of_csr : ?validate:bool -> int -> offsets:int array -> adj:int array -> t
(** [of_csr n ~offsets ~adj] adopts already-built CSR data with {e no}
    normalization pass: [offsets] must have length [n+1] with
    [offsets.(0) = 0], and each row [adj.(offsets.(v) ..
    offsets.(v+1)-1)] must be strictly increasing, self-loop-free, in
    range, and symmetric.  The arrays are owned by the graph afterwards —
    callers must not mutate them.  Violated preconditions are only
    detected when [validate] is true (default: set the [PSLOCAL_DEBUG]
    environment variable), in which case every precondition is checked
    and [Invalid_argument] raised; otherwise construction is O(1). *)

val of_csr_prefix :
  ?validate:bool -> int -> offsets:int array -> adj:int array -> t
(** Arena variant of {!of_csr}: the arrays may be {e longer} than their
    logical content — only [offsets.(0 .. n)] and
    [adj.(0 .. offsets.(n) - 1)] are meaningful, and the spare capacity
    beyond them is ignored by every operation (including {!to_csr},
    which returns exact-size copies, and {!equal}, which compares
    logical content only).  This lets a caller that repeatedly shrinks a
    graph — the incremental conflict-graph engine — reuse one
    preallocated buffer pair across compactions instead of reallocating
    per phase.  The caller must not mutate the logical prefixes while
    the graph is in use; the spare tails stay owned by the caller.
    Validation as in {!of_csr} (default: the [PSLOCAL_DEBUG] environment
    variable), with the length checks relaxed to [>=]. *)

val of_sorted_edge_array : ?validate:bool -> int -> (int * int) array -> t
(** [of_sorted_edge_array n edges] builds CSR directly from an edge array
    that is already normalized: each edge once as [(u, v)] with [u < v],
    sorted lexicographically, no duplicates.  Runs in O(n + m) with no
    hashing and no per-row sort.  Preconditions are checked only under
    [validate] (default: the [PSLOCAL_DEBUG] environment variable), as in
    {!of_csr}. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val to_csr : t -> int array * int array
(** [(offsets, adj)] — copies of the internal CSR arrays, so external
    auditors ({!Ps_check.Check_graph}) can certify the representation
    itself rather than a view reconstructed through the accessors.
    [offsets] has length [n+1]; row [v] is
    [adj.(offsets.(v) .. offsets.(v+1)-1)]. *)

(** {1 Size} *)

val n_vertices : t -> int
val n_edges : t -> int

(** {1 Queries} *)

val degree : t -> int -> int
val max_degree : t -> int
val avg_degree : t -> float
val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> int array
(** Fresh sorted array of neighbors. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val exists_neighbor : t -> int -> (int -> bool) -> bool

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge visited once, with [u < v]. *)

val edges : t -> (int * int) list
(** All edges, each once with [u < v], lexicographic order. *)

val vertices : t -> int list

(** {1 Derived graphs} *)

val induced_subgraph : t -> int list -> t * int array
(** [induced_subgraph g vs] is the subgraph induced by the distinct
    vertices [vs], together with the map from new indices to original
    vertex ids (position [i] of the array holds the original id of new
    vertex [i]). *)

val complement : t -> t
(** Complement graph; quadratic, intended for small instances. *)

val union : t -> t -> t
(** Edge-union of two graphs over the same vertex set. *)

val contract : t -> int array -> t
(** [contract g labels] is the quotient graph: vertex [c] of the result
    stands for the class [labels = c]; classes are adjacent iff some
    original edge joins them (self-loops dropped, parallel edges
    collapsed).  [labels] must map onto [0 .. max_label] with every
    label in range inhabited implicitly (uninhabited labels yield
    isolated vertices). *)

val is_subgraph : t -> t -> bool
(** [is_subgraph g h]: same vertex count and every edge of [g] in [h]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Summary line: vertex/edge counts and degree range. *)
