(** Immutable simple undirected graphs in compressed sparse row form.

    Vertices are the integers [0 .. n_vertices-1].  Self-loops and parallel
    edges are rejected/collapsed at construction, so every graph value in
    the repository is a simple graph — the setting of both the LOCAL model
    and the conflict-graph construction.  Adjacency rows are sorted, which
    makes [has_edge] logarithmic and neighbor iteration cache-friendly.

    {b Width-aware adjacency store.}  The offsets array is always [int],
    but the adjacency store — the 2m-entry array every solver scan
    walks — exists in two physical widths: plain [int array] (8 bytes
    per entry) and an int32 Bigarray (4 bytes per entry, halving memory
    traffic at the 10^7–10^8-edge scale, valid whenever n < 2^31).
    Every observable behavior is identical across widths; [`Auto]
    selection picks int32 exactly when the vertex ids fit.  The
    list-based constructors below build int-backed graphs (they are the
    differential oracle); the streaming constructors take a [?width]
    argument. *)

type t

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The narrow adjacency store: an unboxed int32 Bigarray. *)

type width = [ `Int | `Int32 ]

val width : t -> width
(** Physical width of the adjacency store. *)

val with_width : t -> width -> t
(** [with_width g w] is [g] re-encoded at width [w] (returned physically
    unchanged when already there).  Raises [Invalid_argument] when
    narrowing a graph whose vertex ids exceed int32 range. *)

(** {1 Construction} *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on vertices [0..n-1].  Endpoints out
    of range or self-loops raise [Invalid_argument]; duplicate edges (in
    either orientation) are collapsed. *)

val of_edge_array : int -> (int * int) array -> t
(** Array variant of {!of_edges}. *)

val of_csr : ?validate:bool -> int -> offsets:int array -> adj:int array -> t
(** [of_csr n ~offsets ~adj] adopts already-built CSR data with {e no}
    normalization pass: [offsets] must have length [n+1] with
    [offsets.(0) = 0], and each row [adj.(offsets.(v) ..
    offsets.(v+1)-1)] must be strictly increasing, self-loop-free, in
    range, and symmetric.  The arrays are owned by the graph afterwards —
    callers must not mutate them.  Violated preconditions are only
    detected when [validate] is true (default: set the [PSLOCAL_DEBUG]
    environment variable), in which case every precondition is checked
    and [Invalid_argument] raised; otherwise construction is O(1). *)

val of_csr_prefix :
  ?validate:bool -> int -> offsets:int array -> adj:int array -> t
(** Arena variant of {!of_csr}: the arrays may be {e longer} than their
    logical content — only [offsets.(0 .. n)] and
    [adj.(0 .. offsets.(n) - 1)] are meaningful, and the spare capacity
    beyond them is ignored by every operation (including {!to_csr},
    which returns exact-size copies, and {!equal}, which compares
    logical content only).  This lets a caller that repeatedly shrinks a
    graph — the incremental conflict-graph engine — reuse one
    preallocated buffer pair across compactions instead of reallocating
    per phase.  The caller must not mutate the logical prefixes while
    the graph is in use; the spare tails stay owned by the caller.
    Validation as in {!of_csr} (default: the [PSLOCAL_DEBUG] environment
    variable), with the length checks relaxed to [>=]. *)

val of_csr_i32 : ?validate:bool -> int -> offsets:int array -> adj:i32 -> t
(** {!of_csr} over an int32 adjacency store.  Same contract: the arrays
    are adopted, preconditions are the caller's responsibility unless
    [validate] is set. *)

val of_csr_prefix_i32 :
  ?validate:bool -> int -> offsets:int array -> adj:i32 -> t
(** {!of_csr_prefix} (arena variant, spare capacity allowed past the
    logical prefix) over an int32 adjacency store. *)

val of_unnormalized_pairs :
  ?width:[ `Auto | `Int | `Int32 ] ->
  int ->
  u:int array ->
  v:int array ->
  len:int ->
  t
(** [of_unnormalized_pairs n ~u ~v ~len] builds CSR directly from the
    first [len] endpoint pairs [(u.(i), v.(i))] — any orientation, any
    order, duplicates collapsed — without materializing lists or hash
    tables: count, fill, per-row sort, in-place dedup.  This is the
    streaming constructor behind {!Gio.read_file} and the huge random
    generators.  Self-loops and out-of-range endpoints raise
    [Invalid_argument] (always — this path replaces normalization, so it
    cannot defer validation).  [u] and [v] are scratch owned by the
    caller and remain untouched.  [width] defaults to [`Auto]: int32
    when [n] < 2^31, int otherwise. *)

val of_sorted_edge_array : ?validate:bool -> int -> (int * int) array -> t
(** [of_sorted_edge_array n edges] builds CSR directly from an edge array
    that is already normalized: each edge once as [(u, v)] with [u < v],
    sorted lexicographically, no duplicates.  Runs in O(n + m) with no
    hashing and no per-row sort.  Preconditions are checked only under
    [validate] (default: the [PSLOCAL_DEBUG] environment variable), as in
    {!of_csr}. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val to_csr : t -> int array * int array
(** [(offsets, adj)] — {e copies} of the internal CSR content, never
    aliases: mutating the returned arrays cannot corrupt the graph, and
    the caller always receives exact-length [int] arrays regardless of
    the adjacency width or of arena spare capacity ([offsets] has length
    [n+1], [adj] length [offsets.(n)]; an int32 store is widened
    entry-by-entry).  This contract is pinned by a unit test.  For
    allocation-free auditing use {!csr_view}. *)

type view = {
  v_n : int;
  v_offsets : int array;
      (** Aliased, {e not} a copy — read-only; may be longer than
          [v_n + 1] for arena-backed graphs. *)
  v_store_len : int;  (** Physical store length (>= [v_offsets.(v_n)]). *)
  v_exact : bool;
      (** Whether the physical lengths equal the logical ones —
          [false] for graphs built by {!of_csr_prefix} /
          {!of_csr_prefix_i32} carrying spare arena capacity. *)
  v_get : int -> int;  (** Bounds-checked read of store index [i]. *)
}
(** Zero-copy window onto the internal representation, for auditors that
    must certify what is actually stored (not a reconstruction) without
    paying the O(n + m) copy of {!to_csr} on 10^8-edge instances. *)

val csr_view : t -> view

(** {1 Size} *)

val n_vertices : t -> int
val n_edges : t -> int

(** {1 Queries} *)

val degree : t -> int -> int
val max_degree : t -> int
val avg_degree : t -> float
val has_edge : t -> int -> int -> bool
val neighbors : t -> int -> int array
(** Fresh sorted array of neighbors. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val exists_neighbor : t -> int -> (int -> bool) -> bool

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge visited once, with [u < v]. *)

val edges : t -> (int * int) list
(** All edges, each once with [u < v], lexicographic order. *)

val vertices : t -> int list

(** {1 Derived graphs} *)

val degree_sorted : t -> t * int array
(** [degree_sorted g] relabels vertices by decreasing degree (stable
    within ties) and rebuilds the CSR in that order, preserving the
    adjacency width.  The hot high-degree rows land in one compact cache
    block at the front of the store, and row lengths decay monotonically
    along any scan.  Returns [(g', perm)] where [perm.(i)] is the
    original id of new vertex [i]; a result on [g'] maps back through
    [perm]. *)

val induced_subgraph : t -> int list -> t * int array
(** [induced_subgraph g vs] is the subgraph induced by the distinct
    vertices [vs], together with the map from new indices to original
    vertex ids (position [i] of the array holds the original id of new
    vertex [i]). *)

val complement : t -> t
(** Complement graph; quadratic, intended for small instances. *)

val union : t -> t -> t
(** Edge-union of two graphs over the same vertex set. *)

val contract : t -> int array -> t
(** [contract g labels] is the quotient graph: vertex [c] of the result
    stands for the class [labels = c]; classes are adjacent iff some
    original edge joins them (self-loops dropped, parallel edges
    collapsed).  [labels] must map onto [0 .. max_label] with every
    label in range inhabited implicitly (uninhabited labels yield
    isolated vertices). *)

val is_subgraph : t -> t -> bool
(** [is_subgraph g h]: same vertex count and every edge of [g] in [h]. *)

val equal : t -> t -> bool
(** Logical-content equality: compares the offsets prefix and the
    adjacency entries, ignoring arena spare capacity {e and} physical
    width — an int-backed and an int32-backed graph holding the same
    rows are equal. *)

val content_hash : t -> int64
(** Content-addressed 64-bit digest of the logical CSR (FNV-1a over
    [n], the offsets prefix and the adjacency entries, avalanched).
    Hashes the {e logical} int values, so the digest is independent of
    the physical store width and of arena spare capacity:
    [equal g h] implies [content_hash g = content_hash h], and the
    converse holds up to 64-bit collisions.  Stable across processes —
    safe to use as a persistent cache key. *)

val pp : Format.formatter -> t -> unit
(** Summary line: vertex/edge counts and degree range. *)
