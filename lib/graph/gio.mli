(** Plain-text graph I/O.

    The edge-list format is one header line ["n m"] followed by [m] lines
    ["u v"]; comments start with ['#'].  DOT export exists for eyeballing
    small instances.

    Both directions stream.  {!read_file} parses the channel line by
    line straight into endpoint scratch arrays and finishes through
    {!Graph.of_unnormalized_pairs} — no line list, no token lists, no
    edge list — so peak memory is the endpoint arrays plus the CSR being
    built (and the resulting graph takes the int32 adjacency store when
    the vertex ids fit).  {!write_file} and {!write_edges_file} format
    through a fixed-size buffer flushed to the channel, never
    materializing the file as one string. *)

val to_edge_list : Graph.t -> string
val of_edge_list : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_dot : ?name:string -> ?labels:(int -> string) -> Graph.t -> string
(** Undirected DOT; [labels] overrides vertex labels (default: the id). *)

val write_file : string -> Graph.t -> unit
val read_file : string -> Graph.t

val write_edges_file :
  string -> n:int -> m:int -> ((int -> int -> unit) -> unit) -> unit
(** [write_edges_file path ~n ~m emit] writes the ["n m"] header, then
    calls [emit add]; every [add u v] appends one edge line through the
    streaming sink.  This is how generators write 10^7–10^8-edge
    instances without ever materializing a graph or a string: the caller
    promises [emit] produces exactly [m] edges (the header is not
    back-patched). *)
