(** Plain-text graph I/O.

    The edge-list format is one header line ["n m"] followed by [m] lines
    ["u v"]; comments start with ['#'].  DOT export exists for eyeballing
    small instances. *)

val to_edge_list : Graph.t -> string
val of_edge_list : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_dot : ?name:string -> ?labels:(int -> string) -> Graph.t -> string
(** Undirected DOT; [labels] overrides vertex labels (default: the id). *)

val write_file : string -> Graph.t -> unit
val read_file : string -> Graph.t
