type t = {
  n : int;
  offsets : int array; (* length >= n+1; row u is adj.(offsets.(u) .. offsets.(u+1)-1) *)
  adj : int array;     (* concatenated sorted adjacency rows; the logical
                          content is the prefix of length offsets.(n) = 2m —
                          arena-backed graphs ([of_csr_prefix]) may carry
                          spare capacity beyond it *)
}

let n_vertices g = g.n

let n_edges g = g.offsets.(g.n) / 2

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let degree g v =
  check_vertex g v;
  g.offsets.(v + 1) - g.offsets.(v)

let of_normalized_edges n edges =
  (* [edges] holds each edge once as (u, v) with u < v, no duplicates. *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  for v = 0 to n - 1 do
    let row = Array.sub adj offsets.(v) deg.(v) in
    Array.sort Int.compare row;
    Array.blit row 0 adj offsets.(v) deg.(v)
  done;
  { n; offsets; adj }

let normalize n edges =
  (* Dedup on the int-pair encoding u·n + v (u < v): monomorphic int
     hashing instead of boxed-tuple keys. *)
  let seen = Hashtbl.create (List.length edges) in
  List.filter_map
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      let u, v = if u < v then (u, v) else (v, u) in
      let key = (u * n) + v in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some (u, v)
      end)
    edges

let of_edges n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative vertex count";
  of_normalized_edges n (normalize n edges)

let to_csr g =
  (Array.sub g.offsets 0 (g.n + 1), Array.sub g.adj 0 g.offsets.(g.n))

let of_edge_array n edges = of_edges n (Array.to_list edges)

(* Fast-path constructors.  Both take ownership of already-final data and
   skip normalization; full structural validation runs only when the
   PSLOCAL_DEBUG environment variable is set (or on explicit request), so
   the release-mode cost is O(1) beyond the caller's own work. *)

let debug_validation =
  match Sys.getenv_opt "PSLOCAL_DEBUG" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let validate_csr ?(exact = true) g =
  let len = Array.length g.offsets in
  if (if exact then len <> g.n + 1 else len < g.n + 1) then
    invalid_arg "Graph.of_csr: offsets length <> n+1";
  if g.offsets.(0) <> 0 then invalid_arg "Graph.of_csr: offsets.(0) <> 0";
  for v = 0 to g.n - 1 do
    if g.offsets.(v + 1) < g.offsets.(v) then
      invalid_arg "Graph.of_csr: offsets not monotone"
  done;
  if
    if exact then g.offsets.(g.n) <> Array.length g.adj
    else g.offsets.(g.n) > Array.length g.adj
  then invalid_arg "Graph.of_csr: offsets.(n) <> |adj|";
  for v = 0 to g.n - 1 do
    for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
      let u = g.adj.(i) in
      if u < 0 || u >= g.n then invalid_arg "Graph.of_csr: endpoint out of range";
      if u = v then invalid_arg "Graph.of_csr: self-loop";
      if i > g.offsets.(v) && g.adj.(i - 1) >= u then
        invalid_arg "Graph.of_csr: row not strictly increasing"
    done
  done;
  (* Symmetry: u ∈ row v ⟹ v ∈ row u (binary search per entry). *)
  for v = 0 to g.n - 1 do
    for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
      let u = g.adj.(i) in
      let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
      let found = ref false in
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        if g.adj.(mid) = v then found := true
        else if g.adj.(mid) < v then lo := mid + 1
        else hi := mid - 1
      done;
      if not !found then invalid_arg "Graph.of_csr: asymmetric adjacency"
    done
  done

let of_csr ?validate n ~offsets ~adj =
  if n < 0 then invalid_arg "Graph.of_csr: negative vertex count";
  let g = { n; offsets; adj } in
  let validate = match validate with Some v -> v | None -> debug_validation in
  if validate then validate_csr g;
  g

let of_csr_prefix ?validate n ~offsets ~adj =
  if n < 0 then invalid_arg "Graph.of_csr_prefix: negative vertex count";
  let g = { n; offsets; adj } in
  let validate = match validate with Some v -> v | None -> debug_validation in
  if validate then validate_csr ~exact:false g;
  g

let of_sorted_edge_array ?validate n edges =
  if n < 0 then invalid_arg "Graph.of_sorted_edge_array: negative vertex count";
  (let validate = match validate with Some v -> v | None -> debug_validation in
   if validate then
     Array.iteri
       (fun i (u, v) ->
         if u < 0 || v >= n || u >= v then
           invalid_arg "Graph.of_sorted_edge_array: edge not normalized";
         if i > 0 then begin
           let pu, pv = edges.(i - 1) in
           if pu > u || (pu = u && pv >= v) then
             invalid_arg "Graph.of_sorted_edge_array: edges not sorted/unique"
         end)
       edges);
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  (* Lexicographic input order writes every row in increasing order: for a
     fixed row w, all back-edges (u, w) are scanned before any forward
     edge (w, x) — their first components satisfy u < w — and each group
     arrives in increasing order, with u < w < x throughout.  So no
     per-row sort is needed. *)
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  { n; offsets; adj }

let empty n = of_edges n []

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (degree g v)
  done;
  !best

let avg_degree g =
  if g.n = 0 then 0.0
  else 2.0 *. float_of_int (n_edges g) /. float_of_int g.n

let has_edge g u v =
  check_vertex g u;
  check_vertex g v;
  (* Binary search in the sorted row of the lower-degree endpoint. *)
  let u, v = if degree g u <= degree g v then (u, v) else (v, u) in
  let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adj.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let neighbors g v =
  check_vertex g v;
  Array.sub g.adj g.offsets.(v) (degree g v)

let iter_neighbors g v f =
  check_vertex g v;
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.adj.(i)
  done

let fold_neighbors g v f init =
  let acc = ref init in
  iter_neighbors g v (fun u -> acc := f !acc u);
  !acc

let exists_neighbor g v pred =
  let exception Found in
  try
    iter_neighbors g v (fun u -> if pred u then raise Found);
    false
  with Found -> true

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if u < v then f u v)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let vertices g = List.init g.n (fun i -> i)

let induced_subgraph g vs =
  let vs = List.sort_uniq Int.compare vs in
  List.iter (check_vertex g) vs;
  let back = Array.of_list vs in
  (* Dense renaming array instead of a hash table: original id -> new id. *)
  let fwd = Array.make g.n (-1) in
  Array.iteri (fun i v -> fwd.(v) <- i) back;
  let sub_edges = ref [] in
  (* [back] is increasing, so for v < u the new ids satisfy i < j and the
     collected edges are already normalized (distinct, u < v). *)
  Array.iteri
    (fun i v ->
      iter_neighbors g v (fun u ->
          if v < u && fwd.(u) >= 0 then sub_edges := (i, fwd.(u)) :: !sub_edges))
    back;
  (of_normalized_edges (Array.length back) !sub_edges, back)

let complement g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (has_edge g u v) then acc := (u, v) :: !acc
    done
  done;
  of_edges g.n !acc

let contract g labels =
  if Array.length labels <> g.n then
    invalid_arg "Graph.contract: labels length mismatch";
  let top = Array.fold_left max (-1) labels in
  Array.iter
    (fun l -> if l < 0 then invalid_arg "Graph.contract: negative label")
    labels;
  let acc = ref [] in
  iter_edges g (fun u v ->
      if labels.(u) <> labels.(v) then acc := (labels.(u), labels.(v)) :: !acc);
  of_edges (top + 1) !acc

let union g h =
  if g.n <> h.n then invalid_arg "Graph.union: vertex count mismatch";
  of_edges g.n (edges g @ edges h)

let is_subgraph g h =
  g.n = h.n
  &&
  let ok = ref true in
  iter_edges g (fun u v -> if not (has_edge h u v) then ok := false);
  !ok

(* Compare logical content only: arena-backed graphs may carry spare
   array capacity past offsets.(n), which must not affect equality. *)
let equal g h =
  g.n = h.n
  &&
  let ok = ref true in
  for v = 0 to g.n do
    if g.offsets.(v) <> h.offsets.(v) then ok := false
  done;
  if !ok then
    for i = 0 to g.offsets.(g.n) - 1 do
      if g.adj.(i) <> h.adj.(i) then ok := false
    done;
  !ok

let pp ppf g =
  let lo =
    if g.n = 0 then 0
    else
      let m = ref max_int in
      for v = 0 to g.n - 1 do
        m := min !m (degree g v)
      done;
      !m
  in
  Format.fprintf ppf "graph(n=%d, m=%d, deg=[%d..%d])" g.n (n_edges g) lo
    (max_degree g)
