(* Width-aware CSR.  The adjacency store — the hot array every solver
   scan walks — comes in two physical widths:

   - [S_int]: plain [int array], one 8-byte word per entry.  The
     original representation, kept as the differential oracle and for
     the (hypothetical) n >= 2^31 regime.
   - [S_i32]: a Bigarray of int32, 4 bytes per entry — half the memory
     traffic on the scans that dominate at 10^7+ edges.  ocamlopt
     eliminates the box/unbox pair in [Int32.to_int (Array1.get a i)],
     so reads cost a 32-bit load plus a sign-extend, no allocation
     (verified: 0.0 minor words/read; a sequential sum runs ~1.4x
     faster than the int-array loop once the array leaves cache).

   The [offsets] array stays [int]: it has n+1 entries against the
   store's 2m and its values (up to 2m) must exceed 32 bits exactly when
   m >= 2^31.  Every observable behavior is identical across widths —
   [equal] compares logical content, constructors pick a width without
   changing results — which is what the width-agreement qcheck suite
   pins down. *)

type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type store = S_int of int array | S_i32 of i32

type width = [ `Int | `Int32 ]

type t = {
  n : int;
  offsets : int array; (* length >= n+1; row u is store indices
                          [offsets.(u), offsets.(u+1)) *)
  adj : store;         (* concatenated sorted adjacency rows; the logical
                          content is the prefix of length offsets.(n) = 2m —
                          arena-backed graphs ([of_csr_prefix]) may carry
                          spare capacity beyond it *)
  exact : bool;        (* physical store length = offsets.(n)?  False for
                          arena views carrying spare capacity. *)
}

let width g = match g.adj with S_int _ -> `Int | S_i32 _ -> `Int32

let store_length = function
  | S_int a -> Array.length a
  | S_i32 a -> Bigarray.Array1.dim a

(* Generic bounds-checked store read, for cold paths; hot loops below
   dispatch once on the constructor and loop monomorphically. *)
let store_get st i =
  match st with
  | S_int a -> a.(i)
  | S_i32 a -> Int32.to_int (Bigarray.Array1.get a i)

let i32_create len =
  Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max len 1)

let n_vertices g = g.n

let n_edges g = g.offsets.(g.n) / 2

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let degree g v =
  check_vertex g v;
  g.offsets.(v + 1) - g.offsets.(v)

let of_normalized_edges n edges =
  (* [edges] holds each edge once as (u, v) with u < v, no duplicates. *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  for v = 0 to n - 1 do
    Ps_util.Intsort.sort_range adj offsets.(v) (offsets.(v) + deg.(v))
  done;
  { n; offsets; adj = S_int adj; exact = true }

let normalize n edges =
  (* Dedup on the int-pair encoding u·n + v (u < v): monomorphic int
     hashing instead of boxed-tuple keys. *)
  let seen = Hashtbl.create (List.length edges) in
  List.filter_map
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      let u, v = if u < v then (u, v) else (v, u) in
      let key = (u * n) + v in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some (u, v)
      end)
    edges

let of_edges n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative vertex count";
  of_normalized_edges n (normalize n edges)

(* Always copies (and widens an int32 store): external auditors get
   arrays they may probe freely, and arena-backed graphs are trimmed to
   their logical content.  [csr_view] below is the zero-copy
   alternative. *)
let to_csr g =
  let total = g.offsets.(g.n) in
  let offsets = Array.sub g.offsets 0 (g.n + 1) in
  let adj =
    match g.adj with
    | S_int a -> Array.sub a 0 total
    | S_i32 a ->
        Array.init total (fun i -> Int32.to_int (Bigarray.Array1.get a i))
  in
  (offsets, adj)

type view = {
  v_n : int;
  v_offsets : int array;
  v_store_len : int;
  v_exact : bool;
  v_get : int -> int;
}

let csr_view g =
  { v_n = g.n;
    v_offsets = g.offsets;
    v_store_len = store_length g.adj;
    v_exact = g.exact;
    v_get =
      (match g.adj with
      | S_int a -> fun i -> a.(i)
      | S_i32 a -> fun i -> Int32.to_int (Bigarray.Array1.get a i)) }

let of_edge_array n edges = of_edges n (Array.to_list edges)

(* Fast-path constructors.  All take ownership of already-final data and
   skip normalization; full structural validation runs only when the
   PSLOCAL_DEBUG environment variable is set (or on explicit request), so
   the release-mode cost is O(1) beyond the caller's own work. *)

let debug_validation =
  match Sys.getenv_opt "PSLOCAL_DEBUG" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let validate_csr ?(exact = true) g =
  let len = Array.length g.offsets in
  if (if exact then len <> g.n + 1 else len < g.n + 1) then
    invalid_arg "Graph.of_csr: offsets length <> n+1";
  if g.offsets.(0) <> 0 then invalid_arg "Graph.of_csr: offsets.(0) <> 0";
  for v = 0 to g.n - 1 do
    if g.offsets.(v + 1) < g.offsets.(v) then
      invalid_arg "Graph.of_csr: offsets not monotone"
  done;
  let store_len = store_length g.adj in
  if
    if exact then g.offsets.(g.n) <> store_len
    else g.offsets.(g.n) > store_len
  then invalid_arg "Graph.of_csr: offsets.(n) <> |adj|";
  let get = match g.adj with
    | S_int a -> fun i -> a.(i)
    | S_i32 a -> fun i -> Int32.to_int (Bigarray.Array1.get a i)
  in
  for v = 0 to g.n - 1 do
    for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
      let u = get i in
      if u < 0 || u >= g.n then invalid_arg "Graph.of_csr: endpoint out of range";
      if u = v then invalid_arg "Graph.of_csr: self-loop";
      if i > g.offsets.(v) && get (i - 1) >= u then
        invalid_arg "Graph.of_csr: row not strictly increasing"
    done
  done;
  (* Symmetry: u ∈ row v ⟹ v ∈ row u (binary search per entry). *)
  for v = 0 to g.n - 1 do
    for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
      let u = get i in
      let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
      let found = ref false in
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let w = get mid in
        if w = v then found := true
        else if w < v then lo := mid + 1
        else hi := mid - 1
      done;
      if not !found then invalid_arg "Graph.of_csr: asymmetric adjacency"
    done
  done

let make_csr ?validate ~exact n ~offsets ~adj =
  if n < 0 then invalid_arg "Graph.of_csr: negative vertex count";
  let g = { n; offsets; adj; exact } in
  let validate = match validate with Some v -> v | None -> debug_validation in
  if validate then validate_csr ~exact g;
  g

let of_csr ?validate n ~offsets ~adj =
  make_csr ?validate ~exact:true n ~offsets ~adj:(S_int adj)

let of_csr_prefix ?validate n ~offsets ~adj =
  make_csr ?validate ~exact:false n ~offsets ~adj:(S_int adj)

let of_csr_i32 ?validate n ~offsets ~adj =
  make_csr ?validate ~exact:true n ~offsets ~adj:(S_i32 adj)

let of_csr_prefix_i32 ?validate n ~offsets ~adj =
  make_csr ?validate ~exact:false n ~offsets ~adj:(S_i32 adj)

let of_sorted_edge_array ?validate n edges =
  if n < 0 then invalid_arg "Graph.of_sorted_edge_array: negative vertex count";
  (let validate = match validate with Some v -> v | None -> debug_validation in
   if validate then
     Array.iteri
       (fun i (u, v) ->
         if u < 0 || v >= n || u >= v then
           invalid_arg "Graph.of_sorted_edge_array: edge not normalized";
         if i > 0 then begin
           let pu, pv = edges.(i - 1) in
           if pu > u || (pu = u && pv >= v) then
             invalid_arg "Graph.of_sorted_edge_array: edges not sorted/unique"
         end)
       edges);
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  (* Lexicographic input order writes every row in increasing order: for a
     fixed row w, all back-edges (u, w) are scanned before any forward
     edge (w, x) — their first components satisfy u < w — and each group
     arrives in increasing order, with u < w < x throughout.  So no
     per-row sort is needed. *)
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  { n; offsets; adj = S_int adj; exact = true }

(* Direct-to-CSR from unnormalized endpoint arrays — the streaming
   constructor behind [Gio.read_file] and the huge generators.  Each
   edge appears once as (u.(i), v.(i)) in either orientation; duplicates
   are collapsed, self-loops rejected, nothing is materialized beyond
   the CSR being built (no lists, no hash tables): count, fill, per-row
   sort, in-place adjacent dedup.  O(n + m log maxdeg). *)
let of_unnormalized_pairs ?(width = `Auto) n ~u ~v ~len =
  if n < 0 then invalid_arg "Graph.of_unnormalized_pairs: negative vertex count";
  if len < 0 || len > Array.length u || len > Array.length v then
    invalid_arg "Graph.of_unnormalized_pairs: bad length";
  let deg = Array.make (max n 1) 0 in
  for i = 0 to len - 1 do
    let a = u.(i) and b = v.(i) in
    if a < 0 || a >= n || b < 0 || b >= n then
      invalid_arg "Graph.of_unnormalized_pairs: endpoint out of range";
    if a = b then invalid_arg "Graph.of_unnormalized_pairs: self-loop";
    deg.(a) <- deg.(a) + 1;
    deg.(b) <- deg.(b) + 1
  done;
  let offsets = Array.make (n + 1) 0 in
  for x = 0 to n - 1 do
    offsets.(x + 1) <- offsets.(x) + deg.(x)
  done;
  let adj = Array.make (max offsets.(n) 1) 0 in
  let cursor = Array.copy offsets in
  for i = 0 to len - 1 do
    let a = u.(i) and b = v.(i) in
    adj.(cursor.(a)) <- b;
    cursor.(a) <- cursor.(a) + 1;
    adj.(cursor.(b)) <- a;
    cursor.(b) <- cursor.(b) + 1
  done;
  (* Sort each row, drop duplicate entries, compact leftwards; rewrite
     offsets as we go.  The write head never passes the read head, so
     the compaction is safe in place. *)
  let w = ref 0 in
  for x = 0 to n - 1 do
    let lo = offsets.(x) and hi = offsets.(x + 1) in
    Ps_util.Intsort.sort_range adj lo hi;
    offsets.(x) <- !w;
    let prev = ref (-1) in
    for i = lo to hi - 1 do
      let y = adj.(i) in
      if y <> !prev then begin
        adj.(!w) <- y;
        incr w;
        prev := y
      end
    done
  done;
  offsets.(n) <- !w;
  let total = !w in
  let pick =
    match width with
    | (`Int | `Int32) as w -> w
    | `Auto -> if n < 0x4000_0000 * 2 then `Int32 else `Int
  in
  match pick with
  | `Int ->
      (* The scratch array may carry dedup slack past [total]; keep it
         as an arena-style prefix rather than paying a trimming copy. *)
      { n; offsets; adj = S_int adj; exact = total = Array.length adj }
  | `Int32 ->
      let a32 = i32_create total in
      for i = 0 to total - 1 do
        Bigarray.Array1.unsafe_set a32 i (Int32.of_int (Array.unsafe_get adj i))
      done;
      { n; offsets; adj = S_i32 a32; exact = total = Bigarray.Array1.dim a32 }

(* Re-encode the adjacency store at the given width (no-op when already
   there).  The int -> int32 direction requires n < 2^31. *)
let with_width g (target : width) =
  match (g.adj, target) with
  | S_int _, `Int | S_i32 _, `Int32 -> g
  | S_int a, `Int32 ->
      if g.n > 0x7FFF_FFFF then
        invalid_arg "Graph.with_width: vertex ids exceed int32";
      let total = g.offsets.(g.n) in
      let a32 = i32_create total in
      for i = 0 to total - 1 do
        Bigarray.Array1.unsafe_set a32 i (Int32.of_int (Array.unsafe_get a i))
      done;
      { g with adj = S_i32 a32; exact = total = Bigarray.Array1.dim a32 }
  | S_i32 a, `Int ->
      let total = g.offsets.(g.n) in
      let ai = Array.make (max total 1) 0 in
      for i = 0 to total - 1 do
        Array.unsafe_set ai i (Int32.to_int (Bigarray.Array1.unsafe_get a i))
      done;
      { g with adj = S_int ai; exact = total = Array.length ai }

let empty n = of_edges n []

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (degree g v)
  done;
  !best

let avg_degree g =
  if g.n = 0 then 0.0
  else 2.0 *. float_of_int (n_edges g) /. float_of_int g.n

let has_edge g u v =
  check_vertex g u;
  check_vertex g v;
  (* Binary search in the sorted row of the lower-degree endpoint. *)
  let u, v = if degree g u <= degree g v then (u, v) else (v, u) in
  let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
  let found = ref false in
  (match g.adj with
  | S_int a ->
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let w = a.(mid) in
        if w = v then found := true
        else if w < v then lo := mid + 1
        else hi := mid - 1
      done
  | S_i32 a ->
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let w = Int32.to_int (Bigarray.Array1.get a mid) in
        if w = v then found := true
        else if w < v then lo := mid + 1
        else hi := mid - 1
      done);
  !found

let neighbors g v =
  check_vertex g v;
  match g.adj with
  | S_int a -> Array.sub a g.offsets.(v) (degree g v)
  | S_i32 a ->
      let lo = g.offsets.(v) in
      Array.init (degree g v) (fun i ->
          Int32.to_int (Bigarray.Array1.get a (lo + i)))

let iter_neighbors g v f =
  check_vertex g v;
  match g.adj with
  | S_int a ->
      for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
        f a.(i)
      done
  | S_i32 a ->
      for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
        f (Int32.to_int (Bigarray.Array1.get a i))
      done

let fold_neighbors g v f init =
  let acc = ref init in
  iter_neighbors g v (fun u -> acc := f !acc u);
  !acc

let exists_neighbor g v pred =
  let exception Found in
  try
    iter_neighbors g v (fun u -> if pred u then raise Found);
    false
  with Found -> true

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if u < v then f u v)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let vertices g = List.init g.n (fun i -> i)

(* Degree-sorted, cache-blocked re-layout: vertices renumbered by
   decreasing degree (stable within equal degrees), rows rebuilt in the
   new order.  The few high-degree rows that every solver sweep keeps
   revisiting end up packed together at the front of the store — one
   compact block of cache lines instead of being scattered across the
   whole array — and row lengths decay monotonically, so a scan's
   working set shrinks as it advances.  Returns the relabelled graph
   (same width) and the permutation [perm], with [perm.(i)] the original
   id of new vertex [i]. *)
let degree_sorted g =
  let n = g.n in
  let maxdeg = max_degree g in
  (* Stable counting sort on key maxdeg - degree (ascending buckets =
     descending degree). *)
  let count = Array.make (maxdeg + 2) 0 in
  for v = 0 to n - 1 do
    let key = maxdeg - (g.offsets.(v + 1) - g.offsets.(v)) in
    count.(key + 1) <- count.(key + 1) + 1
  done;
  for k = 0 to maxdeg do
    count.(k + 1) <- count.(k + 1) + count.(k)
  done;
  let perm = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    let key = maxdeg - (g.offsets.(v + 1) - g.offsets.(v)) in
    perm.(count.(key)) <- v;
    count.(key) <- count.(key) + 1
  done;
  let inv = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    inv.(perm.(i)) <- i
  done;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let v = perm.(i) in
    offsets.(i + 1) <- offsets.(i) + (g.offsets.(v + 1) - g.offsets.(v))
  done;
  let total = offsets.(n) in
  let fill_row write =
    for i = 0 to n - 1 do
      let v = perm.(i) in
      let w = ref offsets.(i) in
      iter_neighbors g v (fun x ->
          write !w inv.(x);
          incr w)
    done
  in
  let adj =
    match g.adj with
    | S_int _ ->
        let a = Array.make (max total 1) 0 in
        fill_row (fun i x -> a.(i) <- x);
        (* Relabelling scrambles row order; restore sortedness. *)
        for i = 0 to n - 1 do
          Ps_util.Intsort.sort_range a offsets.(i) offsets.(i + 1)
        done;
        S_int a
    | S_i32 _ ->
        (* Sort in an int scratch row buffer, then narrow. *)
        let a32 = i32_create total in
        let row = Array.make (max (if n = 0 then 0 else maxdeg) 1) 0 in
        for i = 0 to n - 1 do
          let v = perm.(i) in
          let len = ref 0 in
          iter_neighbors g v (fun x ->
              row.(!len) <- inv.(x);
              incr len);
          Ps_util.Intsort.sort_range row 0 !len;
          let base = offsets.(i) in
          for j = 0 to !len - 1 do
            Bigarray.Array1.unsafe_set a32 (base + j) (Int32.of_int row.(j))
          done
        done;
        S_i32 a32
  in
  ({ n; offsets; adj; exact = total = store_length adj }, perm)

let induced_subgraph g vs =
  let vs = List.sort_uniq Int.compare vs in
  List.iter (check_vertex g) vs;
  let back = Array.of_list vs in
  (* Dense renaming array instead of a hash table: original id -> new id. *)
  let fwd = Array.make g.n (-1) in
  Array.iteri (fun i v -> fwd.(v) <- i) back;
  let sub_edges = ref [] in
  (* [back] is increasing, so for v < u the new ids satisfy i < j and the
     collected edges are already normalized (distinct, u < v). *)
  Array.iteri
    (fun i v ->
      iter_neighbors g v (fun u ->
          if v < u && fwd.(u) >= 0 then sub_edges := (i, fwd.(u)) :: !sub_edges))
    back;
  (of_normalized_edges (Array.length back) !sub_edges, back)

let complement g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not (has_edge g u v) then acc := (u, v) :: !acc
    done
  done;
  of_edges g.n !acc

let contract g labels =
  if Array.length labels <> g.n then
    invalid_arg "Graph.contract: labels length mismatch";
  let top = Array.fold_left max (-1) labels in
  Array.iter
    (fun l -> if l < 0 then invalid_arg "Graph.contract: negative label")
    labels;
  let acc = ref [] in
  iter_edges g (fun u v ->
      if labels.(u) <> labels.(v) then acc := (labels.(u), labels.(v)) :: !acc);
  of_edges (top + 1) !acc

let union g h =
  if g.n <> h.n then invalid_arg "Graph.union: vertex count mismatch";
  of_edges g.n (edges g @ edges h)

let is_subgraph g h =
  g.n = h.n
  &&
  let ok = ref true in
  iter_edges g (fun u v -> if not (has_edge h u v) then ok := false);
  !ok

(* Compare logical content only: arena-backed graphs may carry spare
   store capacity past offsets.(n), and the two widths must compare
   equal whenever they hold the same entries. *)
let equal g h =
  g.n = h.n
  &&
  let ok = ref true in
  for v = 0 to g.n do
    if g.offsets.(v) <> h.offsets.(v) then ok := false
  done;
  (if !ok then
     match (g.adj, h.adj) with
     | S_int a, S_int b ->
         for i = 0 to g.offsets.(g.n) - 1 do
           if a.(i) <> b.(i) then ok := false
         done
     | S_i32 a, S_i32 b ->
         for i = 0 to g.offsets.(g.n) - 1 do
           if not (Int32.equal (Bigarray.Array1.get a i) (Bigarray.Array1.get b i))
           then ok := false
         done
     | (S_int _ | S_i32 _), _ ->
         let ga = store_get g.adj and gb = store_get h.adj in
         for i = 0 to g.offsets.(g.n) - 1 do
           if ga i <> gb i then ok := false
         done);
  !ok

(* Content-addressed digest over the same logical content [equal]
   compares: n, the offsets prefix, and the adjacency entries below
   offsets.(n), each hashed as a logical int value.  Both physical
   widths (and arena views with spare capacity) of the same graph
   therefore produce the same digest; distinct CSRs differ up to
   64-bit collisions (qcheck'd against [equal]). *)
let content_hash g =
  let h = ref (Ps_util.Fnv.int Ps_util.Fnv.init g.n) in
  for v = 0 to g.n do
    h := Ps_util.Fnv.int !h g.offsets.(v)
  done;
  let total = g.offsets.(g.n) in
  (match g.adj with
  | S_int a ->
      for i = 0 to total - 1 do
        h := Ps_util.Fnv.int !h a.(i)
      done
  | S_i32 a ->
      for i = 0 to total - 1 do
        h := Ps_util.Fnv.int !h (Int32.to_int (Bigarray.Array1.get a i))
      done);
  Ps_util.Fnv.finish !h

let pp ppf g =
  let lo =
    if g.n = 0 then 0
    else
      let m = ref max_int in
      for v = 0 to g.n - 1 do
        m := min !m (degree g v)
      done;
      !m
  in
  Format.fprintf ppf "graph(n=%d, m=%d, w=%s, deg=[%d..%d])" g.n (n_edges g)
    (match g.adj with S_int _ -> "int" | S_i32 _ -> "i32")
    lo (max_degree g)
