module B = Ps_util.Bitset

let is_dominating g set =
  B.capacity set = Graph.n_vertices g
  &&
  let ok = ref true in
  for v = 0 to Graph.n_vertices g - 1 do
    if (not (B.mem set v)) && not (Graph.exists_neighbor g v (B.mem set))
    then ok := false
  done;
  !ok

let verify_exn g set =
  for v = 0 to Graph.n_vertices g - 1 do
    if (not (B.mem set v)) && not (Graph.exists_neighbor g v (B.mem set))
    then
      invalid_arg
        (Printf.sprintf "Dominating.verify_exn: vertex %d is undominated" v)
  done

let greedy g =
  let n = Graph.n_vertices g in
  let chosen = B.create n in
  let dominated = B.create n in
  let coverage v =
    (* |N[v] \ dominated| *)
    let c = if B.mem dominated v then 0 else 1 in
    Graph.fold_neighbors g v
      (fun acc u -> if B.mem dominated u then acc else acc + 1)
      c
  in
  while B.cardinal dominated < n do
    let best = ref (-1) and best_cover = ref 0 in
    for v = 0 to n - 1 do
      let c = coverage v in
      if c > !best_cover then begin
        best := v;
        best_cover := c
      end
    done;
    (* best_cover >= 1 while anything is undominated *)
    let v = !best in
    B.add chosen v;
    B.add dominated v;
    Graph.iter_neighbors g v (fun u -> B.add dominated u)
  done;
  chosen

exception Budget_exhausted

let minimum_within ~budget g =
  if budget < 1 then invalid_arg "Dominating.minimum_within";
  let n = Graph.n_vertices g in
  let closed v =
    let mask = B.create n in
    B.add mask v;
    Graph.iter_neighbors g v (B.add mask);
    mask
  in
  let closed_masks = Array.init n closed in
  let best = ref None in
  let best_size = ref (n + 1) in
  let nodes = ref 0 in
  let rec branch chosen n_chosen dominated =
    incr nodes;
    if !nodes > budget then raise Budget_exhausted;
    if n_chosen >= !best_size then ()
    else if B.cardinal dominated = n then begin
      best := Some chosen;
      best_size := n_chosen
    end
    else begin
      (* Some vertex u is undominated; any solution includes a member of
         N[u].  Branch on the candidates. *)
      let u = ref (-1) in
      (try
         for v = 0 to n - 1 do
           if not (B.mem dominated v) then begin
             u := v;
             raise Exit
           end
         done
       with Exit -> ());
      let u = !u in
      let candidates =
        u :: Graph.fold_neighbors g u (fun acc w -> w :: acc) []
      in
      List.iter
        (fun w ->
          let dominated' = B.copy dominated in
          B.union_into dominated' closed_masks.(w);
          branch (w :: chosen) (n_chosen + 1) dominated')
        candidates
    end
  in
  match branch [] 0 (B.create n) with
  | () ->
      Option.map
        (fun vs ->
          let set = B.create n in
          List.iter (B.add set) vs;
          set)
        !best
  | exception Budget_exhausted -> None

let domination_number_within ~budget g =
  Option.map B.cardinal (minimum_within ~budget g)
