(** Graph generators for the experiment workloads.

    Every randomized generator takes an explicit {!Ps_util.Rng.t} so runs
    are reproducible.  Families follow the workloads the LOCAL-model
    literature evaluates on: sparse random graphs, bounded-degree lattices
    and rings (where locality lower bounds live), trees, and geometric
    interval graphs (the [DN18] substrate). *)

val ring : int -> Graph.t
(** Cycle [C_n]; requires [n >= 3]. *)

val path : int -> Graph.t
(** Path [P_n]. *)

val complete : int -> Graph.t
(** Clique [K_n]. *)

val complete_bipartite : int -> int -> Graph.t
(** [K_{a,b}], left part [0..a-1], right part [a..a+b-1]. *)

val star : int -> Graph.t
(** Star with center [0] and [n-1] leaves. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: 4-neighbor lattice, vertex [(r,c)] is [r*cols + c]. *)

val balanced_tree : int -> int -> Graph.t
(** [balanced_tree arity depth]: complete [arity]-ary tree; depth 0 is a
    single root. *)

val gnp : Ps_util.Rng.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n,p)] via geometric skipping, O(n + m) expected. *)

val iter_gnp : Ps_util.Rng.t -> int -> float -> (int -> int -> unit) -> unit
(** The edge stream behind {!gnp}, delivered to a callback instead of a
    list — each distinct edge exactly once, nothing materialized, for
    piping 10^7–10^8-edge instances straight into
    {!Gio.write_edges_file} or a CSR builder.  Draws the same RNG
    sequence as {!gnp}, so a seed reproduces the same graph on either
    path. *)

val huge_gnp : Ps_util.Rng.t -> int -> float -> Graph.t
(** {!iter_gnp} collected through {!Graph.of_unnormalized_pairs}: no
    edge list, no hashing — peak memory is two endpoint arrays plus the
    CSR (int32-backed by default).  Same distribution as {!gnp}; vertex
    ids and edge set coincide for the same seed. *)

val iter_rmat :
  Ps_util.Rng.t -> scale:int -> edges:int -> (int -> int -> unit) -> unit
(** R-MAT recursive-quadrant sampler (a=0.57, b=c=0.19, d=0.05) on
    [2^scale] vertices: the skewed power-law workload at bench scale.
    Emits exactly [edges] pairs (self-loops are resampled); duplicates
    are {e not} removed — every consumer collapses them. *)

val rmat : Ps_util.Rng.t -> scale:int -> edges:int -> Graph.t
(** {!iter_rmat} collected through {!Graph.of_unnormalized_pairs}
    (duplicates collapse there, so the result can have fewer than
    [edges] edges). *)

val gnm : Ps_util.Rng.t -> int -> int -> Graph.t
(** Uniform graph with exactly [m] distinct edges; [m] must not exceed
    [n(n-1)/2]. *)

val random_regular_ish : Ps_util.Rng.t -> int -> int -> Graph.t
(** Degree-capped random graph: repeated random matching of free stubs,
    giving maximum degree [d] and most vertices of degree exactly [d]
    (exact regularity is not guaranteed — collisions discard stubs). *)

val random_tree : Ps_util.Rng.t -> int -> Graph.t
(** Uniform labeled tree via a random Prüfer sequence. *)

val unit_interval : Ps_util.Rng.t -> int -> float -> Graph.t
(** [unit_interval rng n len]: drop [n] unit intervals with left endpoints
    uniform in [\[0, len\]]; vertices adjacent iff intervals intersect.
    Returned vertex order is sorted by left endpoint. *)

val power_law : Ps_util.Rng.t -> int -> float -> Graph.t
(** Preferential-attachment-flavored graph: vertex [i] attaches to
    [max 1 (round (exponent))]... — concretely, a Barabási–Albert process
    with [m0 = 2] seeds and per-step attachment count drawn so the tail
    exponent is roughly the given value; used only as a skewed-degree
    workload, no exact guarantee. *)

val disjoint_cliques : int -> int -> Graph.t
(** [disjoint_cliques count size]: [count] disjoint cliques of the given
    size — a graph whose MaxIS is exactly [count], handy for calibrating
    approximation ratios. *)

val hypercube : int -> Graph.t
(** [hypercube d]: the d-dimensional cube [Q_d] on [2^d] vertices —
    vertex [i] adjacent to [i lxor (1 lsl b)].  Bipartite, d-regular,
    diameter d; a staple LOCAL-model benchmark topology. *)

val petersen : unit -> Graph.t
(** The Petersen graph: 10 vertices, 15 edges, 3-regular; α = 4, χ = 3,
    γ = 3, perfect matchings exist — a ground-truth fixture for the
    exact solvers.  Vertices 0-4 are the outer cycle, 5-9 the inner
    pentagram ([i ~ i+5], inner [i ~ i+2 mod 5]). *)

val kneser_petersen_family : int -> Graph.t
(** [kneser_petersen_family n] is the Kneser graph K(n, 2) for [n >= 5]:
    vertices are 2-element subsets of [{0..n-1}], adjacent iff disjoint.
    [K(5,2)] is the Petersen graph; α = n-1 (star of pairs through one
    element), χ = n - 2 (Lovász). *)

val wheel : int -> Graph.t
(** [wheel n]: a hub (vertex 0) joined to an [n]-cycle (vertices 1..n);
    χ = 4 for odd cycles, 3 for even; γ = 1.  Requires [n >= 3]. *)

val crown : int -> Graph.t
(** [crown n]: [K_{n,n}] minus a perfect matching — left vertices
    [0..n-1], right vertices [n..2n-1], [i ~ n+j] iff [i ≠ j].  The
    classic witness that greedy coloring is order-fragile: a side-by-side
    order uses 2 colors, the paired order [0, n, 1, n+1, ...] uses [n] —
    exactly the "arbitrary order" adversary the SLOCAL model grants.
    Requires [n >= 2]. *)
