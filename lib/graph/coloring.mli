(** Proper vertex colorings of simple graphs.

    A coloring is an int array indexed by vertex; colors are nonnegative.
    The sentinel [uncolored] marks vertices without a color (partial
    colorings appear while sequential algorithms are mid-run). *)

val uncolored : int
(** [-1]. *)

val is_proper : Graph.t -> int array -> bool
(** Every vertex colored with a nonnegative color and no monochromatic
    edge. *)

val is_proper_partial : Graph.t -> int array -> bool
(** Like {!is_proper} but [uncolored] vertices are permitted and ignored
    in the edge check. *)

val num_colors : int array -> int
(** Number of distinct non-sentinel colors used. *)

val max_color : int array -> int
(** Largest color used, or [-1] when none. *)

val greedy : ?order:int array -> Graph.t -> int array
(** Sequential greedy: process vertices in the given order (identity by
    default) and assign the smallest color absent from the already-colored
    neighborhood.  Uses at most [Δ+1] colors. *)

val color_classes : int array -> int list array
(** [color_classes c] groups vertices by color; index [k] lists vertices of
    color [k] (sorted), array length is [max_color c + 1].  Uncolored
    vertices are skipped. *)

(** {1 Exact chromatic numbers}

    Backtracking search, exponential in the worst case — ground truth
    for small instances (tests and experiment baselines). *)

val k_colorable : Graph.t -> int -> int array option
(** [k_colorable g k] is a proper coloring with colors [< k], or [None].
    Symmetry-broken: the first vertex of each new color class is forced,
    so the search does not permute color names. *)

val chromatic_number_within : budget:int -> Graph.t -> int option
(** χ(G), or [None] when the search exceeds [budget] nodes.  Starts from
    the clique-ish lower bound 1 and stops at the greedy upper bound. *)
