let bfs_multi g sources =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Traverse.bfs_multi: bad source";
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let bfs_distances g src = bfs_multi g [ src ]

let ball g v r =
  if r < 0 then invalid_arg "Traverse.ball: negative radius";
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(v) <- 0;
  Queue.add v queue;
  let members = ref [ v ] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if dist.(u) < r then
      Graph.iter_neighbors g u (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(u) + 1;
            members := w :: !members;
            Queue.add w queue
          end)
  done;
  List.sort Int.compare !members

let ball_subgraph g v r = Graph.induced_subgraph g (ball g v r)

let connected_components g =
  let n = Graph.n_vertices g in
  let uf = Ps_util.Union_find.create n in
  Graph.iter_edges g (fun u v -> ignore (Ps_util.Union_find.union uf u v));
  Ps_util.Union_find.components uf

let is_connected g =
  Graph.n_vertices g <= 1 || Array.length (connected_components g) = 1

let eccentricity g v =
  Array.fold_left max 0 (bfs_distances g v)

let diameter g =
  let n = Graph.n_vertices g in
  if n <= 1 then 0
  else if not (is_connected g) then -1
  else begin
    let best = ref 0 in
    for v = 0 to n - 1 do
      best := max !best (eccentricity g v)
    done;
    !best
  end

let dfs_preorder g src =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n then invalid_arg "Traverse.dfs_preorder";
  let visited = Array.make n false in
  let order = ref [] in
  let rec visit v =
    visited.(v) <- true;
    order := v :: !order;
    Graph.iter_neighbors g v (fun u -> if not visited.(u) then visit u)
  in
  visit src;
  List.rev !order

let distance g u v = (bfs_distances g u).(v)

let power g k =
  if k < 0 then invalid_arg "Traverse.power: negative exponent";
  let acc = ref [] in
  for v = 0 to Graph.n_vertices g - 1 do
    List.iter
      (fun u -> if u > v then acc := (v, u) :: !acc)
      (ball g v k)
  done;
  Graph.of_edges (Graph.n_vertices g) !acc
