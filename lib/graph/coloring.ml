let uncolored = -1

let is_proper_partial g c =
  Array.length c = Graph.n_vertices g
  && Array.for_all (fun x -> x >= uncolored) c
  &&
  let ok = ref true in
  Graph.iter_edges g (fun u v ->
      if c.(u) <> uncolored && c.(u) = c.(v) then ok := false);
  !ok

let is_proper g c =
  Array.for_all (fun x -> x >= 0) c && is_proper_partial g c

let num_colors c =
  let seen = Hashtbl.create 16 in
  Array.iter (fun x -> if x <> uncolored then Hashtbl.replace seen x ()) c;
  Hashtbl.length seen

let max_color c = Array.fold_left max uncolored c

let greedy ?order g =
  let n = Graph.n_vertices g in
  let order =
    match order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then
          invalid_arg "Coloring.greedy: order length mismatch";
        o
  in
  let c = Array.make n uncolored in
  let forbidden = Array.make (n + 1) (-1) in
  Array.iter
    (fun v ->
      Graph.iter_neighbors g v (fun u ->
          if c.(u) <> uncolored then forbidden.(c.(u)) <- v);
      let k = ref 0 in
      while forbidden.(!k) = v do
        incr k
      done;
      c.(v) <- !k)
    order;
  c

exception Budget_exhausted

(* Backtracking k-colorability with two standard prunings: vertices in
   descending degree order, and each vertex may use at most one color
   beyond those already in use (breaking color-name symmetry). *)
let k_colorable_search ~budget g k =
  let n = Graph.n_vertices g in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare (Graph.degree g b) (Graph.degree g a)) order;
  let colors = Array.make n uncolored in
  let nodes = ref 0 in
  let exception Found in
  let rec assign i used =
    incr nodes;
    if !nodes > budget then raise Budget_exhausted;
    if i = n then raise Found
    else begin
      let v = order.(i) in
      let limit = min (k - 1) used in
      for c = 0 to limit do
        let clash =
          Graph.exists_neighbor g v (fun u -> colors.(u) = c)
        in
        if not clash then begin
          colors.(v) <- c;
          assign (i + 1) (max used (c + 1));
          colors.(v) <- uncolored
        end
      done
    end
  in
  match assign 0 0 with
  | () -> None
  | exception Found -> Some (Array.copy colors)

let k_colorable g k =
  if k < 0 then invalid_arg "Coloring.k_colorable";
  if k = 0 then if Graph.n_vertices g = 0 then Some [||] else None
  else k_colorable_search ~budget:max_int g k

let chromatic_number_within ~budget g =
  if budget < 1 then invalid_arg "Coloring.chromatic_number_within";
  if Graph.n_vertices g = 0 then Some 0
  else begin
    let upper = num_colors (greedy g) in
    let rec search k =
      if k >= upper then Some upper
      else
        match k_colorable_search ~budget g k with
        | Some _ -> Some k
        | None -> search (k + 1)
    in
    try search 1 with Budget_exhausted -> None
  end

let color_classes c =
  let top = max_color c in
  let classes = Array.make (top + 1) [] in
  for v = Array.length c - 1 downto 0 do
    if c.(v) <> uncolored then classes.(c.(v)) <- v :: classes.(c.(v))
  done;
  classes
