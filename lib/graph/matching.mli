(** Matchings.

    Maximal matching is the third classic symmetry-breaking problem of
    the LOCAL world (with MIS and coloring): greedy-trivial sequentially
    and in SLOCAL, O(log n) randomized in LOCAL (Israeli–Itai), and — via
    "both endpoints of a maximal matching" — the textbook 2-approximate
    vertex cover, the mirror image of independent sets.

    A matching is represented as a partner array: [partner.(v)] is the
    matched neighbor of [v], or [-1] when [v] is unmatched. *)

val unmatched : int
(** [-1]. *)

val is_matching : Graph.t -> int array -> bool
(** Involutive partner structure over actual edges. *)

val is_maximal_matching : Graph.t -> int array -> bool
(** A matching with no edge joining two unmatched vertices. *)

val verify_exn : Graph.t -> int array -> unit

val greedy : ?order:(int * int) list -> Graph.t -> int array
(** Scan edges (default: lexicographic) and take every edge whose
    endpoints are both free — the sequential maximal matching. *)

val size : int array -> int
(** Number of matched {e edges} (pairs / 2). *)

val matched_vertices : int array -> int list
(** Sorted list of matched vertices — for a maximal matching, a vertex
    cover of at most twice the optimum. *)
