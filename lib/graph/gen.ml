module Rng = Ps_util.Rng

let ring n =
  if n < 3 then invalid_arg "Gen.ring: need n >= 3";
  Graph.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges n !acc

let complete_bipartite a b =
  let acc = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      acc := (u, v) :: !acc
    done
  done;
  Graph.of_edges (a + b) !acc

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (id r c, id r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (id r c, id (r + 1) c) :: !acc
    done
  done;
  Graph.of_edges (rows * cols) !acc

let balanced_tree arity depth =
  if arity < 1 || depth < 0 then invalid_arg "Gen.balanced_tree";
  (* Number the tree in BFS order: children of [v] start at [arity*v + 1]. *)
  let rec size d = if d = 0 then 1 else 1 + (arity * size (d - 1)) in
  let n = size depth in
  let acc = ref [] in
  for v = 0 to n - 1 do
    for c = 1 to arity do
      let child = (arity * v) + c in
      if child < n then acc := (v, child) :: !acc
    done
  done;
  Graph.of_edges n !acc

(* Geometric skipping over the lexicographic edge stream (Batagelj &
   Brandes): expected O(n + m) instead of O(n^2), emitting each edge to
   [f] without materializing anything — the generator for 10^7–10^8-edge
   instances.  [gnp] below consumes the same stream (identical RNG draw
   sequence), so a seed reproduces the same graph on either path. *)
let iter_gnp rng n p f =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: p out of range";
  if p > 0.0 && p < 1.0 then begin
    let u = ref 1 and v = ref (-1) in
    while !u < n do
      let skip = Rng.geometric rng p in
      v := !v + 1 + skip;
      while !v >= !u && !u < n do
        v := !v - !u;
        incr u
      done;
      if !u < n then f !v !u
    done
  end
  else if p = 1.0 then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        f u v
      done
    done

let gnp rng n p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: p out of range";
  if p = 0.0 then Graph.empty n
  else if p = 1.0 then complete n
  else begin
    let acc = ref [] in
    iter_gnp rng n p (fun v u -> acc := (v, u) :: !acc);
    Graph.of_edges n !acc
  end

(* Growable endpoint pair collector feeding the direct-to-CSR
   constructor — the only intermediates between an edge stream and the
   finished (int32-backed, by default) graph. *)
let collect_pairs n iter =
  let us = ref (Array.make 1024 0) and vs = ref (Array.make 1024 0) in
  let len = ref 0 in
  iter (fun u v ->
      if !len = Array.length !us then begin
        let grow a =
          let b = Array.make (2 * Array.length a) 0 in
          Array.blit a 0 b 0 (Array.length a);
          b
        in
        us := grow !us;
        vs := grow !vs
      end;
      !us.(!len) <- u;
      !vs.(!len) <- v;
      incr len);
  Graph.of_unnormalized_pairs n ~u:!us ~v:!vs ~len:!len

let huge_gnp rng n p = collect_pairs n (iter_gnp rng n p)

(* R-MAT (Chakrabarti–Zhan–Faloutsos): each edge picks one of the four
   adjacency-matrix quadrants per bit level with skewed probabilities,
   yielding a power-law degree profile.  Self-loops are resampled (the
   repository is simple-graph-only); duplicates are left in the stream —
   every consumer (CSR constructor, edge-list file reader) collapses
   them — so exactly [edges] pairs are emitted. *)
let iter_rmat rng ~scale ~edges f =
  if scale < 1 || scale > 30 then invalid_arg "Gen.iter_rmat: scale";
  if edges < 0 then invalid_arg "Gen.iter_rmat: edges";
  let a = 0.57 and b = 0.19 and c = 0.19 in
  for _ = 1 to edges do
    let u = ref 0 and v = ref 0 in
    let again = ref true in
    while !again do
      u := 0;
      v := 0;
      for _ = 1 to scale do
        let r = Rng.float rng 1.0 in
        let ubit, vbit =
          if r < a then (0, 0)
          else if r < a +. b then (0, 1)
          else if r < a +. b +. c then (1, 0)
          else (1, 1)
        in
        u := (!u lsl 1) lor ubit;
        v := (!v lsl 1) lor vbit
      done;
      if !u <> !v then again := false
    done;
    f !u !v
  done

let rmat rng ~scale ~edges =
  collect_pairs (1 lsl scale) (fun f -> iter_rmat rng ~scale ~edges f)

let gnm rng n m =
  let possible =
    if n <= 1 then 0 else n * (n - 1) / 2
  in
  if m < 0 || m > possible then invalid_arg "Gen.gnm: m out of range";
  let seen = Hashtbl.create (2 * m) in
  let acc = ref [] in
  while Hashtbl.length seen < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let e = (min u v, max u v) in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.add seen e ();
        acc := e :: !acc
      end
    end
  done;
  Graph.of_edges n !acc

let random_regular_ish rng n d =
  if d < 0 || d >= n then invalid_arg "Gen.random_regular_ish";
  (* Pair up stubs; drop pairs that would create loops or duplicates. *)
  let stubs = Array.make (n * d) 0 in
  for v = 0 to n - 1 do
    for i = 0 to d - 1 do
      stubs.((v * d) + i) <- v
    done
  done;
  Rng.shuffle_in_place rng stubs;
  let seen = Hashtbl.create (n * d) in
  let acc = ref [] in
  let half = Array.length stubs / 2 in
  for i = 0 to half - 1 do
    let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
    if u <> v then begin
      let e = (min u v, max u v) in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.add seen e ();
        acc := e :: !acc
      end
    end
  done;
  Graph.of_edges n !acc

let random_tree rng n =
  if n < 1 then invalid_arg "Gen.random_tree";
  if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges 2 [ (0, 1) ]
  else begin
    (* Decode a uniform Prüfer sequence of length n-2. *)
    let pruefer = Array.init (n - 2) (fun _ -> Rng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) pruefer;
    let leaves = Ps_util.Pqueue.create n in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then Ps_util.Pqueue.insert leaves v v
    done;
    let acc = ref [] in
    Array.iter
      (fun v ->
        let leaf, _ = Ps_util.Pqueue.pop_min leaves in
        acc := (leaf, v) :: !acc;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then Ps_util.Pqueue.insert leaves v v)
      pruefer;
    let a, _ = Ps_util.Pqueue.pop_min leaves in
    let b, _ = Ps_util.Pqueue.pop_min leaves in
    acc := (a, b) :: !acc;
    Graph.of_edges n !acc
  end

let unit_interval rng n len =
  if len < 0.0 then invalid_arg "Gen.unit_interval";
  let left = Array.init n (fun _ -> Rng.float rng len) in
  Array.sort Float.compare left;
  let acc = ref [] in
  for u = 0 to n - 1 do
    let v = ref (u + 1) in
    (* Sorted left endpoints: neighbors of u form a contiguous run. *)
    while !v < n && left.(!v) <= left.(u) +. 1.0 do
      acc := (u, !v) :: !acc;
      incr v
    done
  done;
  Graph.of_edges n !acc

let power_law rng n gamma =
  if n < 3 then invalid_arg "Gen.power_law: need n >= 3";
  (* Barabási–Albert-style growth. [gamma] only modulates how many links a
     newcomer creates; the family is used as a skewed-degree workload. *)
  let links_per_step = max 1 (int_of_float (Float.round (4.0 /. gamma))) in
  let targets = ref [ 0; 1 ] in
  (* Multiset of endpoints; sampling from it is preferential attachment. *)
  let acc = ref [ (0, 1) ] in
  for v = 2 to n - 1 do
    let pool = Array.of_list !targets in
    let wanted = min links_per_step v in
    let chosen = Hashtbl.create wanted in
    let guard = ref 0 in
    while Hashtbl.length chosen < wanted && !guard < 50 * wanted do
      incr guard;
      let u = Rng.choice rng pool in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        acc := (u, v) :: !acc;
        targets := u :: !targets)
      chosen;
    targets := v :: !targets
  done;
  Graph.of_edges n !acc

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Gen.hypercube";
  let n = 1 lsl d in
  let acc = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then acc := (v, u) :: !acc
    done
  done;
  Graph.of_edges n !acc

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  Graph.of_edges 10 (outer @ spokes @ inner)

let kneser_petersen_family n =
  if n < 5 then invalid_arg "Gen.kneser_petersen_family: need n >= 5";
  (* enumerate 2-subsets {a,b}, a < b, in lexicographic order *)
  let pairs = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      pairs := (a, b) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let m = Array.length pairs in
  let acc = ref [] in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      let a1, b1 = pairs.(i) and a2, b2 = pairs.(j) in
      if a1 <> a2 && a1 <> b2 && b1 <> a2 && b1 <> b2 then
        acc := (i, j) :: !acc
    done
  done;
  Graph.of_edges m !acc

let wheel n =
  if n < 3 then invalid_arg "Gen.wheel: need n >= 3";
  let cycle = List.init n (fun i -> (1 + i, 1 + ((i + 1) mod n))) in
  let spokes = List.init n (fun i -> (0, 1 + i)) in
  Graph.of_edges (n + 1) (cycle @ spokes)

let crown n =
  if n < 2 then invalid_arg "Gen.crown: need n >= 2";
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then acc := (i, n + j) :: !acc
    done
  done;
  Graph.of_edges (2 * n) !acc

let disjoint_cliques count size =
  if count < 0 || size < 1 then invalid_arg "Gen.disjoint_cliques";
  let acc = ref [] in
  for c = 0 to count - 1 do
    let base = c * size in
    for u = 0 to size - 1 do
      for v = u + 1 to size - 1 do
        acc := (base + u, base + v) :: !acc
      done
    done
  done;
  Graph.of_edges (count * size) !acc
