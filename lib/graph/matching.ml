let unmatched = -1

let is_matching g partner =
  Array.length partner = Graph.n_vertices g
  &&
  let ok = ref true in
  Array.iteri
    (fun v p ->
      if p <> unmatched then
        if p < 0 || p >= Graph.n_vertices g
           || partner.(p) <> v
           || not (Graph.has_edge g v p)
        then ok := false)
    partner;
  !ok

let is_maximal_matching g partner =
  is_matching g partner
  &&
  let ok = ref true in
  Graph.iter_edges g (fun u v ->
      if partner.(u) = unmatched && partner.(v) = unmatched then ok := false);
  !ok

let verify_exn g partner =
  if not (is_matching g partner) then
    invalid_arg "Matching.verify_exn: not a matching";
  Graph.iter_edges g (fun u v ->
      if partner.(u) = unmatched && partner.(v) = unmatched then
        invalid_arg
          (Printf.sprintf "Matching.verify_exn: edge (%d,%d) unmatched" u v))

let greedy ?order g =
  let partner = Array.make (Graph.n_vertices g) unmatched in
  let take u v =
    if partner.(u) = unmatched && partner.(v) = unmatched then begin
      partner.(u) <- v;
      partner.(v) <- u
    end
  in
  (match order with
  | None -> Graph.iter_edges g take
  | Some edges ->
      List.iter
        (fun (u, v) ->
          if not (Graph.has_edge g u v) then
            invalid_arg "Matching.greedy: order contains a non-edge";
          take u v)
        edges;
      (* finish maximally over the remaining edges *)
      Graph.iter_edges g take);
  partner

let size partner =
  Array.fold_left (fun acc p -> if p <> unmatched then acc + 1 else acc) 0
    partner
  / 2

let matched_vertices partner =
  let acc = ref [] in
  Array.iteri (fun v p -> if p <> unmatched then acc := v :: !acc) partner;
  List.rev !acc
