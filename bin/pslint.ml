(* pslint — repo-specific static analysis over lib/, built on
   compiler-libs.  `dune build @lint` runs it on every .ml/.mli under
   lib/ and fails the build on any violation.

   Rules (ids are what suppression comments name):

     poly-compare   (hot modules: lib/graph, lib/core, lib/cfc,
                    lib/slocal, lib/server, lib/cache, lib/shard)
                    No polymorphic structural
                    comparison on
                    the hot paths PR 1 monomorphised: unqualified or
                    Stdlib-qualified [compare] (unless a binding in
                    scope shadows it), [Hashtbl.hash], the
                    equality-based [List.mem]/[List.assoc] family, and
                    [=]/[<>] applied to syntactically structured
                    operands (tuples, constructors, lists, records,
                    strings).
     no-obj         (all of lib/)  No [Obj.*] — unsafe casts have no
                    place in a proof-artifact codebase.
     no-print       (all of lib/)  No direct stdout/stderr output
                    ([print_*], [prerr_*], [Printf.printf]/[eprintf],
                    [Format.printf]/[eprintf]); library results travel
                    through Telemetry, Logs or returned values.
                    [sprintf]/[fprintf]-style formatting is fine.
     global-state   (all of lib/)  No module-level mutable values
                    ([ref], [Hashtbl.create], [Buffer.create],
                    [Array.make], array literals, ...): module-level
                    mutability is shared across domains and needs an
                    explicit synchronization story.  [Mutex.create],
                    [Atomic.make] and [Domain.DLS.new_key] are the
                    sanctioned primitives and are allowed.
     mli-required   (all of lib/)  Every .ml has a sibling .mli — the
                    interface is where invariants get documented.

   Suppressions: a comment containing "pslint: allow <rule> [<rule>...]"
   suppresses those rules on its own line and the next; "pslint:
   allow-file <rule>" suppresses for the whole file.  Suppressions are
   scanned textually so they work in any position a comment can occupy.

   Diagnostics are positioned (file:line:col) and written to stderr;
   exit status is 1 when anything fired, 2 on usage/IO errors. *)

module StringSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let violations : violation list ref = ref []

let report file (loc : Location.t) rule message =
  let p = loc.Location.loc_start in
  violations :=
    { file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      rule;
      message }
    :: !violations

(* ------------------------------------------------------------------ *)
(* Suppression comments, scanned from the raw source text *)

type suppressions = {
  file_wide : StringSet.t;
  by_line : (int, StringSet.t) Hashtbl.t; (* line -> suppressed rules *)
}

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Parse the whitespace-separated rule names following [start]. *)
let rules_after line start =
  let n = String.length line in
  let rec skip_ws i = if i < n && line.[i] = ' ' then skip_ws (i + 1) else i in
  let rec words acc i =
    let i = skip_ws i in
    if i >= n || not (is_rule_char line.[i]) then acc
    else begin
      let j = ref i in
      while !j < n && is_rule_char line.[!j] do incr j done;
      words (String.sub line i (!j - i) :: acc) !j
    end
  in
  words [] start

let scan_suppressions text =
  let by_line = Hashtbl.create 8 in
  let file_wide = ref StringSet.empty in
  let add_line ln rules =
    let prev =
      match Hashtbl.find_opt by_line ln with
      | Some s -> s
      | None -> StringSet.empty
    in
    Hashtbl.replace by_line ln
      (List.fold_left (fun s r -> StringSet.add r s) prev rules)
  in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      let probe marker k =
        match
          (* no Str in scope: naive substring search is plenty here *)
          let ml = String.length marker and n = String.length line in
          let rec find j =
            if j + ml > n then None
            else if String.sub line j ml = marker then Some (j + ml)
            else find (j + 1)
          in
          find 0
        with
        | Some stop -> k (rules_after line stop)
        | None -> ()
      in
      probe "pslint: allow-file" (fun rules ->
          file_wide :=
            List.fold_left (fun s r -> StringSet.add r s) !file_wide rules);
      (* allow-file lines also match "pslint: allow"; harmless, the rule
         set added per-line is the same. *)
      probe "pslint: allow " (fun rules ->
          add_line ln rules;
          add_line (ln + 1) rules))
    (String.split_on_char '\n' text);
  { file_wide = !file_wide; by_line }

let suppressed sup rule line =
  StringSet.mem rule sup.file_wide
  ||
  match Hashtbl.find_opt sup.by_line line with
  | Some rules -> StringSet.mem rule rules
  | None -> false

(* ------------------------------------------------------------------ *)
(* Rule predicates over identifiers *)

let print_idents =
  StringSet.of_list
    [ "print_string"; "print_bytes"; "print_int"; "print_char";
      "print_float"; "print_endline"; "print_newline"; "prerr_string";
      "prerr_bytes"; "prerr_int"; "prerr_char"; "prerr_float";
      "prerr_endline"; "prerr_newline" ]

let mutable_makers =
  [ ("Hashtbl", "create"); ("Buffer", "create"); ("Queue", "create");
    ("Stack", "create"); ("Array", "make"); ("Array", "create_float");
    ("Array", "init"); ("Array", "make_matrix"); ("Bytes", "make");
    ("Bytes", "create") ]

let longident_tail = function
  | Longident.Lident s -> Some ([], s)
  | Longident.Ldot (Longident.Lident m, s) -> Some ([ m ], s)
  | Longident.Ldot (Longident.Ldot (Longident.Lident m, m'), s) ->
      Some ([ m; m' ], s)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The per-file AST walk *)

type ctx = {
  file : string;
  hot : bool; (* poly-compare applies *)
  sup : suppressions;
  mutable scope : StringSet.t; (* value names bound at this point *)
}

let flag ctx loc rule fmt =
  Printf.ksprintf
    (fun message ->
      let line = loc.Location.loc_start.Lexing.pos_lnum in
      if not (suppressed ctx.sup rule line) then
        report ctx.file loc rule message)
    fmt

let rec pattern_vars acc (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Ppat_var { txt; _ } -> StringSet.add txt acc
  | Ppat_alias (q, { txt; _ }) -> pattern_vars (StringSet.add txt acc) q
  | Ppat_tuple ps -> List.fold_left pattern_vars acc ps
  | Ppat_construct (_, Some (_, q)) -> pattern_vars acc q
  | Ppat_variant (_, Some q) -> pattern_vars acc q
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, q) -> pattern_vars acc q) acc fields
  | Ppat_array ps -> List.fold_left pattern_vars acc ps
  | Ppat_or (a, b) -> pattern_vars (pattern_vars acc a) b
  | Ppat_constraint (q, _) | Ppat_lazy q | Ppat_exception q
  | Ppat_open (_, q) ->
      pattern_vars acc q
  | _ -> acc

let ident_check ctx (loc : Location.t) (lid : Longident.t) =
  match longident_tail lid with
  | None -> ()
  | Some (path, name) -> (
      (match (path, name) with
      | [], "compare" when ctx.hot && not (StringSet.mem "compare" ctx.scope)
        ->
          flag ctx loc "poly-compare"
            "polymorphic compare — use Int.compare or a monomorphic \
             comparator"
      | ([ "Stdlib" ] | [ "Pervasives" ]), "compare" when ctx.hot ->
          flag ctx loc "poly-compare"
            "polymorphic compare — use Int.compare or a monomorphic \
             comparator"
      | [ "Hashtbl" ], "hash" when ctx.hot ->
          flag ctx loc "poly-compare"
            "polymorphic Hashtbl.hash — hash a monomorphic key instead"
      | [ "List" ], ("mem" | "assoc" | "assoc_opt" | "mem_assoc"
                    | "remove_assoc")
        when ctx.hot ->
          flag ctx loc "poly-compare"
            "List.%s uses polymorphic equality — use the q-variant on a \
             monomorphic key or an explicit predicate" name
      | _ -> ());
      match (path, name) with
      | [ "Obj" ], _ ->
          flag ctx loc "no-obj" "Obj.%s — unsafe casts are banned in lib/"
            name
      | [], p when StringSet.mem p print_idents ->
          flag ctx loc "no-print"
            "%s writes to a std stream — route through Telemetry, Logs, or \
             return the value" p
      | ([ "Printf" ] | [ "Format" ]), ("printf" | "eprintf") ->
          flag ctx loc "no-print"
            "%s.%s writes to a std stream — use sprintf/fprintf to a \
             caller-supplied destination" (List.hd path) name
      | [ "Format" ], ("print_string" | "print_newline" | "print_int"
                      | "print_float" | "print_char") ->
          flag ctx loc "no-print"
            "Format.%s writes to stdout — use a caller-supplied formatter"
            name
      | _ -> ())

(* Is [e] a syntactic shape whose [=]/[<>] comparison is structural
   (boxed) rather than an immediate scalar?  Conservative: flags only
   what is certainly structured. *)
let structured (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, _)
    ->
      false
  | Pexp_construct _ | Pexp_variant _ -> true
  | Pexp_constant (Parsetree.Pconst_string _) -> true
  | _ -> false

let with_scope ctx names f =
  let saved = ctx.scope in
  ctx.scope <- StringSet.union names saved;
  f ();
  ctx.scope <- saved

let iterator ctx =
  let open Ast_iterator in
  let case it (c : Parsetree.case) =
    with_scope ctx
      (pattern_vars StringSet.empty c.Parsetree.pc_lhs)
      (fun () ->
        Option.iter (it.expr it) c.Parsetree.pc_guard;
        it.expr it c.Parsetree.pc_rhs)
  in
  let value_bindings it rec_flag (vbs : Parsetree.value_binding list) body =
    let bound =
      List.fold_left
        (fun acc vb -> pattern_vars acc vb.Parsetree.pvb_pat)
        StringSet.empty vbs
    in
    let rhs () =
      List.iter (fun vb -> it.expr it vb.Parsetree.pvb_expr) vbs
    in
    (match rec_flag with
    | Asttypes.Recursive -> with_scope ctx bound rhs
    | Asttypes.Nonrecursive -> rhs ());
    match body with
    | Some body -> with_scope ctx bound (fun () -> it.expr it body)
    | None -> ctx.scope <- StringSet.union bound ctx.scope
    (* structure-level: names stay bound for the rest of the module *)
  in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Pexp_ident { txt; loc } -> ident_check ctx loc txt
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc };
            _ },
          args )
      when ctx.hot ->
        if List.exists (fun (_, a) -> structured a) args then
          flag ctx loc "poly-compare"
            "( %s ) on a structured operand is a polymorphic comparison — \
             match on the shape or use a monomorphic equal" op
    | _ -> ());
    match e.Parsetree.pexp_desc with
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (it.expr it) default;
        it.pat it pat;
        with_scope ctx
          (pattern_vars StringSet.empty pat)
          (fun () -> it.expr it body)
    | Pexp_function cases -> List.iter (case it) cases
    | Pexp_let (rec_flag, vbs, body) ->
        value_bindings it rec_flag vbs (Some body)
    | Pexp_match (scrut, cases) ->
        it.expr it scrut;
        List.iter (case it) cases
    | Pexp_try (body, cases) ->
        it.expr it body;
        List.iter (case it) cases
    | Pexp_for (pat, lo, hi, _, body) ->
        it.expr it lo;
        it.expr it hi;
        with_scope ctx
          (pattern_vars StringSet.empty pat)
          (fun () -> it.expr it body)
    | _ -> default_iterator.expr it e
  in
  let structure_item it (item : Parsetree.structure_item) =
    match item.Parsetree.pstr_desc with
    | Pstr_value (rec_flag, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let rec head (e : Parsetree.expression) =
              match e.Parsetree.pexp_desc with
              | Pexp_constraint (e, _) -> head e
              | desc -> desc
            in
            match head vb.Parsetree.pvb_expr with
            | Pexp_apply
                ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                match longident_tail txt with
                | Some ([], "ref") ->
                    flag ctx vb.Parsetree.pvb_loc "global-state"
                      "module-level ref — shared across domains; guard it \
                       or move it into a handle"
                | Some ([ m ], f)
                  when List.exists
                         (fun (m', f') -> m = m' && f = f')
                         mutable_makers ->
                    flag ctx vb.Parsetree.pvb_loc "global-state"
                      "module-level %s.%s — mutable state shared across \
                       domains; guard it or move it into a handle" m f
                | _ -> ())
            | Pexp_array _ ->
                flag ctx vb.Parsetree.pvb_loc "global-state"
                  "module-level array literal — mutable state shared \
                   across domains; guard it or move it into a handle"
            | _ -> ())
          vbs;
        value_bindings it rec_flag vbs None
    | _ -> default_iterator.structure_item it item
  in
  let structure it (items : Parsetree.structure) =
    (* A nested module's bindings must not leak past its end. *)
    let saved = ctx.scope in
    List.iter (it.structure_item it) items;
    ctx.scope <- saved
  in
  { default_iterator with expr; structure_item; structure }

(* ------------------------------------------------------------------ *)
(* Driving *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hot_dirs =
  [ "lib/graph"; "lib/core"; "lib/cfc"; "lib/slocal"; "lib/server";
    "lib/cache"; "lib/shard" ]

let normalize_path p =
  String.concat "/" (String.split_on_char '\\' p)

let is_hot path =
  let p = normalize_path path in
  List.exists
    (fun dir ->
      (* match the directory component anywhere in the path *)
      let needle = dir ^ "/" in
      let n = String.length p and m = String.length needle in
      let rec find i = i + m <= n && (String.sub p i m = needle || find (i + 1)) in
      find 0)
    hot_dirs

let lexbuf_of path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  lexbuf

let check_ml path =
  let text = read_file path in
  let sup = scan_suppressions text in
  let ctx = { file = path; hot = is_hot path; sup; scope = StringSet.empty } in
  match Parse.implementation (lexbuf_of path text) with
  | ast ->
      let it = iterator ctx in
      it.Ast_iterator.structure it ast
  | exception exn ->
      let loc =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> e.Location.main.Location.loc
        | _ -> Location.none
      in
      report path loc "parse" (Printexc.to_string exn)

let check_mli path =
  let text = read_file path in
  match Parse.interface (lexbuf_of path text) with
  | (_ : Parsetree.signature) -> ()
  | exception exn ->
      let loc =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> e.Location.main.Location.loc
        | _ -> Location.none
      in
      report path loc "parse" (Printexc.to_string exn)

let top_of_file path =
  let pos =
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = true }

let check_mli_presence ml_path =
  let mli = ml_path ^ "i" in
  if not (Sys.file_exists mli) then
    report ml_path (top_of_file ml_path) "mli-required"
      (Printf.sprintf "no interface file %s — every lib/ module documents \
                       its contract in an .mli"
         (Filename.basename mli))

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && entry.[0] = '.' then acc
        else walk (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else acc @ [ path ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let roots = match args with [] -> [ "lib" ] | roots -> roots in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    Printf.eprintf "pslint: no such file or directory: %s\n"
      (String.concat ", " missing);
    exit 2
  end;
  let files = List.concat_map (fun r -> walk r []) roots in
  let files = List.sort String.compare files in
  let checked = ref 0 in
  List.iter
    (fun f ->
      if Filename.check_suffix f ".ml" then begin
        incr checked;
        check_mli_presence f;
        check_ml f
      end
      else if Filename.check_suffix f ".mli" then begin
        incr checked;
        check_mli f
      end)
    files;
  let vs =
    List.sort
      (fun (a : violation) (b : violation) ->
        match String.compare a.file b.file with
        | 0 -> Int.compare a.line b.line
        | c -> c)
      !violations
  in
  List.iter
    (fun (v : violation) ->
      Printf.eprintf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule
        v.message)
    vs;
  if vs = [] then begin
    Printf.printf "pslint: %d files clean\n" !checked;
    exit 0
  end
  else begin
    Printf.eprintf "pslint: %d violation(s) in %d files checked\n"
      (List.length vs) !checked;
    exit 1
  end
