(* pslint — driver for the Ps_analysis linter.

   Two passes share one report stream:
   - syntactic per-file rules over every .ml/.mli under the given roots
     (poly-compare, no-obj, no-print, global-state, mli-required);
   - when --cmt directories are given, the interprocedural effect
     analyzer over the .cmt typedtrees found there (race, blocking,
     escape), with full call chains.

   Usage:
     pslint [--cmt DIR]... [--sarif FILE] [--baseline FILE]
            [--disable race|blocking|escape]... [--no-effects] [ROOT]...

   Exit status: 0 clean (or everything baselined), 1 findings, 2 usage
   or I/O errors.  Diagnostics go to stderr; the SARIF file, when
   requested, receives the same unbaselined findings. *)

let usage () =
  prerr_endline
    "usage: pslint [--cmt DIR]... [--sarif FILE] [--baseline FILE] \
     [--disable RULE]... [--no-effects] [ROOT]...";
  exit 2

type config = {
  roots : string list;
  cmt_dirs : string list;
  sarif : string option;
  baseline : string option;
  disabled : string list;
  effects : bool;
}

let parse_args argv =
  let rec go cfg = function
    | [] -> cfg
    | "--cmt" :: d :: rest -> go { cfg with cmt_dirs = cfg.cmt_dirs @ [ d ] } rest
    | "--sarif" :: f :: rest -> go { cfg with sarif = Some f } rest
    | "--baseline" :: f :: rest -> go { cfg with baseline = Some f } rest
    | "--disable" :: r :: rest ->
        if not (List.mem r [ "race"; "blocking"; "escape" ]) then usage ();
        go { cfg with disabled = r :: cfg.disabled } rest
    | "--no-effects" :: rest -> go { cfg with effects = false } rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | root :: rest -> go { cfg with roots = cfg.roots @ [ root ] } rest
  in
  go
    {
      roots = [];
      cmt_dirs = [];
      sarif = None;
      baseline = None;
      disabled = [];
      effects = true;
    }
    (List.tl (Array.to_list argv))

let () =
  let cfg = parse_args Sys.argv in
  let roots = match cfg.roots with [] -> [ "lib" ] | r -> r in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    Printf.eprintf "pslint: no such file or directory: %s\n"
      (String.concat ", " missing);
    exit 2
  end;
  let module R = Ps_analysis.Report in
  let module E = Ps_analysis.Effects in
  let syntactic = Ps_analysis.Syntactic.run ~roots in
  let effect_findings =
    if cfg.effects && cfg.cmt_dirs <> [] then begin
      let g = Ps_analysis.Callgraph.build ~cmt_dirs:cfg.cmt_dirs in
      let enabled rule = not (List.mem (E.rule_id rule) cfg.disabled) in
      E.run g ~enabled
      |> R.filter_suppressed ~resolve:(fun f -> Some f)
    end
    else []
  in
  let all = List.sort R.compare (syntactic @ effect_findings) in
  let keys =
    match cfg.baseline with
    | Some path -> R.load_baseline path
    | None -> Hashtbl.create 1
  in
  let live, baselined = R.split_baselined keys all in
  (match cfg.sarif with
  | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Ps_analysis.Sarif.emit live))
  | None -> ());
  List.iter (fun f -> Printf.eprintf "%s\n" (R.render f)) live;
  let checked = Ps_analysis.Syntactic.files_checked ~roots in
  if live = [] then begin
    Printf.printf "pslint: %d files clean%s\n" checked
      (match baselined with
      | [] -> ""
      | bs -> Printf.sprintf " (%d baselined finding(s))" (List.length bs));
    exit 0
  end
  else begin
    Printf.eprintf "pslint: %d violation(s) in %d files checked\n"
      (List.length live) checked;
    exit 1
  end
